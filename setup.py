"""Legacy setup shim.

The sandbox's setuptools predates PEP 660 editable installs (and the `wheel`
package is absent), so `pip install -e .` needs the classic `setup.py
develop` path.  All metadata lives in pyproject.toml; this file only bridges.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
