"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import EOF, IDENT, STRING


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


def test_empty_source_yields_eof_only():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == EOF


def test_decimal_int():
    assert values("42") == [42]


def test_hex_int():
    assert values("0xFF 0x10") == [255, 16]


def test_malformed_hex_rejected():
    with pytest.raises(LexError):
        tokenize("0x")


def test_number_followed_by_letter_rejected():
    with pytest.raises(LexError):
        tokenize("12ab")


def test_identifier_and_keyword_distinction():
    tokens = tokenize("while whilex fn fnord")
    assert [t.kind for t in tokens[:-1]] == ["while", IDENT, "fn", IDENT]


def test_underscore_identifiers():
    assert values("_x x_1 __") == ["_x", "x_1", "__"]


def test_char_literal():
    assert values("'a' 'Z' '0'") == [97, 90, 48]


def test_char_escapes():
    assert values(r"'\n' '\t' '\0' '\\' '\''") == [10, 9, 0, 92, 39]


def test_unterminated_char_rejected():
    with pytest.raises(LexError):
        tokenize("'a")


def test_bad_char_escape_rejected():
    with pytest.raises(LexError):
        tokenize(r"'\q'")


def test_string_literal_bytes():
    tokens = tokenize('"RIFF"')
    assert tokens[0].kind == STRING
    assert tokens[0].value == b"RIFF"


def test_string_escapes():
    tokens = tokenize(r'"a\nb\"c"')
    assert tokens[0].value == b'a\nb"c'


def test_unterminated_string_rejected():
    with pytest.raises(LexError):
        tokenize('"abc')


def test_string_with_newline_rejected():
    with pytest.raises(LexError):
        tokenize('"ab\ncd"')


def test_line_comments_skipped():
    assert values("1 // comment 2\n3") == [1, 3]


def test_block_comments_skipped():
    assert values("1 /* 2\n2.5 */ 3") == [1, 3]


def test_unterminated_block_comment_rejected():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_multichar_punct_greedy():
    assert kinds("<< <= < == = !")[:-1] == ["<<", "<=", "<", "==", "=", "!"]


def test_logical_operators():
    assert kinds("&& || & |")[:-1] == ["&&", "||", "&", "|"]


def test_line_numbers_track_newlines():
    tokens = tokenize("a\nb\n\nc")
    assert [t.line for t in tokens[:-1]] == [1, 2, 4]


def test_line_numbers_across_block_comment():
    tokens = tokenize("/* one\ntwo */ x")
    assert tokens[0].line == 2


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_all_binary_operator_spellings():
    source = "+ - * / % < <= > >= == != & | ^ << >>"
    expected = source.split()
    assert kinds(source)[:-1] == expected
