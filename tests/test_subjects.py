"""Suite-wide subject integrity tests (parametrized over all 19 programs)."""

import pytest

from repro.subjects import all_subject_names, get_subject, load_suite, subject_names

ALL_NAMES = all_subject_names()


@pytest.mark.parametrize("name", ALL_NAMES)
def test_census_is_sound(name):
    """Every declared bug crashes at its declared site; seeds are benign."""
    subject = get_subject(name)
    assert subject.verify_census() == []


@pytest.mark.parametrize("name", ALL_NAMES)
def test_program_compiles_with_structure(name):
    subject = get_subject(name)
    stats = subject.program.stats()
    assert stats["functions"] >= 2  # main + helpers
    assert stats["edges"] > stats["functions"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_bug_ids_are_distinct(name):
    subject = get_subject(name)
    ids = [bug.bug_id for bug in subject.bugs]
    assert len(ids) == len(set(ids))


@pytest.mark.parametrize("name", ALL_NAMES)
def test_seeds_terminate_quickly(name):
    subject = get_subject(name)
    for seed in subject.seeds:
        result = subject.run(seed)
        assert not result.timeout
        assert result.instr_count < subject.exec_instr_budget // 2


@pytest.mark.parametrize("name", ALL_NAMES)
def test_witnesses_fit_input_limit(name):
    subject = get_subject(name)
    for bug in subject.bugs:
        assert len(bug.witness) <= subject.max_input_len


@pytest.mark.parametrize("name", ALL_NAMES)
def test_ball_larus_plans_build_for_all_functions(name):
    from repro.ballarus import build_program_plans

    subject = get_subject(name)
    plans = build_program_plans(subject.program)
    assert all(plan.num_paths >= 1 for plan in plans)


def test_suite_has_18_subjects():
    assert len(subject_names()) == 18
    assert len(load_suite()) == 18


def test_unknown_subject_rejected():
    with pytest.raises(KeyError):
        get_subject("doom")


def test_subjects_are_cached():
    assert get_subject("cflow") is get_subject("cflow")


def test_suite_difficulty_mix():
    """The suite plants path-dependent bugs (the paper's motivation) and at
    least one unreachable control (nm_new)."""
    difficulties = {}
    for name in subject_names():
        for bug in get_subject(name).bugs:
            difficulties.setdefault(bug.difficulty, 0)
            difficulties[bug.difficulty] += 1
    assert difficulties.get("path-dependent", 0) >= 8
    assert difficulties.get("unreachable", 0) >= 2
    assert difficulties.get("shallow", 0) >= 5


def test_total_bug_census_size():
    total = sum(len(get_subject(name).bugs) for name in subject_names())
    assert total >= 55  # a rich enough hunting ground


def test_motivating_example_matches_figure1():
    from repro.ballarus import FunctionPathPlan

    subject = get_subject("motivating")
    plan = FunctionPathPlan(subject.program.func("foo"))
    assert plan.num_paths == 5
