"""Property tests: compiled == interpreted on random MiniC programs.

Uses the same structured program generator as the feasibility properties
(:mod:`tests.genprog`): every generated source compiles and terminates, so
each example is a full differential run across backends — return value,
trap identity, timeout, instruction count, probe accounting, coverage map,
and Ball-Larus path ids all must match.  A second property checks the
probe-pruning layer's obligations on random programs via
:func:`repro.coverage.prune.check_plan`.
"""

from hypothesis import given, settings

from repro.coverage.feedback import feedback_by_name
from repro.coverage.prune import build_prune_plan, check_plan
from repro.lang import compile_source
from repro.runtime.compiler import execute as compiled_execute
from repro.runtime.interpreter import execute as interp_execute
from tests.genprog import programs

INPUTS = (b"", b"\x00", b"\x80", b"\xff\x01\x02\x03", bytes(range(32)))


def _result_key(result):
    trap = result.trap
    trap_key = None
    if trap is not None:
        frames = tuple((fr.function, fr.line) for fr in trap.stack)
        trap_key = (trap.kind, trap.function, trap.line, trap.detail, frames)
    return (
        result.retval,
        trap_key,
        result.timeout,
        result.instr_count,
        result.probe_count,
        result.probe_cost,
        dict(result.hits),
    )


@given(programs())
@settings(max_examples=25, deadline=None)
def test_compiled_equals_interpreted_under_path_feedback(source):
    program = compile_source(source)
    instrumentation = feedback_by_name("path").instrument(program)
    for data in INPUTS:
        ref = interp_execute(program, data, instrumentation)
        got = compiled_execute(program, data, instrumentation)
        assert _result_key(got) == _result_key(ref)


@given(programs())
@settings(max_examples=15, deadline=None)
def test_compiled_equals_interpreted_under_edge_feedback(source):
    program = compile_source(source)
    instrumentation = feedback_by_name("edge").instrument(program)
    for data in INPUTS:
        ref = interp_execute(program, data, instrumentation)
        got = compiled_execute(program, data, instrumentation)
        assert _result_key(got) == _result_key(ref)


@given(programs())
@settings(max_examples=15, deadline=None)
def test_compiled_respects_tiny_budgets(source):
    program = compile_source(source)
    instrumentation = feedback_by_name("path").instrument(program)
    for budget in (1, 13, 101):
        for data in INPUTS[:3]:
            ref = interp_execute(
                program, data, instrumentation, instr_budget=budget
            )
            got = compiled_execute(
                program, data, instrumentation, instr_budget=budget
            )
            assert _result_key(got) == _result_key(ref)


@given(programs())
@settings(max_examples=15, deadline=None)
def test_prune_plan_sound_on_random_programs(source):
    program = compile_source(source)
    instrumentation = feedback_by_name("edge").instrument(program)
    plan = build_prune_plan(program, instrumentation)
    if plan is None:
        return
    # check_plan runs both backends over the inputs and raises on any
    # violated obligation (trap identity, coverage map after
    # reconstruction, accounting).
    check_plan(program, instrumentation, plan, INPUTS)
