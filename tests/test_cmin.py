"""Corpus-minimization (afl-cmin analogue) tests."""

import random

from repro.coverage.feedback import PathFeedback
from repro.fuzzer.cmin import coverage_of, minimize_corpus
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.strategies.culling import edge_preserving_subset
from repro.subjects import get_subject


def grown_corpus(subject_name, budget=400_000, seed=0):
    subject = get_subject(subject_name)
    engine = FuzzEngine(
        subject.program, PathFeedback(), subject.seeds, random.Random(seed),
        EngineConfig(max_input_len=subject.max_input_len,
                     exec_instr_budget=subject.exec_instr_budget),
        subject.tokens,
    )
    engine.run(budget)
    return subject, engine.corpus_inputs()


def test_minimization_preserves_coverage():
    subject, inputs = grown_corpus("gdk")
    minimized = minimize_corpus(subject.program, inputs)
    assert coverage_of(subject.program, minimized) == coverage_of(
        subject.program, inputs
    )
    assert len(minimized) <= len(inputs)


def test_minimization_collapses_duplicates():
    subject = get_subject("flvmeta")
    inputs = [subject.seeds[0]] * 8 + [subject.seeds[1]]
    minimized = minimize_corpus(subject.program, inputs)
    assert len(minimized) <= 2


def test_minimization_prefers_small_inputs():
    subject = get_subject("flvmeta")
    # A long and a short input with identical behaviour: keep the short one.
    short = subject.seeds[0]
    long = subject.seeds[0] + b"\x00" * 40
    cov_short = coverage_of(subject.program, [short])
    cov_long = coverage_of(subject.program, [long])
    if cov_short == cov_long:
        minimized = minimize_corpus(subject.program, [long, short])
        assert minimized == [short]


def test_minimization_under_path_feedback():
    subject, inputs = grown_corpus("cflow")
    minimized = minimize_corpus(subject.program, inputs, feedback=PathFeedback())
    assert coverage_of(subject.program, minimized, feedback=PathFeedback()) == (
        coverage_of(subject.program, inputs, feedback=PathFeedback())
    )


def test_equivalent_to_favored_construction():
    """The paper's claim: favored-corpus culling ~ afl-cmin in coverage."""
    subject, inputs = grown_corpus("mujs")
    via_cmin = minimize_corpus(subject.program, inputs)
    via_favored = edge_preserving_subset(subject.program, inputs)
    assert coverage_of(subject.program, via_cmin) == coverage_of(
        subject.program, via_favored
    )


def test_empty_corpus():
    subject = get_subject("flvmeta")
    assert minimize_corpus(subject.program, []) == []
    assert coverage_of(subject.program, []) == set()
