"""IR-to-Python compiler: exact equivalence with the reference interpreter.

Every test asserts the compiled backend's full observable surface against
the interpreter — return value, trap (kind, site, detail, stack), timeout,
instruction accounting, probe accounting, coverage map, cmplog operands —
because the compiler's contract is bit-identical semantics, not "close
enough for fuzzing".
"""

import os

import pytest

from repro.coverage.feedback import feedback_by_name
from repro.coverage.prune import build_prune_plan
from repro.lang import compile_source
from repro.runtime import backend as backend_mod
from repro.runtime.backend import make_backend, resolve_backend
from repro.runtime.compiler import compile_program, execute as compiled_execute
from repro.runtime.interpreter import execute as interp_execute
from repro.subjects import get_subject

FEEDBACKS = ("edge", "path", "block", "ngram4", "pathafl", "path2gram")

LOOPY = """
fn helper(x) {
    return (x * 7 + 3) & 255;
}

fn main(input) {
    var acc = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        var b = input[i];
        if (b > 128) { acc = acc + helper(b); }
        else { acc = acc - b; }
        while (b > 0) { b = b / 2; acc = acc + 1; }
    }
    return acc & 65535;
}
"""

TRAPPY = """
fn main(input) {
    var n = read32(input, 0);
    var buf = alloc(16);
    buf[n & 31] = 1;
    return buf[0] + input[n & 63];
}
"""


def _result_key(result):
    trap = result.trap
    trap_key = None
    if trap is not None:
        frames = tuple((fr.function, fr.line) for fr in trap.stack)
        trap_key = (trap.kind, trap.function, trap.line, trap.detail, frames)
    return (
        result.retval,
        trap_key,
        result.timeout,
        result.instr_count,
        result.probe_count,
        result.probe_cost,
        dict(result.hits),
        list(result.cmp_log),
    )


def assert_equivalent(program, data, instrumentation=None, **kwargs):
    ref = interp_execute(program, data, instrumentation, **kwargs)
    got = compiled_execute(program, data, instrumentation, **kwargs)
    assert _result_key(got) == _result_key(ref)
    return ref


@pytest.mark.parametrize("feedback", FEEDBACKS)
def test_loopy_program_equivalent_under_every_feedback(feedback):
    program = compile_source(LOOPY)
    instrumentation = feedback_by_name(feedback).instrument(program)
    for data in (b"", b"\x00", b"hello world", bytes(range(256))):
        assert_equivalent(program, data, instrumentation)


@pytest.mark.parametrize("feedback", ("edge", "path"))
def test_traps_match_site_detail_and_stack(feedback):
    program = compile_source(TRAPPY)
    instrumentation = feedback_by_name(feedback).instrument(program)
    for data in (b"", b"\x00\x00\x00\x11", b"\xff\xff\xff\xff", b"\x00" * 64):
        assert_equivalent(program, data, instrumentation)


def test_timeout_point_is_exact():
    program = compile_source(LOOPY)
    instrumentation = feedback_by_name("path").instrument(program)
    data = bytes(range(256)) * 2
    # Walk budgets across the whole execution, including values far below
    # one loop iteration: the replayed exact variant must stop at the same
    # instruction the interpreter does.
    full = interp_execute(program, data, instrumentation)
    for budget in (1, 17, 100, full.instr_count - 1, full.instr_count):
        assert_equivalent(program, data, instrumentation, instr_budget=budget)


def test_cmplog_operands_match():
    program = compile_source(LOOPY)
    instrumentation = feedback_by_name("edge").instrument(program)
    ref = interp_execute(program, b"compare me", instrumentation, cmplog=True)
    got = compiled_execute(program, b"compare me", instrumentation, cmplog=True)
    assert got.cmp_log == ref.cmp_log
    assert ref.cmp_log  # the program compares, so the log must be non-empty


def test_uninstrumented_execution_equivalent():
    program = compile_source(LOOPY)
    assert_equivalent(program, b"plain run, no feedback")


def test_compiled_program_is_memoized():
    program = compile_source(LOOPY)
    instrumentation = feedback_by_name("edge").instrument(program)
    assert compile_program(program, instrumentation) is compile_program(
        program, instrumentation
    )


def test_pooled_runtime_survives_interleaved_inputs():
    program = compile_source(TRAPPY)
    instrumentation = feedback_by_name("edge").instrument(program)
    compiled = compile_program(program, instrumentation)
    inputs = [b"", b"\x00\x00\x00\x04AAAAAA", b"\xff" * 8, b"\x00" * 64]
    for _ in range(3):  # repeated passes reuse the pooled runtime
        for data in inputs:
            ref = interp_execute(program, data, instrumentation)
            got = compiled.execute(data)
            assert _result_key(got) == _result_key(ref)


def test_prune_plan_preserves_coverage_map():
    subject = get_subject("flvmeta")
    program = subject.program
    instrumentation = feedback_by_name("edge").instrument(program)
    plan = build_prune_plan(program, instrumentation)
    assert plan is not None and plan.dropped > 0
    compiled = compile_program(program, instrumentation, plan)
    for seed in subject.seeds:
        ref = interp_execute(program, bytes(seed), instrumentation)
        got = compiled.execute(bytes(seed))
        # The observed coverage map is reconstructed exactly; the probe
        # accounting legitimately drops (elided probes never executed).
        assert dict(got.hits) == dict(ref.hits)
        assert (got.retval, got.timeout, got.instr_count) == (
            ref.retval,
            ref.timeout,
            ref.instr_count,
        )
        assert got.trap is None and ref.trap is None
        assert got.probe_cost <= ref.probe_cost


def test_resolve_backend_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend() == "interp"
    monkeypatch.setenv("REPRO_BACKEND", "compile")
    assert resolve_backend() == "compile"
    assert resolve_backend("interp") == "interp"  # argument wins
    with pytest.raises(ValueError):
        resolve_backend("jit")
    monkeypatch.setenv("REPRO_BACKEND", "nonsense")
    with pytest.raises(ValueError):
        resolve_backend()


def test_backend_objects_execute_identically(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    program = compile_source(LOOPY)
    instrumentation = feedback_by_name("path").instrument(program)
    interp = make_backend(program, instrumentation, backend="interp")
    compiled = make_backend(program, instrumentation, backend="compile")
    assert (interp.name, compiled.name) == ("interp", "compile")
    for data in (b"", b"abc", bytes(range(64))):
        assert _result_key(compiled.execute(data)) == _result_key(
            interp.execute(data)
        )


def test_backend_env_var_is_honored(monkeypatch):
    program = compile_source(LOOPY)
    monkeypatch.setenv("REPRO_BACKEND", "compile")
    assert make_backend(program).name == "compile"
    monkeypatch.setenv("REPRO_BACKEND", "interp")
    assert make_backend(program).name == "interp"
    assert backend_mod._ENV_VAR == "REPRO_BACKEND"


def test_respecialization_drops_only_saturated_probes():
    from repro.coverage.bitmap import VirginMap, classify_hits

    subject = get_subject("flvmeta")
    program = subject.program
    instrumentation = feedback_by_name("edge").instrument(program)
    backend = make_backend(
        program, instrumentation, backend="compile", probe_prune=True
    )
    virgin = VirginMap()
    results = {}
    for seed in subject.seeds:
        result = backend.execute(bytes(seed))
        results[bytes(seed)] = dict(result.hits)
        virgin.merge(classify_hits(result.hits))
    # Saturate every observed cell artificially: merge maps whose counts
    # land in each AFL bucket.
    for scale in (1, 2, 3, 4, 8, 16, 32, 128):
        virgin.merge(
            classify_hits(
                {idx: scale for data in results for idx in results[data]}
            )
        )
    assert backend.respecialize(virgin)
    for seed in subject.seeds:
        pruned = backend.execute(bytes(seed))
        baseline = results[bytes(seed)]
        # Dropped cells vanish; every cell still reported is exact.
        for idx, count in pruned.hits.items():
            assert baseline.get(idx) == count
    # A second call with the same virgin map is a no-op.
    assert not backend.respecialize(virgin)


def test_compiled_cache_dir_roundtrip(tmp_path, monkeypatch):
    from repro.runtime import compiler as compiler_mod

    monkeypatch.setenv(compiler_mod.CACHE_ENV, str(tmp_path))
    compiler_mod.clear_cache()
    program = compile_source(LOOPY)
    instrumentation = feedback_by_name("path").instrument(program)
    ref = interp_execute(program, b"cache me", instrumentation)
    got = compiled_execute(program, b"cache me", instrumentation)
    assert _result_key(got) == _result_key(ref)
    cached_files = [
        os.path.join(root, name)
        for root, _, names in os.walk(str(tmp_path))
        for name in names
    ]
    assert cached_files  # sources were persisted
    # A cold process (cleared memo) must load from disk and agree.
    compiler_mod.clear_cache()
    again = compiled_execute(program, b"cache me", instrumentation)
    assert _result_key(again) == _result_key(ref)
