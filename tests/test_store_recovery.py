"""Store-backed campaign recovery: the ISSUE's acceptance criteria, proven.

Two load-bearing properties of the durable workspace
(:mod:`repro.fuzzer.store`), driven by deterministic fault injection:

1. **Kill-and-resume is lossless.**  A campaign killed mid-run and resumed
   with ``resume_store`` reports a corpus/crash set that is a *superset* of
   what was durably on disk at kill time, with zero unquarantined parse
   failures.
2. **Damage degrades, never kills.**  Injected ``torn-write`` /
   ``corrupt-file`` faults land the damaged entries in ``quarantine/`` and
   the campaign still completes.
"""

import os

import pytest

from repro.fuzzer import faultinject
from repro.fuzzer.faultinject import injected
from repro.fuzzer.parallel import run_instance_campaign
from repro.fuzzer.store import (
    CRASH_DIR,
    CampaignStore,
    campaign_queue_hashes,
    parse_artifact_name,
    worker_name,
)
from repro.fuzzer.supervisor import RestartPolicy

pytestmark = pytest.mark.faultinject

BUDGET = 60_000
FAST_RESTARTS = RestartPolicy(max_restarts=3, backoff_base=0.01, backoff_max=0.05)
NO_RESTARTS = RestartPolicy(max_restarts=0)


@pytest.fixture(autouse=True)
def no_leftover_faults():
    faultinject.clear()
    yield
    faultinject.clear()


def _on_disk_state(root, workers=2):
    """(queue hashes, crash signatures, unparseable artifact names)."""
    crash_sigs = set()
    unparseable = []
    for index in range(workers):
        directory = os.path.join(root, worker_name(index), CRASH_DIR)
        if not os.path.isdir(directory):
            continue
        for name in os.listdir(directory):
            if "." in name:
                continue  # .report.txt / .triage.json sidecars
            parsed = parse_artifact_name(name)
            if parsed is None:
                unparseable.append(name)
            else:
                crash_sigs.add(parsed[1])
    return campaign_queue_hashes(root), crash_sigs, unparseable


def test_killed_campaign_resumes_lossless_from_store(tmp_path):
    root = str(tmp_path)
    # Kill both workers in different rounds with no restart budget: the
    # campaign dies outright, leaving only the workspace behind.
    with injected("kill@0.2,kill@1.3"):
        with pytest.raises(RuntimeError):
            run_instance_campaign(
                "gdk", "path", 0, BUDGET, workers=2,
                output_dir=root, restart_policy=NO_RESTARTS,
            )
    pre_queue, pre_crashes, pre_bad = _on_disk_state(root)
    assert pre_queue  # the kill happened after durable progress existed
    assert pre_bad == []  # zero unquarantined parse failures
    merged, _, _ = run_instance_campaign(
        "gdk", "path", 0, BUDGET, workers=2, output_dir=root, resume_store=True
    )
    post_queue, post_crashes, post_bad = _on_disk_state(root)
    assert pre_queue <= post_queue  # every retained input survived
    assert pre_crashes <= post_crashes  # every durable crash survived
    assert post_bad == []
    assert merged.queue_size == len(post_queue)
    assert {r.hash5 for r in merged.crash_records} >= pre_crashes


def test_worker_restart_recovers_from_store_slice(tmp_path):
    """A supervised restart with no checkpoint falls back to the store."""
    root = str(tmp_path)
    with injected("kill@0.2"):
        merged, _, _ = run_instance_campaign(
            "gdk", "path", 0, BUDGET, workers=2,
            output_dir=root, restart_policy=FAST_RESTARTS,
        )
    assert not merged.degraded
    assert merged.worker_restarts[0] >= 1
    _, _, bad = _on_disk_state(root)
    assert bad == []


def test_injected_store_damage_is_quarantined_not_fatal(tmp_path):
    root = str(tmp_path)
    # Damage worker 0's 3rd and 5th artifact writes, then kill it so the
    # restarted incarnation's recovery scan must face the damage.
    with injected("torn-write@0.3,corrupt-file@0.5,kill@0.2"):
        merged, _, _ = run_instance_campaign(
            "gdk", "path", 0, BUDGET, workers=2,
            output_dir=root, restart_policy=FAST_RESTARTS,
        )
    assert not merged.degraded  # degraded at worst — here fully recovered
    quarantine = os.listdir(os.path.join(root, worker_name(0), "quarantine"))
    assert len(quarantine) == 2  # both damaged artifacts evicted
    _, _, bad = _on_disk_state(root)
    assert bad == []


def test_torn_write_keep_param_controls_truncation(tmp_path):
    path = os.path.join(str(tmp_path), "artifact")
    with open(path, "wb") as handle:
        handle.write(b"x" * 100)
    (fault,) = faultinject.parse_faults("torn-write@0.1:keep=4")
    assert fault.site() == "store"
    faultinject.fire_store_fault(fault, path)
    assert os.path.getsize(path) == 4


def test_corrupt_file_flips_bytes_preserving_length(tmp_path):
    path = os.path.join(str(tmp_path), "artifact")
    with open(path, "wb") as handle:
        handle.write(b"\x00\xff\x10")
    (fault,) = faultinject.parse_faults("corrupt-file@0.1")
    faultinject.fire_store_fault(fault, path)
    with open(path, "rb") as handle:
        assert handle.read() == b"\xff\x00\xef"


def test_install_preserves_fault_params_across_env():
    faults = faultinject.parse_faults("torn-write@0.3:keep=4")
    faultinject.install(faults)
    try:
        plan = faultinject.FaultPlan(
            faultinject.parse_faults(os.environ[faultinject.ENV_VAR])
        )
        fault = plan.match("store", 0, 3, 0)
        assert fault is not None and fault.params == {"keep": "4"}
    finally:
        faultinject.clear()


def test_dir_sync_campaign_matches_across_runs(tmp_path):
    """Directory-synced campaigns are deterministic for a fixed worker set."""
    a, _, _ = run_instance_campaign(
        "flvmeta", "path", 0, 40_000, workers=2,
        output_dir=os.path.join(str(tmp_path), "a"),
    )
    b, _, _ = run_instance_campaign(
        "flvmeta", "path", 0, 40_000, workers=2,
        output_dir=os.path.join(str(tmp_path), "b"),
    )
    assert a == b


def test_two_campaigns_cannot_share_a_workspace(tmp_path):
    from repro.fuzzer.store import StoreLockError

    root = str(tmp_path)
    holder = CampaignStore(root, worker=worker_name(0))
    try:
        with pytest.raises(StoreLockError):
            CampaignStore(root, worker=worker_name(0))
    finally:
        holder.close()
