"""Checkpoint/resume tests: the kill-and-resume determinism contract.

The load-bearing property: an engine killed mid-campaign and resumed from
its last on-disk checkpoint must be *tick-for-tick identical* to one that
was never interrupted — same executions, same queue, same crashes, same
timeline.  The file format's paranoia (magic, version, source fingerprint,
payload digest) is what lets resuming refuse to silently diverge.
"""

import os
import random

import pytest

import repro.experiments.runner as runner
from repro.experiments.config import FUZZER_CONFIGS, campaign_rng, run_config
from repro.experiments.runner import campaign
from repro.coverage.feedback import PathFeedback
from repro.fuzzer.checkpoint import (
    MAGIC,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStaleError,
    default_fingerprint,
    read_checkpoint,
    write_checkpoint,
)
from repro.fuzzer.engine import FuzzEngine
from repro.subjects import get_subject

BUDGET = 30_000  # ticks: a tiny but non-degenerate campaign


@pytest.fixture(autouse=True)
def fresh_caches(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
    runner._MEMORY_CACHE.clear()
    yield
    runner._MEMORY_CACHE.clear()


def _engine(seed=0):
    subject = get_subject("flvmeta")
    return FuzzEngine(
        subject.program,
        PathFeedback(),
        subject.seeds,
        random.Random(seed),
        tokens=subject.tokens,
    )


def _engine_state(engine):
    """Everything the determinism contract compares."""
    return {
        "execs": engine.execs,
        "hangs": engine.hangs,
        "ticks": engine.clock.ticks,
        "cycle": engine.cycle,
        "queue": [e.data for e in engine.queue.entries],
        "favored": [e.favored for e in engine.queue.entries],
        "crash_count": engine.crash_count,
        "crashes": sorted(
            (h, r.count, r.found_at) for h, r in engine.unique_crashes.items()
        ),
        "virgin": dict(engine.virgin.bits),
        "timeline": list(engine.timeline),
        "rng": engine.rng.getstate(),
    }


# -- file format ---------------------------------------------------------------


def test_checkpoint_round_trip(tmp_path):
    path = str(tmp_path / "state.ckpt")
    write_checkpoint(path, {"x": [1, 2, 3]}, meta={"round": 7})
    state, meta = read_checkpoint(path)
    assert state == {"x": [1, 2, 3]}
    assert meta == {"round": 7}
    assert not os.path.exists(path + ".tmp")  # atomic write left no debris


def test_checkpoint_bad_magic_is_corrupt(tmp_path):
    path = str(tmp_path / "state.ckpt")
    write_checkpoint(path, "payload")
    with open(path, "r+b") as handle:
        handle.write(b"NOTACKPT!!")
    with pytest.raises(CheckpointCorruptError):
        read_checkpoint(path)


def test_checkpoint_truncation_is_corrupt(tmp_path):
    path = str(tmp_path / "state.ckpt")
    write_checkpoint(path, list(range(1000)))
    size = os.path.getsize(path)
    for keep in (size - 5, len(MAGIC) + 30, 3):
        with open(path, "r+b") as handle:
            handle.truncate(keep)
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(path)
        write_checkpoint(path, list(range(1000)))


def test_checkpoint_version_mismatch_is_stale(tmp_path):
    path = str(tmp_path / "state.ckpt")
    write_checkpoint(path, "payload")
    with open(path, "r+b") as handle:
        handle.seek(len(MAGIC))
        handle.write((99).to_bytes(2, "big"))
    with pytest.raises(CheckpointStaleError):
        read_checkpoint(path)


def test_checkpoint_fingerprint_mismatch_is_stale(tmp_path):
    path = str(tmp_path / "state.ckpt")
    write_checkpoint(path, "payload", fingerprint="a" * 16)
    # Default fingerprint (this source tree) does not match "aaaa...".
    assert default_fingerprint() != "a" * 16
    with pytest.raises(CheckpointStaleError):
        read_checkpoint(path)
    # The matching fingerprint, or opting out of the check, both read fine.
    state, _ = read_checkpoint(path, fingerprint="a" * 16)
    assert state == "payload"
    state, _ = read_checkpoint(path, check_fingerprint=False)
    assert state == "payload"


def test_checkpoint_flipped_payload_byte_is_corrupt(tmp_path):
    path = str(tmp_path / "state.ckpt")
    write_checkpoint(path, {"k": "v"})
    with open(path, "r+b") as handle:
        handle.seek(-1, os.SEEK_END)
        last = handle.read(1)
        handle.seek(-1, os.SEEK_END)
        handle.write(bytes([last[0] ^ 0xFF]))
    with pytest.raises(CheckpointCorruptError):
        read_checkpoint(path)


def test_write_checkpoint_rejects_malformed_fingerprint(tmp_path):
    with pytest.raises(ValueError):
        write_checkpoint(str(tmp_path / "x.ckpt"), "s", fingerprint="short")


# -- engine snapshot/restore ---------------------------------------------------


def test_snapshot_restore_continues_identically():
    interrupted = _engine(seed=11)
    interrupted.start(BUDGET)
    interrupted.run_until(BUDGET // 2)
    snap = interrupted.snapshot()

    resumed = _engine(seed=999)  # different RNG seed: state must come from snap
    resumed.restore(snap)
    resumed.run_until(BUDGET)
    resumed.finish()

    whole = _engine(seed=11)
    whole.run(BUDGET)
    assert _engine_state(resumed) == _engine_state(whole)


def test_snapshot_requires_started_engine():
    with pytest.raises(RuntimeError):
        _engine().snapshot()


def test_snapshot_is_frozen_against_further_fuzzing():
    engine = _engine(seed=3)
    engine.start(BUDGET)
    engine.run_until(BUDGET // 2)
    snap = engine.snapshot()
    queue_before = [e.data for e in snap["queue"]["entries"]]
    ticks_before = snap["clock"][0]
    engine.run_until(BUDGET)
    assert [e.data for e in snap["queue"]["entries"]] == queue_before
    assert snap["clock"][0] == ticks_before


def test_kill_and_resume_from_file_is_identical(tmp_path):
    path = str(tmp_path / "engine.ckpt")
    victim = _engine(seed=5)
    victim.start(BUDGET)
    victim.run_until(BUDGET // 3)
    victim.save_checkpoint(path, meta={"ticks": victim.clock.ticks})
    del victim  # the "kill": nothing survives but the file

    resumed = _engine(seed=5)
    meta = resumed.resume(path)
    assert meta["ticks"] == resumed.clock.ticks
    resumed.run_until(BUDGET)
    resumed.finish()

    whole = _engine(seed=5)
    whole.run(BUDGET)
    assert _engine_state(resumed) == _engine_state(whole)


def test_resume_refuses_corrupt_file_and_leaves_engine_untouched(tmp_path):
    path = str(tmp_path / "engine.ckpt")
    donor = _engine(seed=5)
    donor.start(BUDGET)
    donor.run_until(BUDGET // 3)
    donor.save_checkpoint(path)
    with open(path, "r+b") as handle:
        handle.truncate(24)
    engine = _engine(seed=5)
    engine.start(BUDGET)
    before = _engine_state(engine)
    with pytest.raises(CheckpointError):
        engine.resume(path)
    assert _engine_state(engine) == before


# -- campaign-level resume -----------------------------------------------------


def test_run_config_with_checkpoint_equals_plain(tmp_path):
    subject = get_subject("flvmeta")
    plain = run_config(subject, "path", 0, BUDGET)
    checkpointed = run_config(
        subject,
        "path",
        0,
        BUDGET,
        checkpoint_path=str(tmp_path / "cell.ckpt"),
        checkpoint_every=BUDGET // 4,
    )
    assert checkpointed == plain


def test_run_config_resumes_partial_checkpoint(tmp_path):
    """A cell killed mid-run picks up from its snapshot, not from zero."""
    subject = get_subject("flvmeta")
    path = str(tmp_path / "cell.ckpt")
    spec = FUZZER_CONFIGS["path"]
    partial = FuzzEngine(
        subject.program,
        spec.feedback_factory(),
        subject.seeds,
        campaign_rng(subject.name, "path", 0),
        spec.engine_config(subject),
        subject.tokens,
    )
    partial.start(BUDGET)
    partial.run_until(BUDGET // 2)
    partial.save_checkpoint(path)
    execs_done = partial.execs

    resumed = run_config(subject, "path", 0, BUDGET, checkpoint_path=path)
    uninterrupted = run_config(subject, "path", 0, BUDGET)
    assert resumed == uninterrupted
    # It really resumed: the first attempt's executions were not redone.
    assert resumed.execs >= execs_done


def test_run_config_recovers_from_torn_checkpoint(tmp_path):
    subject = get_subject("flvmeta")
    path = str(tmp_path / "cell.ckpt")
    with open(path, "wb") as handle:
        handle.write(b"garbage that is definitely not a checkpoint")
    result = run_config(subject, "path", 0, BUDGET, checkpoint_path=path)
    assert result == run_config(subject, "path", 0, BUDGET)


def test_campaign_checkpoints_under_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
    result = campaign("flvmeta", "path", 0, hours=1, scale=0.05)
    runner._MEMORY_CACHE.clear()
    monkeypatch.delenv("REPRO_CHECKPOINT_DIR")
    assert result == campaign("flvmeta", "path", 0, hours=1, scale=0.05)
    # A completed campaign cleans up its resume point.
    assert [p for p in os.listdir(str(tmp_path)) if p.endswith(".ckpt")] == []


# -- typed, actionable error detail --------------------------------------------


def test_truncated_checkpoint_error_carries_path_and_lengths(tmp_path):
    path = str(tmp_path / "c.ckpt")
    write_checkpoint(path, {"x": 1}, fingerprint="f" * 16)
    with open(path, "r+b") as handle:
        handle.truncate(10)
    with pytest.raises(CheckpointCorruptError) as excinfo:
        read_checkpoint(path, fingerprint="f" * 16)
    err = excinfo.value
    assert err.path == path
    assert err.field == "length"
    assert (err.expected, err.found) == (len(MAGIC) + 2 + 16 + 32, 10)
    assert path in str(err) and "10 bytes" in str(err)


def test_digest_mismatch_error_carries_both_digests(tmp_path):
    path = str(tmp_path / "c.ckpt")
    write_checkpoint(path, {"x": 1}, fingerprint="f" * 16)
    with open(path, "r+b") as handle:
        handle.seek(-1, os.SEEK_END)
        handle.write(b"\x00")
    with pytest.raises(CheckpointCorruptError) as excinfo:
        read_checkpoint(path, fingerprint="f" * 16)
    err = excinfo.value
    assert err.field == "sha256"
    assert err.expected != err.found
    assert len(err.expected) == 64 and len(err.found) == 64


def test_fingerprint_mismatch_error_carries_expected_vs_found(tmp_path):
    path = str(tmp_path / "c.ckpt")
    write_checkpoint(path, {"x": 1}, fingerprint="a" * 16)
    with pytest.raises(CheckpointStaleError) as excinfo:
        read_checkpoint(path, fingerprint="b" * 16)
    err = excinfo.value
    assert err.field == "fingerprint"
    assert (err.expected, err.found) == ("b" * 16, "a" * 16)


def test_undecodable_payload_is_typed_never_raw(tmp_path):
    import hashlib as _hashlib

    path = str(tmp_path / "c.ckpt")
    # Hand-craft a checkpoint whose digest is valid but whose payload is
    # not a pickle: the loader must raise a typed error, not UnpicklingError.
    payload = b"this is not a pickle"
    blob = (
        MAGIC
        + (1).to_bytes(2, "big")
        + b"f" * 16
        + _hashlib.sha256(payload).digest()
        + payload
    )
    with open(path, "wb") as handle:
        handle.write(blob)
    with pytest.raises(CheckpointCorruptError) as excinfo:
        read_checkpoint(path, fingerprint="f" * 16)
    err = excinfo.value
    assert err.field == "payload"
    assert "UnpicklingError" in err.found
