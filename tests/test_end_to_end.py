"""End-to-end behavioural tests of the paper's central claims, in miniature.

These exercise the full stack — compiler, Ball-Larus instrumentation, VM,
fuzzer — on small targets where the expected dynamics are designed in.
"""

import random

from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.lang import compile_source
from repro.runtime import execute
from repro.subjects import get_subject

# A target where the *only* novelty separating the stepping stone from
# already-seen behaviour is the intra-procedural path combination: mode is
# set by one conditional and consumed by a later one in the same call.
COMBO = """
fn process(a, b, c, out) {
    var mode = 0;
    if (a > 100) { mode = 3; }
    var base = 0;
    if (b > 100) { base = 9; }
    if (c > 100) {
        out[base * mode] = 1;
    }
    return mode + base;
}
fn main(input) {
    if (len(input) < 3) { return 0; }
    var out = alloc(16);
    return process(input[0], input[1], input[2], out);
}
"""


def fuzz(source_or_subject, feedback, seed, budget, seeds=None):
    if isinstance(source_or_subject, str):
        program = compile_source(source_or_subject)
        seeds = seeds or [b"\x00\x00\x00", b"\x7f\x7f\x7f"]
        config = EngineConfig(max_input_len=8, exec_instr_budget=5_000)
        tokens = ()
    else:
        subject = source_or_subject
        program = subject.program
        seeds = seeds or subject.seeds
        config = EngineConfig(
            max_input_len=subject.max_input_len,
            exec_instr_budget=subject.exec_instr_budget,
        )
        tokens = subject.tokens
    engine = FuzzEngine(program, feedback, seeds, random.Random(seed), config, tokens)
    engine.run(budget)
    return engine


def found_bugs(engine):
    return {record.trap.bug_id() for record in engine.unique_crashes.values()}


def test_path_feedback_retains_mode_combinations():
    """Path feedback keeps more distinct behaviours of COMBO in its queue."""
    program = compile_source(COMBO)
    edge_instr = EdgeFeedback().instrument(program)
    path_instr = PathFeedback().instrument(program)
    # Four mode/base combinations traverse identical edge *sets* once each
    # branch has been seen individually, but distinct acyclic paths.
    inputs = [bytes([a, b, 0]) for a in (0, 200) for b in (0, 200)]
    edge_sets = {frozenset(execute(program, d, edge_instr).hits) for d in inputs}
    path_sets = {frozenset(execute(program, d, path_instr).hits) for d in inputs}
    assert len(path_sets) == 4
    assert len(edge_sets) == 4  # sets differ here too (different edges taken)
    # The decisive case: combinations where all edges were already covered
    # pairwise.  (200,200) vs covering (200,0) and (0,200): edge union equal.
    combo = frozenset(execute(program, bytes([200, 200, 0]), edge_instr).hits)
    union = frozenset(execute(program, bytes([200, 0, 0]), edge_instr).hits) | frozenset(
        execute(program, bytes([0, 200, 0]), edge_instr).hits
    )
    assert combo <= union  # edge coverage sees nothing new in the combination


def test_motivating_example_bug_found_by_path_feedback():
    subject = get_subject("motivating")
    engine = fuzz(subject, PathFeedback(), seed=0, budget=1_200_000)
    assert subject.bugs[0].bug_id in found_bugs(engine)


def test_fuzzers_find_shallow_bugs_everywhere():
    subject = get_subject("flvmeta")
    for feedback in (EdgeFeedback(), PathFeedback()):
        engine = fuzz(subject, feedback, seed=1, budget=1_500_000)
        assert found_bugs(engine), feedback.name


def test_queue_explosion_on_pathological_subject():
    subject = get_subject("infotocap")
    edge_engine = fuzz(subject, EdgeFeedback(), seed=2, budget=800_000)
    path_engine = fuzz(subject, PathFeedback(), seed=2, budget=800_000)
    assert len(path_engine.queue.entries) > 1.5 * len(edge_engine.queue.entries)


def test_no_explosion_on_branchy_loopless_subject():
    subject = get_subject("exiv2")
    edge_engine = fuzz(subject, EdgeFeedback(), seed=2, budget=600_000)
    path_engine = fuzz(subject, PathFeedback(), seed=2, budget=600_000)
    ratio = len(path_engine.queue.entries) / max(len(edge_engine.queue.entries), 1)
    assert ratio < 2.5


def test_nm_new_resists_all_feedbacks():
    subject = get_subject("nm_new")
    for feedback in (EdgeFeedback(), PathFeedback()):
        engine = fuzz(subject, feedback, seed=3, budget=600_000)
        assert found_bugs(engine) == set()


def test_census_bugs_are_what_fuzzers_find():
    """Any bug a campaign finds must be in the subject's declared census."""
    for name in ("gdk", "mujs", "mp3gain"):
        subject = get_subject(name)
        engine = fuzz(subject, PathFeedback(), seed=4, budget=1_000_000)
        declared = {bug.bug_id for bug in subject.bugs}
        assert found_bugs(engine) <= declared, name
