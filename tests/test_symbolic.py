"""Symbolic extraction + solver tests: mirroring, soundness, witnesses.

The load-bearing properties:

- the shadow interpreter's ExecutionResult is bit-identical to a plain
  interpretation of the same input (same mirroring contract as taint);
- every recorded constraint is *self-consistent*: evaluating its
  expression over the run's own input bytes reproduces the branch
  direction the run took (``Constraint.holds`` is True) — on generated
  programs and on all 18 Table-I subjects;
- every solver witness, replayed through the real interpreter and
  :func:`~repro.triage.pathreport.profile_input`, actually takes the
  flipped branch direction the solver predicted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.solver import SolveStats, apply_witness, solve_flip
from repro.analysis.symbolic import (
    Constraint,
    PathCondition,
    eval_expr,
    expr_support,
    extract_path_condition,
    format_expr,
    interval_expr,
    match_byte_fold,
)
from repro.coverage.feedback import EdgeFeedback
from repro.lang import compile_source
from repro.runtime.interpreter import execute
from repro.subjects import SUITE_NAMES, get_subject
from repro.triage.pathreport import profile_input
from tests.genprog import programs

MODMUL = """
fn main(input) {
    if (len(input) < 5) { return 0; }
    if (read32(input, 0) != 0x4D414743) { return 1; }
    var x = input[4];
    if ((x * 3) % 251 == 17) { trap(1); }
    return 2;
}
"""

MAGIC_SEED = b"MAGC\x00\x00"


def _byte_at(data):
    return lambda off: data[off]


# -- extraction mirroring ------------------------------------------------------


def test_extraction_result_matches_plain_interpretation():
    program = compile_source(MODMUL)
    for data in (MAGIC_SEED, b"nope", b"", b"MAGC\xad\x00", b"\x00" * 8):
        plain = execute(program, data)
        result, _ = extract_path_condition(program, data)
        assert result.retval == plain.retval
        assert result.instr_count == plain.instr_count
        assert (result.trap is None) == (plain.trap is None)
        if result.trap is not None:
            assert result.trap.bug_id() == plain.trap.bug_id()


def test_extraction_mirrors_instrumented_hits():
    program = compile_source(MODMUL)
    instrumentation = EdgeFeedback().instrument(program)
    plain = execute(program, MAGIC_SEED, instrumentation=instrumentation)
    result, _ = extract_path_condition(
        program, MAGIC_SEED, instrumentation=instrumentation
    )
    assert result.hits == plain.hits
    assert result.probe_count == plain.probe_count


def test_constraints_record_path_guards():
    program = compile_source(MODMUL)
    _, condition = extract_path_condition(program, MAGIC_SEED)
    # len() is concrete, so exactly the magic guard and the modmul guard.
    assert len(condition) == 2
    magic, guard = condition.constraints
    assert sorted(magic.support()) == [0, 1, 2, 3]
    assert sorted(guard.support()) == [4]
    assert magic.taken_true is False  # != magic was false (seed matches)
    assert guard.taken_true is False
    assert "byte[4]" in format_expr(guard.expr)


def test_sym_bytes_bounds_the_symbolic_set():
    program = compile_source(MODMUL)
    _, condition = extract_path_condition(program, MAGIC_SEED, sym_bytes={4})
    assert len(condition) == 1
    assert condition.constraints[0].support() == {4}


def test_constraint_cap_truncates():
    source = """
fn main(input) {
    var n = input[0];
    var i = 0;
    while (i < n) { i = i + 1; }
    return i;
}
"""
    program = compile_source(source)
    _, condition = extract_path_condition(
        program, b"\x0a", max_constraints=4
    )
    assert len(condition) == 4
    assert condition.truncated


def test_path_condition_prefix_and_site_queries():
    program = compile_source(MODMUL)
    _, condition = extract_path_condition(program, MAGIC_SEED)
    guard = condition.constraints[-1]
    assert condition.prefix(guard.index) == [condition.constraints[0]]
    assert condition.at_site(guard.site) == [guard]


# -- expression evaluation -----------------------------------------------------


def test_eval_expr_agrees_with_the_run():
    program = compile_source(MODMUL)
    for data in (MAGIC_SEED, b"MAGC\xad\x00", b"zzzzzz"):
        _, condition = extract_path_condition(program, data)
        for constraint in condition:
            assert constraint.holds(_byte_at(data)) is True


def test_match_byte_fold_on_read32():
    program = compile_source(MODMUL)
    _, condition = extract_path_condition(program, MAGIC_SEED)
    magic = condition.constraints[0]
    # The comparison itself is not a fold; its read operand is.
    assert match_byte_fold(magic.expr) is None
    assert match_byte_fold(magic.expr.a) == [0, 1, 2, 3]
    assert expr_support(magic.expr) == {0, 1, 2, 3}


def test_interval_expr_is_exact_on_byte_folds():
    program = compile_source(MODMUL)
    _, condition = extract_path_condition(program, MAGIC_SEED)
    fold = condition.constraints[0].expr.a
    iv = interval_expr(fold, {})
    assert (iv.lo, iv.hi) == (0, 0xFFFFFFFF)
    from repro.analysis.interval import Interval

    pinned = interval_expr(fold, {0: Interval(0x4D, 0x4D)})
    assert (pinned.lo, pinned.hi) == (0x4D000000, 0x4DFFFFFF)


# -- the solver ----------------------------------------------------------------


def _flip_last(source, data, **kwargs):
    program = compile_source(source)
    _, condition = extract_path_condition(program, data)
    target = condition.constraints[-1]
    assignment, stats = solve_flip(
        target, condition.prefix(target.index), data, **kwargs
    )
    return program, target, assignment, stats


def test_solver_flips_nonlinear_modmul_guard():
    program, _, assignment, stats = _flip_last(MODMUL, MAGIC_SEED)
    assert assignment == {4: 173}
    assert stats.solved
    witness = apply_witness(MAGIC_SEED, assignment)
    result = execute(program, witness)
    assert result.trap is not None and "trap(1)" in result.trap.detail


def test_solver_direct_magic_equality():
    # Flipping `read32 != magic` from the failing seed is input-to-state
    # correspondence: solved by byte assignment with zero search nodes.
    program = compile_source(MODMUL)
    data = b"XXXXZZ"
    _, condition = extract_path_condition(program, data)
    target = condition.constraints[-1]
    assignment, stats = solve_flip(target, condition.prefix(target.index), data)
    assert assignment == {0: 0x4D, 1: 0x41, 2: 0x47, 3: 0x43}
    assert stats.nodes == 0
    assert execute(program, apply_witness(data, assignment)).retval != 1


def test_solver_honours_prefix_constraints():
    source = """
fn main(input) {
    var x = input[0];
    if (x > 100) {
        if (x < 120) { trap(1); }
    }
    return x;
}
"""
    data = bytes([150])  # outer true, inner false
    program, target, assignment, stats = _flip_last(source, data)
    assert assignment is not None
    # The witness must keep the outer guard true AND flip the inner one.
    assert 100 < assignment[0] < 120
    result = execute(program, apply_witness(data, assignment))
    assert result.trap is not None


def test_solver_respects_support_cap():
    program = compile_source(MODMUL)
    data = b"XXXXZZ"
    _, condition = extract_path_condition(program, data)
    target = condition.constraints[-1]  # 4-byte support
    assignment, stats = solve_flip(
        target, condition.prefix(target.index), data, max_bytes=2
    )
    assert assignment is None
    assert stats.gave_up


def test_solver_stats_cost_is_deterministic():
    _, _, one, stats_a = _flip_last(MODMUL, MAGIC_SEED)
    _, _, two, stats_b = _flip_last(MODMUL, MAGIC_SEED)
    assert one == two
    assert (stats_a.nodes, stats_a.evals) == (stats_b.nodes, stats_b.evals)
    assert stats_a.clock_cost() == stats_b.clock_cost()
    assert isinstance(stats_a, SolveStats)


# -- witness soundness (the acceptance property) -------------------------------


def _check_witnesses(program, data, max_flips=4):
    """Solve flips of every constraint; verify each witness's direction.

    Returns how many witnesses were verified.  Verification is the full
    chain: re-extract on the witness and check the first constraint at
    the target site took the flipped direction, then confirm through
    ``profile_input`` that the replay is consistent (crash state agrees).
    """
    _, condition = extract_path_condition(program, data)
    verified = 0
    for constraint in condition:
        if verified >= max_flips:
            break
        assignment, _ = solve_flip(
            constraint, condition.prefix(constraint.index), data
        )
        if assignment is None:
            continue
        witness = apply_witness(data, assignment)
        want = not constraint.taken_true
        # The solver's own prediction must hold under concrete evaluation.
        value = eval_expr(constraint.expr, _byte_at(witness))
        assert value is not None and (value != 0) == want
        result, replay = extract_path_condition(program, witness)
        # Align by constraint index: if the replay followed the same path
        # prefix, its constraint at the target's index sits at the same
        # site and MUST take the flipped direction.  A diverged prefix
        # (possible when an upstream branch fell to concrete under the
        # expression-node cap) is skipped — that incompleteness is why the
        # engine verifies every witness by replay rather than trusting it.
        aligned = next((c for c in replay if c.index == constraint.index), None)
        if aligned is not None and aligned.site == constraint.site:
            assert aligned.taken_true == want, (
                "witness did not take the predicted direction at %r"
                % (constraint.site,)
            )
            verified += 1
        profile = profile_input(program, witness)
        assert profile.crashed == (result.trap is not None)
    return verified


def test_witness_soundness_on_modmul():
    program = compile_source(MODMUL)
    assert _check_witnesses(program, MAGIC_SEED) > 0
    assert _check_witnesses(program, b"XXXXZZ") > 0


@settings(max_examples=25, deadline=None)
@given(programs(), st.binary(min_size=1, max_size=8))
def test_constraints_self_consistent_on_generated_programs(source, data):
    program = compile_source(source)
    plain = execute(program, data)
    result, condition = extract_path_condition(program, data)
    assert result.retval == plain.retval
    assert result.instr_count == plain.instr_count
    for constraint in condition:
        assert constraint.holds(_byte_at(data)) is True


@settings(max_examples=15, deadline=None)
@given(programs(), st.binary(min_size=1, max_size=6))
def test_witness_soundness_on_generated_programs(source, data):
    _check_witnesses(compile_source(source), data, max_flips=2)


def test_constraints_self_consistent_on_suite():
    inputs = (b"", b"\x00" * 8, b"MAGCabcd", bytes(range(16)))
    for name in SUITE_NAMES:
        program = get_subject(name).program
        for data in inputs:
            plain = execute(program, data)
            result, condition = extract_path_condition(program, data)
            assert result.retval == plain.retval, name
            assert result.instr_count == plain.instr_count, name
            for constraint in condition:
                assert constraint.holds(_byte_at(data)) is True, name


def test_witness_soundness_on_suite():
    # End-to-end on the real Table-I subjects: at least some flips must
    # verify across the suite (most guards are solvable at small width).
    verified = 0
    for name in SUITE_NAMES:
        program = get_subject(name).program
        verified += _check_witnesses(program, b"MAGCabcd", max_flips=2)
    assert verified > 0


def test_constraint_and_pathcondition_types_exported():
    from repro import analysis

    assert analysis.Constraint is Constraint
    assert analysis.PathCondition is PathCondition
    assert analysis.extract_path_condition is extract_path_condition
    assert analysis.SolveStats is SolveStats
    assert analysis.solve_flip is solve_flip
