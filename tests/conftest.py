"""Test-suite configuration.

Makes the repository root importable so helper modules under ``tests/``
(e.g. :mod:`tests.genprog`) resolve regardless of how pytest is invoked
(``pytest tests/`` vs ``python -m pytest``).
"""

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)
