"""Acceptance: taint-guided campaigns reach branches blind havoc misses.

Three rare-branch-heavy subjects, each guarding a trigger behind (a) a
4-byte magic header and (b) a *transformed* single-byte comparison — the
kind cmplog's input-to-state substitution cannot solve, because the value
compared is a nonlinear function of the input byte rather than the byte
itself.  Blind havoc hits such a guard with p = 1/256 per try *after*
synthesizing the header; the taint stage identifies the guard's one-byte
focus mask and enumerates it exhaustively (the sweep stage), which makes
the trigger deterministic at a budget where the blind engine finds nothing.

Same program, same seeds, same RNG seed, same tick budget — the only
difference is ``EngineConfig(use_taint=...)``.
"""

import random

import pytest

from repro.coverage.feedback import EdgeFeedback
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.lang import compile_source

BUDGET = 400_000

# x = 173: (173*3) % 251 == 17, unreachable by substituting 17 into the byte.
MODMUL = """
fn main(input) {
    if (len(input) < 5) { return 0; }
    if (read32(input, 0) != 0x4D414743) { return 1; }
    var x = input[4];
    if ((x * 3) % 251 == 17) { trap(1); }
    return 2;
}
"""

# x = 156: ((156 ^ 90) + 7) & 255 == 205.
XORADD = """
fn main(input) {
    if (len(input) < 5) { return 0; }
    if (read32(input, 0) != 0x4D414743) { return 1; }
    var x = input[4];
    if ((((x ^ 90) + 7) & 255) == 205) { trap(2); }
    return 2;
}
"""

# x = 199: both halves of a short-circuit conjunction over shifted bits.
SHIFTPAIR = """
fn main(input) {
    if (len(input) < 5) { return 0; }
    if (read32(input, 0) != 0x4D414743) { return 1; }
    var x = input[4];
    if (x >> 1 == 99 && (x & 1) == 1) { trap(3); }
    return 2;
}
"""

SEEDS = [b"MAGC\x00\x00", b"nope"]


def _run(source, use_taint, seed=0):
    program = compile_source(source)
    engine = FuzzEngine(
        program,
        EdgeFeedback(),
        list(SEEDS),
        random.Random(seed),
        # taint_targets=8 lets one cycle's target rotation cover every
        # conditional in these small subjects; it has no effect when
        # use_taint is off, so both campaigns share one config.
        EngineConfig(
            max_input_len=16,
            exec_instr_budget=10_000,
            use_taint=use_taint,
            taint_targets=8,
        ),
    )
    return engine.run(BUDGET)


def _bugs(engine):
    return {record.bug_id() for record in engine.unique_crashes.values()}


@pytest.mark.parametrize(
    "source,code",
    [(MODMUL, 1), (XORADD, 2), (SHIFTPAIR, 3)],
    ids=["modmul", "xoradd", "shiftpair"],
)
def test_taint_guided_finds_trigger_blind_misses(source, code):
    taint = _run(source, use_taint=True)
    blind = _run(source, use_taint=False)
    assert blind.clock.ticks >= BUDGET and taint.clock.ticks >= BUDGET

    taint_bugs = _bugs(taint)
    assert any(kind == "assertion-failure" for _, _, kind in taint_bugs), (
        "taint-guided campaign missed the trigger: %r" % taint_bugs
    )
    assert not any(
        kind == "assertion-failure" for _, _, kind in _bugs(blind)
    ), "blind baseline unexpectedly found the trigger; tighten the budget"

    # The guided engine reached coverage the blind one missed outright
    # (virgin-map cells observed only under taint guidance).
    taint_cov = set(taint.virgin.bits) | set(taint.crash_virgin.bits)
    blind_cov = set(blind.virgin.bits) | set(blind.crash_virgin.bits)
    assert taint_cov - blind_cov


def test_taint_guided_strictly_more_bugs_across_subjects():
    """Aggregate form of the acceptance criterion: 3/3 subjects, one budget."""
    found_by_taint = 0
    found_by_blind = 0
    for source in (MODMUL, XORADD, SHIFTPAIR):
        if any(k == "assertion-failure" for _, _, k in _bugs(_run(source, True))):
            found_by_taint += 1
        if any(k == "assertion-failure" for _, _, k in _bugs(_run(source, False))):
            found_by_blind += 1
    assert found_by_taint == 3
    assert found_by_blind == 0
