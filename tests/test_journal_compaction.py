"""Journal compaction: snapshot + tail replay must equal the full fold.

Compaction folds settled history into a self-verifying snapshot file and
prunes the records the *previous* snapshot already covers (deletion lags
one snapshot, and the two newest snapshots stay on disk).  The contract
these tests pin down:

- recovery over a compacted root reconstructs the exact
  :class:`~repro.service.jobs.FoldState` a full-history fold would —
  byte-for-byte, via ``to_dict()`` — no matter how many compactions and
  post-compaction appends interleave;
- a torn newest snapshot is quarantined and recovery falls back to the
  previous snapshot *losslessly*, because every record beyond it is
  still on disk;
- the multi-writer invariants survive compaction: orphan sequence
  claims are harmless gaps, duplicate sequences resolve to the highest
  fence, and a displaced holder's late (fence-regressing) write is
  quarantined, not applied.
"""

import hashlib
import json
import os

import pytest

from repro.service.jobs import fold_state
from repro.service.journal import (
    JobJournal,
    JournalRecord,
    parse_record_name,
    parse_snapshot_name,
    record_name,
)

SPEC = {
    "subject": "gdk",
    "config": "path",
    "run_seed": 0,
    "tenant": "default",
    "priority": 0,
    "budget_ticks": 1000,
    "max_retries": 2,
    "require_checkpoint": False,
}


def _spec(index):
    spec = dict(SPEC, job_id="j%06d" % index, index=index)
    return spec


class History:
    """Shadow copy of every record ever committed, captured pre-prune.

    Compaction deletes covered records from disk, so the full-history
    reference fold has to be captured *as records land*.  ``sync`` reads
    any record files not yet seen (including the ``compact`` markers the
    journal appends on its own) straight from disk.
    """

    def __init__(self, journal):
        self.journal = journal
        self.records = {}

    def sync(self):
        for name in os.listdir(self.journal.dir):
            parsed = parse_record_name(name)
            if parsed is None or parsed[0] in self.records:
                continue
            with open(os.path.join(self.journal.dir, name), "rb") as handle:
                data = json.loads(handle.read().decode("utf-8"))
            self.records[parsed[0]] = JournalRecord(
                data["seq"], data["job"], data["event"],
                data["payload"], data.get("fence", 0),
            )

    def append(self, job, event, payload=None):
        self.journal.append(job, event, payload)
        self.sync()

    def full_fold(self):
        return fold_state(
            [self.records[seq] for seq in sorted(self.records)]
        )


def _job_lifecycle(history, index, fate="done"):
    job = "j%06d" % index
    history.append(job, "submit", _spec(index))
    history.append(job, "start", {"attempt": 1, "pid": 100 + index})
    if fate == "done":
        history.append(job, "done", {"summary": {"execs": 7 * (index + 1)}})
    elif fate == "cancel":
        history.append(job, "cancel", {})
    return job


def _disk_record_seqs(journal):
    seqs = set()
    for name in os.listdir(journal.dir):
        parsed = parse_record_name(name)
        if parsed is not None:
            seqs.add(parsed[0])
    return seqs


def _snapshots_on_disk(journal):
    return sorted(
        name for name in os.listdir(journal.dir)
        if parse_snapshot_name(name) is not None
    )


def test_snapshot_plus_tail_replay_equals_full_history_fold(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False, fence=1)
    history = History(journal)
    history.append(None, "epoch", {"epoch": 0})
    _job_lifecycle(history, 0)
    _job_lifecycle(history, 1, fate="cancel")
    journal.compact()
    history.sync()
    # First compaction deletes nothing: there is no previous snapshot
    # whose coverage makes any record safely redundant.
    assert _disk_record_seqs(journal) == set(history.records)

    _job_lifecycle(history, 2)
    history.append("j000003", "submit", _spec(3))  # left pending
    journal.compact()
    history.sync()
    # Second compaction prunes what snapshot #1 covered — records are
    # actually gone from disk, yet the fold must not notice.
    assert _disk_record_seqs(journal) != set(history.records)
    assert len(_snapshots_on_disk(journal)) == 2

    history.append("j000003", "start", {"attempt": 1, "pid": 999})
    history.append("j000003", "done", {"summary": {"execs": 3}})

    state, quarantined = JobJournal(str(tmp_path), fsync=False).recover()
    assert quarantined == []
    assert state.to_dict() == history.full_fold().to_dict()
    assert sorted(state.jobs) == ["j%06d" % i for i in range(4)]
    assert state.jobs["j000001"].state == "cancelled"
    assert state.jobs["j000003"].state == "succeeded"


def test_third_compaction_keeps_only_two_snapshots(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False, fence=1)
    history = History(journal)
    for index in range(3):
        _job_lifecycle(history, index)
        journal.compact()
        history.sync()
    assert len(_snapshots_on_disk(journal)) == 2
    state, quarantined = JobJournal(str(tmp_path), fsync=False).recover()
    assert quarantined == []
    assert state.to_dict() == history.full_fold().to_dict()


def test_torn_newest_snapshot_falls_back_to_previous_losslessly(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False, fence=1)
    history = History(journal)
    _job_lifecycle(history, 0)
    journal.compact()
    _job_lifecycle(history, 1)
    journal.compact()
    history.sync()
    newest = _snapshots_on_disk(journal)[-1]
    with open(os.path.join(journal.dir, newest), "r+b") as handle:
        handle.truncate(20)  # torn mid-write: hash can no longer match

    # A healing writer stamps the fence it observed (compact_offline reads
    # the FENCE high-water mark), so its records do not look regressive.
    fresh = JobJournal(str(tmp_path), fsync=False, fence=1)
    state, quarantined = fresh.recover()
    assert any("snapshot hash mismatch" in reason for _, reason in quarantined)
    # Lossless: deletion lagged one snapshot, so every record beyond the
    # *previous* snapshot is still on disk and the fold is unchanged.
    assert state.to_dict() == history.full_fold().to_dict()
    # ...and the next compaction heals: a fresh snapshot replaces the
    # quarantined one.
    fresh.compact()
    history.sync()
    state2, quarantined2 = JobJournal(str(tmp_path), fsync=False).recover()
    assert quarantined2 == []
    assert state2.jobs.keys() == state.jobs.keys()


def test_orphan_seq_claim_is_a_harmless_gap(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False, fence=1)
    history = History(journal)
    _job_lifecycle(history, 0)
    # A writer claims the next seq and dies before committing the record.
    orphan = journal._claim_seq()
    _job_lifecycle(history, 1)
    state, quarantined = JobJournal(str(tmp_path), fsync=False).recover()
    assert quarantined == []
    assert orphan not in _disk_record_seqs(journal)
    assert state.to_dict() == history.full_fold().to_dict()
    # A new writer adopts past the orphan claim, never colliding with it.
    assert JobJournal(str(tmp_path), fsync=False)._adopted_seq() > orphan


def test_duplicate_seq_resolves_to_the_highest_fence(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False, fence=2)
    journal.append("j000000", "submit", _spec(0))

    def forge(seq, fence, note):
        body = json.dumps(
            {
                "version": 1,
                "seq": seq,
                "job": "j000000",
                "event": "start",
                "payload": {"attempt": 1, "note": note},
                "fence": fence,
            },
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        digest = hashlib.sha1(body).hexdigest()
        with open(os.path.join(journal.dir, record_name(seq, digest)),
                  "wb") as handle:
            handle.write(body)

    # A displaced fence-1 holder and the live fence-2 holder both landed a
    # record under seq 1 (the displaced one outraced the claim protocol).
    forge(1, 1, "displaced")
    forge(1, 2, "live")
    records, quarantined = JobJournal(str(tmp_path), fsync=False).scan()
    assert [(name_reason[1]) for name_reason in quarantined] == [
        "duplicate sequence"
    ]
    winner = [record for record in records if record.seq == 1]
    assert len(winner) == 1 and winner[0].fence == 2
    assert winner[0].payload["note"] == "live"


def test_fence_regression_is_quarantined_even_after_compaction(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False, fence=3)
    history = History(journal)
    _job_lifecycle(history, 0)
    journal.compact()
    history.sync()
    # A fenced predecessor (fence 2) wakes up and appends a late write.
    stale = JobJournal(str(tmp_path), fsync=False, fence=2)
    stale.append("j000000", "cancel", {})
    state, quarantined = JobJournal(str(tmp_path), fsync=False).recover()
    assert any("fenced late write" in reason for _, reason in quarantined)
    assert state.jobs["j000000"].state == "succeeded"  # not cancelled
    assert state.to_dict() == history.full_fold().to_dict()


def test_readonly_recover_leaves_a_torn_snapshot_in_place(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False, fence=1)
    history = History(journal)
    _job_lifecycle(history, 0)
    journal.compact()
    history.sync()
    newest = _snapshots_on_disk(journal)[-1]
    with open(os.path.join(journal.dir, newest), "r+b") as handle:
        handle.truncate(10)
    state, quarantined = JobJournal(str(tmp_path), fsync=False).recover(
        quarantine=False
    )
    assert any("snapshot" in reason for _, reason in quarantined)
    assert newest in os.listdir(journal.dir)  # inspection never mutates
    assert state.to_dict() == history.full_fold().to_dict()
