"""Byte-flip soundness properties for the taint subsystem (DESIGN §12).

The property the masked-mutation stage depends on: **flipping an input byte
outside a comparison site's recorded sound mask never changes that site's
observed operands.**  ``sound_mask`` = the site's operand masks plus the
run's control taint; a byte outside it provably cannot steer execution onto
a different path, so the site fires the same number of times with the same
operand values.

Checked two ways: on random structured MiniC programs that read several
input bytes (hypothesis), and on all 18 benchmark subjects' seed corpora
with deterministic flip offsets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import compile_source
from repro.subjects import all_subject_names, get_subject
from repro.taint import taint_execute

# A pair cap far above anything these bounded programs can hit, so the
# sampled operand pairs are the *complete* observation sequence per site.
FULL_PAIRS = 1 << 20

INPUT_VARS = ["in0", "in1", "in2", "in3"]
VARS = ["a", "b"] + INPUT_VARS


@st.composite
def _expressions(draw, depth=0):
    choice = draw(st.integers(0, 4 if depth < 2 else 1))
    if choice == 0:
        return str(draw(st.integers(0, 100)))
    if choice == 1:
        return draw(st.sampled_from(VARS))
    left = draw(_expressions(depth=depth + 1))
    right = draw(_expressions(depth=depth + 1))
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return "(%s %s %s)" % (left, op, right)
    if choice == 3:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return "(%s %s %s)" % (left, op, right)
    op = draw(st.sampled_from(["&&", "||"]))
    return "(%s %s %s)" % (left, op, right)


@st.composite
def _statements(draw, depth=0):
    kind = draw(st.integers(0, 3 if depth < 2 else 1))
    if kind == 0:
        var = draw(st.sampled_from(["a", "b"]))
        return "%s = %s;" % (var, draw(_expressions()))
    if kind == 1:
        return "acc = (acc + %s) & 255;" % draw(st.sampled_from(VARS))
    if kind == 2:
        cond = draw(_expressions())
        then = draw(_blocks(depth=depth + 1))
        if draw(st.booleans()):
            other = draw(_blocks(depth=depth + 1))
            return "if (%s) { %s } else { %s }" % (cond, then, other)
        return "if (%s) { %s }" % (cond, then)
    body = draw(_blocks(depth=depth + 1))
    limit = draw(st.integers(1, 4))
    return "for (var i = 0; i < %d; i = i + 1) { %s }" % (limit, body)


@st.composite
def _blocks(draw, depth=0):
    count = draw(st.integers(1, 3 if depth else 4))
    return " ".join(draw(_statements(depth=depth)) for _ in range(count))


@st.composite
def taint_programs(draw):
    """MiniC main() reading input bytes 0..3 into variables the body mixes."""
    body = draw(_blocks())
    return (
        "fn main(input) {\n"
        "    var in0 = 0; var in1 = 0; var in2 = 0; var in3 = 0;\n"
        "    if (len(input) > 3) {\n"
        "        in0 = input[0]; in1 = input[1];\n"
        "        in2 = input[2]; in3 = input[3];\n"
        "    }\n"
        "    var a = 1; var b = 2; var acc = 0;\n"
        "    %s\n"
        "    return acc + a + b;\n"
        "}\n" % body
    )


def _observations(program, data, **kwargs):
    """site -> (hits, complete operand-pair sequence) plus the TaintMap."""
    _, tmap = taint_execute(program, data, pair_cap=FULL_PAIRS, **kwargs)
    obs = {
        site: (rec.hits, list(rec.pairs)) for site, rec in tmap.cmp_sites.items()
    }
    return obs, tmap


def _assert_flip_sound(program, data, flip_offsets, **kwargs):
    base_obs, base_map = _observations(program, data, **kwargs)
    for off in flip_offsets:
        flipped = data[:off] + bytes((data[off] ^ 0xFF,)) + data[off + 1 :]
        flip_obs = None  # computed lazily: many offsets taint nothing
        for site, (hits, pairs) in base_obs.items():
            if off in base_map.sound_mask(site):
                continue
            if flip_obs is None:
                flip_obs, _ = _observations(program, flipped, **kwargs)
            assert site in flip_obs, (site, off)
            got_hits, got_pairs = flip_obs[site]
            assert got_hits == hits, (site, off)
            assert got_pairs == pairs, (site, off)


@given(taint_programs(), st.binary(min_size=4, max_size=8))
@settings(max_examples=25, deadline=None)
def test_byte_flip_outside_sound_mask_preserves_operands(source, data):
    program = compile_source(source)
    _assert_flip_sound(program, data, range(len(data)))


@given(taint_programs())
@settings(max_examples=10, deadline=None)
def test_sound_mask_subset_of_input(source):
    program = compile_source(source)
    data = bytes(range(8))
    _, tmap = taint_execute(program, data)
    valid = set(range(len(data)))
    assert tmap.control <= valid
    for site in tmap.cmp_sites:
        assert tmap.sound_mask(site) <= valid


def test_byte_flip_soundness_on_subject_seeds():
    """Deterministic flips over every benchmark subject's seed corpus."""
    for name in all_subject_names():
        subject = get_subject(name)
        kwargs = dict(
            instr_budget=subject.exec_instr_budget,
            call_depth_limit=subject.call_depth_limit,
        )
        for seed in subject.seeds:
            if not seed:
                continue
            # A bounded, deterministic sample of offsets per seed.
            offsets = sorted({0, len(seed) // 2, len(seed) - 1, 7 % len(seed)})
            _assert_flip_sound(subject.program, seed, offsets, **kwargs)
