"""Campaign-service units: journal, fold, dedupe, admission, job API, CLI.

The fault-injected recovery proofs (kill-and-restart determinism, torn
journals, heartbeat stalls) live in ``test_service_recovery.py``; this file
covers the deterministic building blocks and one clean end-to-end serve.
"""

import asyncio
import json
import os

import pytest

from repro.cli import main as cli_main
from repro.fuzzer.store import StoreLockError, atomic_write_bytes
from repro.fuzzer.supervisor import failure_category
from repro.service import (
    AdmissionError,
    CampaignService,
    CrashDedupe,
    DegradeReason,
    HeartbeatTimeoutError,
    JobSpec,
    JobTimeoutError,
    OverloadError,
    TenantPolicy,
    WallBudgetError,
    list_job_crashes,
    load_job_table,
    submit_offline,
)
from repro.service.journal import JobJournal, parse_record_name, record_name
from repro.service.jobs import (
    CANCELLED,
    PENDING,
    RUNNING,
    SUCCEEDED,
    JobRecord,
    WorkerStallError,
    apply_event,
    fold_records,
)

BUDGET = 60_000


# -- journal -------------------------------------------------------------------


def test_record_name_roundtrip():
    name = record_name(7, "ab" * 20)
    assert parse_record_name(name) == (7, "ab" * 20)
    assert parse_record_name("rec:zz,hash:x") is None
    assert parse_record_name("id:000001,hash:x") is None
    assert parse_record_name("garbage") is None


def test_journal_append_scan_roundtrip(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False)
    journal.append("j0", "submit", {"subject": "gdk"})
    journal.append("j0", "start", {"attempt": 0})
    journal.append(None, "epoch", {"epoch": 0})
    fresh = JobJournal(str(tmp_path), fsync=False)
    records, quarantined = fresh.scan()
    assert not quarantined
    assert [(r.seq, r.job, r.event) for r in records] == [
        (0, "j0", "submit"),
        (1, "j0", "start"),
        (2, None, "epoch"),
    ]
    assert records[0].payload == {"subject": "gdk"}
    # The scan adopts the surviving sequence: appends continue it.
    assert fresh.append("j0", "done", {}) == 3


def test_journal_scan_quarantines_torn_record(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False)
    journal.append("j0", "submit", {})
    seq = journal.append("j0", "start", {})
    journal.append("j0", "done", {})
    # Tear the middle record the way a lost write does.
    (name,) = [
        n for n in os.listdir(journal.dir)
        if n.startswith("rec:%08d" % seq)
    ]
    with open(os.path.join(journal.dir, name), "r+b") as handle:
        handle.truncate(6)
    records, quarantined = JobJournal(str(tmp_path), fsync=False).scan()
    assert [r.seq for r in records] == [0, 2]
    assert quarantined == [(name, "hash mismatch (torn?)")]
    assert os.path.exists(os.path.join(journal.quarantine_dir, name))


def test_journal_readonly_scan_leaves_damage_in_place(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False)
    journal.append("j0", "submit", {})
    bogus = os.path.join(journal.dir, "rec:00000009,hash:deadbeef")
    atomic_write_bytes(bogus, b"not the right bytes", fsync=False)
    records, quarantined = JobJournal(str(tmp_path), fsync=False).scan(
        quarantine=False
    )
    assert len(records) == 1 and len(quarantined) == 1
    assert os.path.exists(bogus)  # read-only mode never mutates


def test_journal_scan_ignores_tmp_stragglers(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False)
    journal.append("j0", "submit", {})
    straggler = "rec:00000001,hash:%s.tmp.123" % ("0" * 40)
    with open(os.path.join(journal.dir, straggler), "wb") as fh:
        fh.write(b"half-written")
    records, quarantined = JobJournal(str(tmp_path), fsync=False).scan()
    assert len(records) == 1 and not quarantined


# -- the fold ------------------------------------------------------------------


def _spec(job_id="j0", **kwargs):
    kwargs.setdefault("subject", "gdk")
    return JobSpec(job_id, **kwargs)


def test_apply_event_healthy_lifecycle():
    jobs = {}
    assert apply_event(jobs, "j0", "submit", _spec().to_dict()) == 0
    assert jobs["j0"].state == PENDING
    assert apply_event(jobs, "j0", "start", {"attempt": 0, "pid": 42}) == 0
    assert jobs["j0"].state == RUNNING and jobs["j0"].pid == 42
    assert apply_event(jobs, "j0", "done", {"summary": {"execs": 1}}) == 0
    assert jobs["j0"].state == SUCCEEDED
    assert jobs["j0"].summary == {"execs": 1}
    assert jobs["j0"].terminal()


def test_apply_event_conflicts_never_mutate_terminal_jobs():
    jobs = {}
    apply_event(jobs, "j0", "submit", _spec().to_dict())
    apply_event(jobs, "j0", "start", {})
    apply_event(jobs, "j0", "done", {"summary": None})
    # Duplicate terminal transition: counted, ignored.
    assert apply_event(jobs, "j0", "done", {"summary": None}) == 1
    assert apply_event(jobs, "j0", "degrade", {"category": "x"}) == 1
    assert jobs["j0"].state == SUCCEEDED
    # Events that do not type-check against the current state.
    assert apply_event(jobs, "j1", "done", {}) == 1  # never submitted
    assert apply_event(jobs, "j0", "submit", _spec().to_dict()) == 1
    assert apply_event(jobs, "j0", "nonsense", {}) == 1


def test_apply_event_recover_requeues_without_retry_charge():
    jobs = {}
    apply_event(jobs, "j0", "submit", _spec().to_dict())
    apply_event(jobs, "j0", "start", {})
    apply_event(jobs, "j0", "retry", {"retries_used": 1, "reason": "stall"})
    assert jobs["j0"].state == PENDING and jobs["j0"].retries_used == 1
    apply_event(jobs, "j0", "start", {})
    assert apply_event(jobs, "j0", "recover", {"note": "restart"}) == 0
    record = jobs["j0"]
    assert record.state == PENDING
    assert record.retries_used == 1  # recovery is free; retries are not
    assert record.attempts == 2


def test_fold_records_counts_epochs_and_conflicts(tmp_path):
    journal = JobJournal(str(tmp_path), fsync=False)
    journal.append(None, "epoch", {})
    journal.append("j0", "submit", _spec().to_dict())
    journal.append("j0", "start", {})
    journal.append("j0", "cancel", {})
    journal.append("j0", "done", {})  # after cancel: conflict
    journal.append(None, "epoch", {})
    records, _ = JobJournal(str(tmp_path), fsync=False).scan()
    jobs, epochs, conflicts = fold_records(records)
    assert epochs == 2 and conflicts == 1
    assert jobs["j0"].state == CANCELLED


def test_degrade_reason_and_spec_roundtrip():
    reason = DegradeReason("retry-budget", "3 strikes")
    assert DegradeReason.from_dict(reason.to_dict()).detail == "3 strikes"
    spec = _spec("j9", run_seed=3, tenant="sec", priority=2, index=9)
    clone = JobSpec.from_dict(spec.to_dict())
    assert clone.to_dict() == spec.to_dict()
    record = JobRecord(spec)
    snap = record.snapshot()
    assert snap["job"] == "j9" and snap["state"] == PENDING


def test_timeout_errors_classify_as_deadline():
    assert issubclass(HeartbeatTimeoutError, JobTimeoutError)
    assert issubclass(WallBudgetError, WorkerStallError)
    assert failure_category(HeartbeatTimeoutError(0, "quiet")) == "deadline"
    assert failure_category(WallBudgetError(0, "slow")) == "deadline"


# -- dedupe --------------------------------------------------------------------


def _fake_crash(jobs_root, job, seq, sig):
    crash_dir = os.path.join(jobs_root, job, "store", "main", "crashes")
    os.makedirs(crash_dir, exist_ok=True)
    name = "id:%06d,sig:%s,hash:%s" % (seq, sig, "0" * 40)
    with open(os.path.join(crash_dir, name), "wb") as handle:
        handle.write(b"boom")


def test_dedupe_counts_and_job_attribution(tmp_path):
    root = str(tmp_path)
    _fake_crash(root, "j0", 0, "aaaa")
    _fake_crash(root, "j0", 1, "bbbb")
    _fake_crash(root, "j1", 0, "aaaa")
    dedupe = CrashDedupe().rebuild(root)
    assert dedupe.unique_signatures() == ["aaaa", "bbbb"]
    assert dedupe.counts() == {"aaaa": 2, "bbbb": 1}
    assert dedupe.jobs_for("aaaa") == ["j0", "j1"]
    assert dedupe.summary() == {"unique": 2, "total": 3}


def test_dedupe_rescan_is_idempotent(tmp_path):
    root = str(tmp_path)
    _fake_crash(root, "j0", 0, "aaaa")
    dedupe = CrashDedupe().rebuild(root)
    dedupe.rescan_job(root, "j0")
    dedupe.rescan_job(root, "j0")  # recounting must not inflate
    assert dedupe.counts() == {"aaaa": 1}
    _fake_crash(root, "j0", 1, "aaaa")
    assert dedupe.rescan_job(root, "j0").counts() == {"aaaa": 2}
    assert CrashDedupe().rebuild(root).counts() == dedupe.counts()


# -- admission & load shedding -------------------------------------------------


def test_tenant_pending_quota_refuses_admission(tmp_path):
    with CampaignService(
        str(tmp_path),
        fsync=False,
        policies=(TenantPolicy("default", max_pending=1),),
    ) as service:
        service.submit("gdk", budget_ticks=BUDGET)
        with pytest.raises(AdmissionError):
            service.submit("gdk", run_seed=1, budget_ticks=BUDGET)
        # Another tenant's quota is its own.
        service.submit("gdk", run_seed=2, tenant="sec", budget_ticks=BUDGET)


def test_overload_breaker_sheds_low_priority_only(tmp_path):
    with CampaignService(
        str(tmp_path), fsync=False, shed_high=2, shed_low=0
    ) as service:
        service.submit("gdk", budget_ticks=BUDGET)
        service.submit("gdk", run_seed=1, budget_ticks=BUDGET)
        assert service.breaker_open
        with pytest.raises(OverloadError):
            service.submit("gdk", run_seed=2, budget_ticks=BUDGET)
        # High-priority traffic rides through an open breaker.
        job_id = service.submit(
            "gdk", run_seed=3, priority=1, budget_ticks=BUDGET
        )
        assert service.status(job_id)["state"] == PENDING
        # Hysteresis: the breaker closes only once the backlog drains.
        for record in list(service.jobs.values()):
            service.cancel(record.spec.job_id)
        service._update_breaker()
        assert not service.breaker_open


def test_cancel_is_terminal_and_idempotent(tmp_path):
    with CampaignService(str(tmp_path), fsync=False) as service:
        job_id = service.submit("gdk", budget_ticks=BUDGET)
        assert service.cancel(job_id) is True
        assert service.cancel(job_id) is False
        assert service.status(job_id)["state"] == CANCELLED
        summary = asyncio.run(service.run_until_idle())
        assert summary["states"] == {CANCELLED: 1}
    # The cancellation survives the fold.
    jobs, _, conflicts, _ = load_job_table(str(tmp_path))
    assert jobs[job_id].state == CANCELLED and conflicts == 0


def test_submit_offline_feeds_the_next_service(tmp_path):
    root = str(tmp_path)
    job_id = submit_offline(root, subject="gdk", budget_ticks=BUDGET)
    assert job_id == "j000000"
    assert submit_offline(root, subject="gdk", run_seed=1) == "j000001"
    jobs, epochs, conflicts, quarantined = load_job_table(root)
    assert sorted(jobs) == ["j000000", "j000001"]
    assert jobs[job_id].state == PENDING
    assert (epochs, conflicts, quarantined) == (0, 0, [])


def test_submit_offline_against_a_live_root_becomes_an_intake_request(tmp_path):
    root = str(tmp_path)
    with CampaignService(root, fsync=False) as service:
        # The live daemon owns the lock, so the submission travels as a
        # request file; the service's intake pump admits it.
        nonce = submit_offline(root, subject="gdk")
        assert nonce.startswith("req-")
        service._pump_intake()
        assert service.handled_requests[nonce] == "j000000"
        assert "j000000" in service.jobs
    # Lock released: the offline path journals directly again.
    assert submit_offline(root, subject="gdk") == "j000001"


# -- one clean end-to-end serve ------------------------------------------------


def test_service_runs_jobs_to_success_and_dedupes_crashes(tmp_path):
    root = str(tmp_path)
    with CampaignService(root, max_workers=2, fsync=False) as service:
        first = service.submit("gdk", budget_ticks=BUDGET)
        second = service.submit("mp3gain", budget_ticks=BUDGET)
        summary = asyncio.run(service.run_until_idle())
        assert summary["states"] == {SUCCEEDED: 2}
        assert service.fold_conflicts == 0
        snap = service.status(first)
        assert snap["attempts"] == 1 and snap["retries_used"] == 0
        assert snap["summary"]["crash_sigs"]
        crashes = service.fetch_crashes(first)
        assert crashes and all(c["sig"] for c in crashes)
        assert crashes[0]["triage"] is not None
        # The live dedupe index equals a cold rebuild from disk.
        disk = CrashDedupe().rebuild(service.jobs_dir).counts()
        assert service.crash_signatures() == disk
        assert set(service.dedupe.jobs_for(crashes[0]["sig"])) >= {first}
    # The journal fold reconstructs the same terminal table.
    jobs, epochs, conflicts, _ = load_job_table(root)
    assert epochs == 1 and conflicts == 0
    assert {j: r.state for j, r in jobs.items()} == {
        first: SUCCEEDED, second: SUCCEEDED,
    }
    offline = list_job_crashes(os.path.join(root, "jobs"), first)
    assert [c["sig"] for c in offline] == [c["sig"] for c in crashes]


# -- CLI -----------------------------------------------------------------------


def test_cli_serve_and_job_roundtrip(tmp_path, capsys):
    root = str(tmp_path / "svc")
    status = cli_main([
        "serve", root, "--submit", "gdk", "--no-fsync",
        "--budget-ticks", str(BUDGET),
    ])
    out = capsys.readouterr().out
    assert status == 0
    assert "submitted j000000" in out
    assert "1 succeeded" in out
    assert "deduped crash signatures" in out

    status = cli_main(["job", root, "status", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 0
    assert payload["conflicts"] == 0 and payload["epochs"] == 1
    assert payload["jobs"][0]["state"] == SUCCEEDED

    status = cli_main(["job", root, "crashes", "j000000"])
    out = capsys.readouterr().out
    assert status == 0 and "sig:" in out

    status = cli_main([
        "job", root, "submit", "mp3gain", "--tenant", "sec",
        "--budget-ticks", str(BUDGET),
    ])
    out = capsys.readouterr().out
    assert status == 0 and "journaled j000001" in out
    # The next serve picks the offline submission up and runs it.
    status = cli_main(["serve", root, "--no-fsync"])
    out = capsys.readouterr().out
    assert status == 0 and "2 succeeded" in out


def test_cli_serve_rejects_bad_specs(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["serve", str(tmp_path), "--submit", "nosuchsubject"])
    with pytest.raises(SystemExit):
        cli_main(["serve", str(tmp_path), "--submit", "gdk:nosuchconfig"])
    with pytest.raises(SystemExit):
        cli_main(["serve", str(tmp_path), "--tenant", "broken"])


def test_cli_job_status_unknown_job(tmp_path):
    submit_offline(str(tmp_path), subject="gdk")
    with pytest.raises(SystemExit):
        cli_main(["job", str(tmp_path), "status", "j999999"])
    with pytest.raises(SystemExit):
        cli_main(["job", str(tmp_path), "crashes", "j999999"])
