"""Two hosts, one root: lease steals, fencing, live intake — the ISSUE, proven.

``REPRO_HOST`` makes two processes on one filesystem look like distinct
hosts, so every cross-host behavior is testable locally: a standby must
not steal an unexpired lease, must steal an expired one, and the fenced
predecessor's late journal writes must be quarantined — never applied.

The acceptance matrix at the bottom kills actor A (host A) at injected
journal-commit points and lets actor B (host B) take over through lease
expiry.  Exactly-once is asserted structurally: every submitted job
reaches a terminal state with zero fold conflicts (no duplicate terminal
transitions), service epochs count both lives, and the dedupe index
matches a cold disk rebuild.
"""

import asyncio
import os
import re
import subprocess
import sys

import pytest

from repro.fuzzer import faultinject
from repro.fuzzer.supervisor import RestartPolicy
from repro.service import CampaignService, CrashDedupe
from repro.service.jobs import CANCELLED, SUCCEEDED
from repro.service.journal import JobJournal
from repro.service.lease import LeaseLostError, read_fence
from repro.service import intake
from repro.service.orchestrator import load_service_state

pytestmark = pytest.mark.faultinject

BUDGET = 20_000
TTL = 1.0
RETRIES = RestartPolicy(max_restarts=4, backoff_base=0.05, backoff_max=0.5)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Child actor: one service life on ROOT under REPRO_HOST, with a lease.
# Submits the two-job scenario only when the journal holds nothing yet.
# Exits 75 when fenced (mirroring the serve CLI), the fault plan's kill
# exit code when killed, 0 when it drained the backlog.
CHILD = """
import asyncio, sys
root, spec, standby = sys.argv[1], sys.argv[2], float(sys.argv[3])
from repro.fuzzer import faultinject
if spec != "-":
    faultinject.install(spec)
from repro.fuzzer.supervisor import RestartPolicy
from repro.service import CampaignService
from repro.service.lease import LeaseLostError
svc = CampaignService(
    root, max_workers=2, fsync=False,
    restart_policy=RestartPolicy(
        max_restarts=4, backoff_base=0.05, backoff_max=0.5
    ),
    lease_ttl=%(ttl)r, standby_wait=standby,
)
try:
    if not svc.jobs:
        svc.submit("gdk", budget_ticks=%(budget)d)
        svc.submit("mp3gain", budget_ticks=%(budget)d)
    asyncio.run(svc.run_until_idle())
    print("COMMITS=%%d" %% svc.journal._commits)
except LeaseLostError:
    print("FENCED")
    sys.exit(75)
finally:
    svc.close()
""" % {"ttl": TTL, "budget": BUDGET}


@pytest.fixture(autouse=True)
def no_leftover_faults():
    faultinject.clear()
    yield
    faultinject.clear()


def _run_actor(root, host, spec, standby=0.0):
    env = dict(os.environ)
    env.pop(faultinject.ENV_VAR, None)
    env["REPRO_HOST"] = host
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src")]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    return subprocess.run(
        [sys.executable, "-c", CHILD, root, spec or "-", str(standby)],
        capture_output=True,
        text=True,
        env=env,
        timeout=240,
    )


# -- lease steals and fencing, in-process --------------------------------------


def test_standby_steals_only_after_expiry_and_fences_the_holder(
    tmp_path, monkeypatch
):
    root = str(tmp_path)
    monkeypatch.setenv("REPRO_HOST", "hostA")
    first = CampaignService(root, fsync=False, lease_ttl=30.0)
    try:
        first.submit("gdk", budget_ticks=BUDGET)
        assert first.lease.epoch == 1 and read_fence(root) == 1

        monkeypatch.setenv("REPRO_HOST", "hostB")
        from repro.fuzzer.store import StoreLockError

        with pytest.raises(StoreLockError):  # unexpired foreign lease
            CampaignService(root, fsync=False, lease_ttl=30.0)

        # The holder (still hostA from its own point of view) goes silent.
        monkeypatch.setenv("REPRO_HOST", "hostA")
        first.lease.force_expire()
        monkeypatch.setenv("REPRO_HOST", "hostB")
        second = CampaignService(root, fsync=False, lease_ttl=30.0)
        try:
            assert second.lease.epoch == 2 and read_fence(root) == 2
            # The displaced holder's next journal write dies typed at the
            # lease check — nothing of it reaches disk.
            with pytest.raises(LeaseLostError):
                first.submit("mp3gain", budget_ticks=BUDGET)
            # The successor recovered the predecessor's submission intact.
            assert sorted(second.jobs) == ["j000000"]
        finally:
            second.close()
    finally:
        first.close()


def test_predecessors_late_write_is_quarantined_not_applied(
    tmp_path, monkeypatch
):
    root = str(tmp_path)
    monkeypatch.setenv("REPRO_HOST", "hostA")
    first = CampaignService(root, fsync=False, lease_ttl=30.0)
    first.submit("gdk", budget_ticks=BUDGET)
    first.lease.force_expire()
    first.close()

    monkeypatch.setenv("REPRO_HOST", "hostB")
    service = CampaignService(root, fsync=False, lease_ttl=30.0)
    try:
        # A fenced predecessor that bypassed its lease check (the residual
        # verify-then-write window) lands a stale-fence record directly.
        JobJournal(root, fsync=False, fence=1).append("j000000", "cancel", {})
        service._pump_intake()
        assert service.jobs["j000000"].state != CANCELLED
        quarantine = os.listdir(service.journal.quarantine_dir)
        assert any(name.startswith("rec:") for name in quarantine)
        # ...and a restart folds the same view: the quarantined record
        # stays quarantined, the job table is unchanged.
        state, _, _ = load_service_state(root)
        assert state.jobs["j000000"].state != CANCELLED
    finally:
        service.close()


def test_a_successors_record_tells_the_holder_it_was_fenced(
    tmp_path, monkeypatch
):
    root = str(tmp_path)
    monkeypatch.setenv("REPRO_HOST", "hostA")
    service = CampaignService(root, fsync=False, lease_ttl=30.0)
    try:
        service.submit("gdk", budget_ticks=BUDGET)
        # A higher-fence record appears: someone stole the root from under
        # us (clock skew, paused VM...).  The pump must raise, not write.
        JobJournal(root, fsync=False, fence=9).append(None, "epoch", {})
        with pytest.raises(LeaseLostError):
            service._pump_intake()
    finally:
        service.close()


# -- live daemon intake --------------------------------------------------------


def _spec_kwargs(subject, **extra):
    kwargs = {"subject": subject, "budget_ticks": BUDGET}
    kwargs.update(extra)
    return kwargs


def test_daemon_admits_cancels_and_drains_live_requests(tmp_path):
    root = str(tmp_path)

    async def scenario():
        service = CampaignService(
            root, max_workers=1, fsync=False, restart_policy=RETRIES,
            poll_interval=0.05,
        )
        try:
            server = asyncio.ensure_future(service.serve_forever())

            async def settled(nonce):
                for _ in range(600):
                    if nonce in service.handled_requests:
                        return service.handled_requests[nonce]
                    await asyncio.sleep(0.05)
                raise AssertionError("request %s never settled" % nonce)

            submit = intake.submit_request(root, _spec_kwargs("gdk"))
            # Big enough that it cannot finish before the cancel lands.
            victim = intake.submit_request(
                root, _spec_kwargs("mp3gain", budget_ticks=100 * BUDGET)
            )
            job_id = await settled(submit)
            victim_id = await settled(victim)
            # One pump tick settles both; the ids land in nonce order,
            # which is random — only the set is deterministic.
            assert {job_id, victim_id} == {"j000000", "j000001"}

            bogus = intake.submit_request(root, {"no_such_option": True})
            assert await settled(bogus) is None  # refused, durably

            cancel = intake.cancel_request(root, victim_id)
            assert await settled(cancel) == victim_id

            intake.drain_request(root)
            summary = await asyncio.wait_for(server, timeout=120)
            return service, summary, job_id, victim_id
        finally:
            service.close()

    service, summary, job_id, victim_id = asyncio.run(scenario())
    assert service.jobs[job_id].state == SUCCEEDED
    assert service.jobs[victim_id].state == CANCELLED
    assert summary["states"].get("succeeded") == 1
    # Every request file was consumed, and the settlements are durable:
    # a cold fold sees the same request ledger the daemon held in memory.
    state, quarantined, pending = load_service_state(root)
    assert pending == []
    assert state.handled == service.handled_requests
    assert [q for q in quarantined if q[0].startswith("rec:")] == []


def test_replayed_request_file_is_not_settled_twice(tmp_path):
    root = str(tmp_path)
    service = CampaignService(root, max_workers=1, fsync=False)
    try:
        nonce = intake.submit_request(root, _spec_kwargs("gdk"))
        service._pump_intake()
        assert service.handled_requests[nonce] == "j000000"
        # The daemon crashed after journaling the settle but before the
        # file delete: the same request file reappears on disk.
        requests, _ = intake.scan_requests(root)
        assert requests == []  # it was deleted...
        intake.write_request(root, "submit-request", {"spec": {}})  # noise
        path = os.path.join(root, "journal")
        # Re-drop the *same* nonce by hand: byte-identical replay.
        import hashlib as _hashlib
        import json as _json

        body = _json.dumps(
            {
                "version": intake.REQUEST_VERSION,
                "nonce": nonce,
                "kind": "submit-request",
                "payload": {"spec": _spec_kwargs("gdk")},
            },
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        digest = _hashlib.sha1(body).hexdigest()
        with open(
            os.path.join(path, intake.request_name(nonce, digest)), "wb"
        ) as handle:
            handle.write(body)
        service._pump_intake()
        # Settled exactly once: the replay was recognized and discarded.
        assert service.handled_requests[nonce] == "j000000"
        assert sorted(service.jobs) == ["j000000"]
        assert not any(
            name.startswith("req:%s" % nonce)
            for name in os.listdir(path)
        )
    finally:
        service.close()


# -- the acceptance matrix -----------------------------------------------------


def test_two_host_failover_matrix_is_exactly_once(tmp_path):
    clean = _run_actor(str(tmp_path / "clean"), "hostA", None)
    assert clean.returncode == 0, clean.stderr
    commits = int(re.search(r"COMMITS=(\d+)", clean.stdout).group(1))
    assert commits >= 7  # epoch + 2 submits + 2 starts + 2 dones

    for commit in range(1, commits + 1):
        root = str(tmp_path / ("kill%02d" % commit))
        actor_a = _run_actor(root, "hostA", "orch-kill@0.%d" % commit)
        assert actor_a.returncode == faultinject.KILLED_EXIT_CODE, (
            commit, actor_a.stdout, actor_a.stderr,
        )
        # Host B steals the root once A's lease lapses (A cannot be
        # pid-probed across hosts) and drives everything to terminal.
        actor_b = _run_actor(root, "hostB", None, standby=60.0)
        assert actor_b.returncode == 0, (
            commit, actor_b.stdout, actor_b.stderr,
        )

        state, quarantined, pending = load_service_state(root)
        assert pending == []
        # Zero lost jobs, exactly-once terminal transitions: every job
        # ends terminal, and the fold saw no conflicting re-transition.
        # (A kill between the two submits legitimately leaves one job:
        # B only submits the scenario when the journal holds nothing.)
        assert len(state.jobs) in (1, 2), commit
        assert all(r.terminal() for r in state.jobs.values()), commit
        assert all(
            r.state == SUCCEEDED for r in state.jobs.values()
        ), commit
        assert state.conflicts == 0, commit
        assert state.epochs == 2, commit  # one epoch per life
        # B's fence supersedes A's.
        assert read_fence(root) == 2, commit
        # The dedupe index is disk-stable: a cold rebuild now equals a
        # cold rebuild after any further restart (pure disk function).
        jobs_dir = os.path.join(root, "jobs")
        disk = CrashDedupe().rebuild(jobs_dir).counts()
        assert disk == CrashDedupe().rebuild(jobs_dir).counts(), commit
