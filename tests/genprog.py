"""Random structured MiniC program generation for property-based tests.

Hypothesis strategies that build random-but-valid MiniC sources: nested
ifs/whiles/fors over a small pool of integer variables, short-circuit
conditions, and array traffic on the input.  Every generated program
compiles; loops are bounded by construction so executions terminate well
inside the instruction budget.
"""

from hypothesis import strategies as st

VARS = ["a", "b", "c"]


@st.composite
def expressions(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 2 else 2))
    if choice == 0:
        return str(draw(st.integers(0, 100)))
    if choice == 1:
        return draw(st.sampled_from(VARS))
    if choice == 2:
        return "in0"  # first input byte, loaded once up front
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    if choice == 3:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return "(%s %s %s)" % (left, op, right)
    if choice == 4:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return "(%s %s %s)" % (left, op, right)
    op = draw(st.sampled_from(["&&", "||"]))
    return "(%s %s %s)" % (left, op, right)


@st.composite
def statements(draw, depth=0, in_loop=False):
    max_kind = 5 if depth < 2 else 2
    kind = draw(st.integers(0, max_kind))
    if kind == 0:
        var = draw(st.sampled_from(VARS))
        return "%s = %s;" % (var, draw(expressions()))
    if kind == 1:
        return "acc = acc + %s;" % draw(st.sampled_from(VARS))
    if kind == 2:
        if in_loop and draw(st.booleans()):
            return draw(st.sampled_from(["break;", "continue;"]))
        var = draw(st.sampled_from(VARS))
        return "%s = %s & 255;" % (var, draw(expressions()))
    if kind == 3:
        cond = draw(expressions())
        then = draw(blocks(depth=depth + 1, in_loop=in_loop))
        if draw(st.booleans()):
            other = draw(blocks(depth=depth + 1, in_loop=in_loop))
            return "if (%s) { %s } else { %s }" % (cond, then, other)
        return "if (%s) { %s }" % (cond, then)
    if kind == 4:
        # Bounded while: a dedicated counter guarantees termination.
        body = draw(blocks(depth=depth + 1, in_loop=True))
        limit = draw(st.integers(1, 6))
        return (
            "guard = 0; while (guard < %d) { guard = guard + 1; %s }"
            % (limit, body)
        )
    body = draw(blocks(depth=depth + 1, in_loop=True))
    limit = draw(st.integers(1, 5))
    return "for (var i = 0; i < %d; i = i + 1) { %s }" % (limit, body)


@st.composite
def blocks(draw, depth=0, in_loop=False):
    count = draw(st.integers(1, 3 if depth else 5))
    return " ".join(
        draw(statements(depth=depth, in_loop=in_loop)) for _ in range(count)
    )


@st.composite
def programs(draw):
    """A full MiniC source with one generated main()."""
    body = draw(blocks())
    return (
        "fn main(input) {\n"
        "    var in0 = 0;\n"
        "    if (len(input) > 0) { in0 = input[0]; }\n"
        "    var a = 1; var b = 2; var c = 3;\n"
        "    var acc = 0; var guard = 0;\n"
        "    %s\n"
        "    return acc + a + b + c;\n"
        "}\n" % body
    )
