"""Campaign-result assembly and coverage-replay tests."""

import pickle
import random

from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.campaign import replay_edge_coverage, result_from_engines
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.subjects import get_subject


def run_engine(subject, feedback, seed, budget=200_000):
    engine = FuzzEngine(
        subject.program,
        feedback,
        subject.seeds,
        random.Random(seed),
        EngineConfig(
            max_input_len=subject.max_input_len,
            exec_instr_budget=subject.exec_instr_budget,
        ),
        subject.tokens,
    )
    engine.run(budget)
    return engine


def test_replay_edge_coverage_superset_of_seed_run():
    subject = get_subject("flvmeta")
    seeds_only = replay_edge_coverage(subject.program, subject.seeds)
    engine = run_engine(subject, EdgeFeedback(), 0)
    grown = replay_edge_coverage(subject.program, engine.corpus_inputs())
    assert seeds_only <= grown


def test_replay_independent_of_campaign_feedback():
    subject = get_subject("flvmeta")
    engine = run_engine(subject, PathFeedback(), 0)
    edges = replay_edge_coverage(subject.program, engine.corpus_inputs())
    assert edges  # path campaign still yields an edge-coverage measurement


def test_result_from_single_engine():
    subject = get_subject("gdk")
    engine = run_engine(subject, EdgeFeedback(), 1, budget=800_000)
    result = result_from_engines(subject, "pcguard", 1, [engine], engine)
    assert result.subject_name == "gdk"
    assert result.queue_size == len(engine.queue.entries)
    assert result.execs == engine.execs
    assert result.crash_count == engine.crash_count
    assert result.bugs == {r.trap.bug_id() for r in engine.unique_crashes.values()}


def test_result_merges_multiple_phases():
    subject = get_subject("gdk")
    a = run_engine(subject, PathFeedback(), 2, budget=400_000)
    b = run_engine(subject, PathFeedback(), 3, budget=400_000)
    merged = result_from_engines(subject, "cull", 0, [a, b], b)
    assert merged.execs == a.execs + b.execs
    assert merged.crash_count == a.crash_count + b.crash_count
    assert merged.bugs >= {r.trap.bug_id() for r in a.unique_crashes.values()}
    # timeline ticks are phase-offset and monotonic
    ticks = [sample[0] for sample in merged.timeline]
    assert ticks == sorted(ticks)


def test_crash_info_is_plain_and_picklable():
    subject = get_subject("gdk")
    engine = run_engine(subject, EdgeFeedback(), 1, budget=800_000)
    result = result_from_engines(subject, "pcguard", 1, [engine], engine)
    clone = pickle.loads(pickle.dumps(result))
    assert clone.bugs == result.bugs
    assert clone.unique_crash_hashes == result.unique_crash_hashes
    for record in clone.crash_records:
        assert isinstance(record.bug, tuple)
        assert isinstance(record.stack, tuple)


def test_unique_crash_hashes_match_records():
    subject = get_subject("gdk")
    engine = run_engine(subject, EdgeFeedback(), 1, budget=800_000)
    result = result_from_engines(subject, "pcguard", 1, [engine], engine)
    assert len(result.unique_crash_hashes) == len(result.crash_records)
