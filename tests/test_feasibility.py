"""Path-feasibility tests: pruning counts, soundness against real runs."""

from hypothesis import given, settings

from repro.analysis.constprop import conditional_constants
from repro.analysis.feasibility import (
    _dead_edge_path_count,
    analyze_function,
    analyze_program,
    feasible_path_ids,
    program_path_space,
)
from repro.ballarus.plan import FunctionPathPlan, build_program_plans
from repro.lang import compile_source
from repro.subjects import get_subject, load_suite
from repro.triage.pathreport import profile_input
from tests.genprog import programs

EXCLUSIVE = """
fn main(input) {
    var kind = input[0];
    var out = 0;
    if (kind == 2) { out = 10; }
    if (kind == 3) { out = 20; }
    return out;
}
"""

DEAD_BRANCH = """
fn main(input) {
    var debug = 0;
    if (debug) { return 99; }
    return input[0];
}
"""


def test_mutually_exclusive_equalities_prune_one_path():
    cfg = compile_source(EXCLUSIVE).func("main")
    result = analyze_function(cfg)
    # 2 branches -> 4 numbered paths; taking both true edges needs
    # kind == 2 AND kind == 3 simultaneously: exactly one path dies.
    assert result.num_paths == 4
    assert result.infeasible_paths == 1
    assert result.method == "enumerated"


def test_constant_guard_creates_dead_edge():
    cfg = compile_source(DEAD_BRANCH).func("main")
    const = conditional_constants(cfg)
    assert len(const.dead_edges()) >= 1
    result = analyze_function(cfg)
    assert result.infeasible_paths >= 1
    assert result.dead_edges == const.dead_edges()


def test_dead_edge_bound_is_no_tighter_than_enumeration():
    for source in (EXCLUSIVE, DEAD_BRANCH):
        cfg = compile_source(source).func("main")
        plan = FunctionPathPlan(cfg)
        const = conditional_constants(cfg)
        enumerated = len(feasible_path_ids(cfg, plan, const))
        bound = _dead_edge_path_count(plan.dag, const.dead_edges())
        assert enumerated <= bound <= plan.num_paths


def test_path_cap_falls_back_to_dead_edge_bound():
    cfg = compile_source(DEAD_BRANCH).func("main")
    result = analyze_function(cfg, path_cap=0)
    assert result.method == "dead-edge-bound"
    assert result.infeasible_paths >= 1


def test_analyze_program_annotates_plans():
    program = compile_source(EXCLUSIVE)
    plans = build_program_plans(program)
    assert all(plan.feasible_num_paths is None for plan in plans)
    results = analyze_program(program, plans)
    for plan, result in zip(plans, results):
        assert plan.feasible_num_paths == result.feasible_paths
        assert plan.feasible_num_paths <= plan.num_paths


def test_program_path_space_totals():
    space = program_path_space(compile_source(EXCLUSIVE))
    assert space["num_paths"] == space["feasible_paths"] + space["infeasible_paths"]
    assert space["functions"]


def test_lame_prunes_most_of_its_path_space():
    # lame's window-switching kind dispatch is the paper-style example of
    # path explosion; most numbered paths mix exclusive kind tests.
    subject = get_subject("lame")
    space = program_path_space(subject.program)
    assert space["infeasible_paths"] > space["num_paths"] // 2


MASKED_RANGE = """
fn main(input) {
    var x = input[0] & 15;
    var out = 0;
    if (x > 20) { out = 1; }
    if (x < 16) { out = out + 2; }
    return out;
}
"""

RANGE_EXCLUSIVE = """
fn main(input) {
    var n = input[0];
    var out = 0;
    if (n < 4) { out = 1; }
    if (n > 200) { out = out + 2; }
    return out;
}
"""


def test_interval_refinement_prunes_masked_range_paths():
    # SCCP knows nothing about x (input-dependent), but x = input[0] & 15
    # lies in [0, 15]: the true edge of x > 20 and the false edge of
    # x < 16 are both range-refuted, leaving exactly one feasible path.
    cfg = compile_source(MASKED_RANGE).func("main")
    result = analyze_function(cfg)
    assert result.num_paths == 4
    assert result.feasible_paths == 1


def test_interval_refinement_prunes_ordering_contradictions():
    # n < 4 and n > 200 cannot hold on one path; the doubly-true path
    # dies through comparison clamping, the other three survive.
    cfg = compile_source(RANGE_EXCLUSIVE).func("main")
    result = analyze_function(cfg)
    assert result.num_paths == 4
    assert result.feasible_paths == 3


def test_suite_infeasibility_beats_sccp_baseline():
    # PR 5's SCCP-only pruner proved 9467 of 12267 numbered paths
    # statically infeasible across the 18 subjects; interval refinement
    # must strictly improve on that without changing the numbered space.
    num_paths = infeasible = 0
    for subject in load_suite():
        space = program_path_space(subject.program)
        num_paths += space["num_paths"]
        infeasible += space["infeasible_paths"]
    assert num_paths == 12267
    assert infeasible > 9467


# -- soundness: every dynamically observed path is statically feasible -------


def _observed_vs_feasible(subject_name, inputs):
    subject = get_subject(subject_name)
    program = subject.program
    feasible = {}
    for func in program.funcs:
        plan = FunctionPathPlan(func)
        feasible[func.name] = feasible_path_ids(func, plan)
    for data in inputs:
        profile = profile_input(program, bytes(data))
        for function, path_id in profile.keys():
            assert path_id in feasible[function], (
                subject_name,
                function,
                path_id,
            )


def test_feasibility_sound_on_seeds_and_witnesses():
    for name in ("gdk", "lame", "mp3gain", "jq", "flvmeta"):
        subject = get_subject(name)
        inputs = list(subject.seeds) + [bug.witness for bug in subject.bugs]
        _observed_vs_feasible(name, inputs)


@settings(max_examples=20, deadline=None)
@given(programs())
def test_feasibility_sound_on_generated_programs(source):
    program = compile_source(source)
    feasible = {}
    for func in program.funcs:
        plan = FunctionPathPlan(func)
        if plan.num_paths > 4000:
            return  # enumeration too large for a property iteration
        feasible[func.name] = feasible_path_ids(func, plan)
    for data in (b"", b"a", b"\xff\x00\x7f", bytes(range(16))):
        profile = profile_input(program, data)
        for function, path_id in profile.keys():
            assert path_id in feasible[function]
