"""Mutation-operator tests."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzer import mutators


def rng(seed=0):
    return random.Random(seed)


def test_flip_bit_changes_exactly_one_bit():
    data = bytearray(b"\x00" * 8)
    mutators.flip_bit(rng(), data, 64)
    assert sum(bin(b).count("1") for b in data) == 1


def test_delete_block_shrinks():
    data = bytearray(b"abcdefgh")
    assert mutators.delete_block(rng(), data, 64)
    assert 0 < len(data) < 8


def test_clone_block_grows_within_limit():
    data = bytearray(b"abcd")
    assert mutators.clone_block(rng(), data, 6)
    assert 4 < len(data) <= 6


def test_clone_block_refuses_at_max():
    data = bytearray(b"abcd")
    assert not mutators.clone_block(rng(), data, 4)


def test_token_overwrite_places_token():
    data = bytearray(b"\x00" * 8)
    assert mutators.overwrite_token(rng(), data, 64, [b"MAGI"])
    assert b"MAGI" in bytes(data)


def test_token_insert_respects_max_len():
    data = bytearray(b"\x00" * 8)
    assert not mutators.insert_token(rng(), data, 8, [b"MAGI"])


def test_empty_input_operators_refuse():
    data = bytearray()
    assert not mutators.flip_bit(rng(), data, 8)
    assert not mutators.set_random_byte(rng(), data, 8)
    assert not mutators.delete_block(rng(), data, 8)


def test_havoc_never_returns_empty():
    for seed in range(20):
        result = mutators.havoc(rng(seed), b"", 16)
        assert len(result) >= 1


def test_havoc_deterministic_per_seed():
    a = mutators.havoc(rng(5), b"hello world", 64)
    b = mutators.havoc(rng(5), b"hello world", 64)
    assert a == b


def test_splice_prefix_from_first():
    result = mutators.splice(rng(1), b"AAAA", b"BBBB")
    assert result[0:1] == b"A"
    assert 1 <= len(result) <= 8


def test_splice_with_empty_sides():
    assert mutators.splice(rng(), b"", b"") == b"\x00"
    assert mutators.splice(rng(), b"ab", b"") in (b"a", b"ab")


def test_deterministic_mutations_walk_every_byte():
    variants = list(mutators.deterministic_mutations(b"abc"))
    assert len(variants) == 3
    assert all(len(v) == 3 for v in variants)
    # each variant differs in exactly one position
    for pos, variant in enumerate(variants):
        diffs = [i for i in range(3) if variant[i] != b"abc"[i]]
        assert diffs == [pos]


def test_deterministic_token_stage():
    variants = list(mutators.deterministic_mutations(b"\x00" * 8, [b"AB"]))
    assert any(b"AB" in v for v in variants)


@settings(max_examples=80)
@given(st.binary(min_size=0, max_size=40), st.integers(0, 2 ** 31), st.booleans())
def test_havoc_respects_max_len_property(data, seed, legacy):
    result = mutators.havoc(random.Random(seed), data, 48, legacy=legacy)
    assert 1 <= len(result) <= 48


@settings(max_examples=60)
@given(st.binary(min_size=1, max_size=32), st.integers(0, 2 ** 31))
def test_havoc_with_tokens_property(data, seed):
    tokens = (b"MAGC", b"\xff\xfe")
    result = mutators.havoc(random.Random(seed), data, 40, tokens)
    assert 1 <= len(result) <= 40
