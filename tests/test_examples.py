"""Smoke tests: every example script runs to completion and prints results."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")


def run_example(name, timeout=120):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "compiled:" in proc.stdout
    assert "crashes:" in proc.stdout


def test_motivating_example():
    proc = run_example("motivating_example.py")
    assert proc.returncode == 0, proc.stderr
    assert "acyclic paths: 5" in proc.stdout
    assert "0 new edges" in proc.stdout
    assert "new PATH ids" in proc.stdout


def test_custom_target():
    proc = run_example("custom_target.py")
    assert proc.returncode == 0, proc.stderr
    assert "path (Ball-Larus)" in proc.stdout


@pytest.mark.slow
def test_culling_campaign():
    proc = run_example("culling_campaign.py", timeout=240)
    assert proc.returncode == 0, proc.stderr
    assert "queue explosion" in proc.stdout


def test_triage_report():
    proc = run_example("triage_report.py", timeout=180)
    assert proc.returncode == 0, proc.stderr
    assert "path profile of a benign seed" in proc.stdout
    assert "crash explanation" in proc.stdout


def test_corpus_minimization():
    proc = run_example("corpus_minimization.py", timeout=180)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.count("coverage preserved") == 2
