"""Middle-end cleanup tests: behaviour preservation and simplification."""

from hypothesis import given, settings

from repro.cfg.instructions import BIN, BR, CONST
from repro.lang import compile_source
from repro.runtime import execute
from tests.genprog import programs


def both(source):
    """Compile with and without the optimizer."""
    return (
        compile_source(source, optimize=False),
        compile_source(source, optimize=True),
    )


def test_constant_folding_removes_bin():
    raw, opt = both("fn main(input) { return 2 + 3 * 4; }")
    raw_bins = sum(
        1 for f in raw.funcs for b in f.blocks for i in b.instrs if i[0] == BIN
    )
    opt_bins = sum(
        1 for f in opt.funcs for b in f.blocks for i in b.instrs if i[0] == BIN
    )
    assert opt_bins < raw_bins
    assert execute(opt, b"").retval == 14


def test_division_never_folded():
    # A constant zero divisor must still trap at run time.
    _, opt = both("fn main(input) { if (len(input) > 90) { return 1 / 0; } return 2; }")
    result = execute(opt, b"x" * 91)
    assert result.crashed
    assert result.trap.kind == "division-by-zero"
    assert execute(opt, b"").retval == 2


def test_out_of_range_constant_shift_not_folded():
    _, opt = both("fn main(input) { if (len(input) > 90) { return 1 << 99; } return 2; }")
    result = execute(opt, b"x" * 91)
    assert result.crashed
    assert result.trap.kind == "shift-out-of-range"


def test_folding_wraps_like_runtime():
    source = "fn main(input) { return 9223372036854775807 + 1; }"
    raw, opt = both(source)
    assert execute(raw, b"").retval == execute(opt, b"").retval


def test_jump_threading_removes_empty_blocks():
    source = """
    fn main(input) {
        var x = 0;
        if (len(input) > 1) { x = 1; } else { x = 2; }
        if (x == 1) { x = 5; }
        return x;
    }
    """
    raw, opt = both(source)
    assert len(opt.func("main").blocks) <= len(raw.func("main").blocks)


def test_threading_preserves_loop_semantics():
    source = """
    fn main(input) {
        var t = 0;
        for (var i = 0; i < len(input); i = i + 1) { t = t + input[i]; }
        return t;
    }
    """
    raw, opt = both(source)
    data = bytes([5, 9, 11])
    assert execute(raw, data).retval == execute(opt, data).retval == 25


def test_branch_with_coinciding_targets_collapses_to_jmp():
    # Both arms of the if are empty, so after threading the true and false
    # targets resolve to the same join block: the br degenerates to a jmp
    # and no two-way branch survives in main.
    raw, opt = both("fn main(input) { if (len(input)) { } else { } return 7; }")
    raw_brs = sum(
        1 for b in raw.func("main").blocks if b.term[0] == BR
    )
    opt_brs = sum(
        1 for b in opt.func("main").blocks if b.term[0] == BR
    )
    assert raw_brs == 1
    assert opt_brs == 0
    assert execute(opt, b"x").retval == 7
    assert execute(opt, b"").retval == 7


def test_branch_collapse_shrinks_path_space():
    # The collapsed branch removes a fake two-way split from the
    # Ball-Larus DAG: the optimized function numbers fewer paths.
    from repro.ballarus.plan import FunctionPathPlan

    raw, opt = both("fn main(input) { if (len(input)) { } return 7; }")
    assert FunctionPathPlan(opt.func("main")).num_paths < FunctionPathPlan(
        raw.func("main")
    ).num_paths


def test_empty_infinite_loop_survives_threading():
    # while(1){} lowers to an empty block jumping to itself; the optimizer
    # must leave it alone (it times out rather than crashing the compiler).
    program = compile_source("fn main(input) { while (1) { } return 0; }")
    result = execute(program, b"", instr_budget=2_000)
    assert result.timeout


def test_optimizer_keeps_validation():
    _, opt = both(
        "fn f(a) { if (a > 2) { return a * 2; } return a; }"
        "fn main(input) { return f(len(input)); }"
    )
    opt.validate()


def test_const_propagation_through_mov():
    _, opt = both("fn main(input) { var x = 7; var y = x; return y + 1; }")
    main = opt.func("main")
    consts = [i for b in main.blocks for i in b.instrs if i[0] == CONST]
    assert any(i[2] == 8 for i in consts)


@settings(max_examples=50, deadline=None)
@given(programs())
def test_optimizer_preserves_behaviour_property(source):
    raw, opt = both(source)
    for data in (b"", b"a", b"\xff\x00\x7f", bytes(range(16))):
        r1 = execute(raw, data, instr_budget=100_000)
        r2 = execute(opt, data, instr_budget=100_000)
        assert r1.timeout == r2.timeout
        if not r1.timeout:
            assert r1.retval == r2.retval
            assert r1.crashed == r2.crashed
            if r1.crashed:
                assert r1.trap.bug_id() == r2.trap.bug_id()
