"""Queue / favored-corpus tests."""

from repro.fuzzer.corpus import Queue


def entry(queue, data, cost, trace, depth=0):
    classified = {idx: 1 for idx in trace}
    e = queue.make_entry(bytes(data), cost, classified, depth, found_at=0)
    queue.add(e)
    return e


def test_entries_get_sequential_ids():
    queue = Queue()
    a = entry(queue, b"a", 10, [1])
    b = entry(queue, b"b", 10, [2])
    assert (a.entry_id, b.entry_id) == (0, 1)


def test_top_rated_prefers_cheaper_entry():
    queue = Queue()
    expensive = entry(queue, b"aaaa", 100, [1, 2])
    cheap = entry(queue, b"b", 10, [1])
    assert queue.top_rated[1] is cheap
    assert queue.top_rated[2] is expensive


def test_cull_marks_covering_subset():
    queue = Queue()
    entry(queue, b"a", 10, [1, 2, 3])
    entry(queue, b"b", 10, [3])
    entry(queue, b"c", 10, [4])
    queue.cull()
    favored = [e for e in queue.entries if e.favored]
    covered = set()
    for e in favored:
        covered |= e.trace
    assert covered == {1, 2, 3, 4}


def test_cull_skips_redundant_entries():
    queue = Queue()
    big = entry(queue, b"a", 10, [1, 2, 3, 4])
    entry(queue, b"bbbb", 99, [2])
    queue.cull()
    assert big.favored
    assert sum(1 for e in queue.entries if e.favored) == 1


def test_favored_set_covers_all_indices_always():
    import random

    rng = random.Random(7)
    queue = Queue()
    for i in range(100):
        trace = rng.sample(range(40), rng.randrange(1, 8))
        entry(queue, bytes([i]), rng.randrange(1, 50), trace)
    favored_cover = set()
    for e in queue.favored_entries():
        favored_cover |= e.trace
    assert favored_cover == queue.covered_indices()


def test_pending_favored_counts_unfuzzed():
    queue = Queue()
    a = entry(queue, b"a", 10, [1])
    queue.cull()
    assert queue.pending_favored == 1
    a.was_fuzzed = True
    queue._dirty = True
    queue.cull()
    assert queue.pending_favored == 0


def test_cull_is_lazy():
    queue = Queue()
    entry(queue, b"a", 10, [1])
    queue.cull()
    marker = object()
    queue.pending_favored = marker
    queue.cull()  # not dirty: must not recompute
    assert queue.pending_favored is marker


def test_snapshot_restore_roundtrips_flags_across_cull():
    queue = Queue()
    a = entry(queue, b"a", 10, [1, 2, 3])
    b = entry(queue, b"b", 10, [3])
    c = entry(queue, b"c", 10, [4])
    queue.cull()  # marks favored
    a.was_fuzzed = True
    b.imported = True
    snap = queue.snapshot()

    restored = Queue()
    restored.restore(snap)
    by_id = {e.entry_id: e for e in restored.entries}
    for original in (a, b, c):
        twin = by_id[original.entry_id]
        assert twin.data == original.data
        assert twin.favored == original.favored
        assert twin.was_fuzzed == original.was_fuzzed
        assert twin.imported == original.imported
    # A cull on the restored queue reproduces the original's: same favored
    # subset, same pending count (only c is favored-and-unfuzzed now).
    for q in (queue, restored):
        q._dirty = True
        q.cull()
    assert {e.entry_id for e in restored.entries if e.favored} == {
        e.entry_id for e in queue.entries if e.favored
    }
    assert restored.pending_favored == queue.pending_favored


def test_snapshot_is_deep_and_isolated_from_later_mutation():
    queue = Queue()
    a = entry(queue, b"a", 10, [1])
    queue.cull()
    snap = queue.snapshot()
    a.was_fuzzed = True
    a.favored = False
    restored = Queue()
    restored.restore(snap)
    twin = restored.entries[0]
    assert twin.was_fuzzed is False  # pre-mutation state preserved
    assert twin.favored is True
