"""Experiment-layer tests: configs, runner caching, table rendering.

These use a tiny profile (one small subject, minuscule budgets) so the whole
module stays fast; the real campaign matrix lives in benchmarks/.
"""

import pytest

from repro.experiments.config import FUZZER_CONFIGS, campaign_rng, run_config
from repro.experiments.runner import campaign
from repro.experiments.tables import geomean, median, render_table
from repro.subjects import get_subject

TINY = 0.02  # scale: 24 "hours" ~ 192k ticks


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


def test_all_paper_configs_registered():
    for name in ("path", "pcguard", "cull", "opp", "pathafl", "afl", "cull_r"):
        assert name in FUZZER_CONFIGS


def test_campaign_rng_deterministic_and_distinct():
    a = campaign_rng("s", "c", 0).random()
    b = campaign_rng("s", "c", 0).random()
    c = campaign_rng("s", "c", 1).random()
    assert a == b
    assert a != c


@pytest.mark.parametrize("config_name", ["pcguard", "path", "cull", "opp", "pathafl", "afl", "cull_r", "ngram4", "block"])
def test_every_config_runs(config_name):
    subject = get_subject("flvmeta")
    result = run_config(subject, config_name, 0, budget_ticks=120_000)
    assert result.config_name == config_name
    assert result.execs > 0
    assert result.queue_size >= 1


def test_campaign_results_reproducible():
    subject = get_subject("flvmeta")
    a = run_config(subject, "path", 0, budget_ticks=150_000)
    b = run_config(subject, "path", 0, budget_ticks=150_000)
    assert a.bugs == b.bugs
    assert a.queue_size == b.queue_size
    assert a.execs == b.execs


def test_memory_cache_returns_same_object():
    a = campaign("flvmeta", "pcguard", 0, hours=1, scale=TINY)
    b = campaign("flvmeta", "pcguard", 0, hours=1, scale=TINY)
    assert a is b


def test_disk_cache_round_trip(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    import repro.experiments.runner as runner

    monkeypatch.setattr(runner, "_cache_dir", lambda: str(tmp_path))
    first = campaign("flvmeta", "pcguard", 1, hours=1, scale=TINY)
    runner._MEMORY_CACHE.clear()
    second = campaign("flvmeta", "pcguard", 1, hours=1, scale=TINY)
    assert first is not second
    assert first.bugs == second.bugs
    assert first.queue_size == second.queue_size


def test_render_table_alignment():
    text = render_table(["name", "n"], [["abc", 12], ["d", 3]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("name")
    assert set(lines[2]) <= {"-", " "}
    assert "abc" in lines[3]
    # numeric column right-aligned: both rows end at the same column
    assert lines[3].rstrip().endswith("12")
    assert lines[4].rstrip().endswith("3")
    assert len(lines[3].rstrip()) == len(lines[4].rstrip())


def test_median_lower_middle():
    assert median([4, 1, 3, 2]) == 2
    assert median([5]) == 5
    assert median([]) == 0


def test_geomean():
    assert abs(geomean([2, 8]) - 4.0) < 1e-9
    assert geomean([]) == 0.0


def test_opp_budget_split():
    subject = get_subject("flvmeta")
    result = run_config(subject, "opp", 0, budget_ticks=200_000)
    # ticks counted for opp cover only the path phase (~half the budget)
    assert result.ticks <= 140_000
