"""Parallel campaign runner tests: matrix fan-out and instance campaigns.

The determinism contract is the load-bearing one: a parallel matrix must be
*equal* (CampaignResult.__eq__, every field) to the sequential run, because
every table in the paper is derived from the same campaign set.
"""

import os
import time

import pytest

import repro.experiments.runner as runner
from repro.experiments.runner import run_matrix
from repro.fuzzer.clock import TICKS_PER_HOUR
from repro.fuzzer.corpus import QueueEntry
from repro.fuzzer.engine import FuzzEngine
from repro.fuzzer.parallel import (
    ParallelMatrixError,
    input_hash,
    instance_rng_seed,
    run_cells,
    run_instance_campaign,
)
from repro.fuzzer.schedule import performance_score
from repro.coverage.feedback import PathFeedback
from repro.subjects import get_subject

TINY = 0.05  # scale: 1 "hour" = 20k ticks, tens of executions


@pytest.fixture(autouse=True)
def fresh_caches(monkeypatch):
    """No disk cache, and a clean memory cache before and after each test."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    runner._MEMORY_CACHE.clear()
    yield
    runner._MEMORY_CACHE.clear()


# -- matrix parallelism --------------------------------------------------------


def test_parallel_matrix_equals_sequential():
    configs = ["pcguard", "path"]
    sequential = run_matrix(
        configs, hours=1, subjects=["flvmeta"], runs=2, scale=TINY, jobs=1
    )
    runner._MEMORY_CACHE.clear()
    parallel = run_matrix(
        configs, hours=1, subjects=["flvmeta"], runs=2, scale=TINY, jobs=2
    )
    assert set(sequential) == set(parallel)
    for key in sequential:
        assert sequential[key] == parallel[key]  # every CampaignResult field


def test_parallel_matrix_honours_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    results = run_matrix(
        ["pcguard"], hours=1, subjects=["flvmeta"], runs=2, scale=TINY
    )
    assert len(results) == 2
    for (subject, config, seed), result in results.items():
        assert result.subject_name == subject
        assert result.config_name == config
        assert result.run_seed == seed


def test_parallel_matrix_populates_memory_cache():
    run_matrix(["pcguard"], hours=1, subjects=["flvmeta"], runs=1, scale=TINY, jobs=2)
    # A second call must be served from the parent's memory cache: no
    # worker processes are spawned for cached cells, so it is near-instant.
    start = time.monotonic()
    again = run_matrix(
        ["pcguard"], hours=1, subjects=["flvmeta"], runs=1, scale=TINY, jobs=2
    )
    assert time.monotonic() - start < 0.1
    assert len(again) == 1


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 2, reason="needs 2+ cores")
def test_parallel_matrix_wall_clock_speedup():
    """A 4-cell matrix completes faster over 2 workers than sequentially."""
    configs = ["pcguard", "path"]
    # Cells heavy enough (~0.5 s each) that the 2x parallelism win dwarfs
    # process startup noise.
    start = time.monotonic()
    sequential = run_matrix(
        configs, hours=1, subjects=["flvmeta"], runs=2, scale=8.0, jobs=1
    )
    sequential_wall = time.monotonic() - start
    runner._MEMORY_CACHE.clear()
    start = time.monotonic()
    parallel = run_matrix(
        configs, hours=1, subjects=["flvmeta"], runs=2, scale=8.0, jobs=2
    )
    parallel_wall = time.monotonic() - start
    assert sequential == parallel
    assert parallel_wall < sequential_wall


def _cell_by_kind(task):
    kind = task[0]
    if kind == "boom":
        raise RuntimeError("deliberate failure")
    if kind == "die":
        os._exit(3)
    if kind == "sleep":
        time.sleep(30)
    return "ok-%s" % task[1]


def test_failed_cells_do_not_kill_the_run():
    tasks = {
        "a": ("fine", "a"),
        "b": ("boom", "b"),
        "c": ("die", "c"),
        "d": ("fine", "d"),
    }
    results, failures = run_cells(tasks, jobs=2, cell_fn=_cell_by_kind)
    assert results == {"a": "ok-a", "d": "ok-d"}
    kinds = {failure.key: failure.kind for failure in failures}
    assert kinds == {"b": "error", "c": "crashed"}
    assert any("deliberate failure" in f.message for f in failures)


def test_cell_timeout_is_enforced():
    tasks = {"slow": ("sleep", "slow"), "fast": ("fine", "fast")}
    start = time.monotonic()
    results, failures = run_cells(tasks, jobs=2, timeout=1.0, cell_fn=_cell_by_kind)
    assert time.monotonic() - start < 15
    assert results == {"fast": "ok-fast"}
    assert len(failures) == 1
    assert failures[0].key == "slow"
    assert failures[0].kind == "timeout"


def test_run_matrix_reports_failures_after_completion():
    with pytest.raises(ParallelMatrixError) as excinfo:
        run_matrix(
            ["pcguard", "no_such_config"],
            hours=1,
            subjects=["flvmeta"],
            runs=1,
            scale=TINY,
            jobs=2,
        )
    error = excinfo.value
    # The healthy cell still completed and is attached to the error.
    assert ("flvmeta", "pcguard", 0) in error.partial_results
    assert [f.key for f in error.failures] == [("flvmeta", "no_such_config", 0)]
    assert error.failures[0].kind == "error"


# -- instance parallelism ------------------------------------------------------


def test_instance_campaign_merges_workers():
    merged, worker_results, stats = run_instance_campaign(
        "flvmeta", "path", 0, 60_000, workers=2
    )
    assert len(worker_results) == 2
    assert merged.execs == sum(r.execs for r in worker_results)
    assert merged.crash_count == sum(r.crash_count for r in worker_results)
    for result in worker_results:
        assert result.bugs <= merged.bugs
        assert set(result.edges) <= set(merged.edges)
    # Default sync cadence: budget / 8 barriers, all recorded.
    assert len(stats.sync_events) == 8
    assert sum(e.offered for e in stats.sync_events) >= sum(
        e.accepted for e in stats.sync_events
    )
    # Per-worker progress was sampled at every barrier.
    assert {s.worker for s in stats.samples} == {0, 1}
    assert stats.latest_samples()[0].execs == worker_results[0].execs


def test_instance_campaign_deterministic():
    first, _, _ = run_instance_campaign("flvmeta", "path", 0, 40_000, workers=2)
    second, _, _ = run_instance_campaign("flvmeta", "path", 0, 40_000, workers=2)
    assert first == second


def test_instance_campaign_rejects_non_plain_configs():
    with pytest.raises(ValueError):
        run_instance_campaign("flvmeta", "cull", 0, 10_000, workers=2)
    with pytest.raises(ValueError):
        run_instance_campaign("flvmeta", "path", 0, 10_000, workers=0)


def test_instance_rng_seeds_are_distinct_per_worker():
    seeds = {instance_rng_seed("s", "path", 0, i) for i in range(8)}
    assert len(seeds) == 8
    assert instance_rng_seed("s", "path", 0, 1) == instance_rng_seed("s", "path", 0, 1)


def test_input_hash_is_content_identity():
    assert input_hash(b"abc") == input_hash(bytearray(b"abc"))
    assert input_hash(b"abc") != input_hash(b"abd")


# -- engine-level sync primitives ----------------------------------------------


def _engine(subject_name="flvmeta", seed=0):
    import random

    subject = get_subject(subject_name)
    return subject, FuzzEngine(
        subject.program,
        PathFeedback(),
        subject.seeds,
        random.Random(seed),
        tokens=subject.tokens,
    )


def test_import_input_requeues_novel_inputs_only():
    subject, donor = _engine(seed=1)
    donor.run(30_000)
    _, receiver = _engine(seed=2)
    receiver.start(10_000)
    mark = receiver.queue.next_entry_id()
    # Re-importing a seed is never novel: its coverage is already virgin.
    assert receiver.import_input(subject.seeds[0]) is None
    seed_set = {bytes(s) for s in subject.seeds}
    imported = 0
    for entry in donor.queue.entries:
        if entry.data in seed_set:
            continue
        if receiver.import_input(entry.data) is not None:
            imported += 1
    # Everything the donor found beyond the seeds was novel to a fresh
    # engine (its virgin map is a subset of the donor's at discovery time).
    assert imported == sum(
        1 for e in donor.queue.entries if e.data not in seed_set
    )
    fresh = receiver.queue.entries_since(mark)
    assert len(fresh) == imported
    assert all(entry.imported for entry in fresh)
    assert all(entry.depth == 0 for entry in fresh)


def test_run_until_resumes_on_one_clock():
    _, sliced = _engine(seed=3)
    sliced.start(30_000)
    for target in (10_000, 20_000, 30_000):
        sliced.run_until(target)
    sliced.finish()
    _, whole = _engine(seed=3)
    whole.run(30_000)
    # Slicing the loop at soft barriers must not change the trajectory.
    assert sliced.execs == whole.execs
    assert sliced.clock.ticks == whole.clock.ticks
    assert [e.data for e in sliced.queue.entries] == [
        e.data for e in whole.queue.entries
    ]


def test_imported_entries_get_first_visit_energy_boost():
    entry = QueueEntry(0, b"xyz", 100, {1: 1}, depth=0, found_at=0)
    baseline = performance_score(entry, 100, 1)
    entry.imported = True
    boosted = performance_score(entry, 100, 1)
    assert boosted == pytest.approx(baseline * 1.5)
    entry.was_fuzzed = True
    assert performance_score(entry, 100, 1) == pytest.approx(baseline)


def test_budget_ticks_to_hours_sanity():
    # Instance campaigns quote per-instance budgets; a whole 1-hour budget
    # split into 8 sync rounds stays above zero-length rounds.
    assert TICKS_PER_HOUR // 8 > 0


# -- restart policy edge cases -------------------------------------------------


def test_restart_policy_delay_attempt_zero_and_negative():
    from repro.fuzzer.supervisor import RestartPolicy

    policy = RestartPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=5.0)
    assert policy.delay(0) == 0.0
    assert policy.delay(-3) == 0.0


def test_restart_policy_delay_exponential_growth_then_cap():
    from repro.fuzzer.supervisor import RestartPolicy

    policy = RestartPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=5.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)
    # 0.1 * 2**9 = 51.2 saturates at the cap.
    assert policy.delay(10) == 5.0


def test_restart_policy_delay_huge_attempt_saturates_without_overflow():
    from repro.fuzzer.supervisor import RestartPolicy

    policy = RestartPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=5.0)
    # 2.0 ** 9999 overflows a float; the cap saturated thousands of
    # attempts earlier, so the policy must return it, not raise.
    assert policy.delay(10_000) == 5.0


def test_restart_policy_zero_backoff_never_sleeps():
    from repro.fuzzer.supervisor import RestartPolicy

    policy = RestartPolicy(backoff_base=0.0, backoff_factor=2.0, backoff_max=5.0)
    for attempt in (0, 1, 2, 50, 10_000):
        assert policy.delay(attempt) == 0.0


def test_restart_policy_flat_factor_is_constant():
    from repro.fuzzer.supervisor import RestartPolicy

    policy = RestartPolicy(backoff_base=0.3, backoff_factor=1.0, backoff_max=5.0)
    assert policy.delay(1) == pytest.approx(0.3)
    assert policy.delay(100) == pytest.approx(0.3)
