"""End-to-end rendering tests for every experiments module, tiny profile.

Each table/figure module is exercised against one cheap subject with a
minuscule budget, checking the full collect -> render pipeline (the real
numbers come from the benchmark suite at the default profile).
"""

import pytest

from repro.experiments import (
    fig2,
    opp_recovery,
    sensitivity,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7_9,
    table10,
)


@pytest.fixture(autouse=True)
def tiny_profile(monkeypatch):
    monkeypatch.setenv("REPRO_SUBJECTS", "flvmeta")
    monkeypatch.setenv("REPRO_RUNS", "1")
    monkeypatch.setenv("REPRO_SCALE", "0.01")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


def test_table1_renders():
    text = table1.render()
    assert "Table I" in text and "flvmeta" in text and "TOTAL" in text


def test_table2_renders_with_venn():
    data = table2.collect()
    text = table2.render(data)
    assert "Table II" in text and "flvmeta" in text
    venn = table2.render_venn(data)
    assert "Figure 3" in venn


def test_table3_renders_with_geomean():
    text = table3.render()
    assert "Table III" in text and "GEOMEAN" in text


def test_table4_renders():
    text = table4.render()
    assert "Table IV" in text and "pcguard" in text


def test_table5_renders():
    text = table5.render()
    assert "Table V" in text and "path/pcguard" in text


def test_table6_renders():
    text = table6.render()
    assert "Table VI" in text


def test_tables7_to_9_render():
    data = table7_9.collect()
    assert "Table VII" in table7_9.render_table7(data)
    assert "Table VIII" in table7_9.render_table8(data)
    assert "Table IX" in table7_9.render_table9(data)


def test_table10_renders():
    text = table10.render()
    assert "Table X" in text and "cull_r" in text


def test_fig2_renders():
    series = fig2.collect(subject="flvmeta")
    text = fig2.render(series, subject="flvmeta")
    assert "Figure 2" in text
    assert all(len(series[c]) == fig2.POINTS for c in fig2.CONFIGS)


def test_sensitivity_renders():
    text = sensitivity.render(sensitivity.collect(subjects=("flvmeta",), runs=1))
    assert "Sensitivity" in text and "flvmeta" in text


def test_opp_recovery_renders():
    text = opp_recovery.render()
    assert "recovery" in text and "flvmeta" in text
