"""Service resilience under deterministic fault injection: the ISSUE, proven.

The acceptance criterion: a service killed at *any* injected journal commit
point resumes with zero lost jobs, zero duplicate terminal transitions
(fold conflicts stay 0 — every journal record is atomic), and a
crash-artifact superset of the pre-kill state.  The matrix test below runs
the same two-job scenario once cleanly to count its journal commits, then
kills a fresh service at every single commit point and restarts it.

The rest of the file drives each robustness path one fault at a time:
torn journal records quarantine and refold, heartbeat stalls and dropped
results retry from the checkpoint, checkpoint corruption under
``require_checkpoint`` degrades with a typed reason, and retry budgets
(per-job and per-tenant) degrade instead of retrying forever.
"""

import asyncio
import os
import re
import subprocess
import sys

import pytest

from repro.fuzzer import faultinject
from repro.fuzzer.supervisor import RestartPolicy
from repro.service import CampaignService, CrashDedupe, TenantPolicy
from repro.service.jobs import DEGRADED, PENDING, RUNNING, SUCCEEDED

pytestmark = pytest.mark.faultinject

BUDGET = 60_000
FAST_RETRIES = RestartPolicy(max_restarts=2, backoff_base=0.01, backoff_max=0.05)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Child: build a service on ROOT (recovering whatever is journaled there),
# submit the two-job scenario on a fresh root, and drive it to idle.  An
# injected ``orch-kill`` exits with KILLED_EXIT_CODE mid-flight.
CHILD = """
import asyncio, sys
root, spec = sys.argv[1], sys.argv[2]
from repro.fuzzer import faultinject
if spec != "-":
    faultinject.install(spec)
from repro.fuzzer.supervisor import RestartPolicy
from repro.service import CampaignService
svc = CampaignService(
    root, max_workers=2, fsync=False,
    restart_policy=RestartPolicy(
        max_restarts=2, backoff_base=0.01, backoff_max=0.05
    ),
)
try:
    if not svc.jobs:
        svc.submit("gdk", budget_ticks=%(budget)d)
        svc.submit("mp3gain", budget_ticks=%(budget)d)
    asyncio.run(svc.run_until_idle())
    print("COMMITS=%%d" %% svc.journal._commits)
finally:
    svc.close()
""" % {"budget": BUDGET}


@pytest.fixture(autouse=True)
def no_leftover_faults():
    faultinject.clear()
    yield
    faultinject.clear()


def _run_child(root, spec):
    env = dict(os.environ)
    env.pop(faultinject.ENV_VAR, None)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src")]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    return subprocess.run(
        [sys.executable, "-c", CHILD, root, spec or "-"],
        capture_output=True,
        text=True,
        env=env,
        timeout=240,
    )


def _crash_files(jobs_dir):
    """Relative paths of every committed crash artifact under every job."""
    found = set()
    for base, _dirs, names in os.walk(jobs_dir):
        if os.path.basename(base) != "crashes":
            continue
        for name in names:
            if name.endswith((".report.txt", ".triage.json")) or ".tmp." in name:
                continue
            found.add(os.path.relpath(os.path.join(base, name), jobs_dir))
    return found


def _restart_and_finish(root):
    service = CampaignService(
        str(root), max_workers=2, fsync=False, restart_policy=FAST_RETRIES
    )
    try:
        asyncio.run(service.run_until_idle())
        return service
    finally:
        service.close()


# -- the acceptance criterion --------------------------------------------------


def test_kill_and_restart_determinism_at_every_commit(tmp_path):
    clean = _run_child(str(tmp_path / "clean"), None)
    assert clean.returncode == 0, clean.stderr
    commits = int(re.search(r"COMMITS=(\d+)", clean.stdout).group(1))
    # epoch + 2 submits + 2 starts + 2 dones for this scenario shape.
    assert commits >= 7
    baseline = CrashDedupe().rebuild(
        os.path.join(str(tmp_path / "clean"), "jobs")
    ).counts()
    assert baseline  # the scenario must actually find crashes

    for commit in range(1, commits + 1):
        root = tmp_path / ("kill%02d" % commit)
        child = _run_child(str(root), "orch-kill@0.%d" % commit)
        assert child.returncode == faultinject.KILLED_EXIT_CODE, (
            commit, child.stdout, child.stderr,
        )
        jobs_dir = os.path.join(str(root), "jobs")
        pre_files = _crash_files(jobs_dir)
        pre_counts = CrashDedupe().rebuild(jobs_dir).counts()

        service = _restart_and_finish(root)
        # Zero lost jobs: everything journaled reaches a terminal state.
        assert all(r.terminal() for r in service.jobs.values()), commit
        assert all(
            r.state == SUCCEEDED for r in service.jobs.values()
        ), commit
        # Zero duplicate terminal transitions: every record of the killed
        # life folds cleanly (records are atomic, so nothing is torn).
        assert service.fold_conflicts == 0, commit
        assert not service.quarantined, commit
        # Crash-artifact superset of the pre-kill state.
        post_files = _crash_files(jobs_dir)
        assert post_files >= pre_files, commit
        disk = CrashDedupe().rebuild(jobs_dir).counts()
        for sig, count in pre_counts.items():
            assert disk.get(sig, 0) >= count, commit
        # The live dedupe index agrees with a cold disk rebuild.
        assert service.crash_signatures() == disk, commit
        # Deterministic engines: once both jobs are journaled, the final
        # harvest contains every signature the clean run found.
        if len(service.jobs) == 2:
            assert set(disk) >= set(baseline), commit


def test_killed_service_left_jobs_running_and_restart_requeues(tmp_path):
    root = str(tmp_path)
    # Commit 5 is past both submits and both starts for this scenario.
    child = _run_child(root, "orch-kill@0.5")
    assert child.returncode == faultinject.KILLED_EXIT_CODE, child.stderr
    from repro.service import load_job_table

    jobs, epochs, conflicts, _ = load_job_table(root)
    assert epochs == 1 and conflicts == 0
    assert any(r.state == RUNNING for r in jobs.values())

    service = _restart_and_finish(root)
    for record in service.jobs.values():
        assert record.state == SUCCEEDED
        # The requeue was free: attempts grew, the retry budget did not.
        assert record.attempts >= 1 and record.retries_used == 0


# -- torn journal records ------------------------------------------------------


def test_torn_journal_record_quarantines_and_jobs_still_finish(tmp_path):
    root = str(tmp_path)
    # Commit 4 is one of the "start" records; tearing it leaves the fold
    # with a submit and an (now) ill-typed done for that job.
    child = _run_child(root, "journal-torn@0.4")
    assert child.returncode == 0, child.stderr

    service = _restart_and_finish(root)
    assert len(service.quarantined) == 1
    assert service.quarantined[0][1] == "hash mismatch (torn?)"
    # The ill-typed follow-on record is counted, ignored, and the job —
    # folded back to pending — simply runs again: at-least-once, never lost.
    assert service.fold_conflicts >= 1
    assert all(r.state == SUCCEEDED for r in service.jobs.values())
    disk = CrashDedupe().rebuild(service.jobs_dir).counts()
    assert service.crash_signatures() == disk


# -- heartbeat deadlines, wall budgets, retries --------------------------------


def test_heartbeat_stall_retries_from_checkpoint_and_succeeds(tmp_path):
    faultinject.install("heartbeat-stall@0.1:secs=30")
    with CampaignService(
        str(tmp_path), fsync=False, restart_policy=FAST_RETRIES
    ) as service:
        job_id = service.submit(
            "gdk", budget_ticks=BUDGET, heartbeat_timeout=1.0
        )
        asyncio.run(service.run_until_idle())
        snap = service.status(job_id)
        assert snap["state"] == SUCCEEDED
        assert snap["retries_used"] == 1  # one stalled attempt, charged
        assert snap["attempts"] == 2
        assert snap["summary"]["crash_sigs"]


def test_dropped_result_message_retries_and_resumes_at_final_slice(tmp_path):
    # Message 9 is the final "done" (8 heartbeats precede it): the pipe
    # half-dies at the worst moment, after all the work is checkpointed.
    faultinject.install("job-drop@0.9")
    with CampaignService(
        str(tmp_path), fsync=False, restart_policy=FAST_RETRIES
    ) as service:
        job_id = service.submit(
            "gdk", budget_ticks=BUDGET, heartbeat_timeout=1.0
        )
        asyncio.run(service.run_until_idle())
        snap = service.status(job_id)
        assert snap["state"] == SUCCEEDED and snap["retries_used"] == 1
        # The retry resumed from the slice-8 checkpoint: same final tick.
        assert snap["summary"]["ticks"] >= BUDGET


def test_retry_budget_exhaustion_degrades_with_deadline_detail(tmp_path):
    faultinject.install(
        "heartbeat-stall@0.1:secs=30,heartbeat-stall@0.1.1:secs=30"
    )
    with CampaignService(
        str(tmp_path), fsync=False, restart_policy=FAST_RETRIES
    ) as service:
        job_id = service.submit(
            "gdk", budget_ticks=BUDGET, heartbeat_timeout=1.0, max_retries=1
        )
        asyncio.run(service.run_until_idle())
        snap = service.status(job_id)
        assert snap["state"] == DEGRADED
        assert snap["reason"]["category"] == "retry-budget"
        assert "deadline" in snap["reason"]["detail"]
        assert "HeartbeatTimeoutError" in snap["reason"]["detail"]


def test_tenant_retry_budget_is_shared_and_degrades(tmp_path):
    faultinject.install("heartbeat-stall@0.1:secs=30")
    with CampaignService(
        str(tmp_path),
        fsync=False,
        restart_policy=FAST_RETRIES,
        policies=(TenantPolicy("default", retry_budget=0),),
    ) as service:
        job_id = service.submit(
            "gdk", budget_ticks=BUDGET, heartbeat_timeout=1.0
        )
        asyncio.run(service.run_until_idle())
        snap = service.status(job_id)
        assert snap["state"] == DEGRADED
        assert snap["reason"]["category"] == "retry-budget"
        assert "tenant" in snap["reason"]["detail"]


def test_wall_budget_blows_the_typed_deadline(tmp_path):
    with CampaignService(
        str(tmp_path), fsync=False, restart_policy=FAST_RETRIES
    ) as service:
        job_id = service.submit(
            "gdk",
            budget_ticks=4_000_000,  # far more work than 0.3 s allows
            heartbeat_timeout=30.0,
            wall_budget=0.3,
            max_retries=0,
        )
        asyncio.run(service.run_until_idle())
        snap = service.status(job_id)
        assert snap["state"] == DEGRADED
        assert snap["reason"]["category"] == "retry-budget"
        assert "wall budget" in snap["reason"]["detail"]


# -- checkpoint corruption -----------------------------------------------------


def test_checkpoint_corruption_with_require_checkpoint_degrades_typed(tmp_path):
    # Tear the slice-8 checkpoint, then drop the "done" result: the retry
    # must resume from the checkpoint — which no longer verifies.
    faultinject.install("truncate@0.8:keep=10,job-drop@0.9")
    with CampaignService(
        str(tmp_path), fsync=False, restart_policy=FAST_RETRIES
    ) as service:
        job_id = service.submit(
            "gdk",
            budget_ticks=BUDGET,
            heartbeat_timeout=1.0,
            require_checkpoint=True,
        )
        asyncio.run(service.run_until_idle())
        snap = service.status(job_id)
        assert snap["state"] == DEGRADED
        assert snap["reason"]["category"] == "checkpoint-corrupt"
        # Deterministic failure: degraded on sight, no retry burned on it.
        assert snap["retries_used"] == 1  # the drop, not the corruption


def test_checkpoint_corruption_without_require_falls_back_to_store(tmp_path):
    faultinject.install("truncate@0.8:keep=10,job-drop@0.9")
    with CampaignService(
        str(tmp_path), fsync=False, restart_policy=FAST_RETRIES
    ) as service:
        job_id = service.submit(
            "gdk", budget_ticks=BUDGET, heartbeat_timeout=1.0
        )
        asyncio.run(service.run_until_idle())
        snap = service.status(job_id)
        # The durable store slice is the fallback truth: the job replays
        # it and completes instead of degrading.
        assert snap["state"] == SUCCEEDED
        assert snap["retries_used"] == 1


# -- scheduling under faults ---------------------------------------------------


def test_unaffected_jobs_finish_while_one_degrades(tmp_path):
    faultinject.install(
        "heartbeat-stall@0.1:secs=30,heartbeat-stall@0.1.1:secs=30,"
        "heartbeat-stall@0.1.2:secs=30"
    )
    with CampaignService(
        str(tmp_path), max_workers=2, fsync=False, restart_policy=FAST_RETRIES
    ) as service:
        doomed = service.submit(
            "gdk", budget_ticks=BUDGET, heartbeat_timeout=1.0, max_retries=2
        )
        healthy = service.submit("mp3gain", budget_ticks=BUDGET)
        summary = asyncio.run(service.run_until_idle())
        assert service.status(doomed)["state"] == DEGRADED
        assert service.status(healthy)["state"] == SUCCEEDED
        assert summary["states"] == {DEGRADED: 1, SUCCEEDED: 1}
        # The degraded job is terminal in the journal too, not just in RAM.
        from repro.service import load_job_table
    jobs, _, conflicts, _ = load_job_table(str(tmp_path))
    assert jobs[doomed].state == DEGRADED and conflicts == 0
    assert jobs[doomed].reason.category == "retry-budget"


def test_tenant_max_running_serializes_dispatch(tmp_path):
    with CampaignService(
        str(tmp_path),
        max_workers=2,
        fsync=False,
        restart_policy=FAST_RETRIES,
        policies=(TenantPolicy("default", max_running=1),),
    ) as service:
        service.submit("gdk", budget_ticks=BUDGET)
        service.submit("mp3gain", budget_ticks=BUDGET)
        picked = service._dispatchable()
        # One tenant, max_running=1: only one job is dispatchable at once.
        assert len(picked) == 1 and picked[0].spec.index == 0
        summary = asyncio.run(service.run_until_idle())
        assert summary["states"] == {SUCCEEDED: 2}


def test_priority_wins_dispatch_order(tmp_path):
    with CampaignService(
        str(tmp_path), max_workers=1, fsync=False, restart_policy=FAST_RETRIES
    ) as service:
        service.submit("gdk", budget_ticks=BUDGET, priority=0)
        urgent = service.submit("mp3gain", budget_ticks=BUDGET, priority=5)
        picked = service._dispatchable()
        assert [r.spec.job_id for r in picked] == [urgent]
        assert all(r.state == PENDING for r in service.jobs.values())
