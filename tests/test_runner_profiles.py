"""Runner profile/environment handling tests."""

from repro.experiments.runner import (
    _source_fingerprint,
    profile_runs,
    profile_scale,
    profile_subjects,
)
from repro.subjects import subject_names


def test_default_profile(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    monkeypatch.delenv("REPRO_RUNS", raising=False)
    monkeypatch.delenv("REPRO_SUBJECTS", raising=False)
    assert profile_scale() == 0.25
    assert profile_runs() == 3
    assert profile_subjects() == subject_names()


def test_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.5")
    monkeypatch.setenv("REPRO_RUNS", "7")
    monkeypatch.setenv("REPRO_SUBJECTS", "cflow, gdk ,mujs")
    assert profile_scale() == 2.5
    assert profile_runs() == 7
    assert profile_subjects() == ["cflow", "gdk", "mujs"]


def test_source_fingerprint_stable_within_process():
    assert _source_fingerprint() == _source_fingerprint()
    assert len(_source_fingerprint()) == 16
