"""Consistency tests for the builtin registry and diagnostics."""

from repro.lang.builtins_spec import BUILTIN_CODES, BUILTIN_NAMES, BUILTINS
from repro.lang.errors import LexError, MiniCError, ParseError, SemaError


def test_builtin_codes_bijective():
    assert len(BUILTIN_CODES) == len(BUILTINS)
    assert sorted(BUILTIN_CODES.values()) == list(range(len(BUILTINS)))
    for name, code in BUILTIN_CODES.items():
        assert BUILTIN_NAMES[code] == name


def test_builtin_arities_positive():
    for name, arity in BUILTINS.items():
        assert arity >= 1, name


def test_vm_dispatch_covers_every_builtin():
    from repro.runtime.interpreter import _BUILTIN_DISPATCH

    assert set(_BUILTIN_DISPATCH) == set(BUILTIN_CODES.values())


def test_error_hierarchy():
    assert issubclass(LexError, MiniCError)
    assert issubclass(ParseError, MiniCError)
    assert issubclass(SemaError, MiniCError)


def test_error_message_includes_line():
    err = ParseError("boom", line=12)
    assert "line 12" in str(err)
    assert err.message == "boom"
    assert err.line == 12


def test_error_without_line():
    err = LexError("plain")
    assert str(err) == "plain"
    assert err.line == 0


def test_every_builtin_callable_from_minic():
    """Each builtin compiles and executes with plausible arguments."""
    from repro.lang import compile_source
    from repro.runtime import execute

    calls = {
        "alloc": "len(alloc(3))",
        "len": "len(input)",
        "abs": "abs(0 - 4)",
        "min": "min(2, 9)",
        "max": "max(2, 9)",
        "memcmp": 'memcmp(input, 0, "a", 0, 1)',
        "copy": "copy(alloc(4), 0, input, 0, 1)",
        "fill": "fill(alloc(4), 0, 2, 7)",
        "read16": "read16(input, 0)",
        "read32": "read32(input, 0)",
        "read16le": "read16le(input, 0)",
        "read32le": "read32le(input, 0)",
    }
    assert set(calls) == set(BUILTINS) - {"trap"}
    for name, expr in calls.items():
        program = compile_source("fn main(input) { return %s; }" % expr)
        result = execute(program, b"abcdef")
        assert not result.crashed, name
