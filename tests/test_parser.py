"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse


def parse_body(stmts):
    """Parse a main() wrapping the statements; return the body list."""
    program = parse("fn main(input) { %s }" % stmts)
    return program.funcs[0].body.stmts


def parse_expr(text):
    """Parse an expression in statement position."""
    (stmt,) = parse_body("%s;" % text)
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


def test_empty_program():
    assert parse("").funcs == []


def test_function_with_params():
    program = parse("fn f(a, b, c) { return a; }")
    assert program.funcs[0].params == ["a", "b", "c"]


def test_function_without_params():
    assert parse("fn f() { return 0; }").funcs[0].params == []


def test_var_decl():
    (stmt,) = parse_body("var x = 3;")
    assert isinstance(stmt, ast.VarDecl)
    assert stmt.name == "x"
    assert stmt.init == ast.IntLit(3, 1)


def test_assignment():
    (stmt,) = parse_body("input = 4;")
    assert isinstance(stmt, ast.Assign)


def test_index_assignment():
    (stmt,) = parse_body("input[2] = 4;")
    assert isinstance(stmt, ast.IndexAssign)


def test_invalid_assignment_target_rejected():
    with pytest.raises(ParseError):
        parse_body("3 = 4;")


def test_if_without_else():
    (stmt,) = parse_body("if (1) { return 0; }")
    assert isinstance(stmt, ast.If)
    assert stmt.else_block is None


def test_if_else():
    (stmt,) = parse_body("if (1) { return 0; } else { return 1; }")
    assert stmt.else_block is not None


def test_else_if_chains_nest():
    (stmt,) = parse_body(
        "if (1) { return 0; } else if (2) { return 1; } else { return 2; }"
    )
    nested = stmt.else_block.stmts[0]
    assert isinstance(nested, ast.If)
    assert nested.else_block is not None


def test_while_loop():
    (stmt,) = parse_body("while (input) { break; }")
    assert isinstance(stmt, ast.While)
    assert isinstance(stmt.body.stmts[0], ast.Break)


def test_for_loop_full_header():
    (stmt,) = parse_body("for (var i = 0; i < 3; i = i + 1) { continue; }")
    assert isinstance(stmt, ast.For)
    assert isinstance(stmt.init, ast.VarDecl)
    assert isinstance(stmt.cond, ast.BinOp)
    assert isinstance(stmt.step, ast.Assign)


def test_for_loop_empty_header():
    (stmt,) = parse_body("for (;;) { break; }")
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_return_with_and_without_value():
    stmts = parse_body("return; return 3;")
    assert stmts[0].value is None
    assert stmts[1].value == ast.IntLit(3, 1)


def test_precedence_mul_over_add():
    expr = parse_expr("1 + 2 * 3")
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_precedence_comparison_over_logic():
    expr = parse_expr("1 < 2 && 3 == 4")
    assert expr.op == "&&"
    assert expr.left.op == "<"
    assert expr.right.op == "=="


def test_precedence_or_weaker_than_and():
    expr = parse_expr("1 || 2 && 3")
    assert expr.op == "||"
    assert expr.right.op == "&&"


def test_shift_precedence():
    expr = parse_expr("1 << 2 + 3")
    assert expr.op == "<<"
    assert expr.right.op == "+"


def test_left_associativity():
    expr = parse_expr("10 - 4 - 3")
    assert expr.op == "-"
    assert expr.left.op == "-"


def test_unary_operators():
    for op in ("-", "!", "~"):
        expr = parse_expr("%s input" % op)
        assert isinstance(expr, ast.UnOp)
        assert expr.op == op


def test_nested_unary():
    expr = parse_expr("--3")
    assert isinstance(expr.operand, ast.UnOp)


def test_parenthesized_grouping():
    expr = parse_expr("(1 + 2) * 3")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_call_with_args():
    expr = parse_expr("abs(input)")
    assert isinstance(expr, ast.Call)
    assert expr.callee == "abs"
    assert len(expr.args) == 1


def test_chained_postfix_index():
    expr = parse_expr("input[1 + 2]")
    assert isinstance(expr, ast.Index)
    assert expr.index.op == "+"


def test_call_on_expression_rejected():
    with pytest.raises(ParseError):
        parse_expr("input[0](1)")


def test_string_literal_expression():
    expr = parse_expr('"abc"')
    assert isinstance(expr, ast.StrLit)
    assert expr.value == b"abc"


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_body("var x = 3")


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse("fn main(input) { return 0;")


def test_garbage_toplevel_rejected():
    with pytest.raises(ParseError):
        parse("var x = 3;")


def test_error_carries_line_number():
    with pytest.raises(ParseError) as info:
        parse("fn main(input) {\n\n  var = 3;\n}")
    assert info.value.line == 3
