"""Crash-triage tests: stack hashing, ground-truth bugs, set reports."""

from repro.runtime.traps import Frame
from repro.triage.report import (
    format_venn,
    intersect,
    pairwise_cells,
    subtract,
    union_all,
    venn_regions,
)
from repro.triage.stacktrace import format_stack, stack_hash


def frames(*pairs):
    return [Frame(name, line) for name, line in pairs]


def test_stack_hash_deterministic():
    stack = frames(("a", 1), ("b", 2))
    assert stack_hash(stack) == stack_hash(frames(("a", 1), ("b", 2)))


def test_stack_hash_sensitive_to_frames():
    assert stack_hash(frames(("a", 1))) != stack_hash(frames(("a", 2)))
    assert stack_hash(frames(("a", 1))) != stack_hash(frames(("b", 1)))


def test_stack_hash_top5_only():
    deep_a = frames(*[("f%d" % i, i) for i in range(8)])
    deep_b = deep_a[:5] + frames(("other", 99), ("tail", 1), ("x", 2))
    assert stack_hash(deep_a) == stack_hash(deep_b)


def test_stack_hash_depth_override():
    a = frames(("a", 1), ("b", 2))
    b = frames(("a", 1), ("c", 3))
    assert stack_hash(a, depth=1) == stack_hash(b, depth=1)
    assert stack_hash(a, depth=2) != stack_hash(b, depth=2)


def test_format_stack():
    assert format_stack(frames(("f", 3), ("main", 10))) == "f:3 <- main:10"


def test_intersect_and_subtract():
    results = {"a": {1, 2, 3}, "b": {2, 3, 4}}
    assert intersect(results, "a", "b") == 2
    assert subtract(results, "a", "b") == 1
    assert subtract(results, "b", "a") == 1


def test_pairwise_cells():
    results = {"a": {1, 2}, "b": {2, 3}}
    assert pairwise_cells(results, [("a", "b")]) == [(1, 1, 1)]


def test_venn_regions_partition():
    results = {"a": {1, 2, 3}, "b": {2, 3, 4}, "c": {3, 5}}
    regions = venn_regions(results, ["a", "b", "c"])
    assert sum(regions.values()) == len({1, 2, 3, 4, 5})
    assert regions[frozenset(["a", "b", "c"])] == 1  # element 3
    assert regions[frozenset(["a"])] == 1  # element 1
    assert regions[frozenset(["c"])] == 1  # element 5


def test_format_venn_mentions_all_regions():
    results = {"a": {1}, "b": {1, 2}}
    regions = venn_regions(results, ["a", "b"])
    text = format_venn(regions, ["a", "b"])
    assert "a & b" in text and "b" in text


def test_union_all():
    results = {"a": {1}, "b": {2}, "c": {2, 3}}
    assert union_all(results) == {1, 2, 3}
    assert union_all(results, ["a", "b"]) == {1, 2}


def test_bugs_from_crash_records():
    from repro.triage.bugs import bugs_from_crashes, crashes_by_bug

    class FakeRecord(object):
        def __init__(self, bug):
            self._bug = bug

        def bug_id(self):
            return self._bug

    records = [FakeRecord(("f", 1, "oob")), FakeRecord(("f", 1, "oob")),
               FakeRecord(("g", 2, "div"))]
    assert bugs_from_crashes(records) == {("f", 1, "oob"), ("g", 2, "div")}
    grouped = crashes_by_bug(records)
    assert len(grouped[("f", 1, "oob")]) == 2


def test_engine_crash_maps_to_census_bug():
    """A crash produced by fuzzing maps to the subject's declared census."""
    from repro.subjects import get_subject

    subject = get_subject("flvmeta")
    declared = {bug.bug_id for bug in subject.bugs}
    for bug in subject.bugs:
        result = subject.run(bug.witness)
        assert result.trap.bug_id() in declared
        hash5 = stack_hash(result.trap.stack)
        assert len(hash5) == 16
