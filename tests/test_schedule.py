"""Power-schedule tests."""

from repro.fuzzer.corpus import Queue
from repro.fuzzer.schedule import havoc_iterations, performance_score


def make_entry(cost=100, trace_size=10, depth=0, handicap=0):
    queue = Queue()
    classified = {i: 1 for i in range(trace_size)}
    entry = queue.make_entry(b"x" * 8, cost, classified, depth, found_at=0)
    entry.handicap = handicap
    return entry


def test_neutral_entry_scores_100():
    entry = make_entry(cost=100, trace_size=10)
    assert performance_score(entry, 100, 10) == 100


def test_fast_entries_rewarded():
    fast = make_entry(cost=20)
    slow = make_entry(cost=500)
    assert performance_score(fast, 100, 10) > performance_score(slow, 100, 10)


def test_large_trace_rewarded():
    wide = make_entry(trace_size=30)
    narrow = make_entry(trace_size=3)
    assert performance_score(wide, 100, 10) > performance_score(narrow, 100, 10)


def test_depth_multiplier():
    deep = make_entry(depth=20)
    shallow = make_entry(depth=0)
    assert performance_score(deep, 100, 10) > performance_score(shallow, 100, 10)


def test_handicap_consumed():
    entry = make_entry(handicap=5)
    first = performance_score(entry, 100, 10)
    assert first > 100
    assert entry.handicap < 5


def test_score_clamped():
    tiny = make_entry(cost=1, trace_size=100, depth=30)
    assert performance_score(tiny, 1000, 5) <= 1600
    heavy = make_entry(cost=10_000, trace_size=1)
    assert performance_score(heavy, 100, 10) >= 10


def test_havoc_iterations_scale_and_floor():
    assert havoc_iterations(100) == 32
    assert havoc_iterations(1600) == 512
    assert havoc_iterations(10) == 8  # floor


def test_zero_averages_no_crash():
    entry = make_entry()
    assert performance_score(entry, 0, 0) > 0
