"""Unit tests for the small infrastructure modules: instruction formatting,
graph/program validation, virtual clock, values, heap."""

import pytest

from repro.cfg.block import BasicBlock
from repro.cfg.graph import FunctionCFG
from repro.cfg.instructions import (
    BIN,
    BINOPS,
    BR,
    CALL,
    CONST,
    JMP,
    LOAD,
    MOV,
    RET,
    STORE,
    format_instr,
    format_term,
)
from repro.cfg.program import ProgramCFG
from repro.fuzzer.clock import TICKS_PER_HOUR, VirtualClock, hours_to_ticks
from repro.lang import compile_source
from repro.runtime.memory import MAX_ALLOC, Heap
from repro.runtime.values import ArrayRef, wrap_int


# -- instruction formatting -------------------------------------------------


def test_format_instr_variants():
    assert format_instr((CONST, 1, 42)) == "r1 = 42"
    assert format_instr((MOV, 1, 2)) == "r1 = r2"
    assert "r2 = r3 + r4" in format_instr((BIN, BINOPS["+"], 2, 3, 4, 7))
    assert "line 9" in format_instr((LOAD, 1, 2, 3, 9))
    assert "line 9" in format_instr((STORE, 1, 2, 3, 9))
    assert "call f5" in format_instr((CALL, 1, 5, (2, 3), 4))


def test_format_instr_rejects_unknown():
    with pytest.raises(ValueError):
        format_instr((99, 1, 2))


def test_format_term_variants():
    assert format_term((JMP, 3)) == "jmp b3"
    assert format_term((BR, 1, 2, 3)) == "br r1 ? b2 : b3"
    assert format_term((RET, -1)) == "ret"
    assert format_term((RET, 5)) == "ret r5"


# -- blocks and graphs --------------------------------------------------------


def test_block_successors():
    block = BasicBlock(0)
    block.term = (BR, 1, 2, 3)
    assert block.successors() == (2, 3)
    block.term = (BR, 1, 2, 2)  # identical targets collapse
    assert block.successors() == (2,)
    block.term = (RET, -1)
    assert block.successors() == ()


def test_block_pretty_lists_instructions():
    block = BasicBlock(4)
    block.instrs.append((CONST, 0, 1))
    block.term = (RET, 0)
    text = block.pretty()
    assert text.startswith("b4:")
    assert "r0 = 1" in text


def test_cfg_validate_rejects_unterminated():
    cfg = FunctionCFG("f", 0, 0)
    cfg.new_block()
    with pytest.raises(ValueError):
        cfg.validate()


def test_cfg_validate_rejects_bad_target():
    cfg = FunctionCFG("f", 0, 0)
    block = cfg.new_block()
    block.term = (JMP, 7)
    with pytest.raises(ValueError):
        cfg.validate()


def test_cfg_validate_requires_return():
    cfg = FunctionCFG("f", 0, 0)
    a = cfg.new_block()
    a.term = (JMP, 0)
    with pytest.raises(ValueError):
        cfg.validate()


def test_program_func_lookup_and_stats():
    program = compile_source(
        "fn helper(x) { return x + 1; } fn main(input) { return helper(2); }"
    )
    assert program.func("helper").name == "helper"
    stats = program.stats()
    assert stats["functions"] == 2
    assert stats["edges"] == len(program.all_edges())


def test_program_pretty_contains_all_functions():
    program = compile_source(
        "fn helper(x) { return x; } fn main(input) { return helper(1); }"
    )
    text = program.pretty()
    assert "fn helper" in text and "fn main" in text


def test_program_requires_main():
    cfg = FunctionCFG("f", 0, 1)
    block = cfg.new_block()
    block.term = (RET, -1)
    program = ProgramCFG([cfg], [])
    with pytest.raises(ValueError):
        program.validate()


# -- virtual clock -------------------------------------------------------------


def test_clock_budget_lifecycle():
    clock = VirtualClock(100)
    assert not clock.expired()
    assert clock.remaining() == 100
    clock.charge(60)
    assert clock.remaining() == 40
    clock.charge(60)
    assert clock.expired()
    assert clock.remaining() == 0


def test_hours_to_ticks_scaling():
    assert hours_to_ticks(1) == TICKS_PER_HOUR
    assert hours_to_ticks(2, 0.5) == TICKS_PER_HOUR
    assert hours_to_ticks(0.5, 1.0) == TICKS_PER_HOUR // 2


# -- values and heap --------------------------------------------------------------


def test_wrap_int_boundaries():
    assert wrap_int(2 ** 63 - 1) == 2 ** 63 - 1
    assert wrap_int(2 ** 63) == -(2 ** 63)
    assert wrap_int(-(2 ** 63) - 1) == 2 ** 63 - 1
    assert wrap_int(2 ** 64) == 0


def test_heap_alloc_and_bounds():
    heap = Heap()
    ref = heap.alloc(4)
    assert heap.length(ref) == 4
    assert heap.storage(ref) == [0, 0, 0, 0]
    assert heap.alloc(-1) is None
    assert heap.alloc(MAX_ALLOC + 1) is None


def test_heap_string_pool_is_readonly():
    heap = Heap([b"AB"])
    ref = heap.string_ref(0)
    assert heap.is_readonly(ref)
    assert heap.snapshot_bytes(ref) == b"AB"
    fresh = heap.alloc(2)
    assert not heap.is_readonly(fresh)


def test_array_ref_repr():
    assert "ro" in repr(ArrayRef(3, readonly=True))
    assert "rw" in repr(ArrayRef(3))
