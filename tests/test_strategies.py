"""Exploration-biasing strategy tests."""

import random

from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.campaign import replay_edge_coverage
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.strategies.culling import (
    edge_preserving_subset,
    path_preserving_subset,
    random_subset,
    run_culling_campaign,
)
from repro.strategies.opportunistic import preprocess_queue, run_opportunistic_campaign
from repro.subjects import get_subject


def small_config(subject):
    return EngineConfig(
        max_input_len=subject.max_input_len,
        exec_instr_budget=subject.exec_instr_budget,
    )


def test_edge_preserving_subset_preserves_coverage():
    subject = get_subject("gdk")
    engine = FuzzEngine(
        subject.program, PathFeedback(), subject.seeds,
        random.Random(0), small_config(subject), subject.tokens,
    )
    engine.run(400_000)
    inputs = engine.corpus_inputs()
    subset = edge_preserving_subset(subject.program, inputs)
    assert len(subset) <= len(inputs)
    full = replay_edge_coverage(subject.program, inputs)
    kept = replay_edge_coverage(subject.program, subset)
    assert kept == full


def test_edge_preserving_subset_drops_redundancy():
    subject = get_subject("flvmeta")
    # Duplicates of one input must collapse to a single representative.
    inputs = [subject.seeds[0]] * 10
    subset = edge_preserving_subset(subject.program, inputs)
    assert len(subset) == 1


def test_path_preserving_subset_is_favored_corpus():
    subject = get_subject("flvmeta")
    engine = FuzzEngine(
        subject.program, PathFeedback(), subject.seeds,
        random.Random(1), small_config(subject), subject.tokens,
    )
    engine.run(200_000)
    subset = path_preserving_subset(engine)
    favored = [e.data for e in engine.queue.favored_entries()]
    assert subset == favored


def test_random_subset_bounds():
    rng = random.Random(0)
    inputs = [bytes([i]) for i in range(100)]
    for _ in range(10):
        subset = random_subset(inputs, rng)
        assert 1 <= len(subset) <= 16
    assert random_subset([], rng) == []


def test_random_subset_preserves_order():
    rng = random.Random(3)
    inputs = [bytes([i]) for i in range(50)]
    subset = random_subset(inputs, rng)
    positions = [inputs.index(x) for x in subset]
    assert positions == sorted(positions)


def test_culling_campaign_runs_rounds():
    subject = get_subject("flvmeta")
    rng = random.Random(0)
    engines, final = run_culling_campaign(
        subject, PathFeedback, total_budget=400_000, round_budget=100_000,
        rng=rng, config=small_config(subject), criterion="edges",
    )
    assert len(engines) >= 3  # several rounds fit the budget
    assert final is engines[-1]


def test_culling_campaign_budget_includes_cull_cost():
    subject = get_subject("flvmeta")
    rng = random.Random(0)
    engines, _ = run_culling_campaign(
        subject, PathFeedback, total_budget=300_000, round_budget=100_000,
        rng=rng, config=small_config(subject), criterion="random",
    )
    total_ticks = sum(e.clock.ticks for e in engines)
    # rounds never exceed the global budget by more than one round
    assert total_ticks <= 300_000 + 100_000


def test_culling_criteria_all_work():
    subject = get_subject("flvmeta")
    for criterion in ("edges", "paths", "random"):
        engines, _ = run_culling_campaign(
            subject, PathFeedback, total_budget=250_000, round_budget=80_000,
            rng=random.Random(1), config=small_config(subject),
            criterion=criterion,
        )
        assert engines


def test_culling_unknown_criterion_rejected():
    import pytest

    subject = get_subject("flvmeta")
    with pytest.raises(ValueError):
        run_culling_campaign(
            subject, PathFeedback, total_budget=200_000, round_budget=100_000,
            rng=random.Random(0), config=small_config(subject),
            criterion="bogus",
        )


def test_opportunistic_two_phases():
    subject = get_subject("flvmeta")
    engines, final, edge_engine = run_opportunistic_campaign(
        subject, total_budget=400_000, rng=random.Random(0),
        config=small_config(subject),
    )
    assert edge_engine is not None
    assert engines == [final]
    assert isinstance(final.feedback, PathFeedback)
    assert isinstance(edge_engine.feedback, EdgeFeedback)
    # the split honours the budget
    assert edge_engine.clock.ticks + final.clock.ticks >= 400_000


def test_opportunistic_preprocess_drops_to_favored():
    subject = get_subject("flvmeta")
    engine = FuzzEngine(
        subject.program, EdgeFeedback(), subject.seeds,
        random.Random(2), small_config(subject), subject.tokens,
    )
    engine.run(300_000)
    trimmed = preprocess_queue(engine)
    assert 0 < len(trimmed) <= len(engine.queue.entries)
    # trimming preserves the edge coverage of the full queue
    full = replay_edge_coverage(subject.program, engine.corpus_inputs())
    kept = replay_edge_coverage(subject.program, trimmed)
    assert kept == full


def test_opportunistic_with_prepared_queue_skips_phase_one():
    subject = get_subject("flvmeta")
    engines, final, edge_engine = run_opportunistic_campaign(
        subject, total_budget=150_000, rng=random.Random(0),
        config=small_config(subject), prepared_queue=list(subject.seeds),
    )
    assert edge_engine is None
    assert final.clock.ticks >= 150_000


def test_opportunistic_phase1_crashes_not_credited():
    subject = get_subject("gdk")
    engines, final, edge_engine = run_opportunistic_campaign(
        subject, total_budget=600_000, rng=random.Random(4),
        config=small_config(subject),
    )
    # the result engines exclude the edge phase regardless of its crashes
    assert edge_engine not in engines
