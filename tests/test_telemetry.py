"""Telemetry subsystem tests: bus, sinks, metrics, plateaus, render, CLI.

The load-bearing assertions are the determinism contract (a traced campaign
is field-for-field equal to an untraced one) and the rate/bucket edge cases
the ISSUE calls out: ``execs_per_vhour`` at ``tick <= 0``, histogram
``le`` bucket boundaries, plateau detection on degenerate series, and
JSONL sink rotation plus malformed-line tolerance on reload.
"""

import json
import logging
import os

import pytest

from repro.cli import main
from repro.fuzzer.stats import CampaignStats, MatrixProgress, WorkerSample
from repro.subjects import get_subject
from repro.telemetry import engine_telemetry, start_trace
from repro.telemetry.bus import (
    CampaignEvent,
    JsonlSink,
    NullSink,
    PlateauEvent,
    SpanEvent,
    TelemetryBus,
    WorkerProgressEvent,
    format_event_line,
    read_trace,
)
from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from repro.telemetry.plateau import (
    Plateau,
    PlateauDetector,
    default_window,
    detect_plateaus,
)
from repro.telemetry.trace import EngineTelemetry, SpanTracer


# -- bus -----------------------------------------------------------------------


def test_bus_publishes_to_sinks_and_ring():
    bus = TelemetryBus(capacity=4)
    seen = []

    class ListSink:
        def emit(self, event):
            seen.append(event)

        def close(self):
            pass

    sink = bus.attach(ListSink())
    events = [SpanEvent("s%d" % i, 0.1) for i in range(6)]
    for event in events:
        bus.publish(event)
    assert seen == events
    # Ring keeps only the newest `capacity` events.
    assert list(bus.recent()) == events[-4:]
    bus.detach(sink)
    bus.publish(SpanEvent("after", 0.0))
    assert len(seen) == 6


def test_bus_survives_null_sink_and_clear():
    bus = TelemetryBus()
    bus.attach(NullSink())
    bus.publish(CampaignEvent("begin", "gdk", "path", 0))
    assert len(bus.recent()) == 1
    bus.clear()
    assert list(bus.recent()) == []


def test_event_round_trips_through_dict():
    event = WorkerProgressEvent(
        "lbl", 2, tick=100, execs=50, queue=3, crashes=1, hangs=0,
        coverage=7, elapsed=1.5,
    )
    data = event.to_dict()
    assert data["kind"] == "worker_progress"
    assert data["worker"] == 2 and data["coverage"] == 7
    # Every event renders to a one-line TTY string.
    assert "w2" in format_event_line(data)


# -- JSONL sink: rotation, reload, malformed tolerance -------------------------


def test_jsonl_sink_writes_and_reloads(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path, flush_every=1)
    for i in range(5):
        sink.emit(SpanEvent("step", float(i)))
    sink.close()
    events, skipped = read_trace(path)
    assert skipped == 0
    assert [e["kind"] for e in events] == ["span"] * 5
    assert [e["secs"] for e in events] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_jsonl_sink_rotates_atomically(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path, rotate_bytes=256, flush_every=1)
    for i in range(50):
        sink.emit(SpanEvent("rot", float(i)))
    sink.close()
    assert os.path.exists(path + ".1")
    events, skipped = read_trace(path)
    # One archive generation is kept: the merged view is the archive then
    # the live file — a contiguous, ordered tail ending at the last emit.
    assert skipped == 0
    secs = [e["secs"] for e in events]
    assert secs == sorted(secs)
    assert secs[-1] == 49.0
    assert secs == [float(i) for i in range(50 - len(secs), 50)]
    live_events, _ = read_trace(path, include_rotated=False)
    assert len(live_events) < len(events)


def test_read_trace_tolerates_malformed_lines(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    good = json.dumps({"kind": "span", "name": "x", "secs": 0.5, "wall": 1.0})
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(good + "\n")
        handle.write("{truncated...\n")
        handle.write("not json at all\n")
        handle.write(good + "\n")
        handle.write("[1, 2, 3]\n")  # JSON but not an event object
    events, skipped = read_trace(path)
    assert len(events) == 2
    assert skipped == 3


def test_jsonl_sink_ignores_forked_children(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path, flush_every=1)
    sink.emit(SpanEvent("parent", 1.0))
    sink._pid = os.getpid() + 1  # simulate inheritance across fork
    sink.emit(SpanEvent("child", 2.0))
    sink._pid = os.getpid()
    sink.close()
    events, _ = read_trace(path)
    assert [e["name"] for e in events] == ["parent"]


# -- metrics -------------------------------------------------------------------


def test_histogram_bucket_boundaries_are_le():
    h = Histogram("h", bounds=(1.0, 2.0, 4.0))
    h.observe(1.0)   # == bound -> that bucket (le semantics)
    h.observe(1.5)
    h.observe(2.0)
    h.observe(4.0001)  # above the last bound -> overflow
    assert h.counts == [1, 2, 0, 1]
    assert h.count == 4
    assert h.mean() == pytest.approx((1.0 + 1.5 + 2.0 + 4.0001) / 4)


def test_histogram_quantile_and_merge():
    h = Histogram("h", bounds=(1.0, 2.0, 4.0))
    assert h.quantile(0.5) == 0.0  # empty
    for value in (0.5, 0.5, 3.0, 100.0):
        h.observe(value)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(1.0) == 4.0  # overflow reports the last bound
    other = Histogram("h", bounds=(1.0, 2.0, 4.0))
    other.observe(1.5)
    h.merge(other)
    assert h.count == 5
    with pytest.raises(ValueError):
        h.merge(Histogram("x", bounds=(1.0,)))


def test_registry_snapshot_and_diff():
    reg = MetricsRegistry()
    reg.counter("execs").inc(10)
    reg.gauge("coverage").set(7)
    reg.histogram("span.execute").observe(0.001)
    snap1 = reg.snapshot()
    reg.counter("execs").inc(5)
    snap2 = reg.snapshot()
    assert diff_snapshots(snap1, snap2)["execs"] == 5
    # Resume boundary: the counter shrank, so the delta restarts from zero.
    resumed = {"counters": {"execs": 3}}
    assert diff_snapshots(snap2, resumed)["execs"] == 3
    assert snap1["gauges"]["coverage"] == 7
    assert snap1["histograms"]["span.execute"]["count"] == 1


# -- rate math edge cases ------------------------------------------------------


def test_worker_sample_rates_at_zero_denominators():
    sample = WorkerSample(0, tick=0, execs=100, queue_size=1, crashes=0,
                          hangs=0, wall=0.0)
    assert sample.execs_per_vhour() == 0.0
    assert sample.execs_per_sec() == 0.0
    sample = WorkerSample(0, tick=-5, execs=100, queue_size=1, crashes=0,
                          hangs=0, wall=-1.0)
    assert sample.execs_per_vhour() == 0.0
    assert sample.execs_per_sec() == 0.0
    sample = WorkerSample(0, tick=400_000, execs=100, queue_size=1, crashes=0,
                          hangs=0, wall=2.0)
    assert sample.execs_per_vhour() == pytest.approx(100.0)
    assert sample.execs_per_sec() == pytest.approx(50.0)


# -- plateau detection ---------------------------------------------------------


def test_detect_plateaus_degenerate_series():
    assert detect_plateaus([]) == []
    assert detect_plateaus([(100, 5)]) == []
    assert detect_plateaus([(100, 5), (100, 5)]) == []  # zero span


def test_detect_plateaus_constant_series_is_one_open_plateau():
    series = [(i * 100, 10) for i in range(9)]  # span 800, window 100
    plateaus = detect_plateaus(series)
    assert len(plateaus) == 1
    assert plateaus[0] == Plateau("coverage", 0, None, 10)
    assert plateaus[0].open


def test_detect_plateaus_strictly_increasing_has_none():
    series = [(i * 100, i) for i in range(9)]
    assert detect_plateaus(series) == []


def test_detect_plateaus_closes_on_gain_and_rectifies_merges():
    # Stall from tick 100 to 500, then gain; merged multi-worker series are
    # non-monotone, so the running-max envelope must absorb the dip at 300.
    series = [(0, 1), (100, 5), (200, 5), (300, 2), (400, 5), (500, 6),
              (600, 6)]
    plateaus = detect_plateaus(series, window=150)
    assert plateaus == [Plateau("coverage", 100, 500, 5)]
    assert plateaus[0].duration() == 400


def test_plateau_detector_publishes_begin_and_end_events():
    bus = TelemetryBus()
    detector = PlateauDetector(window=10, bus=bus, label="w0")
    for tick, value in [(0, 1), (10, 1), (20, 1), (30, 2)]:
        detector.observe(tick, value)
    detector.finish(30)
    phases = [e.phase for e in bus.recent() if isinstance(e, PlateauEvent)]
    assert phases == ["begin", "end"]
    assert detector.plateaus == [Plateau("coverage", 0, 30, 1)]


def test_plateau_detector_rejects_bad_window():
    with pytest.raises(ValueError):
        PlateauDetector(window=0)
    assert default_window(800) == 100
    assert default_window(4) == 1


# -- span tracer & engine telemetry --------------------------------------------


def test_span_tracer_records_histograms_and_events():
    bus = TelemetryBus()
    tracer = SpanTracer(bus=bus)
    with tracer.span("sync_round", tick=42):
        pass
    tracer.observe("execute", 0.001)  # hot path: histogram only, no event
    names = [e.name for e in bus.recent() if isinstance(e, SpanEvent)]
    assert names == ["sync_round"]
    assert tracer.registry.histogram("span.sync_round").count == 1
    assert tracer.registry.histogram("span.execute").count == 1


def test_engine_telemetry_counts_and_plateaus():
    class FakeResult:
        def __init__(self, timeout=False, trap=None):
            self.instr_count = 10
            self.timeout = timeout
            self.trap = trap

    bus = TelemetryBus()
    tel = EngineTelemetry(bus=bus, label="t").begin(budget_ticks=800)
    tel.record_exec(0.001, FakeResult())
    tel.record_exec(0.001, FakeResult(timeout=True))
    tel.record_exec(0.001, FakeResult(trap="overflow"))
    tel.record_stage("mutate", 0.0005)
    tel.record_queued()
    tel.record_skipped()
    for tick in (0, 200, 400, 600, 800):
        tel.sample(tick, coverage=5, queue_size=1, crashes=1, execs=3)
    tel.finish(800)
    tel.finish(800)  # idempotent: no duplicate end events
    reg = tel.registry
    assert reg.counter("execs").value == 3
    assert reg.counter("hangs").value == 1
    assert reg.counter("crashes").value == 1
    assert reg.counter("instrs").value == 30
    assert reg.histogram("span.mutate").count == 1
    assert len(tel.plateaus()) == 1 and tel.plateaus()[0].open
    ends = [e for e in bus.recent()
            if isinstance(e, PlateauEvent) and e.phase == "end"]
    assert len(ends) == 1


# -- determinism contract ------------------------------------------------------


def test_traced_campaign_equals_untraced(tmp_path):
    from repro.experiments.config import run_config

    subject = get_subject("flvmeta")
    budget = 50_000
    plain = run_config(subject, "pcguard", 0, budget)
    bus = TelemetryBus()
    bus.attach(JsonlSink(str(tmp_path / "t.jsonl"), flush_every=1))
    telemetry = EngineTelemetry(bus=bus, label="x").begin(budget)
    traced = run_config(subject, "pcguard", 0, budget, telemetry=telemetry)
    bus.close()
    assert plain == traced
    assert plain.plateaus == traced.plateaus
    assert os.path.getsize(str(tmp_path / "t.jsonl")) > 0


def test_campaign_result_exposes_plateaus():
    from repro.experiments.config import run_config

    subject = get_subject("flvmeta")
    result = run_config(subject, "pcguard", 0, 100_000)
    assert isinstance(result.plateaus, tuple)
    for plateau in result.plateaus:
        assert plateau.metric == "coverage"
        assert plateau.start_tick >= 0


# -- stats-on-the-bus back-compat ----------------------------------------------


def test_campaign_stats_publishes_typed_events():
    bus = TelemetryBus()
    stats = CampaignStats(label="gdk/path#0", bus=bus)
    stats.record_worker(0, tick=100, execs=10, queue_size=2, crashes=0,
                        coverage=4)
    stats.record_sync(200, offered=3, accepted=1,
                      imported_per_worker=[(0, 1)])
    stats.record_restart(1, attempt=1, reason="crash", delay=0.5)
    stats.record_degraded(1, reason="restart budget exhausted")
    kinds = [type(e).__name__ for e in bus.recent()]
    assert kinds == ["WorkerProgressEvent", "SyncRoundEvent",
                     "WorkerRestartEvent", "WorkerDroppedEvent"]
    assert stats.restart_counts(workers=2) == (0, 1)
    assert any("degraded" in line for line in stats.summary_lines())


def test_campaign_stats_log_sink_mirrors_legacy_lines(caplog):
    # The default bus carries a LogSink that reproduces the historical
    # logger output, so pre-bus consumers of the log stream see no change.
    stats = CampaignStats(label="gdk/path#0")
    with caplog.at_level(logging.INFO, logger="repro.fuzzer.parallel"):
        stats.record_worker(0, tick=100, execs=10, queue_size=2, crashes=0)
        stats.record_restart(1, attempt=1, reason="crash", delay=0.5)
    text = caplog.text
    assert "worker 0 @tick 100" in text
    assert "worker 1 restart #1" in text


def test_matrix_progress_publishes_cell_events():
    bus = TelemetryBus()
    progress = MatrixProgress(total=2, bus=bus)
    progress.record_cell(("gdk", "path", 0), "ok", 1.0, execs=10)
    progress.record_retry(("gdk", "path", 1), attempt=1,
                          kind="crashed", delay=0.1)
    kinds = [e.kind for e in bus.recent()]
    assert kinds == ["cell", "cell_retry"]


# -- env-driven activation -----------------------------------------------------


def test_engine_telemetry_disabled_without_trace_env(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert engine_telemetry(label="x") is None


def test_engine_telemetry_enabled_by_trace_env(tmp_path, monkeypatch):
    import repro.telemetry as tel

    path = str(tmp_path / "env.jsonl")
    monkeypatch.setenv("REPRO_TRACE", path)
    bus = TelemetryBus()
    # Route the "global" bus to a private one so the test stays hermetic.
    monkeypatch.setattr(tel, "get_bus", lambda: bus)
    telemetry = tel.engine_telemetry(label="x", budget_ticks=800)
    assert telemetry is not None
    assert any(isinstance(s, JsonlSink) for s in bus.sinks)
    # Idempotent: a second engine on the same bus adds no second sink.
    tel.engine_telemetry(label="y", budget_ticks=800)
    assert sum(isinstance(s, JsonlSink) for s in bus.sinks) == 1
    bus.close()
    assert os.path.exists(path)


def test_start_trace_suffix_derives_sibling_files(tmp_path, monkeypatch):
    path = str(tmp_path / "trace.jsonl")
    bus = TelemetryBus()
    sink = start_trace(path, suffix="w3", bus=bus)
    sink.emit(SpanEvent("x", 0.0))
    bus.close()
    assert os.path.exists(str(tmp_path / "trace.w3.jsonl"))


# -- renderer ------------------------------------------------------------------


def _synthetic_trace(tmp_path):
    path = str(tmp_path / "synthetic.jsonl")
    bus = TelemetryBus()
    sink = bus.attach(JsonlSink(path, flush_every=1))
    bus.publish(CampaignEvent("begin", "gdk", "path", 0, workers=2,
                              budget=1000))
    for worker in range(2):
        for tick in (250, 500, 750, 1000):
            bus.publish(WorkerProgressEvent(
                "gdk/path#0", worker, tick=tick, execs=tick // 10,
                queue=3, crashes=worker, hangs=0, coverage=tick // 100,
                elapsed=tick / 1000.0,
            ))
    bus.publish(SpanEvent("sync_round", 0.05, tick=500))
    bus.publish(PlateauEvent("w0", "begin", "coverage", 500, 750, 7))
    bus.publish(PlateauEvent("w0", "end", "coverage", 500, 1000, 7))
    bus.publish(CampaignEvent("end", "gdk", "path", 0, workers=2,
                              budget=1000))
    sink.close()
    return path


def test_render_summary_markdown_and_html(tmp_path):
    from repro.telemetry import render

    path = _synthetic_trace(tmp_path)
    events, skipped = render.load_traces([path])
    assert skipped == 0
    lines = render.summarize(events, skipped)
    assert any("gdk/path#0" in line for line in lines)
    markdown = render.render_markdown(events)
    assert "| coverage |" in markdown
    html = render.render_html(events)
    assert html.startswith("<!doctype html>")
    assert "Coverage over virtual time" in html
    assert "<svg" in html and "</svg>" in html


def test_render_report_writes_artifacts(tmp_path):
    from repro.telemetry.render import render_report

    path = _synthetic_trace(tmp_path)
    html_path = str(tmp_path / "report.html")
    md_path = str(tmp_path / "report.md")
    lines = render_report([path], html_path=html_path, markdown_path=md_path)
    assert lines
    assert os.path.getsize(html_path) > 0
    assert os.path.getsize(md_path) > 0


# -- CLI -----------------------------------------------------------------------


def test_cli_telemetry_report(tmp_path, capsys):
    path = _synthetic_trace(tmp_path)
    html_path = str(tmp_path / "out.html")
    assert main(["telemetry", "report", path, "--html", html_path,
                 "--tail", "2"]) == 0
    out = capsys.readouterr().out
    assert "campaign gdk/path#0" in out
    assert "wrote %s" % html_path in out
    assert os.path.exists(html_path)


def test_cli_telemetry_report_missing_trace(tmp_path):
    with pytest.raises(SystemExit):
        main(["telemetry", "report", str(tmp_path / "missing.jsonl")])


def test_cli_fuzz_trace_end_to_end(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    trace = str(tmp_path / "fuzz.jsonl")
    assert main(["fuzz", "flvmeta", "--config", "pcguard",
                 "--hours", "0.25", "--scale", "0.5",
                 "--trace", trace]) == 0
    out = capsys.readouterr().out
    assert "telemetry trace:" in out
    events, skipped = read_trace(trace)
    assert skipped == 0
    kinds = {e["kind"] for e in events}
    assert "campaign" in kinds and "metrics" in kinds
    assert main(["telemetry", "report", trace]) == 0
    assert "flvmeta/pcguard#0" in capsys.readouterr().out


def test_cli_global_verbose_reaches_subcommands(capsys):
    # `repro --verbose list` parses and runs; the fuzz-level spelling stays
    # accepted and must not clobber the global flag.
    assert main(["--verbose", "list"]) == 0
    assert logging.getLogger("repro").level == logging.INFO
    parser_args = ["--verbose", "show", "gdk"]
    assert main(parser_args) == 0


# -- taint-guided stage telemetry ----------------------------------------------


def test_taint_event_round_trips_and_formats():
    from repro.telemetry.bus import TaintEvent

    event = TaintEvent("w0", 1500, 7, 1, "main:4", 2, 4)
    data = event.to_dict()
    assert data["kind"] == "taint"
    assert data["site"] == "main:4"
    assert data["focus"] == 2 and data["frozen"] == 4
    line = format_event_line(data)
    assert "taint" in line and "main:4" in line and "rarity=1" in line


def test_engine_telemetry_records_taint_stage():
    from repro.taint import TaintTarget

    bus = TelemetryBus()
    tel = EngineTelemetry(bus=bus, label="w0")
    target = TaintTarget(7, 1, None, ("main", 4), 8)
    tel.record_taint(target, {4, 5}, {0, 1, 2})
    tel.record_masked(True)
    tel.record_masked(False)
    assert tel.registry.counter("taint.targets").value == 1
    assert tel.registry.counter("taint.masked_execs").value == 2
    assert tel.registry.counter("taint.masked_hits").value == 1
    assert tel.registry.histogram("taint.mask_bytes").count == 1
    taint_events = [e for e in bus.recent() if e.kind == "taint"]
    assert len(taint_events) == 1
    assert taint_events[0].site == "main:4"
    assert taint_events[0].focus == 2 and taint_events[0].frozen == 3


def _taint_trace(tmp_path):
    from repro.telemetry.bus import MetricsSnapshotEvent, TaintEvent

    path = str(tmp_path / "taint.jsonl")
    bus = TelemetryBus()
    sink = bus.attach(JsonlSink(path, flush_every=1))
    bus.publish(CampaignEvent("begin", "gdk", "taint", 0, budget=1000))
    bus.publish(TaintEvent("w0", 250, 7, 1, "load_bmp:4", 2, 4))
    bus.publish(TaintEvent("w0", 500, 9, 2, "load_gif:7", 1, 6))
    bus.publish(MetricsSnapshotEvent("w0", 750, {
        "counters": {"execs": 900, "taint.targets": 2,
                     "taint.masked_execs": 300, "taint.masked_hits": 30},
        "gauges": {"tick": 750, "coverage": 40},
        "histograms": {},
    }))
    bus.publish(CampaignEvent("end", "gdk", "taint", 0, budget=1000))
    sink.close()
    return path


def test_render_surfaces_taint_stage(tmp_path):
    from repro.telemetry import render

    path = _taint_trace(tmp_path)
    events, skipped = render.load_traces([path])
    assert skipped == 0
    summary = render.TraceSummary(events, skipped)
    stats = summary.taint_stats()
    assert stats["targets"] == 2
    assert stats["masked_execs"] == 300
    assert stats["hit_rate"] == pytest.approx(0.1)
    rows = summary.taint_targets()
    assert rows[0][2] == "load_bmp:4"  # rarity 1 sorts first
    lines = render.summarize(events, skipped)
    assert any("taint:" in line for line in lines)
    markdown = render.render_markdown(events)
    assert "Taint-guided targeting" in markdown
    assert "load_bmp:4" in markdown
    html = render.render_html(events)
    assert "Taint-guided targeting" in html


def test_render_omits_taint_section_when_off(tmp_path):
    from repro.telemetry import render

    # The synthetic non-taint trace from the renderer tests above.
    path = str(tmp_path / "plain.jsonl")
    bus = TelemetryBus()
    sink = bus.attach(JsonlSink(path, flush_every=1))
    bus.publish(CampaignEvent("begin", "gdk", "path", 0, budget=1000))
    bus.publish(CampaignEvent("end", "gdk", "path", 0, budget=1000))
    sink.close()
    events, skipped = render.load_traces([path])
    assert render.TraceSummary(events, skipped).taint_stats() is None
    assert "Taint-guided targeting" not in render.render_markdown(events)


def test_traced_taint_campaign_publishes_taint_events(tmp_path):
    import random

    from repro.coverage.feedback import EdgeFeedback
    from repro.fuzzer.engine import EngineConfig, FuzzEngine
    from repro.lang import compile_source

    path = str(tmp_path / "campaign.jsonl")
    bus = TelemetryBus()
    sink = bus.attach(JsonlSink(path, flush_every=1))
    tel = EngineTelemetry(bus=bus, label="w0").begin(400_000)
    program = compile_source(
        'fn main(input) { if (len(input) < 5) { return 0; }'
        ' if (read32(input, 0) != 0x4D414743) { return 1; }'
        ' if ((input[4] * 3) % 251 == 17) { trap(1); } return 2; }'
    )
    engine = FuzzEngine(
        program,
        EdgeFeedback(),
        [b"MAGC\x00\x00", b"nope"],
        random.Random(0),
        EngineConfig(max_input_len=16, exec_instr_budget=10_000,
                     use_taint=True, taint_targets=8),
        telemetry=tel,
    )
    engine.run(400_000)
    tel.finish(engine.clock.ticks)
    sink.close()
    assert engine.taint.targets_selected > 0
    events, skipped = read_trace(path)
    assert skipped == 0
    taint_events = [e for e in events if e.get("kind") == "taint"]
    assert taint_events
    assert all(e.get("focus", 0) >= 1 for e in taint_events)
