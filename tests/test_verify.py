"""IR verifier tests: structural checks, trap preservation, and mutation
tests proving the verifier catches deliberately-seeded optimizer bugs."""

import pytest

from repro.analysis.verify import (
    VerificationError,
    check_trap_preservation,
    trap_signature,
    verify_function,
    verify_program,
)
from repro.cfg.graph import FunctionCFG
from repro.cfg.instructions import (
    BIN,
    BR,
    BUILTIN,
    CALL,
    CONST,
    JMP,
    LOAD,
    MOV,
    OP_DIV,
    OP_SHL,
    RET,
)
from repro.lang import compile_source
from repro.subjects import all_subject_names, get_subject

LOOPY = """
fn helper(a, b) {
    return a + b;
}
fn main(input) {
    var n = len(input);
    var acc = 0;
    var i = 0;
    while (i < n) {
        acc = acc + input[i] / (n - i);
        i = i + 1;
    }
    return helper(acc, n);
}
"""


def small_cfg():
    cfg = FunctionCFG("small", 0, 1)
    cfg.new_block()
    cfg.nregs = 2
    cfg.blocks[0].instrs = [(CONST, 1, 3)]
    cfg.blocks[0].term = (RET, 1)
    return cfg


# -- structural checks -------------------------------------------------------


def test_all_subjects_verify():
    for name in all_subject_names():
        verify_program(get_subject(name).program)


def test_small_function_verifies():
    verify_function(small_cfg())


def test_bad_arity_rejected():
    cfg = small_cfg()
    cfg.blocks[0].instrs = [(CONST, 1)]  # missing the immediate
    with pytest.raises(VerificationError, match="arity"):
        verify_function(cfg)


def test_out_of_range_register_rejected():
    cfg = small_cfg()
    cfg.blocks[0].instrs = [(CONST, 9, 3)]
    with pytest.raises(VerificationError, match="out of range"):
        verify_function(cfg)


def test_missing_terminator_rejected():
    cfg = small_cfg()
    cfg.blocks[0].term = None
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(cfg)


def test_edge_to_missing_block_rejected():
    cfg = small_cfg()
    cfg.blocks[0].term = (JMP, 5)
    with pytest.raises(VerificationError, match="missing b5"):
        verify_function(cfg)


def test_non_dense_block_ids_rejected():
    cfg = small_cfg()
    cfg.blocks[0].id = 7
    with pytest.raises(VerificationError, match="non-dense"):
        verify_function(cfg)


def test_use_before_definition_rejected():
    cfg = small_cfg()
    cfg.blocks[0].instrs = [(MOV, 1, 1)]  # r1 read before ever written
    with pytest.raises(VerificationError, match="before definition"):
        verify_function(cfg)


def test_unknown_builtin_rejected():
    cfg = small_cfg()
    cfg.blocks[0].instrs = [(BUILTIN, 1, 999, (0,), 1)]
    with pytest.raises(VerificationError, match="builtin"):
        verify_function(cfg)


def test_call_arity_checked_against_program():
    program = compile_source(LOOPY)
    main = program.func("main")
    for block in main.blocks:
        for index, instr in enumerate(block.instrs):
            if instr[0] == CALL:
                block.instrs[index] = instr[:3] + (instr[3][:-1],) + instr[4:]
    with pytest.raises(VerificationError, match="args"):
        verify_program(program)


# -- trap preservation -------------------------------------------------------


def run_checked(source, bad_pass):
    """Apply ``bad_pass`` to a compiled program under the same harness the
    compiler uses for real passes: verify + trap-preservation check."""
    program = compile_source(source)
    before = trap_signature(program)
    bad_pass(program)
    verify_program(program)
    check_trap_preservation(before, trap_signature(program), "mutated")


def test_trap_signature_is_stable_across_optimization():
    raw = compile_source(LOOPY, optimize=False)
    opt = compile_source(LOOPY, optimize=True)
    check_trap_preservation(trap_signature(raw), trap_signature(opt))


def test_good_pass_passes_the_harness():
    run_checked(LOOPY, lambda program: None)


# -- mutation tests: each seeded optimizer bug must be caught ----------------


def test_mutation_dropped_div_trap_caught():
    def drop_div(program):
        # An illegally-eager constant folder: divisions become constants,
        # losing their potential division-by-zero trap sites.
        for func in program.funcs:
            for block in func.blocks:
                block.instrs = [
                    (CONST, instr[2], 1)
                    if instr[0] == BIN and instr[1] == OP_DIV
                    else instr
                    for instr in block.instrs
                ]

    with pytest.raises(VerificationError, match="div sites"):
        run_checked(LOOPY, drop_div)


def test_mutation_stale_branch_target_caught():
    def retarget(program):
        for func in program.funcs:
            for block in func.blocks:
                if block.term[0] == BR:
                    block.term = (BR, block.term[1], block.term[2], 99)
                    return

    with pytest.raises(VerificationError, match="missing b99"):
        run_checked(LOOPY, retarget)


def test_mutation_clobbered_register_caught():
    def clobber(program):
        # Redirect every CONST 0 initializer to a fresh register: the
        # original registers are now read without ever being written.
        for func in program.funcs:
            for block in func.blocks:
                block.instrs = [
                    (CONST, func.nregs - 1, instr[2])
                    if instr[0] == CONST and instr[2] == 0
                    else instr
                    for instr in block.instrs
                ]

    with pytest.raises(VerificationError, match="before definition"):
        run_checked(LOOPY, clobber)


def test_mutation_moved_memory_site_caught():
    def shift_load_lines(program):
        for func in program.funcs:
            for block in func.blocks:
                block.instrs = [
                    instr[:4] + (instr[4] + 1,) if instr[0] == LOAD else instr
                    for instr in block.instrs
                ]

    with pytest.raises(VerificationError, match="mem sites"):
        run_checked(LOOPY, shift_load_lines)


def test_mutation_added_shift_site_caught():
    def add_shift(program):
        main = program.func("main")
        reg = main.nregs - 1
        main.blocks[0].instrs = [
            (CONST, reg, 1),
            (BIN, OP_SHL, reg, reg, reg, 998),
        ] + main.blocks[0].instrs

    with pytest.raises(VerificationError, match="shift sites"):
        run_checked(LOOPY, add_shift)


def test_mutation_dropped_call_caught():
    def drop_calls(program):
        for func in program.funcs:
            for block in func.blocks:
                block.instrs = [
                    (CONST, instr[1], 0) if instr[0] == CALL else instr
                    for instr in block.instrs
                ]

    with pytest.raises(VerificationError, match="call sites"):
        run_checked(LOOPY, drop_calls)


def test_mutation_swapped_blocks_caught():
    def swap(program):
        main = program.func("main")
        main.blocks[1], main.blocks[2] = main.blocks[2], main.blocks[1]

    with pytest.raises(VerificationError, match="non-dense"):
        run_checked(LOOPY, swap)


def test_compile_source_runs_the_verifier_end_to_end():
    # The default pipeline accepts a sound program...
    compile_source(LOOPY)
    # ...and verify=False still compiles (escape hatch for IR experiments).
    compile_source(LOOPY, verify=False)
