"""CFG analysis tests: DFS orders, dominators, back edges, loops."""

from hypothesis import given, settings

from repro.cfg.analysis import (
    DominatorTree,
    back_edges,
    depth_first_order,
    dominates,
    dominators,
    loop_depths,
    natural_loops,
    reverse_postorder,
)
from repro.cfg.graph import FunctionCFG
from repro.cfg.instructions import BR, JMP, RET
from repro.lang import compile_source
from tests.genprog import programs

NESTED = """
fn main(input) {
    var t = 0;
    for (var i = 0; i < 4; i = i + 1) {
        for (var j = 0; j < 4; j = j + 1) {
            t = t + 1;
        }
    }
    while (t > 10) { t = t - 3; }
    return t;
}
"""


def main_cfg(source):
    return compile_source(source).func("main")


def test_preorder_starts_at_entry():
    cfg = main_cfg(NESTED)
    preorder, postorder = depth_first_order(cfg)
    assert preorder[0] == 0
    assert set(preorder) == set(postorder) == {b.id for b in cfg.blocks}


def test_rpo_is_topological_on_acyclic():
    cfg = main_cfg("fn main(input) { if (input) { return 1; } return 2; }")
    rpo = reverse_postorder(cfg)
    position = {b: i for i, b in enumerate(rpo)}
    for src, dst in cfg.edges():
        assert position[src] < position[dst]


def test_entry_dominates_everything():
    cfg = main_cfg(NESTED)
    idom = dominators(cfg)
    for block in cfg.blocks:
        assert dominates(idom, 0, block.id)


def test_dominators_brute_force_agreement():
    cfg = main_cfg(NESTED)
    idom = dominators(cfg)
    blocks = [b.id for b in cfg.blocks]
    dom_sets = _brute_force_dominators(cfg)
    for a in blocks:
        for b in blocks:
            assert dominates(idom, a, b) == (a in dom_sets[b]), (a, b)


def _brute_force_dominators(cfg):
    """Dominator sets via the classic iterative data-flow formulation."""
    blocks = [b.id for b in cfg.blocks]
    preds = cfg.predecessors()
    full = set(blocks)
    dom = {b: (full if b != 0 else {0}) for b in blocks}
    changed = True
    while changed:
        changed = False
        for b in blocks:
            if b == 0:
                continue
            incoming = [dom[p] for p in preds[b]]
            new = set.intersection(*incoming) | {b} if incoming else {b}
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


def test_nested_loops_found():
    cfg = main_cfg(NESTED)
    loops = natural_loops(cfg)
    assert len(loops) == 3  # two fors + one while


def test_loop_depths_nesting():
    cfg = main_cfg(NESTED)
    depths = loop_depths(cfg)
    assert max(depths.values()) == 2  # the inner for


def test_back_edges_target_loop_headers():
    cfg = main_cfg(NESTED)
    idom = dominators(cfg)
    for src, dst in back_edges(cfg):
        assert dominates(idom, dst, src)


def test_straight_line_has_no_back_edges():
    cfg = main_cfg("fn main(input) { return len(input); }")
    assert back_edges(cfg) == set()


@settings(max_examples=50, deadline=None)
@given(programs())
def test_removing_back_edges_yields_dag_property(source):
    program = compile_source(source)
    for cfg in program.funcs:
        backs = back_edges(cfg)
        # Kahn's algorithm over the remaining edges must consume all blocks.
        indeg = {b.id: 0 for b in cfg.blocks}
        succs = {b.id: [] for b in cfg.blocks}
        for src, dst in cfg.edges():
            if (src, dst) in backs:
                continue
            succs[src].append(dst)
            indeg[dst] += 1
        ready = [b for b, d in indeg.items() if d == 0]
        seen = 0
        while ready:
            node = ready.pop()
            seen += 1
            for succ in succs[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        assert seen == len(cfg.blocks)


def hand_cfg(terms):
    """Build a CFG from {block_id: terminator tuple}; blocks are empty and
    branch conditions read the single parameter register."""
    cfg = FunctionCFG("hand", 0, 1)
    for _ in terms:
        cfg.new_block()
    for block_id, term in terms.items():
        cfg.blocks[block_id].term = term
    return cfg


def test_nested_loops_sharing_a_header():
    # Two back edges into the same header b1: an inner latch b2 -> b1 and
    # an outer latch b3 -> b1.  Both are natural loops; the outer body
    # strictly contains the inner one.
    cfg = hand_cfg({
        0: (JMP, 1),
        1: (BR, 0, 2, 4),
        2: (BR, 0, 1, 3),
        3: (JMP, 1),
        4: (RET, -1),
    })
    assert back_edges(cfg) == {(2, 1), (3, 1)}
    loops = natural_loops(cfg)
    assert loops[(2, 1)] == {1, 2}
    assert loops[(3, 1)] == {1, 2, 3}
    depths = loop_depths(cfg)
    assert depths == {0: 0, 1: 2, 2: 2, 3: 1, 4: 0}


def test_back_edge_whose_target_does_not_dominate_source():
    # DFS finds the retreating edge (2, 1), but b1 does not dominate b2
    # (b2 is reachable via b0 directly), so it is NOT a natural loop.
    cfg = hand_cfg({
        0: (BR, 0, 1, 2),
        1: (JMP, 2),
        2: (BR, 0, 1, 3),
        3: (RET, -1),
    })
    assert back_edges(cfg) == {(2, 1)}
    assert natural_loops(cfg) == {}
    assert all(depth == 0 for depth in loop_depths(cfg).values())


def test_dominator_tree_matches_chain_walk():
    for source in (NESTED, "fn main(input) { if (input) { return 1; } return 2; }"):
        cfg = main_cfg(source)
        idom = dominators(cfg)
        tree = DominatorTree(cfg)
        blocks = [b.id for b in cfg.blocks]
        for a in blocks:
            for b in blocks:
                assert tree.dominates(a, b) == dominates(idom, a, b), (a, b)
                assert dominates(tree, a, b) == dominates(idom, a, b)


def test_dominator_tree_depths():
    cfg = hand_cfg({
        0: (BR, 0, 1, 2),
        1: (JMP, 3),
        2: (JMP, 3),
        3: (RET, -1),
    })
    tree = DominatorTree(cfg)
    assert tree.depth(0) == 0
    assert tree.depth(1) == tree.depth(2) == tree.depth(3) == 1
    assert tree.dominates(0, 3)
    assert not tree.dominates(1, 3)
    assert not tree.dominates(2, 1)


@settings(max_examples=50, deadline=None)
@given(programs())
def test_dominator_tree_property_on_random_programs(source):
    program = compile_source(source)
    for cfg in program.funcs:
        idom = dominators(cfg)
        tree = DominatorTree(cfg)
        blocks = [b.id for b in cfg.blocks]
        for a in blocks:
            for b in blocks:
                assert tree.dominates(a, b) == dominates(idom, a, b)


@settings(max_examples=50, deadline=None)
@given(programs())
def test_dominator_property_on_random_programs(source):
    program = compile_source(source)
    for cfg in program.funcs:
        idom = dominators(cfg)
        preds = cfg.predecessors()
        # idom of every non-entry block strictly dominates it and is a
        # dominator of all its predecessors' dominator chains.
        for block in cfg.blocks:
            if block.id == 0:
                continue
            assert block.id in idom
            assert dominates(idom, idom[block.id], block.id)
            for pred in preds[block.id]:
                assert dominates(idom, idom[block.id], pred)
