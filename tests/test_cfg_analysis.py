"""CFG analysis tests: DFS orders, dominators, back edges, loops."""

from hypothesis import given, settings

from repro.cfg.analysis import (
    back_edges,
    depth_first_order,
    dominates,
    dominators,
    loop_depths,
    natural_loops,
    reverse_postorder,
)
from repro.lang import compile_source
from tests.genprog import programs

NESTED = """
fn main(input) {
    var t = 0;
    for (var i = 0; i < 4; i = i + 1) {
        for (var j = 0; j < 4; j = j + 1) {
            t = t + 1;
        }
    }
    while (t > 10) { t = t - 3; }
    return t;
}
"""


def main_cfg(source):
    return compile_source(source).func("main")


def test_preorder_starts_at_entry():
    cfg = main_cfg(NESTED)
    preorder, postorder = depth_first_order(cfg)
    assert preorder[0] == 0
    assert set(preorder) == set(postorder) == {b.id for b in cfg.blocks}


def test_rpo_is_topological_on_acyclic():
    cfg = main_cfg("fn main(input) { if (input) { return 1; } return 2; }")
    rpo = reverse_postorder(cfg)
    position = {b: i for i, b in enumerate(rpo)}
    for src, dst in cfg.edges():
        assert position[src] < position[dst]


def test_entry_dominates_everything():
    cfg = main_cfg(NESTED)
    idom = dominators(cfg)
    for block in cfg.blocks:
        assert dominates(idom, 0, block.id)


def test_dominators_brute_force_agreement():
    cfg = main_cfg(NESTED)
    idom = dominators(cfg)
    blocks = [b.id for b in cfg.blocks]
    dom_sets = _brute_force_dominators(cfg)
    for a in blocks:
        for b in blocks:
            assert dominates(idom, a, b) == (a in dom_sets[b]), (a, b)


def _brute_force_dominators(cfg):
    """Dominator sets via the classic iterative data-flow formulation."""
    blocks = [b.id for b in cfg.blocks]
    preds = cfg.predecessors()
    full = set(blocks)
    dom = {b: (full if b != 0 else {0}) for b in blocks}
    changed = True
    while changed:
        changed = False
        for b in blocks:
            if b == 0:
                continue
            incoming = [dom[p] for p in preds[b]]
            new = set.intersection(*incoming) | {b} if incoming else {b}
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


def test_nested_loops_found():
    cfg = main_cfg(NESTED)
    loops = natural_loops(cfg)
    assert len(loops) == 3  # two fors + one while


def test_loop_depths_nesting():
    cfg = main_cfg(NESTED)
    depths = loop_depths(cfg)
    assert max(depths.values()) == 2  # the inner for


def test_back_edges_target_loop_headers():
    cfg = main_cfg(NESTED)
    idom = dominators(cfg)
    for src, dst in back_edges(cfg):
        assert dominates(idom, dst, src)


def test_straight_line_has_no_back_edges():
    cfg = main_cfg("fn main(input) { return len(input); }")
    assert back_edges(cfg) == set()


@settings(max_examples=50, deadline=None)
@given(programs())
def test_removing_back_edges_yields_dag_property(source):
    program = compile_source(source)
    for cfg in program.funcs:
        backs = back_edges(cfg)
        # Kahn's algorithm over the remaining edges must consume all blocks.
        indeg = {b.id: 0 for b in cfg.blocks}
        succs = {b.id: [] for b in cfg.blocks}
        for src, dst in cfg.edges():
            if (src, dst) in backs:
                continue
            succs[src].append(dst)
            indeg[dst] += 1
        ready = [b for b, d in indeg.items() if d == 0]
        seen = 0
        while ready:
            node = ready.pop()
            seen += 1
            for succ in succs[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        assert seen == len(cfg.blocks)


@settings(max_examples=50, deadline=None)
@given(programs())
def test_dominator_property_on_random_programs(source):
    program = compile_source(source)
    for cfg in program.funcs:
        idom = dominators(cfg)
        preds = cfg.predecessors()
        # idom of every non-entry block strictly dominates it and is a
        # dominator of all its predecessors' dominator chains.
        for block in cfg.blocks:
            if block.id == 0:
                continue
            assert block.id in idom
            assert dominates(idom, idom[block.id], block.id)
            for pred in preds[block.id]:
                assert dominates(idom, idom[block.id], pred)
