"""End-to-end tests for the plateau-triggered concolic stage.

The acceptance property (ISSUE 10): on rare-guard subjects whose trap
condition couples multiple input bytes through an arithmetic transform,
a plateau-triggered concolic campaign reaches the trap within a fixed
tick budget where blind pcguard *and* taint-masked-only campaigns do
not.  The subjects below are built so the taint sweep is structurally
blind to them: ``sweep_candidates`` enumerates focus bytes one at a
time (never the 2-byte cross product a ``read16`` needs), and the
cmplog constants do not fit the focus runs, so I2S patching cannot
invert the transform either.  Only the solver can.
"""

import random

import pytest

from repro.coverage.feedback import EdgeFeedback
from repro.fuzzer.concolic import CONCOLIC_ENV, ConcolicState, concolic_enabled
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.lang import compile_source

BUDGET = 400_000

# trap guard: v = read16be(input, 4); v*3+7 == 182632  <=>  v == 0xEDCB.
# The comparison constant (182632) needs 3 bytes, so masked I2S patching
# into the 2-byte focus run can never encode it.
MULREAD = """
fn main(input) {
    if (len(input) < 7) { return 0; }
    if (read32(input, 0) != 0x4D414743) { return 1; }
    var v = read16(input, 4);
    if (v * 3 + 7 == 182632) { trap(1); }
    return 2;
}
"""

# trap guard: v = read16le(input, 4); (v>>2)+(v<<1) == 109977  <=>
# v == 0xBEEF (the transform is strictly increasing, so the witness is
# unique).  Little-endian read: input bytes 4..5 must be EF BE.
SHIFTSUM = """
fn main(input) {
    if (len(input) < 7) { return 0; }
    if (read32(input, 0) != 0x4D414743) { return 1; }
    var v = read16le(input, 4);
    if ((v >> 2) + (v << 1) == 109977) { trap(2); }
    return 2;
}
"""

SEEDS = [b"MAGC\x00\x00\x00", b"nope"]


def _config(use_taint, use_concolic):
    return EngineConfig(
        max_input_len=16,
        exec_instr_budget=10_000,
        timeline_interval=64,
        use_taint=use_taint,
        taint_targets=8,
        use_concolic=use_concolic,
        concolic_targets=8,
    )


def _engine(source, use_taint, use_concolic, seed=0):
    return FuzzEngine(
        compile_source(source),
        EdgeFeedback(),
        list(SEEDS),
        random.Random(seed),
        _config(use_taint, use_concolic),
    )


def _run(source, use_taint, use_concolic, seed=0):
    return _engine(source, use_taint, use_concolic, seed).run(BUDGET)


def _bugs(engine):
    return {record.bug_id() for record in engine.unique_crashes.values()}


def _state(engine):
    """Everything the determinism contract compares."""
    return {
        "execs": engine.execs,
        "hangs": engine.hangs,
        "ticks": engine.clock.ticks,
        "cycle": engine.cycle,
        "queue": [e.data for e in engine.queue.entries],
        "crash_count": engine.crash_count,
        "crashes": sorted(
            (h, r.count, r.found_at) for h, r in engine.unique_crashes.items()
        ),
        "virgin": dict(engine.virgin.bits),
        "timeline": list(engine.timeline),
        "rng": engine.rng.getstate(),
    }


# -- the acceptance criterion --------------------------------------------------


@pytest.mark.parametrize(
    "name, source", [("mulread", MULREAD), ("shiftsum", SHIFTSUM)]
)
def test_concolic_cracks_coupled_guards_that_taint_cannot(name, source):
    blind = _run(source, use_taint=False, use_concolic=False)
    taint = _run(source, use_taint=True, use_concolic=False)
    concolic = _run(source, use_taint=True, use_concolic=True)

    trap_bugs = {bug for bug in _bugs(concolic) if bug[2] == "assertion-failure"}
    assert trap_bugs, "%s: concolic campaign never reached the trap" % name
    assert not _bugs(blind), "%s: blind campaign found the trap too" % name
    assert not _bugs(taint), "%s: taint-only campaign found the trap too" % name

    state = concolic.concolic
    assert state.extract_runs > 0
    assert state.solve_attempts > 0
    assert state.solved > 0
    assert state.flips > 0
    assert 0.0 < state.solve_rate() <= 1.0


def test_escalation_only_fires_on_plateau():
    # The stage runs at cycle boundaries only while the detector reports an
    # open plateau, so extraction work is bounded by stall time — a cracked
    # campaign has orders of magnitude fewer extract runs than executions.
    engine = _run(MULREAD, use_taint=True, use_concolic=True)
    assert engine.concolic.extract_runs < engine.execs // 10


# -- off-switch identity -------------------------------------------------------


def test_concolic_off_leaves_engine_without_state(monkeypatch):
    monkeypatch.delenv(CONCOLIC_ENV, raising=False)
    assert _engine(MULREAD, True, False).concolic is None
    assert _engine(MULREAD, True, None).concolic is None
    assert _engine(MULREAD, True, True).concolic is not None


def test_concolic_off_is_campaign_identical_to_default(monkeypatch):
    # use_concolic=False and use_concolic=None (env unset) must produce
    # tick-for-tick identical campaigns: the stage is gated on a single
    # `self.concolic is None` check, so "off" has zero behavioral surface.
    monkeypatch.delenv(CONCOLIC_ENV, raising=False)
    explicit = _run(MULREAD, use_taint=True, use_concolic=False)
    default = _run(MULREAD, use_taint=True, use_concolic=None)
    assert _state(explicit) == _state(default)


def test_concolic_enabled_env_resolution(monkeypatch):
    monkeypatch.delenv(CONCOLIC_ENV, raising=False)
    assert concolic_enabled() is False
    assert concolic_enabled(True) is True
    assert concolic_enabled(False) is False
    for value in ("1", "true", "ON", "Yes"):
        monkeypatch.setenv(CONCOLIC_ENV, value)
        assert concolic_enabled() is True
        assert concolic_enabled(False) is False  # explicit flag wins
    monkeypatch.setenv(CONCOLIC_ENV, "0")
    assert concolic_enabled() is False


# -- snapshot / restore --------------------------------------------------------


def test_snapshot_restore_mid_campaign_continues_identically():
    interrupted = _engine(MULREAD, True, True, seed=0)
    interrupted.start(BUDGET)
    interrupted.run_until(BUDGET // 2)
    snap = interrupted.snapshot()

    resumed = _engine(MULREAD, True, True, seed=999)  # state must come from snap
    resumed.restore(snap)
    resumed.run_until(BUDGET)
    resumed.finish()

    whole = _engine(MULREAD, True, True, seed=0)
    whole.run(BUDGET)
    assert _state(resumed) == _state(whole)
    assert resumed.concolic.solve_attempts == whole.concolic.solve_attempts
    assert resumed.concolic.solved == whole.concolic.solved
    assert resumed.concolic.flips == whole.concolic.flips
    assert _bugs(resumed) == _bugs(whole)


def test_concolic_state_snapshot_round_trip():
    state = ConcolicState()
    state.visits[("main", 3)] = 2
    state.targets_selected = 4
    state.extract_runs = 5
    state.solve_attempts = 6
    state.solved = 3
    state.flips = 2
    state.witness_execs = 7
    state.observe(100, 1, budget_ticks=80_000)
    state.observe(90_000, 1, budget_ticks=80_000)  # opens a plateau

    clone = ConcolicState()
    clone.restore(state.snapshot())
    assert clone.visits == state.visits
    assert clone.targets_selected == state.targets_selected
    assert clone.extract_runs == state.extract_runs
    assert clone.solve_attempts == state.solve_attempts
    assert (clone.solved, clone.flips) == (state.solved, state.flips)
    assert clone.witness_execs == state.witness_execs
    assert clone.stalled() == state.stalled() is True
