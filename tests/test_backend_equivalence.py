"""Cross-backend differential suite: interp and compile must agree.

Drives both backends with real subject seeds *and* fuzz-generated inputs
(mutants harvested from a short campaign), asserting identical coverage
maps, Ball-Larus path ids, trap identities, and — at the campaign level —
identical queue/crash/clock evolution.  This is the test the CI
``backend-equivalence`` job runs; it is the ground for trusting the
compiled backend's throughput numbers.
"""

import random

import pytest

from repro.coverage.feedback import feedback_by_name
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.fuzzer.mutators import havoc
from repro.runtime.backend import make_backend
from repro.subjects import get_subject

SUBJECTS = ("flvmeta", "nm_new", "mp42aac")
FEEDBACKS = ("edge", "path")


def _trap_key(trap):
    if trap is None:
        return None
    frames = tuple((fr.function, fr.line) for fr in trap.stack)
    return (trap.kind, trap.function, trap.line, trap.detail, frames)


def _result_key(result):
    return (
        result.retval,
        _trap_key(result.trap),
        result.timeout,
        result.instr_count,
        result.probe_count,
        result.probe_cost,
        dict(result.hits),
        list(result.cmp_log),
    )


def fuzzed_inputs(subject, count=40, seed=1234):
    """Seeds plus deterministic havoc mutants of them."""
    rng = random.Random(seed)
    inputs = [bytes(s) for s in subject.seeds]
    pool = list(inputs) or [b"\x00"]
    while len(inputs) < count + len(pool):
        base = pool[rng.randrange(len(pool))]
        inputs.append(bytes(havoc(rng, bytearray(base), subject.max_input_len)))
    return inputs


@pytest.mark.parametrize("subject_name", SUBJECTS)
@pytest.mark.parametrize("feedback_name", FEEDBACKS)
def test_backends_agree_on_seeds_and_mutants(subject_name, feedback_name):
    subject = get_subject(subject_name)
    instrumentation = feedback_by_name(feedback_name).instrument(subject.program)
    interp = make_backend(subject.program, instrumentation, backend="interp")
    compiled = make_backend(subject.program, instrumentation, backend="compile")
    budget = subject.exec_instr_budget
    for data in fuzzed_inputs(subject):
        ref = interp.execute(data, instr_budget=budget)
        got = compiled.execute(data, instr_budget=budget)
        assert _result_key(got) == _result_key(ref)


def _campaign_fingerprint(subject, feedback_name, backend, ticks=2_000_000):
    config = EngineConfig(backend=backend, max_input_len=subject.max_input_len)
    engine = FuzzEngine(
        subject.program,
        feedback_by_name(feedback_name),
        subject.seeds,
        random.Random(99),
        config,
        subject.tokens,
    )
    engine.run(ticks)
    return {
        "execs": engine.execs,
        "ticks": engine.clock.ticks,
        "cycle": engine.cycle,
        "queue": [
            (entry.data, entry.exec_cost, entry.found_at)
            for entry in engine.queue.entries
        ],
        "virgin": dict(engine.virgin.bits),
        "crashes": {
            hash5: (record.data, record.count, _trap_key(record.trap))
            for hash5, record in engine.unique_crashes.items()
        },
        "hangs": sorted(engine.unique_hangs),
        "timeline": engine.timeline,
    }


@pytest.mark.parametrize("feedback_name", FEEDBACKS)
def test_campaigns_are_tick_identical_across_backends(feedback_name):
    subject = get_subject("flvmeta")
    ref = _campaign_fingerprint(subject, feedback_name, "interp")
    got = _campaign_fingerprint(subject, feedback_name, "compile")
    assert got == ref


def test_campaign_equivalent_with_cmplog_stage():
    subject = get_subject("nm_new")

    def fingerprint(backend):
        config = EngineConfig(
            backend=backend, use_cmplog=True, max_input_len=subject.max_input_len
        )
        engine = FuzzEngine(
            subject.program,
            feedback_by_name("edge"),
            subject.seeds,
            random.Random(5),
            config,
            subject.tokens,
        )
        engine.run(1_500_000)
        return (
            engine.execs,
            engine.clock.ticks,
            len(engine.queue.entries),
            engine.virgin.coverage_count(),
            sorted(engine.unique_crashes),
        )

    assert fingerprint("compile") == fingerprint("interp")


def test_checkpoint_meta_records_backend(tmp_path):
    subject = get_subject("flvmeta")
    config = EngineConfig(backend="compile", max_input_len=subject.max_input_len)
    engine = FuzzEngine(
        subject.program,
        feedback_by_name("edge"),
        subject.seeds,
        random.Random(0),
        config,
    )
    engine.start(100_000)
    engine.run_until(100_000)
    path = tmp_path / "ckpt.bin"
    engine.save_checkpoint(str(path))
    resumed = FuzzEngine(
        subject.program,
        feedback_by_name("edge"),
        subject.seeds,
        random.Random(0),
        config,
    )
    meta = resumed.resume(str(path))
    assert meta["backend"] == "compile"
    assert resumed.execs == engine.execs
