"""Interval abstract-interpretation tests: soundness, widening, proofs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.constprop import conditional_constants
from repro.analysis.foldops import fold_binop, fold_unop
from repro.analysis.interval import (
    FULL,
    INT_MAX,
    INT_MIN,
    Interval,
    bin_interval,
    interval_analysis,
    refine_compare,
    un_interval,
)
from repro.cfg.instructions import (
    COMPARISON_OPS,
    OP_DIV,
    OP_MOD,
    OP_SHL,
    OP_SHR,
)
from repro.lang import compile_source
from repro.runtime.values import wrap_int
from repro.subjects import load_suite


def _c_div(a, b):
    q = abs(a) // abs(b)
    return wrap_int(q if (a < 0) == (b < 0) else -q)


def _c_mod(a, b):
    return wrap_int(a - _c_div(a, b) * b)


def _concrete(binop, a, b):
    """The VM's result for ``a binop b``, or None when it traps."""
    if binop in (OP_DIV, OP_MOD):
        if b == 0:
            return None
        return _c_div(a, b) if binop == OP_DIV else _c_mod(a, b)
    if binop in (OP_SHL, OP_SHR):
        if not 0 <= b < 64:
            return None
        return wrap_int(a << b) if binop == OP_SHL else (a >> b)
    return fold_binop(binop, a, b)


_bounds = st.integers(min_value=INT_MIN, max_value=INT_MAX)
_small = st.integers(min_value=-300, max_value=300)


@st.composite
def intervals(draw):
    if draw(st.booleans()):
        lo = draw(_small)
        hi = draw(st.integers(min_value=lo, max_value=lo + 64))
    else:
        lo = draw(_bounds)
        hi = draw(st.integers(min_value=lo, max_value=INT_MAX))
    return Interval(lo, hi)


@settings(max_examples=400, deadline=None)
@given(
    st.integers(min_value=0, max_value=15),
    intervals(),
    intervals(),
    st.randoms(use_true_random=False),
)
def test_bin_interval_is_sound(binop, ia, ib, rng):
    a = rng.randint(ia.lo, ia.hi)
    b = rng.randint(ib.lo, ib.hi)
    result = _concrete(binop, a, b)
    if result is None:
        return  # trapping execution has no value to bound
    iv = bin_interval(binop, ia, ib)
    assert iv.lo <= result <= iv.hi, (binop, ia, ib, a, b, result, iv)


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=0, max_value=2),
    intervals(),
    st.randoms(use_true_random=False),
)
def test_un_interval_is_sound(unop, ia, rng):
    a = rng.randint(ia.lo, ia.hi)
    iv = un_interval(unop, ia)
    result = fold_unop(unop, a)
    assert iv.lo <= result <= iv.hi


@settings(max_examples=200, deadline=None)
@given(
    st.sampled_from(sorted(COMPARISON_OPS)),
    intervals(),
    intervals(),
    st.randoms(use_true_random=False),
)
def test_refine_compare_keeps_satisfying_pairs(binop, ia, ib, rng):
    a = rng.randint(ia.lo, ia.hi)
    b = rng.randint(ib.lo, ib.hi)
    if fold_binop(binop, a, b) != 1:
        return
    na, nb = refine_compare(binop, ia, ib)
    assert na is not None and nb is not None
    assert na.contains(a)
    assert nb.contains(b)


MASKED = """
fn main(input) {
    var x = input[0] & 15;
    if (x > 20) { return 1; }
    return 0;
}
"""

LOOP = """
fn main(input) {
    var i = 0;
    var total = 0;
    while (i < len(input)) {
        total = total + input[i];
        i = i + 1;
    }
    return total;
}
"""

REFINED_LOOP = """
fn main(input) {
    var i = 0;
    while (i < 10) {
        i = i + 1;
    }
    if (i > 100) { return 1; }
    return 0;
}
"""


def test_masked_guard_proved_false_where_sccp_cannot():
    cfg = compile_source(MASKED).func("main")
    const = conditional_constants(cfg)
    assert not const.constant_branches()  # x varies: SCCP is blind here
    result = interval_analysis(cfg)
    proved = dict(result.proved_branches())
    assert 0 in set(proved.values()) or proved  # some branch proved false
    assert any(value == 0 for value in proved.values())
    assert result.dead_edges()


def test_widening_terminates_on_unbounded_loop():
    cfg = compile_source(LOOP).func("main")
    result = interval_analysis(cfg)
    assert result.executable_blocks  # fixed point reached at all


def test_branch_refinement_recovers_loop_bound():
    # Widening smears i upward inside the loop, but the exit edge of
    # i < 10 clamps it back: the trailing i > 100 test is proved false.
    cfg = compile_source(REFINED_LOOP).func("main")
    result = interval_analysis(cfg)
    assert any(value == 0 for _, value in result.proved_branches())


def test_interval_never_contradicts_sccp_on_suite():
    # Where SCCP proves a branch constant, interval analysis must agree
    # (or stay silent); its dead edges must never kill an edge some real
    # execution takes, which the feasibility soundness suite checks
    # dynamically — here we check mutual consistency of the two provers.
    for subject in load_suite():
        for func in subject.program.funcs:
            const = conditional_constants(func)
            result = interval_analysis(func)
            sccp = dict(const.constant_branches())
            for block_id, value in result.proved_branches():
                if block_id in sccp:
                    assert (sccp[block_id] != 0) == (value != 0)
            assert result.executable_blocks <= const.executable_blocks | {
                block.id for block in func.blocks
            }


def test_entry_env_covers_runtime_values():
    # Spot-check: registers at block entries of a straight-line function
    # bound the actual constants flowing through.
    source = """
    fn main(input) {
        var a = 5;
        var b = a * 7;
        if (b == 35) { return 1; }
        return 0;
    }
    """
    cfg = compile_source(source).func("main")
    result = interval_analysis(cfg)
    proved = result.proved_branches()
    assert proved and proved[0][1] == 1
