"""Ball-Larus path-profiling tests, including the core property tests:

- the numbering is a bijection onto {0..n-1} over all acyclic paths;
- spanning-tree chord increments agree with canonical Val sums per path;
- regeneration inverts the numbering;
- run-time path ids observed by the VM are always valid ids.
"""

import pytest
from hypothesis import given, settings

from repro.ballarus import (
    EXIT,
    FunctionPathPlan,
    build_dag,
    enumerate_paths,
    number_paths,
)
from repro.ballarus.dag import SURR_ENTRY, SURR_EXIT
from repro.ballarus.spanning import place_increments
from repro.lang import compile_source
from tests.genprog import programs

DIAMOND = """
fn main(input) {
    var x = 0;
    if (len(input) > 2) { x = 1; } else { x = 2; }
    if (len(input) > 4) { x = x + 10; }
    return x;
}
"""

LOOPY = """
fn main(input) {
    var t = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        if (input[i] > 64) { t = t + 2; } else { t = t + 1; }
        while (t > 50) { t = t - 9; }
    }
    return t;
}
"""


def main_cfg(source):
    return compile_source(source).func("main")


def test_diamond_path_count():
    dag = build_dag(main_cfg(DIAMOND))
    assert number_paths(dag) == 4


def test_single_block_function_has_one_path():
    cfg = compile_source("fn main(input) { return 1; }").func("main")
    dag = build_dag(cfg)
    assert number_paths(dag) == 1


def test_back_edges_become_surrogates():
    dag = build_dag(main_cfg(LOOPY))
    kinds = [e.kind for e in dag.edges]
    assert kinds.count(SURR_ENTRY) == kinds.count(SURR_EXIT) == 2


def test_dag_is_acyclic():
    dag = build_dag(main_cfg(LOOPY))
    order = dag.topological_order()
    position = {node: i for i, node in enumerate(order)}
    for edge in dag.edges:
        assert position[edge.src] < position[edge.dst]


def test_numbering_is_bijection_on_examples():
    for source in (DIAMOND, LOOPY):
        dag = build_dag(main_cfg(source))
        total = number_paths(dag)
        ids = sorted(sum(e.val for e in path) for path in enumerate_paths(dag))
        assert ids == list(range(total))


def test_spanning_tree_reduces_probe_count():
    cfg = main_cfg(LOOPY)
    dag = build_dag(cfg)
    number_paths(dag)
    chords = place_increments(dag)
    assert chords < len(dag.edges)
    # surrogates are always chords; the virtual edge is always in the tree
    for edge in dag.edges:
        if edge.kind in (SURR_ENTRY, SURR_EXIT):
            assert edge.is_chord


def test_chord_increments_match_val_sums():
    for source in (DIAMOND, LOOPY):
        dag = build_dag(main_cfg(source))
        number_paths(dag)
        place_increments(dag)
        for path in enumerate_paths(dag):
            val_sum = sum(e.val for e in path)
            inc_sum = sum(e.inc for e in path if e.is_chord)
            assert val_sum == inc_sum


def test_regenerate_roundtrip():
    plan = FunctionPathPlan(main_cfg(LOOPY))
    for path_id in range(plan.num_paths):
        edges = plan.regenerate(path_id)
        assert sum(e.val for e in edges) == path_id
        assert edges[-1].dst == EXIT


def test_regenerate_blocks_of_motivating_example():
    from repro.subjects.motivating import build

    plan = FunctionPathPlan(build().program.func("foo"))
    assert plan.num_paths == 5  # the paper's Figure 1
    blocks = {tuple(plan.regenerate_blocks(i)) for i in range(5)}
    assert len(blocks) == 5  # all distinct


def test_regenerate_rejects_out_of_range():
    plan = FunctionPathPlan(main_cfg(DIAMOND))
    with pytest.raises(ValueError):
        plan.regenerate(plan.num_paths)
    with pytest.raises(ValueError):
        plan.regenerate(-1)


def test_plan_probe_sites_not_more_than_edges():
    for source in (DIAMOND, LOOPY):
        cfg = main_cfg(source)
        plan = FunctionPathPlan(cfg)
        assert plan.probe_sites() <= len(cfg.edges()) + len(cfg.ret_blocks())


def test_back_edge_events_cover_all_back_edges():
    from repro.cfg.analysis import back_edges

    cfg = main_cfg(LOOPY)
    plan = FunctionPathPlan(cfg)
    assert set(plan.back_edge_events) == back_edges(cfg)


# -- property tests over random programs ------------------------------------


@settings(max_examples=60, deadline=None)
@given(programs())
def test_numbering_bijection_property(source):
    program = compile_source(source)
    for func in program.funcs:
        dag = build_dag(func)
        total = number_paths(dag)
        if total <= 5_000:
            paths = enumerate_paths(dag, limit=5_000)
            ids = sorted(sum(e.val for e in path) for path in paths)
            assert ids == list(range(total))
        else:
            # Path-exploded function: check injectivity on a sample via the
            # decode-and-recompute roundtrip instead of full enumeration.
            plan = FunctionPathPlan(func, optimize=False)
            for path_id in range(0, total, max(1, total // 200)):
                edges = plan.regenerate(path_id)
                assert sum(e.val for e in edges) == path_id


@settings(max_examples=60, deadline=None)
@given(programs())
def test_spanning_tree_differential_property(source):
    program = compile_source(source)
    for func in program.funcs:
        dag = build_dag(func)
        total = number_paths(dag)
        place_increments(dag)
        if total <= 5_000:
            paths = enumerate_paths(dag, limit=5_000)
        else:
            plan = FunctionPathPlan(func)
            paths = [
                plan.regenerate(path_id)
                for path_id in range(0, total, max(1, total // 200))
            ]
        for path in paths:
            assert sum(e.val for e in path) == sum(
                e.inc for e in path if e.is_chord
            )


@settings(max_examples=40, deadline=None)
@given(programs())
def test_regeneration_property(source):
    program = compile_source(source)
    for func in program.funcs:
        plan = FunctionPathPlan(func)
        step = max(1, plan.num_paths // 50)
        for path_id in range(0, plan.num_paths, step):
            edges = plan.regenerate(path_id)
            assert sum(e.val for e in edges) == path_id
