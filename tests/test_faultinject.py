"""Fault-injection tests: every supervisor recovery path, proven.

Each test injects a deterministic fault (worker death, sync stall, dropped
pipe message, torn checkpoint) into an instance campaign and asserts the
supervised recovery reproduces the *undisturbed* campaign exactly — the
determinism contract extended across process death.  All tests carry the
``faultinject`` marker so CI can run the resilience suite on its own.
"""

import multiprocessing
import os
import time

import pytest

from repro.fuzzer import faultinject
from repro.fuzzer.faultinject import (
    Fault,
    FaultPlan,
    FaultSpecError,
    injected,
    parse_faults,
)
from repro.fuzzer.parallel import (
    _recv_or_raise,
    run_cells,
    run_instance_campaign,
)
from repro.fuzzer.stats import MatrixProgress
from repro.fuzzer.supervisor import (
    RestartPolicy,
    WorkerStallError,
    WorkerTaskError,
)

pytestmark = pytest.mark.faultinject

BUDGET = 40_000  # 8 sync rounds at the default cadence
FAST_RESTARTS = RestartPolicy(max_restarts=3, backoff_base=0.01, backoff_max=0.05)


@pytest.fixture(autouse=True)
def no_leftover_faults():
    faultinject.clear()
    yield
    faultinject.clear()


@pytest.fixture(scope="module")
def clean_run():
    """The undisturbed campaign every recovery must reproduce."""
    merged, worker_results, _ = run_instance_campaign(
        "flvmeta", "path", 0, BUDGET, workers=2
    )
    return merged, worker_results


# -- spec parsing --------------------------------------------------------------


def test_parse_faults_basic():
    (fault,) = parse_faults("kill@1.2")
    assert (fault.action, fault.worker, fault.round_no) == ("kill", 1, 2)
    assert fault.incarnation == 0  # first life only, by default
    assert fault.site() == "sync"


def test_parse_faults_params_incarnation_and_lists():
    faults = parse_faults("stall@0.1:secs=30, truncate@1.3.2:keep=32")
    assert faults[0].params == {"secs": "30"}
    assert faults[1].action == "truncate"
    assert faults[1].incarnation == 2
    assert faults[1].site() == "checkpoint"
    assert faults[1].params == {"keep": "32"}


@pytest.mark.parametrize(
    "spec", ["kill", "kill@1", "kill@1.2.3.4", "boom@1.2", "stall@0.1:secs"]
)
def test_parse_faults_rejects_malformed_specs(spec):
    with pytest.raises(FaultSpecError):
        parse_faults(spec)


def test_fault_plan_matches_exact_site_only():
    plan = FaultPlan([Fault("kill", 1, 2)])
    assert plan.match("sync", 1, 2, 0) is not None
    assert plan.match("sync", 1, 2, 1) is None  # replacement runs clean
    assert plan.match("sync", 0, 2, 0) is None
    assert plan.match("checkpoint", 1, 2, 0) is None


def test_parse_faults_lease_actions_round_trip():
    faults = parse_faults("lease-expire@0.2.1, clock-skew@1.0:secs=120")
    assert faults[0].action == "lease-expire"
    assert faults[0].site() == "lease"
    assert (faults[0].worker, faults[0].round_no, faults[0].incarnation) == (
        0, 2, 1,
    )
    assert faults[1].action == "clock-skew"
    assert faults[1].site() == "lease"
    assert faults[1].round_no == 0  # fires at acquisition, not a renewal
    assert faults[1].params == {"secs": "120"}


def test_lease_faults_cross_env(monkeypatch):
    # The serve CLI inherits faults the same way workers do: via the env.
    monkeypatch.setenv(faultinject.ENV_VAR, "lease-expire@0.1")
    plan = faultinject.active_plan()
    assert plan.match("lease", 0, 1, 0) is not None
    assert plan.match("lease", 0, 1, 1) is None  # next epoch runs clean
    assert plan.match("sync", 0, 1, 0) is None


def test_fire_lease_fault_expires_and_skews():
    class FakeLease:
        skew = 0.0
        expired = False

        def force_expire(self):
            self.expired = True

    lease = FakeLease()
    (expire,) = parse_faults("lease-expire@0.1")
    assert faultinject.fire_lease_fault(expire, lease) is True
    assert lease.expired
    (skew,) = parse_faults("clock-skew@0.0:secs=90")
    assert faultinject.fire_lease_fault(skew, lease) is False
    assert lease.skew == 90.0
    (default_skew,) = parse_faults("clock-skew@0.0")
    faultinject.fire_lease_fault(default_skew, lease)
    assert lease.skew == 150.0  # default 60s, cumulative


def test_install_and_active_plan_cross_env(monkeypatch):
    faultinject.install("kill@1.2")
    assert os.environ[faultinject.ENV_VAR] == "kill@1.2"
    assert faultinject.active_plan().match("sync", 1, 2, 0) is not None
    faultinject.clear()
    assert not faultinject.active_plan()
    # A spawned worker sees only the environment variable.
    monkeypatch.setenv(faultinject.ENV_VAR, "drop@0.3")
    assert faultinject.active_plan().match("sync", 0, 3, 0) is not None


# -- typed pipe errors (satellite: _recv_or_raise deadline) --------------------


def test_recv_or_raise_raises_typed_stall_on_silent_pipe():
    recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
    start = time.monotonic()
    with pytest.raises(WorkerStallError) as excinfo:
        _recv_or_raise(recv_conn, 3, expected="synced", timeout=0.2)
    assert time.monotonic() - start < 5  # bounded, never blocks forever
    assert excinfo.value.worker_index == 3
    send_conn.close()
    recv_conn.close()


def test_recv_or_raise_surfaces_worker_errors():
    recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
    send_conn.send(("error", "ValueError: boom"))
    with pytest.raises(WorkerTaskError, match="boom"):
        _recv_or_raise(recv_conn, 0, expected="synced", timeout=1.0)
    send_conn.close()
    recv_conn.close()


# -- instance-campaign recovery paths ------------------------------------------


def _supervised(checkpoint_dir=None, **kwargs):
    kwargs.setdefault("restart_policy", FAST_RESTARTS)
    kwargs.setdefault("worker_timeout", 10.0)
    return run_instance_campaign(
        "flvmeta",
        "path",
        0,
        BUDGET,
        workers=2,
        checkpoint_dir=checkpoint_dir,
        **kwargs,
    )


def test_killed_worker_recovers_identically(clean_run):
    with injected("kill@1.2"):
        merged, worker_results, stats = _supervised()
    clean_merged, clean_workers = clean_run
    assert merged == clean_merged
    assert [r.execs for r in worker_results] == [r.execs for r in clean_workers]
    assert not merged.degraded
    assert merged.worker_restarts == (0, 1)
    assert [e.worker for e in stats.restarts] == [1]
    assert "Dead" in stats.restarts[0].reason


def test_killed_worker_resumes_from_checkpoint(tmp_path, clean_run):
    """With a checkpoint dir the replacement resumes instead of replaying."""
    with injected("kill@1.3"):
        merged, _, stats = _supervised(checkpoint_dir=str(tmp_path))
    assert merged == clean_run[0]
    assert merged.worker_restarts == (0, 1)
    assert os.path.exists(str(tmp_path / "worker1.ckpt"))
    assert [e.worker for e in stats.restarts] == [1]


def test_stalled_worker_recovers_identically(clean_run):
    with injected("stall@0.2:secs=600"):
        merged, _, stats = _supervised(worker_timeout=1.0)
    assert merged == clean_run[0]
    assert merged.worker_restarts == (1, 0)
    assert "Stall" in stats.restarts[0].reason


def test_dropped_sync_reply_recovers_identically(clean_run):
    with injected("drop@1.1"):
        merged, _, stats = _supervised(worker_timeout=1.0)
    assert merged == clean_run[0]
    assert merged.worker_restarts == (0, 1)


def test_torn_checkpoint_falls_back_to_full_replay(tmp_path, clean_run):
    """truncate@1.1 tears worker 1's only checkpoint; kill@1.2 then forces
    a restart that must *refuse* the torn file and replay from round 0."""
    with injected("truncate@1.1,kill@1.2"):
        merged, _, stats = _supervised(checkpoint_dir=str(tmp_path))
    assert merged == clean_run[0]
    assert merged.worker_restarts == (0, 1)
    assert not merged.degraded


def test_restart_budget_exhaustion_degrades_not_fails():
    """A worker killed in every life is dropped; the campaign survives."""
    policy = RestartPolicy(max_restarts=1, backoff_base=0.01)
    with injected("kill@1.1.0,kill@1.1.1"):
        merged, worker_results, stats = _supervised(restart_policy=policy)
    assert merged.degraded
    assert merged.worker_restarts == (0, 1)
    assert len(worker_results) == 1  # only worker 0 reached the finish line
    assert [w for w, _ in stats.degraded_workers] == [1]
    assert any("degraded" in line for line in stats.summary_lines())
    # Worker 1 died before contributing anything, so the survivor saw no
    # imports: its campaign is exactly the deterministic solo instance.
    _, solo_workers, _ = run_instance_campaign(
        "flvmeta", "path", 0, BUDGET, workers=1
    )
    assert worker_results[0] == solo_workers[0]


def test_unsupervised_campaign_fails_fast():
    with injected("kill@1.2"):
        with pytest.raises(Exception):
            run_instance_campaign(
                "flvmeta", "path", 0, BUDGET, workers=2, supervise=False
            )


# -- matrix-cell retries -------------------------------------------------------


def _flaky_cell(task):
    """Dies on the first attempt, succeeds once its sentinel file exists."""
    kind, sentinel = task
    if kind == "flaky":
        if not os.path.exists(sentinel):
            with open(sentinel, "w") as handle:
                handle.write("attempted")
            os._exit(3)
        return "recovered"
    if kind == "boom":
        raise RuntimeError("deterministic bug")
    return "ok"


def test_transient_cell_failures_retry_with_backoff(tmp_path):
    sentinel = str(tmp_path / "attempted")
    progress = MatrixProgress(total=1)
    results, failures = run_cells(
        {"cell": ("flaky", sentinel)},
        jobs=1,
        cell_fn=_flaky_cell,
        restart_policy=RestartPolicy(max_restarts=2, backoff_base=0.01),
        progress=progress,
    )
    assert results == {"cell": "recovered"}
    assert failures == []
    assert progress.cells[-1].restarts == 1  # one retry was consumed


def test_deterministic_cell_errors_are_never_retried(tmp_path):
    results, failures = run_cells(
        {"cell": ("boom", "")},
        jobs=1,
        cell_fn=_flaky_cell,
        restart_policy=RestartPolicy(max_restarts=5, backoff_base=0.01),
    )
    assert results == {}
    assert len(failures) == 1
    assert failures[0].kind == "error"
    assert failures[0].restarts == 0  # no retry budget was spent on it


def _always_dies(task):
    os._exit(3)


def test_cell_restart_budget_exhaustion_reports_restarts():
    results, failures = run_cells(
        {"cell": ("x",)},
        jobs=1,
        cell_fn=_always_dies,
        restart_policy=RestartPolicy(max_restarts=2, backoff_base=0.01),
    )
    assert results == {}
    assert failures[0].kind == "crashed"
    assert failures[0].restarts == 2


def test_cell_restarts_env_knob(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CELL_RESTARTS", "1")
    sentinel = str(tmp_path / "attempted")
    results, failures = run_cells(
        {"cell": ("flaky", sentinel)}, jobs=1, cell_fn=_flaky_cell
    )
    assert results == {"cell": "recovered"}
    assert failures == []
