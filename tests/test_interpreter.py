"""VM semantics tests: arithmetic, memory, traps, builtins, limits."""

from repro.lang import compile_source
from repro.runtime import execute
from repro.runtime.traps import (
    ASSERT_FAIL,
    BAD_ALLOC,
    DIV_BY_ZERO,
    OOB_READ,
    OOB_WRITE,
    READONLY_WRITE,
    SHIFT_RANGE,
    STACK_OVERFLOW,
)


def run_expr(expr, data=b""):
    program = compile_source("fn main(input) { return %s; }" % expr)
    return execute(program, data)


def run_body(body, data=b"", **kwargs):
    program = compile_source("fn main(input) { %s }" % body)
    return execute(program, data, **kwargs)


# -- arithmetic --------------------------------------------------------------


def test_basic_arithmetic():
    assert run_expr("2 + 3 * 4 - 1").retval == 13


def test_c_style_truncating_division():
    assert run_expr("7 / 2").retval == 3
    assert run_expr("(0 - 7) / 2").retval == -3
    assert run_expr("7 / (0 - 2)").retval == -3


def test_c_style_modulo_sign():
    assert run_expr("7 % 3").retval == 1
    assert run_expr("(0 - 7) % 3").retval == -1
    assert run_expr("7 % (0 - 3)").retval == 1


def test_signed_64bit_wraparound():
    assert run_expr("9223372036854775807 + 1").retval == -9223372036854775808
    assert run_expr("(0 - 9223372036854775807 - 1) - 1").retval == 9223372036854775807


def test_comparisons_produce_zero_one():
    assert run_expr("3 < 4").retval == 1
    assert run_expr("4 <= 3").retval == 0
    assert run_expr("5 == 5").retval == 1
    assert run_expr("5 != 5").retval == 0


def test_bitwise_operators():
    assert run_expr("12 & 10").retval == 8
    assert run_expr("12 | 3").retval == 15
    assert run_expr("12 ^ 10").retval == 6
    assert run_expr("1 << 4").retval == 16
    assert run_expr("256 >> 3").retval == 32


def test_unary_operators():
    assert run_expr("-(5)").retval == -5
    assert run_expr("!0").retval == 1
    assert run_expr("!7").retval == 0
    assert run_expr("~0").retval == -1


# -- traps ---------------------------------------------------------------------


def test_division_by_zero_traps_with_line():
    result = run_body("var d = len(input); return 9 / d;")
    assert result.trap.kind == DIV_BY_ZERO
    assert result.trap.function == "main"
    assert result.trap.line == 1


def test_modulo_by_zero_traps():
    assert run_body("var d = len(input); return 9 % d;").trap.kind == DIV_BY_ZERO


def test_shift_out_of_range_traps():
    assert run_body("var s = 70; return 1 << s;").trap.kind == SHIFT_RANGE
    assert run_body("var s = 0 - 1; return 1 >> s;").trap.kind == SHIFT_RANGE


def test_oob_read_and_write():
    read = run_body("var a = alloc(4); return a[9];")
    assert read.trap.kind == OOB_READ
    write = run_body("var a = alloc(4); a[4] = 1; return 0;")
    assert write.trap.kind == OOB_WRITE


def test_negative_index_traps():
    result = run_body("var a = alloc(4); return a[0 - 1];")
    assert result.trap.kind == OOB_READ


def test_readonly_string_write_traps():
    result = run_body('var s = "abc"; s[0] = 65; return 0;')
    assert result.trap.kind == READONLY_WRITE


def test_bad_alloc_traps():
    assert run_body("var a = alloc(0 - 5); return 0;").trap.kind == BAD_ALLOC
    assert run_body("var a = alloc(99999999); return 0;").trap.kind == BAD_ALLOC


def test_trap_builtin_aborts():
    result = run_body("trap(42); return 0;")
    assert result.trap.kind == ASSERT_FAIL
    assert "42" in result.trap.detail


def test_stack_overflow_on_unbounded_recursion():
    program = compile_source(
        "fn rec(n) { return rec(n + 1); } fn main(input) { return rec(0); }"
    )
    result = execute(program, b"")
    assert result.trap.kind == STACK_OVERFLOW


def test_stack_trace_is_innermost_first():
    program = compile_source(
        "fn inner(a) { return a[5]; }\n"
        "fn outer(a) { return inner(a); }\n"
        "fn main(input) { var a = alloc(2); return outer(a); }"
    )
    trap = execute(program, b"").trap
    names = [frame.function for frame in trap.stack]
    assert names == ["inner", "outer", "main"]


def test_timeout_on_infinite_loop():
    result = run_body("while (1) { } return 0;", instr_budget=5_000)
    assert result.timeout
    assert not result.crashed


# -- builtins ------------------------------------------------------------------


def test_len_and_alloc():
    assert run_body("var a = alloc(7); return len(a);").retval == 7
    assert run_body("return len(input);", b"abcd").retval == 4


def test_alloc_zeroed():
    assert run_body("var a = alloc(3); return a[0] + a[1] + a[2];").retval == 0


def test_abs_min_max():
    assert run_expr("abs(0 - 9)").retval == 9
    assert run_expr("min(3, 8)").retval == 3
    assert run_expr("max(3, 8)").retval == 8


def test_memcmp_equal_and_unequal():
    assert run_body('return memcmp(input, 0, "abc", 0, 3);', b"abcX").retval == 0
    assert run_body('return memcmp(input, 0, "abc", 0, 3);', b"abX").retval == 1


def test_memcmp_bounds_checked():
    result = run_body('return memcmp(input, 0, "abc", 0, 3);', b"ab")
    assert result.trap.kind == OOB_READ


def test_copy_moves_bytes():
    result = run_body(
        "var a = alloc(4); copy(a, 0, input, 1, 3); return a[0] + a[2];", b"\x01\x02\x03\x04"
    )
    assert result.retval == 2 + 4


def test_copy_bounds_checked_on_destination():
    result = run_body("var a = alloc(2); copy(a, 0, input, 0, 3); return 0;", b"abc")
    assert result.trap.kind == OOB_WRITE


def test_copy_into_readonly_traps():
    result = run_body('copy("abc", 0, input, 0, 1); return 0;', b"x")
    assert result.trap.kind == READONLY_WRITE


def test_fill_sets_range():
    result = run_body("var a = alloc(4); fill(a, 1, 2, 9); return a[0] + a[1] + a[3];")
    assert result.retval == 9


def test_scalar_reads_endianness():
    assert run_body("return read16(input, 0);", b"\x01\x02").retval == 0x0102
    assert run_body("return read16le(input, 0);", b"\x01\x02").retval == 0x0201
    assert run_body("return read32(input, 0);", b"\x00\x00\x01\x00").retval == 256
    assert run_body("return read32le(input, 0);", b"\x00\x01\x00\x00").retval == 256


def test_scalar_reads_bounds_checked():
    assert run_body("return read32(input, 0);", b"ab").trap.kind == OOB_READ


def test_string_constants_shared_per_execution():
    result = run_body('var a = "xy"; var b = "xy"; return a[0] + b[1];')
    assert result.retval == ord("x") + ord("y")


# -- accounting ------------------------------------------------------------------


def test_instruction_count_grows_with_input():
    program = compile_source(
        "fn main(input) { var t = 0;"
        " for (var i = 0; i < len(input); i = i + 1) { t = t + input[i]; }"
        " return t; }"
    )
    short = execute(program, b"ab")
    long = execute(program, b"a" * 40)
    assert long.instr_count > short.instr_count


def test_cmplog_captures_comparisons():
    program = compile_source(
        "fn main(input) { if (len(input) == 7) { return 1; } return 0; }"
    )
    result = execute(program, b"abc", cmplog=True)
    assert (3, 7) in result.cmp_log


def test_cmplog_captures_memcmp_windows():
    program = compile_source(
        'fn main(input) { return memcmp(input, 0, "MAGI", 0, 4); }'
    )
    result = execute(program, b"WXYZ", cmplog=True)
    assert (b"WXYZ", b"MAGI") in result.cmp_log


def test_cmplog_off_by_default():
    program = compile_source(
        "fn main(input) { if (len(input) == 7) { return 1; } return 0; }"
    )
    assert execute(program, b"abc").cmp_log == []


def test_uninstrumented_run_has_no_hits():
    result = run_body("return 1;")
    assert result.hits == {}
    assert result.probe_count == 0
