"""Everything that crosses a worker-process boundary must survive pickle.

Campaign results travel from matrix workers to the parent, per-worker
results and crash records from instance workers, and feedback state rides
along inside engines forked for instance campaigns.  These are regression
tests for the whole reachable object graph — most notably :class:`Trap`,
whose Exception heritage made default pickling replay ``__init__`` with the
formatted message instead of the real arguments.
"""

import pickle

import pytest

from repro.coverage.bitmap import VirginMap
from repro.coverage.feedback import (
    BlockFeedback,
    EdgeFeedback,
    NGramFeedback,
    PathAFLFeedback,
    PathFeedback,
    PathPairFeedback,
)
from repro.experiments.config import run_config
from repro.fuzzer.campaign import CampaignResult, CrashInfo
from repro.fuzzer.corpus import QueueEntry
from repro.fuzzer.engine import CrashRecord
from repro.runtime.traps import Frame, Timeout, Trap
from repro.subjects import get_subject


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


def test_trap_roundtrips_with_full_stack():
    stack = [Frame("inner", 12), Frame("outer", 40)]
    trap = Trap("heap-buffer-overflow-read", "inner", 12, "index 9 of 8", stack)
    clone = roundtrip(trap)
    assert isinstance(clone, Trap)
    assert clone.kind == trap.kind
    assert clone.function == trap.function
    assert clone.line == trap.line
    assert clone.detail == trap.detail
    assert clone.stack == stack
    assert clone.bug_id() == trap.bug_id()
    assert clone.report() == trap.report()


def test_timeout_roundtrips():
    clone = roundtrip(Timeout(60_000))
    assert isinstance(clone, Timeout)
    assert clone.budget == 60_000


def test_crash_info_roundtrips_by_value():
    info = CrashInfo(
        bug=("f", 3, "division-by-zero"),
        hash5="abcdef",
        kind="division-by-zero",
        count=4,
        afl_unique=True,
        found_at=123,
        stack=(("f", 3), ("main", 9)),
    )
    assert roundtrip(info) == info


def test_crash_record_roundtrips_with_trap():
    trap = Trap("division-by-zero", "f", 3, "denominator 0", [Frame("f", 3)])
    record = CrashRecord(b"\x00\x01", trap, found_at=7, afl_unique=True, hash5="h5")
    clone = roundtrip(record)
    assert clone.data == record.data
    assert clone.trap.bug_id() == trap.bug_id()
    assert clone.found_at == 7
    assert clone.hash5 == "h5"
    assert clone.count == 1


def test_campaign_result_from_real_run_roundtrips():
    subject = get_subject("flvmeta")
    result = run_config(subject, "path", 0, budget_ticks=30_000)
    assert roundtrip(result) == result


def test_handwritten_campaign_result_roundtrips():
    result = CampaignResult(
        subject_name="s",
        config_name="c",
        run_seed=1,
        bugs={("f", 1, "k")},
        crash_records=[
            CrashInfo(("f", 1, "k"), "h", "k", 2, False, 5, (("f", 1),))
        ],
        crash_count=2,
        afl_unique_crash_count=1,
        queue_size=3,
        edges=frozenset({1, 2, 3}),
        execs=100,
        hangs=1,
        ticks=5000,
        throughput=8000.0,
        timeline=[(0, 1, 1, 0, 1)],
    )
    assert roundtrip(result) == result


def test_queue_entry_roundtrips():
    entry = QueueEntry(4, b"data", 120, {7: 2, 9: 1}, depth=3, found_at=88)
    entry.favored = True
    entry.imported = True
    clone = roundtrip(entry)
    assert clone.entry_id == 4
    assert clone.data == b"data"
    assert clone.classified == {7: 2, 9: 1}
    assert clone.trace == entry.trace
    assert clone.favored and clone.imported
    assert clone.depth == 3 and clone.found_at == 88


def test_virgin_map_roundtrips():
    virgin = VirginMap()
    virgin.merge({1: 1, 2: 4})
    clone = roundtrip(virgin)
    assert clone.bits == virgin.bits


@pytest.mark.parametrize(
    "feedback",
    [
        EdgeFeedback(),
        PathFeedback(),
        PathFeedback(optimize=False),
        BlockFeedback(),
        NGramFeedback(4),
        PathAFLFeedback(),
        PathPairFeedback(),
    ],
    ids=lambda f: f.name,
)
def test_feedback_and_instrumentation_roundtrip(feedback):
    clone = roundtrip(feedback)
    assert clone.name == feedback.name
    program = get_subject("flvmeta").program
    instr = feedback.instrument(program)
    instr_clone = roundtrip(instr)
    assert instr_clone.feedback_name == instr.feedback_name
    assert instr_clone.map_mask == instr.map_mask
    assert instr_clone.probe_sites == instr.probe_sites
    assert instr_clone.edge_actions == instr.edge_actions
    assert instr_clone.ret_actions == instr.ret_actions
    assert instr_clone.entry_actions == instr.entry_actions
    assert instr_clone.edge_rows == instr.edge_rows
    assert instr_clone.ngram_n == instr.ngram_n
    assert instr_clone.pair_paths == instr.pair_paths
