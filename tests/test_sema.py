"""Semantic-analysis unit tests."""

import pytest

from repro.lang.errors import SemaError
from repro.lang.parser import parse
from repro.lang.sema import check_program


def check(source):
    check_program(parse(source))


def check_main(body):
    check("fn main(input) { %s }" % body)


def test_valid_program_passes():
    check_main("var x = 1; x = x + 1; return x;")


def test_duplicate_function_rejected():
    with pytest.raises(SemaError):
        check("fn f() { return 0; } fn f() { return 1; }")


def test_builtin_shadowing_rejected():
    with pytest.raises(SemaError):
        check("fn abs(x) { return x; }")


def test_duplicate_parameter_rejected():
    with pytest.raises(SemaError):
        check("fn f(a, a) { return a; }")


def test_undeclared_use_rejected():
    with pytest.raises(SemaError):
        check_main("return y;")


def test_undeclared_assignment_rejected():
    with pytest.raises(SemaError):
        check_main("y = 3;")


def test_redeclaration_same_scope_rejected():
    with pytest.raises(SemaError):
        check_main("var x = 1; var x = 2;")


def test_shadowing_in_nested_scope_allowed():
    check_main("var x = 1; if (x) { var x = 2; x = 3; }")


def test_inner_declaration_not_visible_outside():
    with pytest.raises(SemaError):
        check_main("if (input) { var y = 1; } return y;")


def test_for_scope_contains_its_variable():
    check_main("for (var i = 0; i < 3; i = i + 1) { var t = i; }")
    with pytest.raises(SemaError):
        check_main("for (var i = 0; i < 3; i = i + 1) { } return i;")


def test_break_outside_loop_rejected():
    with pytest.raises(SemaError):
        check_main("break;")


def test_continue_outside_loop_rejected():
    with pytest.raises(SemaError):
        check_main("if (input) { continue; }")


def test_break_inside_loop_allowed():
    check_main("while (1) { break; }")


def test_unknown_function_rejected():
    with pytest.raises(SemaError):
        check_main("missing(1);")


def test_user_function_arity_checked():
    with pytest.raises(SemaError):
        check("fn f(a) { return a; } fn main(input) { f(1, 2); }")


def test_builtin_arity_checked():
    with pytest.raises(SemaError):
        check_main("abs(1, 2);")


def test_mutual_recursion_allowed():
    check(
        "fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }"
        "fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }"
        "fn main(input) { return even(len(input)); }"
    )


def test_params_visible_in_body():
    check("fn f(a, b) { return a + b; } fn main(input) { return f(1, 2); }")


def test_error_reports_line():
    with pytest.raises(SemaError) as info:
        check("fn main(input) {\n  var x = 1;\n  y = 2;\n}")
    assert info.value.line == 3
