"""Path-level crash explanation tests."""

from repro.subjects import get_subject
from repro.subjects.motivating import BUG_WITNESS, SEEDS, build
from repro.triage.pathreport import diff_profiles, explain_crash, profile_input


def test_profile_decodes_foo_paths():
    subject = build()
    profile = profile_input(subject.program, SEEDS[0])
    functions = {entry[0] for entry in profile.entries}
    assert "foo" in functions and "main" in functions
    for function, path_id, count, blocks in profile.entries:
        assert count >= 1
        assert blocks[0] in (0,) or isinstance(blocks[0], int)


def test_profile_reports_crash():
    subject = build()
    profile = profile_input(subject.program, BUG_WITNESS)
    assert profile.crashed
    assert profile.trap.bug_id() == subject.bugs[0].bug_id


def test_diff_isolates_the_red_path():
    subject = build()
    # The non-crashing red-path stepping stone vs a benign seed exercising
    # the other arms: the diff must contain a foo path.
    stepping_stone = b"h" + b"A" * 43
    _crash, novel = diff_profiles(subject.program, SEEDS[0], stepping_stone)
    assert any(function == "foo" for function, _pid, _blocks in novel)


def test_diff_empty_for_identical_inputs():
    subject = build()
    _profile, novel = diff_profiles(subject.program, SEEDS[0], SEEDS[0])
    assert novel == []


def test_explain_crash_renders_report():
    subject = build()
    text = explain_crash(subject.program, SEEDS[0], BUG_WITNESS)
    assert "heap-buffer-overflow-write" in text
    assert "novel acyclic paths" in text
    # The trap aborts foo before its path-end emit fires, so the crashing
    # input itself completes no novel path (correct Ball-Larus semantics);
    # the stepping-stone diff below is where the route shows up.
    assert "data-only" in text


def test_explain_stepping_stone_shows_route():
    subject = build()
    stepping_stone = b"h" + b"A" * 43  # red path, one byte short of the crash
    text = explain_crash(subject.program, SEEDS[1], stepping_stone)
    assert "does not crash" in text
    assert "foo path" in text


def test_explain_non_crash():
    subject = build()
    text = explain_crash(subject.program, SEEDS[0], SEEDS[1])
    assert "does not crash" in text


def test_profile_on_loop_heavy_subject():
    subject = get_subject("cflow")
    profile = profile_input(subject.program, subject.seeds[0])
    assert profile.entries
    # Repeated loop iterations show up as hit counts > 1 somewhere.
    assert any(count > 1 for _f, _p, count, _b in profile.entries)


def test_profile_format_truncates():
    subject = get_subject("cflow")
    profile = profile_input(subject.program, subject.seeds[0])
    text = profile.format(max_entries=2)
    assert "path" in text
