"""AST -> CFG lowering tests."""

import pytest

from repro.cfg.instructions import BR, RET
from repro.lang import compile_source


def lower_main(body, optimize=False):
    program = compile_source("fn main(input) { %s }" % body, optimize=optimize)
    return program.func("main")


def terminator_kinds(cfg):
    return sorted(b.term[0] for b in cfg.blocks)


def test_straight_line_single_block():
    cfg = lower_main("var x = 1; var y = x + 2; return y;")
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].term[0] == RET


def test_missing_return_synthesized():
    cfg = lower_main("var x = 1;")
    assert cfg.blocks[-1].term == (RET, -1)


def test_if_produces_branch_and_join():
    cfg = lower_main("var x = 0; if (input) { x = 1; } return x;")
    assert any(b.term[0] == BR for b in cfg.blocks)
    # entry branches to then-block and join
    assert len(cfg.blocks) >= 3


def test_if_else_produces_two_arms():
    cfg = lower_main("var x = 0; if (input) { x = 1; } else { x = 2; } return x;")
    branches = [b for b in cfg.blocks if b.term[0] == BR]
    assert len(branches) == 1
    t, f = branches[0].term[2], branches[0].term[3]
    assert t != f


def test_while_creates_back_edge():
    cfg = lower_main("var i = 0; while (i < 3) { i = i + 1; } return i;")
    from repro.cfg.analysis import back_edges

    assert len(back_edges(cfg)) == 1


def test_for_desugars_with_step_block():
    cfg = lower_main("var t = 0; for (var i = 0; i < 4; i = i + 1) { t = t + i; } return t;")
    from repro.cfg.analysis import back_edges

    assert len(back_edges(cfg)) == 1


def test_break_jumps_to_exit():
    cfg = lower_main("while (1) { break; } return 7;")
    from repro.runtime import execute

    program = compile_source("fn main(input) { while (1) { break; } return 7; }")
    assert execute(program, b"").retval == 7


def test_continue_reaches_step():
    program = compile_source(
        "fn main(input) { var t = 0;"
        " for (var i = 0; i < 5; i = i + 1) { if (i == 2) { continue; } t = t + 1; }"
        " return t; }"
    )
    from repro.runtime import execute

    assert execute(program, b"").retval == 4


def test_unreachable_code_pruned():
    cfg = lower_main("return 1; ")
    assert len(cfg.blocks) == 1


def test_diverging_both_arms_prunes_join():
    cfg = lower_main("if (input) { return 1; } else { return 2; }")
    for block in cfg.blocks:
        assert block.term is not None
    # join block had no predecessors and is gone
    preds = cfg.predecessors()
    assert all(block.id == 0 or preds[block.id] for block in cfg.blocks)


def test_short_circuit_and_creates_control_flow():
    cfg = lower_main("var x = input[0] && input[1]; return x;")
    assert sum(1 for b in cfg.blocks if b.term[0] == BR) >= 2


def test_short_circuit_semantics_and():
    program = compile_source(
        "fn main(input) { if (len(input) > 0 && input[0] == 'x') { return 1; } return 0; }"
    )
    from repro.runtime import execute

    assert execute(program, b"").retval == 0  # no OOB read on empty input
    assert execute(program, b"x").retval == 1
    assert execute(program, b"y").retval == 0


def test_short_circuit_semantics_or():
    program = compile_source(
        "fn main(input) { if (len(input) == 0 || input[0] == 'x') { return 1; } return 0; }"
    )
    from repro.runtime import execute

    assert execute(program, b"").retval == 1
    assert execute(program, b"xa").retval == 1
    assert execute(program, b"ya").retval == 0


def test_not_in_condition_swaps_targets():
    program = compile_source(
        "fn main(input) { if (!(len(input) == 0)) { return 1; } return 0; }"
    )
    from repro.runtime import execute

    assert execute(program, b"a").retval == 1
    assert execute(program, b"").retval == 0


def test_dense_block_numbering():
    cfg = lower_main(
        "var t = 0; if (input) { t = 1; } while (t < 5) { t = t + 1; } return t;"
    )
    assert [b.id for b in cfg.blocks] == list(range(len(cfg.blocks)))


def test_validate_passes_on_all_lowered_functions():
    source = """
    fn helper(a, b) { if (a > b) { return a; } return b; }
    fn main(input) {
        var best = 0;
        for (var i = 0; i < len(input); i = i + 1) {
            best = helper(best, input[i]);
        }
        return best;
    }
    """
    program = compile_source(source)
    program.validate()


def test_main_arity_enforced():
    with pytest.raises(ValueError):
        compile_source("fn main(a, b) { return 0; }")


def test_missing_main_rejected():
    with pytest.raises(ValueError):
        compile_source("fn helper(a) { return a; }")


def test_string_pool_deduplicates():
    program = compile_source(
        'fn main(input) { var a = memcmp(input, 0, "AB", 0, 2);'
        ' var b = memcmp(input, 0, "AB", 0, 2); return a + b; }'
    )
    assert program.strings.count(b"AB") == 1


def test_call_lowering_argument_order():
    program = compile_source(
        "fn sub(a, b) { return a - b; } fn main(input) { return sub(10, 4); }"
    )
    from repro.runtime import execute

    assert execute(program, b"").retval == 6
