"""Dataflow framework tests: solver, reaching defs, liveness, must-defined."""

from hypothesis import given, settings

from repro.analysis.dataflow import (
    Liveness,
    MustDefined,
    ReachingDefinitions,
    solve,
)
from repro.cfg.graph import FunctionCFG
from repro.cfg.instructions import BIN, BR, CONST, JMP, MOV, OP_ADD, OP_LT, RET
from repro.lang import compile_source
from tests.genprog import programs


def diamond_cfg():
    """Entry branches on the param; each arm defines r1; arms rejoin.

        b0: br r0 ? b1 : b2
        b1: r1 = 10      ; jmp b3
        b2: r1 = 20      ; jmp b3
        b3: r2 = r1 + r0 ; ret r2
    """
    cfg = FunctionCFG("diamond", 0, 1)
    for _ in range(4):
        cfg.new_block()
    cfg.nregs = 3
    cfg.blocks[0].term = (BR, 0, 1, 2)
    cfg.blocks[1].instrs = [(CONST, 1, 10)]
    cfg.blocks[1].term = (JMP, 3)
    cfg.blocks[2].instrs = [(CONST, 1, 20)]
    cfg.blocks[2].term = (JMP, 3)
    cfg.blocks[3].instrs = [(BIN, OP_ADD, 2, 1, 0, 1)]
    cfg.blocks[3].term = (RET, 2)
    return cfg


def loop_cfg():
    """A counting loop reading its induction register across the back edge.

        b0: r1 = 0                ; jmp b1
        b1: r2 = r1 < r0          ; br r2 ? b2 : b3
        b2: r1 = r1 + r0 (reuse)  ; jmp b1
        b3: ret r1
    """
    cfg = FunctionCFG("loop", 0, 1)
    for _ in range(4):
        cfg.new_block()
    cfg.nregs = 3
    cfg.blocks[0].instrs = [(CONST, 1, 0)]
    cfg.blocks[0].term = (JMP, 1)
    cfg.blocks[1].instrs = [(BIN, OP_LT, 2, 1, 0, 2)]
    cfg.blocks[1].term = (BR, 2, 2, 3)
    cfg.blocks[2].instrs = [(BIN, OP_ADD, 1, 1, 0, 3)]
    cfg.blocks[2].term = (JMP, 1)
    cfg.blocks[3].term = (RET, 1)
    return cfg


# -- reaching definitions ----------------------------------------------------


def test_reaching_defs_join_at_merge():
    cfg = diamond_cfg()
    reaching = ReachingDefinitions().definitions_reaching_uses(cfg)
    # The use of r1 in b3 sees both arm definitions and nothing else.
    assert reaching[(3, 0, 1)] == frozenset({(1, 0), (2, 0)})
    # The use of r0 (a parameter never redefined) sees only the param site.
    assert reaching[(3, 0, 0)] == frozenset({("param", 0)})


def test_reaching_defs_kill_within_block():
    cfg = FunctionCFG("kills", 0, 0)
    cfg.new_block()
    cfg.nregs = 1
    cfg.blocks[0].instrs = [(CONST, 0, 1), (CONST, 0, 2), (MOV, 0, 0)]
    cfg.blocks[0].term = (RET, 0)
    reaching = ReachingDefinitions().definitions_reaching_uses(cfg)
    # The MOV's read of r0 sees only the second CONST (the first is killed).
    assert reaching[(0, 2, 0)] == frozenset({(0, 1)})


def test_reaching_defs_flow_around_loop():
    cfg = loop_cfg()
    reaching = ReachingDefinitions().definitions_reaching_uses(cfg)
    # In the header, r1 may come from the init or from the latch update.
    assert reaching[(1, 0, 1)] == frozenset({(0, 0), (2, 0)})


# -- liveness ----------------------------------------------------------------


def test_liveness_keeps_loop_carried_register():
    cfg = loop_cfg()
    result = solve(cfg, Liveness())
    # r1 is live at the latch exit (read by the header next iteration).
    assert 1 in result.exit[2]
    # Nothing is dead in this function.
    assert Liveness().dead_writes(cfg) == []


def test_dead_write_detected():
    cfg = FunctionCFG("deadwrite", 0, 1)
    cfg.new_block()
    cfg.nregs = 3
    cfg.blocks[0].instrs = [(CONST, 1, 5), (CONST, 2, 7), (MOV, 1, 0)]
    cfg.blocks[0].term = (RET, 1)
    dead = Liveness().dead_writes(cfg)
    # CONST r1,5 is overwritten before any read; CONST r2,7 is never read.
    assert (0, 0) in dead
    assert (0, 1) in dead
    assert (0, 2) not in dead  # the MOV feeds the RET


def test_branch_condition_counts_as_use():
    cfg = diamond_cfg()
    result = solve(cfg, Liveness())
    assert 0 in result.entry[0]  # the param feeds the entry branch


# -- must-defined ------------------------------------------------------------


def test_must_defined_accepts_both_arm_definition():
    assert MustDefined().undefined_uses(diamond_cfg()) == []


def test_must_defined_rejects_one_arm_definition():
    cfg = diamond_cfg()
    cfg.blocks[2].instrs = []  # drop the false-arm definition of r1
    problems = MustDefined().undefined_uses(cfg)
    assert (3, 0, 1) in problems


def test_must_defined_sees_loop_init():
    assert MustDefined().undefined_uses(loop_cfg()) == []


def test_must_defined_terminator_use():
    cfg = FunctionCFG("retuse", 0, 0)
    cfg.new_block()
    cfg.nregs = 1
    cfg.blocks[0].term = (RET, 0)  # r0 never written, no params
    assert MustDefined().undefined_uses(cfg) == [(0, 0, 0)]


# -- whole-program properties ------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(programs())
def test_compiled_programs_are_fully_defined(source):
    program = compile_source(source)
    for cfg in program.funcs:
        assert MustDefined().undefined_uses(cfg) == []


@settings(max_examples=40, deadline=None)
@given(programs())
def test_liveness_entry_needs_only_params(source):
    # At function entry only parameters may be live: anything else would be
    # a use-before-def, which the verifier guarantees cannot happen.
    program = compile_source(source)
    for cfg in program.funcs:
        live_in = solve(cfg, Liveness()).entry[0]
        assert all(reg < cfg.nparams for reg in live_in)
