"""Taint subsystem tests: equivalence, labels, maps, targets, masked stage.

The load-bearing contract is *mirroring*: a taint run's ExecutionResult must
be bit-identical to the plain interpreter's on the same input — same return
value, trap identity, timeout, instruction/probe accounting, coverage map,
and cmplog.  Everything else (TaintMap contents, target ranking, masked
mutation, engine wiring, snapshot/restore) builds on that.
"""

import pickle
import random

import pytest

from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.fuzzer.masked import (
    _focus_runs,
    masked_candidates,
    masked_havoc,
    sweep_candidates,
)
from repro.lang import compile_source
from repro.runtime.backend import make_backend
from repro.runtime.interpreter import execute
from repro.subjects import all_subject_names, get_subject
from repro.taint import (
    LabelPool,
    TaintMap,
    TaintState,
    build_branch_index,
    select_targets,
    taint_enabled,
    taint_execute,
)

TARGET = """
fn check(x) {
    if (x > 10) { return x * 2; }
    return x;
}

fn main(input) {
    var n = len(input);
    if (n < 4) { return 0; }
    var magic = read16(input, 0);
    var acc = 0;
    if (magic == 0x4142) {
        acc = check(input[2]);
        if (input[3] / 3 == 7) { acc = acc + 100; }
    }
    var buf = alloc(8);
    fill(buf, 0, 8, input[2]);
    copy(buf, 4, buf, 0, 4);
    acc = acc + buf[7] + read32le(input, 0);
    for (var i = 0; i < n; i = i + 1) { acc = (acc + input[i]) & 0xFFFF; }
    return acc;
}
"""

INPUTS = (
    b"",
    b"\x00",
    b"AB\x20\x15",
    b"AB\x05\x00tail",
    b"XY\xff\xff\xff\xff\xff",
    bytes(range(32)),
)


def _result_key(result):
    trap = result.trap
    trap_key = None
    if trap is not None:
        frames = tuple((fr.function, fr.line) for fr in trap.stack)
        trap_key = (trap.kind, trap.function, trap.line, trap.detail, frames)
    return (
        result.retval,
        trap_key,
        result.timeout,
        result.instr_count,
        result.probe_count,
        result.probe_cost,
        dict(result.hits),
        list(result.cmp_log),
    )


# -- mirroring: taint ExecutionResult == plain interpreter --------------------


@pytest.mark.parametrize("feedback_cls", [EdgeFeedback, PathFeedback])
def test_taint_result_bit_identical(feedback_cls):
    program = compile_source(TARGET)
    instr = feedback_cls().instrument(program)
    for data in INPUTS:
        for cmplog in (False, True):
            ref = execute(program, data, instr, cmplog=cmplog)
            got, tmap = taint_execute(program, data, instr, cmplog=cmplog)
            assert _result_key(got) == _result_key(ref)
            assert tmap.input_len == len(data)


def test_taint_result_identical_under_tiny_budgets():
    program = compile_source(TARGET)
    instr = EdgeFeedback().instrument(program)
    for budget in (1, 17, 211):
        for data in INPUTS:
            ref = execute(program, data, instr, instr_budget=budget)
            got, _ = taint_execute(program, data, instr, instr_budget=budget)
            assert _result_key(got) == _result_key(ref)


def test_taint_result_identical_on_all_subject_seeds():
    for name in all_subject_names():
        subject = get_subject(name)
        instr = EdgeFeedback().instrument(subject.program)
        kwargs = dict(
            instr_budget=subject.exec_instr_budget,
            call_depth_limit=subject.call_depth_limit,
        )
        for seed in subject.seeds:
            ref = execute(subject.program, seed, instr, **kwargs)
            got, tmap = taint_execute(subject.program, seed, instr, **kwargs)
            assert _result_key(got) == _result_key(ref), name
            assert tmap.input_len == len(seed)


def test_taint_map_records_expected_masks():
    program = compile_source(TARGET)
    instr = EdgeFeedback().instrument(program)
    _, tmap = taint_execute(program, b"AB\x20\x15rest", instr)
    # The magic == 0x4142 comparison reads input bytes 0..1.
    magic_sites = [
        s for s, rec in tmap.cmp_sites.items() if rec.mask() == {0, 1}
    ]
    assert magic_sites
    # input[3] / 3 == 7 reads byte 3 (and the divisor flows into control).
    assert any(rec.mask() == {3} for rec in tmap.cmp_sites.values())
    # Control taint saw the branch bytes.
    assert {0, 1, 3} <= tmap.control
    # Bytes only summed into acc never steer control on this path.
    assert 6 not in tmap.control


def test_backend_taint_execute_falls_back_under_compile():
    program = compile_source(TARGET)
    instr = EdgeFeedback().instrument(program)
    backend = make_backend(program, instr, backend="compile", probe_prune=True)
    for data in INPUTS:
        pruned = backend.execute(data)
        got, tmap = backend.taint_execute(data)
        # The fallback promises identical observed maps and semantics; the
        # pruned compile run may charge *less* probe_cost (elided probes).
        assert got.retval == pruned.retval
        assert got.timeout == pruned.timeout
        assert got.instr_count == pruned.instr_count
        assert dict(got.hits) == dict(pruned.hits)
        assert got.probe_cost >= pruned.probe_cost
        # And the taint run itself equals the unpruned interpreter exactly.
        ref = execute(program, data, instr)
        assert _result_key(got) == _result_key(ref)
        assert tmap.input_len == len(data)


# -- label lattice ------------------------------------------------------------


def test_label_pool_interns_and_unions():
    pool = LabelPool()
    assert pool.intern(()) is None
    a = pool.intern((1, 2))
    assert pool.intern((2, 1)) is a
    s = pool.single(7)
    assert pool.single(7) is s
    assert pool.union(None, a) is a
    assert pool.union(a, None) is a
    assert pool.union(a, a) is a
    # Subset shortcut: {1,2} u {1,2,3} is the superset object.
    b = pool.intern((1, 2, 3))
    assert pool.union(a, b) is b
    assert pool.union(b, a) is b
    c = pool.union(a, pool.single(9))
    assert c == frozenset({1, 2, 9})
    # Memoized: same object both times.
    assert pool.union(a, pool.single(9)) is c
    assert pool.union_all([None, a, s]) == frozenset({1, 2, 7})
    assert pool.union_all([]) is None


# -- TaintMap queries ---------------------------------------------------------


def test_taint_map_pair_cap_and_comparable_filter():
    tmap = TaintMap(pair_cap=2)
    site = ("f", 1, 18)
    for i in range(5):
        tmap.record_cmp(site, frozenset({i}), None, i, 100)
    rec = tmap.cmp_sites[site]
    assert rec.hits == 5
    assert rec.pairs == [(0, 100), (1, 100)]  # capped
    assert rec.mask() == {0, 1, 2, 3, 4}
    # Non-comparable operands (e.g. array refs) are never sampled.
    tmap.record_cmp(("g", 2, 18), None, None, object(), object())
    assert tmap.cmp_sites[("g", 2, 18)].pairs == []


def test_target_masks_focus_and_frozen():
    tmap = TaintMap()
    tmap.record_branch(("main", 1), 2, frozenset({0, 1}))  # guard on the way in
    tmap.record_branch(("main", 3), 4, frozenset({5}))  # the target
    tmap.record_branch(("main", 6), 7, frozenset({9}))  # after the target
    tmap.finalize(frozenset({0, 1, 5, 9}), 16)
    focus, frozen = tmap.target_masks(("main", 3))
    assert focus == {5}
    assert frozen == {0, 1}  # later branches are not frozen
    # Unknown site falls back to all cmp bytes.
    tmap.record_cmp(("main", 9, 18), frozenset({2}), frozenset({3}), 1, 2)
    focus, frozen = tmap.target_masks(("nope", 0))
    assert focus == {2, 3}
    # Length clamping.
    focus, _ = tmap.target_masks(("main", 3), length=4)
    assert focus == set()  # offset 5 out of range -> fallback also clamped


def test_sound_mask_includes_control():
    tmap = TaintMap()
    site = ("f", 1, 18)
    tmap.record_cmp(site, frozenset({2}), None, 1, 2)
    tmap.finalize(frozenset({0}), 8)
    assert tmap.sound_mask(site) == {0, 2}
    assert tmap.sound_mask(("unknown", 0, 18)) == {0}


# -- branch index + target ranking --------------------------------------------


def _branch_program():
    return compile_source(
        """
fn main(input) {
    if (len(input) > 0) {
        if (input[0] == 65) { return 1; }
        return 2;
    }
    return 0;
}
"""
    )


def test_build_branch_index_sites_and_siblings():
    program = _branch_program()
    instr = EdgeFeedback().instrument(program)
    index = build_branch_index(program, instr)
    assert index  # edge feedback has per-edge ACT_HIT probes
    for info in index.values():
        assert info.site[0] == "main"
        if info.sibling_index is not None:
            sibling = index.get(info.sibling_index)
            # Sibling pairs share the source block.
            if sibling is not None:
                assert sibling.site == info.site
                assert sibling.dst != info.dst


def test_build_branch_index_empty_without_hit_probes():
    program = _branch_program()
    instr = PathFeedback().instrument(program)
    assert build_branch_index(program, instr) == {}
    assert build_branch_index(program, None) == {}


class _FakeEntry:
    def __init__(self, trace):
        self.trace = frozenset(trace)


class _FakeInfo:
    def __init__(self, index):
        self.index = index
        self.site = ("main", index)
        self.dst = index + 1
        self.sibling_index = None


class _FakeQueue:
    def __init__(self, traces):
        self.entries = [_FakeEntry(t) for t in traces]
        self.top_rated = {
            idx: entry for entry in self.entries for idx in entry.trace
        }


def test_select_targets_ranks_by_rarity():
    branch_index = {i: _FakeInfo(i) for i in (1, 2, 3)}
    queue = _FakeQueue([{1, 2}, {1, 2}, {1, 3}])
    targets = select_targets(queue, branch_index, limit=8)
    # idx 3 covered once (rarest), idx 2 twice; idx 1 covered by all -> skipped.
    assert [(t.index, t.rarity) for t in targets] == [(3, 1), (2, 2)]
    assert targets[0].entry is queue.entries[2]


def test_select_targets_respects_visit_budget():
    branch_index = {i: _FakeInfo(i) for i in (1, 2, 3)}
    queue = _FakeQueue([{1, 2}, {1, 2}, {1, 3}])
    visits = {3: 4}
    targets = select_targets(queue, branch_index, limit=8, visits=visits)
    assert [t.index for t in targets] == [2]
    assert select_targets(queue, {}, limit=8) == []


def test_taint_state_snapshot_roundtrip_and_lru():
    state = TaintState()
    state.taint_runs = 3
    state.visits = {7: 2}
    for i in range(TaintState.MAP_CACHE_CAP + 5):
        state.cache_map(i, TaintMap())
    assert len(state.maps) == TaintState.MAP_CACHE_CAP
    assert 0 not in state.maps  # oldest evicted
    state.branch_index = {"not": "snapshotted"}
    snap = pickle.loads(pickle.dumps(state.snapshot()))
    restored = TaintState().restore(snap)
    assert restored.taint_runs == 3
    assert restored.visits == {7: 2}
    assert restored.branch_index is None
    assert set(restored.maps) == set(state.maps)
    assert state.hit_rate() == 0.0


# -- masked mutation ----------------------------------------------------------


def test_focus_runs_merges_contiguous_offsets():
    assert _focus_runs({0, 1, 2, 5, 7, 8}, 16) == [(0, 3), (5, 1), (7, 2)]
    assert _focus_runs({-1, 99}, 8) == []


def test_sweep_candidates_complete_and_masked():
    data = b"\x00\x10\x20"
    cands = list(sweep_candidates(data, {1}))
    assert len(cands) == 255
    assert all(len(c) == 3 and c[0] == 0 and c[2] == 0x20 for c in cands)
    assert {c[1] for c in cands} == set(range(256)) - {0x10}


def test_masked_havoc_touches_only_focus():
    rng = random.Random(5)
    data = bytes(range(16))
    for _ in range(50):
        out = masked_havoc(rng, data, {3, 4})
        assert len(out) == len(data)
        for i, byte in enumerate(out):
            if i not in (3, 4):
                assert byte == data[i]
    assert masked_havoc(rng, data, set()) == data


def test_masked_candidates_patch_operand_into_focus_run():
    tmap = TaintMap()
    site = ("main", 4, 18)
    tmap.record_cmp(site, frozenset({0, 1}), None, 0x1111, 0x4142)
    data = b"\x00\x00rest"
    cands = masked_candidates(data, tmap, {0, 1})
    assert b"AB" + data[2:] in cands  # big-endian 0x4142 into bytes 0..1
    assert b"BA" + data[2:] in cands  # little-endian too
    for cand in cands:
        assert len(cand) == len(data)
        assert cand[2:] == data[2:]  # never touches non-focus bytes


def test_masked_candidates_bytes_operand():
    tmap = TaintMap()
    tmap.record_cmp(("m", 1, "memcmp"), frozenset({0, 1, 2}), None, b"xxx", b"GIF")
    cands = masked_candidates(b"xxxtail", tmap, {0, 1, 2})
    assert b"GIFtail" in cands


# -- engine wiring ------------------------------------------------------------

RARE_TARGET = """
fn main(input) {
    if (len(input) < 5) { return 0; }
    if (read32(input, 0) != 0x4D414743) { return 1; }
    var x = input[4];
    if ((x * 3) % 251 == 17) { trap(1); }
    return 2;
}
"""


def _taint_engine(seed=0, use_taint=True, seeds=None, target=RARE_TARGET):
    program = compile_source(target)
    return FuzzEngine(
        program,
        EdgeFeedback(),
        seeds or [b"MAGC\x00\x00", b"zzzzzz"],
        random.Random(seed),
        EngineConfig(max_input_len=16, exec_instr_budget=10_000, use_taint=use_taint),
    )


def test_engine_taint_off_by_default():
    eng = _taint_engine(use_taint=None)
    assert eng.taint is None


def test_taint_enabled_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_TAINT", raising=False)
    assert not taint_enabled()
    assert taint_enabled(True)
    assert not taint_enabled(False)
    monkeypatch.setenv("REPRO_TAINT", "on")
    assert taint_enabled()
    assert not taint_enabled(False)  # explicit argument wins


def test_taint_engine_deterministic():
    a = _taint_engine(seed=3).run(200_000)
    b = _taint_engine(seed=3).run(200_000)
    assert a.execs == b.execs
    assert a.clock.ticks == b.clock.ticks
    assert [e.data for e in a.queue.entries] == [e.data for e in b.queue.entries]
    assert a.crash_count == b.crash_count
    assert a.taint.masked_execs == b.taint.masked_execs


def test_taint_engine_runs_masked_stage():
    eng = _taint_engine(seed=0).run(400_000)
    assert eng.taint.taint_runs > 0
    assert eng.taint.targets_selected > 0
    assert eng.taint.masked_execs > 0


def test_taint_snapshot_restore_trajectory_neutral():
    full = _taint_engine(seed=9)
    full.start(400_000)
    full.run_until(400_000)

    first = _taint_engine(seed=9)
    first.start(400_000)
    first.run_until(150_000)
    snap = pickle.loads(pickle.dumps(first.snapshot()))

    resumed = _taint_engine(seed=9)
    resumed.restore(snap)
    resumed.run_until(400_000)

    assert resumed.execs == full.execs
    assert resumed.clock.ticks == full.clock.ticks
    assert [e.data for e in resumed.queue.entries] == [
        e.data for e in full.queue.entries
    ]
    assert resumed.taint.masked_execs == full.taint.masked_execs
    assert resumed.taint.taint_runs == full.taint.taint_runs


# -- config registration + no-op gate -----------------------------------------


def test_taint_config_registered_with_override():
    from repro.experiments.config import FUZZER_CONFIGS
    from repro.subjects import get_subject as _get

    spec = FUZZER_CONFIGS["taint"]
    assert spec.kind == "plain"
    config = spec.engine_config(_get("gdk"))
    assert config.use_taint is True
    # Other configs stay untouched by the overrides mechanism.
    assert FUZZER_CONFIGS["pcguard"].engine_config(_get("gdk")).use_taint is None


def test_noop_gate_observable_identity():
    from repro.taint.noop_gate import run_gate

    # Identity is the deterministic half of the gate; the wall-clock
    # overhead half is CI-runner-dependent, so don't gate on it here.
    report = run_gate(hours=0.25, scale=0.5, repeats=1, gate_pct=10_000.0)
    assert report.identical
    assert report.passed
    assert "identical" in report.summary()
