"""Tests for the Sec. VII extension: 2-grams of acyclic paths."""

import random

from repro.coverage.feedback import PathFeedback, PathPairFeedback, feedback_by_name
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.lang import compile_source
from repro.runtime import execute

LOOPY = """
fn main(input) {
    var t = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        if (input[i] > 64) { t = t + 2; } else { t = t - 1; }
    }
    return t;
}
"""


def test_pair_hits_superset_of_plain_path_hits():
    program = compile_source(LOOPY)
    plain = PathFeedback().instrument(program)
    pair = PathPairFeedback().instrument(program)
    data = bytes([10, 200, 10, 200])
    r_plain = execute(program, data, plain)
    r_pair = execute(program, data, pair)
    assert set(r_plain.hits) <= set(r_pair.hits)
    assert len(r_pair.hits) > len(r_plain.hits)


def test_pair_feedback_distinguishes_iteration_order():
    """Same multiset of iteration paths, different order: only the 2-gram
    feedback tells them apart (first/last iterations are pinned so the
    plain path profile is identical)."""
    program = compile_source(LOOPY)
    pair = PathPairFeedback().instrument(program)
    plain = PathFeedback().instrument(program)
    aabb = bytes([10, 10, 200, 200])
    abba = bytes([10, 200, 200, 10])
    assert execute(program, aabb, plain).hits == execute(program, abba, plain).hits
    assert frozenset(execute(program, aabb, pair).hits) != frozenset(
        execute(program, abba, pair).hits
    )


def test_pair_feedback_registered_by_name():
    feedback = feedback_by_name("path2gram")
    assert isinstance(feedback, PathPairFeedback)
    assert feedback.name == "path2gram"


def test_pair_feedback_fuzzes():
    from repro.subjects import get_subject

    subject = get_subject("flvmeta")
    engine = FuzzEngine(
        subject.program,
        PathPairFeedback(),
        subject.seeds,
        random.Random(0),
        EngineConfig(max_input_len=subject.max_input_len,
                     exec_instr_budget=subject.exec_instr_budget),
        subject.tokens,
    )
    engine.run(200_000)
    assert engine.execs > 0
    assert engine.virgin.coverage_count() > 0


def test_pair_config_runs_campaign(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    from repro.experiments.config import run_config
    from repro.subjects import get_subject

    result = run_config(get_subject("flvmeta"), "path2gram", 0, 120_000)
    assert result.config_name == "path2gram"
    assert result.queue_size >= 1


def test_pair_queue_at_least_plain_queue():
    """Sec. VII anticipates amplified queue explosion for path 2-grams."""
    from repro.subjects import get_subject

    subject = get_subject("infotocap")
    sizes = {}
    for name, feedback in (("path", PathFeedback()), ("pair", PathPairFeedback())):
        engine = FuzzEngine(
            subject.program, feedback, subject.seeds, random.Random(5),
            EngineConfig(max_input_len=subject.max_input_len,
                         exec_instr_budget=subject.exec_instr_budget),
            subject.tokens,
        )
        engine.run(500_000)
        sizes[name] = len(engine.queue.entries)
    assert sizes["pair"] >= sizes["path"] * 0.8  # never meaningfully smaller
