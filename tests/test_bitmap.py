"""Coverage-map bookkeeping tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.coverage.bitmap import (
    VirginMap,
    classify_count,
    classify_hits,
)


def test_bucket_boundaries():
    expected = {
        0: 0, 1: 1, 2: 2, 3: 4, 4: 8, 7: 8, 8: 16, 15: 16,
        16: 32, 31: 32, 32: 64, 127: 64, 128: 128, 100000: 128,
    }
    for count, bucket in expected.items():
        assert classify_count(count) == bucket, count


@given(st.integers(min_value=1, max_value=1 << 20))
def test_buckets_are_single_bits(count):
    bucket = classify_count(count)
    assert bucket != 0
    assert bucket & (bucket - 1) == 0  # power of two


@given(st.integers(min_value=1, max_value=1 << 16), st.integers(min_value=0, max_value=1 << 16))
def test_buckets_monotonic(a, b):
    low, high = sorted((a, a + b))
    assert classify_count(low) <= classify_count(high)


def test_classify_hits_maps_counts():
    assert classify_hits({5: 1, 9: 200}) == {5: 1, 9: 128}


def test_virgin_first_probe_is_new():
    virgin = VirginMap()
    assert virgin.probe({3: 1}) == (True, True)


def test_virgin_merge_then_same_not_new():
    virgin = VirginMap()
    virgin.merge({3: 1})
    assert virgin.probe({3: 1}) == (False, False)


def test_new_bucket_without_new_index():
    virgin = VirginMap()
    virgin.merge({3: 1})
    new_idx, new_bucket = virgin.probe({3: 2})
    assert not new_idx
    assert new_bucket


def test_new_index_dominates():
    virgin = VirginMap()
    virgin.merge({3: 1})
    assert virgin.probe({3: 1, 4: 1}) == (True, True)


def test_coverage_count_counts_indices():
    virgin = VirginMap()
    virgin.merge({1: 1, 2: 4})
    virgin.merge({1: 128})
    assert virgin.coverage_count() == 2


def test_copy_is_independent():
    virgin = VirginMap()
    virgin.merge({1: 1})
    clone = virgin.copy()
    clone.merge({2: 1})
    assert virgin.coverage_count() == 1
    assert clone.coverage_count() == 2


@given(st.dictionaries(st.integers(0, 100), st.integers(1, 300), max_size=20))
def test_probe_after_merge_never_new(hits):
    virgin = VirginMap()
    classified = classify_hits(hits)
    virgin.merge(classified)
    assert virgin.probe(classified) == (False, False)
