"""Durable campaign workspace tests: atomicity, locking, tolerant recovery.

The store's contract is AFL's: the filesystem is the source of truth, every
write is atomic, artifact names are self-verifying (content-addressed), and
recovery never dies on damage — torn, misnamed, empty, or bit-rotted files
move to ``quarantine/`` and the scan continues.  These tests prove each leg
of that contract directly on :mod:`repro.fuzzer.store`, plus the end-to-end
observer property: a campaign with a store attached is field-for-field
equal to one without.
"""

import json
import os
import random
import subprocess
import sys

import pytest

from repro.experiments.config import run_config
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.fuzzer.store import (
    CRASH_DIR,
    HANG_DIR,
    LOCK_NAME,
    QUEUE_DIR,
    CampaignStore,
    StoreLockError,
    StoreMismatchError,
    artifact_name,
    atomic_write_bytes,
    attach_store,
    campaign_queue_hashes,
    content_hash,
    parse_artifact_name,
    worker_name,
)
from repro.lang import compile_source
from repro.coverage.feedback import EdgeFeedback
from repro.subjects import get_subject

META = {"subject": "flvmeta", "config": "pcguard", "run_seed": 0}


def make_store(root, **kwargs):
    kwargs.setdefault("meta", dict(META))
    return CampaignStore(str(root), **kwargs)


class FakeEntry:
    def __init__(self, data):
        self.data = bytes(data)


# -- primitives ----------------------------------------------------------------


def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = os.path.join(str(tmp_path), "blob")
    atomic_write_bytes(path, b"payload")
    with open(path, "rb") as handle:
        assert handle.read() == b"payload"
    assert os.listdir(str(tmp_path)) == ["blob"]


def test_artifact_name_roundtrip():
    digest = content_hash(b"data")
    name = artifact_name(7, digest)
    assert parse_artifact_name(name) == (7, None, digest)
    signed = artifact_name(3, digest, sig="abcd1234")
    assert parse_artifact_name(signed) == (3, "abcd1234", digest)


@pytest.mark.parametrize("name", ["README", "id:x,hash:y", "hash:y,id:000001"])
def test_parse_artifact_name_rejects_garbage(name):
    assert parse_artifact_name(name) is None


# -- locking / manifest --------------------------------------------------------


def test_lock_held_by_live_process_refused(tmp_path):
    store = make_store(tmp_path)
    store.close()
    # PID 1 is always alive (and never ours): a live foreign campaign.
    with open(os.path.join(store.worker_dir, LOCK_NAME), "w") as handle:
        handle.write("1\n")
    with pytest.raises(StoreLockError) as excinfo:
        make_store(tmp_path)
    assert excinfo.value.owner_pid == 1


def test_stale_lock_of_dead_process_is_stolen(tmp_path):
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    store = make_store(tmp_path)
    store.close()
    with open(os.path.join(store.worker_dir, LOCK_NAME), "w") as handle:
        handle.write("%d\n" % proc.pid)
    reopened = make_store(tmp_path)  # steals; no exception
    assert reopened._locked
    reopened.close()


def _dead_pid():
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def test_slow_stealer_leaves_fresh_live_lock_intact(tmp_path):
    # Regression: opener B reads a stale owner, then loses the steal race —
    # A unlinks the stale lock and takes a fresh one.  B's deferred steal
    # must re-check under the marker and leave A's live lock alone.
    from repro.fuzzer.store import _steal_stale_lock, read_pidfile_owner

    lock_path = os.path.join(str(tmp_path), LOCK_NAME)
    with open(lock_path, "w") as handle:
        handle.write("%d\n" % os.getpid())  # the winner's fresh, live lock
    _steal_stale_lock(str(tmp_path), lock_path)
    assert os.path.exists(lock_path)
    assert read_pidfile_owner(lock_path) == os.getpid()
    assert not os.path.exists(lock_path + ".steal")


def test_live_steal_marker_means_contention(tmp_path):
    from repro.fuzzer.store import acquire_pidfile_lock

    lock_path = os.path.join(str(tmp_path), LOCK_NAME)
    with open(lock_path, "w") as handle:
        handle.write("%d\n" % _dead_pid())  # stale lock, dead owner
    with open(lock_path + ".steal", "w") as handle:
        handle.write("1\n")  # a live rival is mid-steal
    with pytest.raises(StoreLockError) as excinfo:
        acquire_pidfile_lock(str(tmp_path))
    assert excinfo.value.owner_pid == 1


def test_dead_steal_marker_is_cleared_and_lock_stolen(tmp_path):
    from repro.fuzzer.store import acquire_pidfile_lock, read_pidfile_owner

    lock_path = os.path.join(str(tmp_path), LOCK_NAME)
    dead = _dead_pid()
    with open(lock_path, "w") as handle:
        handle.write("%d\n" % dead)
    with open(lock_path + ".steal", "w") as handle:
        handle.write("%d\n" % dead)  # a stealer that died mid-steal
    acquire_pidfile_lock(str(tmp_path))
    assert read_pidfile_owner(lock_path) == os.getpid()
    assert not os.path.exists(lock_path + ".steal")


def test_concurrent_openers_racing_stale_lock_yield_one_winner(tmp_path):
    # Two live processes race to steal the same stale lock.  Exactly one
    # must end up holding it; the loser must get StoreLockError; and the
    # winner's fresh lock must survive the loser's steal attempt.
    from repro.fuzzer.store import read_pidfile_owner

    lock_path = os.path.join(str(tmp_path), LOCK_NAME)
    with open(lock_path, "w") as handle:
        handle.write("%d\n" % _dead_pid())
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    child_code = (
        "import sys\n"
        "sys.path.insert(0, %r)\n"
        "from repro.fuzzer.store import StoreLockError, acquire_pidfile_lock\n"
        "try:\n"
        "    acquire_pidfile_lock(%r)\n"
        "except StoreLockError:\n"
        "    print('locked', flush=True)\n"
        "else:\n"
        "    print('ok', flush=True)\n"
        "    sys.stdin.readline()\n"  # hold the lock until the parent says so
    ) % (os.path.abspath(src), str(tmp_path))
    children = [
        subprocess.Popen(
            [sys.executable, "-c", child_code],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        for _ in range(2)
    ]
    outcomes = {}
    try:
        for child in children:
            outcomes[child.pid] = child.stdout.readline().strip()
        assert sorted(outcomes.values()) == ["locked", "ok"]
        winner = next(pid for pid, out in outcomes.items() if out == "ok")
        assert read_pidfile_owner(lock_path) == winner
    finally:
        for child in children:
            try:
                child.stdin.write("\n")
                child.stdin.flush()
            except OSError:
                pass
            child.wait()


# -- lease locks / fencing -----------------------------------------------------


def test_read_pidfile_owner_tolerates_mixed_format_roots(tmp_path):
    # A rolling upgrade leaves legacy bare-pid locks next to host-qualified
    # lease locks; both must parse, on the same root, with one reader.
    from repro.fuzzer.store import format_lock_payload, read_pidfile_owner

    legacy = os.path.join(str(tmp_path), "legacy.lock")
    with open(legacy, "w") as handle:
        handle.write("4242\n")
    lease = os.path.join(str(tmp_path), "lease.lock")
    with open(lease, "w") as handle:
        handle.write(format_lock_payload("hostA", 777, 3, 1e12))
    no_lease = os.path.join(str(tmp_path), "nolease.lock")
    with open(no_lease, "w") as handle:
        handle.write(format_lock_payload("hostB", 888, 0, None))
    assert read_pidfile_owner(legacy) == 4242
    assert read_pidfile_owner(lease) == 777
    assert read_pidfile_owner(no_lease) == 888
    assert read_pidfile_owner(os.path.join(str(tmp_path), "absent")) is None


def test_release_refuses_to_unlink_a_successors_lock(tmp_path):
    # Satellite regression: release used to unlink unconditionally, so a
    # fenced process could delete the *new* owner's lock on its way out.
    from repro.fuzzer.store import (
        acquire_pidfile_lock,
        format_lock_payload,
        release_pidfile_lock,
    )

    lock_path = acquire_pidfile_lock(str(tmp_path))
    with open(lock_path, "w") as handle:  # a successor re-took the lock
        handle.write(format_lock_payload("otherhost", 31337, 9, 1e12))
    release_pidfile_lock(str(tmp_path))
    assert os.path.exists(lock_path)  # not ours: left intact
    release_pidfile_lock(str(tmp_path), force=True)
    assert not os.path.exists(lock_path)  # administrative cleanup


def test_foreign_lease_steal_requires_expiry(tmp_path, monkeypatch):
    # A live, unexpired lease from another host is never stealable — but
    # once it expires, a second host takes the root without any pid probe.
    import time as _time

    from repro.fuzzer.store import (
        acquire_pidfile_lock,
        format_lock_payload,
        read_lock_record,
    )

    lock_path = os.path.join(str(tmp_path), LOCK_NAME)
    with open(lock_path, "w") as handle:  # hostA holds an unexpired lease
        handle.write(format_lock_payload("hostA", 1, 1, _time.time() + 3600))
    monkeypatch.setenv("REPRO_HOST", "hostB")
    with pytest.raises(StoreLockError) as excinfo:
        acquire_pidfile_lock(str(tmp_path), ttl=1.0, epoch=2)
    assert excinfo.value.owner_host == "hostA"
    with open(lock_path, "w") as handle:  # ...the lease lapses
        handle.write(format_lock_payload("hostA", 1, 1, _time.time() - 5))
    acquire_pidfile_lock(str(tmp_path), ttl=60.0, epoch=2)
    record = read_lock_record(lock_path)
    assert (record.host, record.pid, record.epoch) == (
        "hostB", os.getpid(), 2,
    )


def test_foreign_no_lease_lock_is_never_stolen(tmp_path, monkeypatch):
    # Liveness of a foreign pid is unknowable and there is no lease to run
    # out: refusal beats corruption, even when the pid is locally dead.
    from repro.fuzzer.store import acquire_pidfile_lock, format_lock_payload

    lock_path = os.path.join(str(tmp_path), LOCK_NAME)
    with open(lock_path, "w") as handle:
        handle.write(format_lock_payload("hostA", _dead_pid(), 1, None))
    monkeypatch.setenv("REPRO_HOST", "hostB")
    with pytest.raises(StoreLockError):
        acquire_pidfile_lock(str(tmp_path))


def test_renew_extends_the_lease_and_detects_fencing(tmp_path):
    from repro.fuzzer.store import (
        StoreFencedError,
        acquire_pidfile_lock,
        format_lock_payload,
        read_lock_record,
        renew_pidfile_lock,
    )

    lock_path = acquire_pidfile_lock(str(tmp_path), ttl=10.0, epoch=4)
    before = read_lock_record(lock_path).expiry
    renew_pidfile_lock(str(tmp_path), ttl=1000.0, epoch=4)
    assert read_lock_record(lock_path).expiry > before
    # A successor steals the lease: the old holder's next renewal must
    # fail typed, naming the new owner, and must not rewrite the lock.
    successor = format_lock_payload("otherhost", 999, 5, 1e12)
    with open(lock_path, "w") as handle:
        handle.write(successor)
    with pytest.raises(StoreFencedError) as excinfo:
        renew_pidfile_lock(str(tmp_path), ttl=1000.0, epoch=4)
    assert excinfo.value.owner.epoch == 5
    with open(lock_path) as handle:
        assert handle.read() == successor


def test_manifest_mismatch_refuses_foreign_campaign(tmp_path):
    store = make_store(tmp_path)
    store.close()
    with pytest.raises(StoreMismatchError) as excinfo:
        make_store(tmp_path, meta={"subject": "gdk", "config": "pcguard",
                                   "run_seed": 0})
    assert excinfo.value.field == "subject"
    assert excinfo.value.expected == "gdk"
    assert excinfo.value.found == "flvmeta"


def test_round_watermark_survives_reopen(tmp_path):
    store = make_store(tmp_path)
    store.record_round(5)
    store.close()
    reopened = make_store(tmp_path)
    assert reopened.rounds() == 5
    reopened.close()


def test_fuzzer_stats_roundtrip(tmp_path):
    store = make_store(tmp_path)
    store.write_stats({"execs_done": 42, "worker": "main"})
    assert store.read_stats() == {"execs_done": "42", "worker": "main"}
    store.close()


# -- artifact writes -----------------------------------------------------------


def test_commit_dedupes_by_content_and_numbers_sequentially(tmp_path):
    store = make_store(tmp_path)
    first = store.save_queue_entry(FakeEntry(b"aaa"))
    dup = store.save_queue_entry(FakeEntry(b"aaa"))
    second = store.save_queue_entry(FakeEntry(b"bbb"))
    assert first is not None and second is not None and dup is None
    names = sorted(os.listdir(os.path.join(store.worker_dir, QUEUE_DIR)))
    assert [parse_artifact_name(n)[0] for n in names] == [0, 1]
    store.close()


def test_reopen_continues_id_sequence_without_rewrites(tmp_path):
    store = make_store(tmp_path)
    store.save_queue_entry(FakeEntry(b"aaa"))
    store.close()
    reopened = make_store(tmp_path)
    assert reopened.has_artifacts()
    assert reopened.save_queue_entry(FakeEntry(b"aaa")) is None  # already there
    path = reopened.save_queue_entry(FakeEntry(b"bbb"))
    assert parse_artifact_name(os.path.basename(path))[0] == 1
    reopened.close()


def test_queue_hashes_and_campaign_union(tmp_path):
    a = make_store(tmp_path, worker=worker_name(0), worker_index=0)
    b = make_store(tmp_path, worker=worker_name(1), worker_index=1)
    a.save_queue_entry(FakeEntry(b"shared"))
    b.save_queue_entry(FakeEntry(b"shared"))
    b.save_queue_entry(FakeEntry(b"only-b"))
    assert a.queue_hashes() == {content_hash(b"shared")}
    assert campaign_queue_hashes(str(tmp_path)) == {
        content_hash(b"shared"),
        content_hash(b"only-b"),
    }
    a.close()
    b.close()


def test_foreign_entries_skip_seen_and_damaged(tmp_path):
    a = make_store(tmp_path, worker=worker_name(0), worker_index=0)
    b = make_store(tmp_path, worker=worker_name(1), worker_index=1)
    b.save_queue_entry(FakeEntry(b"fresh"))
    b.save_queue_entry(FakeEntry(b"known"))
    damaged = b.save_queue_entry(FakeEntry(b"torn"))
    with open(damaged, "wb") as handle:
        handle.write(b"to")  # torn: content no longer matches embedded hash
    got = list(a.foreign_entries({content_hash(b"known")}))
    assert got == [(content_hash(b"fresh"), b"fresh")]
    a.close()
    b.close()


# -- tolerant scanning ---------------------------------------------------------


def test_scan_of_empty_directory_is_clean(tmp_path):
    store = make_store(tmp_path)
    report = store.scan(QUEUE_DIR)
    assert report.survivors == [] and report.quarantined == []
    assert store.quarantine_count == 0
    store.close()


def test_scan_quarantines_torn_temp_file(tmp_path):
    store = make_store(tmp_path)
    qdir = os.path.join(store.worker_dir, QUEUE_DIR)
    torn = os.path.join(qdir, "id:000009,hash:feed.tmp.123")
    with open(torn, "wb") as handle:
        handle.write(b"half")
    report = store.scan(QUEUE_DIR)
    assert [reason for _, reason in report.quarantined] == ["torn-write"]
    assert not os.path.exists(torn)
    assert store.quarantine_count == 1
    store.close()


def test_scan_quarantines_empty_and_bad_hash_keeps_good(tmp_path):
    store = make_store(tmp_path)
    good = store.save_queue_entry(FakeEntry(b"good"))
    qdir = os.path.join(store.worker_dir, QUEUE_DIR)
    empty = os.path.join(qdir, artifact_name(1, content_hash(b"gone")))
    with open(empty, "wb"):
        pass
    rotted = os.path.join(qdir, artifact_name(2, content_hash(b"original")))
    with open(rotted, "wb") as handle:
        handle.write(b"flipped!")
    misnamed = os.path.join(qdir, "notes.txt")
    with open(misnamed, "wb") as handle:
        handle.write(b"hello")
    report = store.scan(QUEUE_DIR)
    assert [(s[0], s[3]) for s in report.survivors] == [(0, b"good")]
    assert sorted(reason for _, reason in report.quarantined) == [
        "bad-hash",
        "bad-name",
        "empty",
    ]
    assert os.path.exists(good)
    quarantine = os.listdir(os.path.join(store.worker_dir, "quarantine"))
    assert len(quarantine) == 3
    store.close()


def test_scan_skips_crash_sidecars(tmp_path):
    store = make_store(tmp_path)
    cdir = os.path.join(store.worker_dir, CRASH_DIR)
    name = artifact_name(0, content_hash(b"boom"), sig="cafe")
    with open(os.path.join(cdir, name), "wb") as handle:
        handle.write(b"boom")
    for suffix in (".report.txt", ".triage.json"):
        with open(os.path.join(cdir, name + suffix), "w") as handle:
            handle.write("sidecar")
    report = store.scan(CRASH_DIR)
    assert len(report.survivors) == 1
    assert report.survivors[0][1] == "cafe"
    assert report.quarantined == []
    store.close()


def test_scan_publishes_store_event(tmp_path):
    from repro.telemetry.bus import TelemetryBus

    bus = TelemetryBus()
    store = make_store(tmp_path, bus=bus)
    store.save_queue_entry(FakeEntry(b"data"))
    store.scan(QUEUE_DIR)
    (event,) = bus.recent("store")
    assert (event.action, event.artifact) == ("scan", QUEUE_DIR)
    assert (event.entries, event.quarantined) == (1, 0)
    store.close()


def test_torn_manifest_is_quarantined_not_fatal(tmp_path):
    store = make_store(tmp_path)
    store.close()
    with open(store._manifest_path(), "w") as handle:
        handle.write('{"version": 1, "sub')  # torn mid-write
    reopened = make_store(tmp_path)
    assert reopened.meta["subject"] == "flvmeta"  # identity re-seeded
    assert reopened.quarantine_count == 1
    reopened.close()


# -- engine integration --------------------------------------------------------

HANG_TARGET = """
fn main(input) {
    if (len(input) > 3) {
        if (input[0] == 'L') { while (1) { } }
    }
    return 0;
}
"""


def _hang_engine(store=None):
    engine = FuzzEngine(
        compile_source(HANG_TARGET),
        EdgeFeedback(),
        [b"LOOPxx", b"ok"],
        random.Random(0),
        EngineConfig(max_input_len=16, exec_instr_budget=2_000),
    )
    engine.store = store
    return engine


def test_hanging_inputs_are_recorded_and_stored(tmp_path):
    store = make_store(tmp_path, meta={})
    engine = _hang_engine(store).run(100_000)
    assert engine.hangs >= 1
    assert len(engine.unique_hangs) >= 1
    record = next(iter(engine.unique_hangs.values()))
    assert record.input_hash == content_hash(record.data)
    hang_files = os.listdir(os.path.join(store.worker_dir, HANG_DIR))
    assert len(hang_files) == len(engine.unique_hangs)
    store.close()


def test_hangs_survive_snapshot_restore():
    engine = _hang_engine().run(100_000)
    restored = _hang_engine()
    restored.restore(engine.snapshot())
    assert set(restored.unique_hangs) == set(engine.unique_hangs)
    digest = next(iter(engine.unique_hangs))
    assert restored.unique_hangs[digest].count == engine.unique_hangs[digest].count


def test_hang_records_reach_campaign_result(tmp_path):
    subject = get_subject("flvmeta")
    result = run_config(subject, "pcguard", 0, 20_000)
    assert result.hangs == sum(r.count for r in result.hang_records)


def test_crash_sidecars_are_actionable(tmp_path):
    store = make_store(tmp_path, meta={"subject": "gdk"})
    subject = get_subject("gdk")
    result = run_config(subject, "path", 0, 120_000, store=store)
    assert result.crash_count > 0
    cdir = os.path.join(store.worker_dir, CRASH_DIR)
    artifacts = [n for n in os.listdir(cdir) if "." not in n]
    assert len(artifacts) == len(result.crash_records)
    for name in artifacts:
        seq, sig, digest = parse_artifact_name(name)
        with open(os.path.join(cdir, name + ".triage.json")) as handle:
            triage = json.load(handle)
        assert triage["stack_hash"] == sig
        assert triage["stack"]
        with open(os.path.join(cdir, name + ".report.txt")) as handle:
            assert "ERROR" in handle.read()
    store.close()


def test_store_is_a_pure_observer(tmp_path):
    subject = get_subject("flvmeta")
    with make_store(tmp_path) as store:
        stored = run_config(subject, "pcguard", 0, 20_000, store=store)
    plain = run_config(subject, "pcguard", 0, 20_000)
    assert stored == plain  # field-for-field, the determinism contract


def test_replay_into_recovers_corpus_and_crashes(tmp_path):
    subject = get_subject("gdk")
    with make_store(tmp_path, meta={"subject": "gdk"}) as store:
        first = run_config(subject, "path", 0, 120_000, store=store)
    with make_store(tmp_path, meta={"subject": "gdk"}) as store:
        resumed = run_config(
            subject, "path", 0, 240_000, store=store, resume_store=True
        )
    assert first.bugs <= resumed.bugs
    assert {r.hash5 for r in first.crash_records} <= {
        r.hash5 for r in resumed.crash_records
    }
    assert resumed.queue_size >= first.queue_size


def test_attach_store_backfills_existing_state(tmp_path):
    subject = get_subject("gdk")
    engine = FuzzEngine(
        subject.program,
        EdgeFeedback(),
        subject.seeds,
        random.Random(0),
        tokens=subject.tokens,
    ).run(120_000)
    store = make_store(tmp_path, meta={"subject": "gdk"})
    attach_store(engine, store)
    queue_files = os.listdir(os.path.join(store.worker_dir, QUEUE_DIR))
    assert len(queue_files) == len(engine.queue.entries)
    store.close()
