"""Fuzzing-engine tests: determinism, novelty, crashes, accounting."""

import random

from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.engine import EngineConfig, FuzzEngine, afl_engine_config
from repro.lang import compile_source

TARGET = """
fn main(input) {
    var n = len(input);
    if (n < 2) { return 0; }
    if (input[0] == 'A') {
        if (input[1] == 'B') {
            var buf = alloc(4);
            buf[n] = 1;
            return 1;
        }
        return 2;
    }
    var t = 0;
    for (var i = 0; i < n; i = i + 1) { t = t + input[i]; }
    return t;
}
"""

SEEDS = [b"hello", b"zz"]


def engine(feedback=None, seed=0, config=None, target=TARGET, seeds=SEEDS):
    program = compile_source(target)
    return FuzzEngine(
        program,
        feedback or EdgeFeedback(),
        seeds,
        random.Random(seed),
        config or EngineConfig(max_input_len=32, exec_instr_budget=10_000),
    )


def test_seeds_enter_queue():
    eng = engine().run(5_000)
    assert len(eng.queue.entries) >= 2
    assert {e.data for e in eng.queue.entries} >= set(SEEDS)


def test_execs_and_clock_advance():
    eng = engine().run(100_000)
    assert eng.execs > 10
    assert eng.clock.ticks >= 100_000


def test_determinism_same_seed():
    a = engine(seed=3).run(150_000)
    b = engine(seed=3).run(150_000)
    assert a.execs == b.execs
    assert [e.data for e in a.queue.entries] == [e.data for e in b.queue.entries]
    assert a.crash_count == b.crash_count


def test_different_seeds_diverge():
    a = engine(seed=1).run(150_000)
    b = engine(seed=2).run(150_000)
    assert [e.data for e in a.queue.entries] != [e.data for e in b.queue.entries]


def test_crash_found_and_deduplicated():
    eng = engine(seed=0).run(2_000_000)
    assert eng.crash_count >= 1
    bugs = {r.bug_id() for r in eng.unique_crashes.values()}
    assert ("main", 8, "heap-buffer-overflow-write") in bugs
    # many crashing inputs, one stack bucket
    assert len(eng.unique_crashes) <= 2


def test_crashing_inputs_not_queued():
    eng = engine(seed=0).run(2_000_000)
    crashing_prefix = b"AB"
    for entry in eng.queue.entries:
        assert not (entry.data[:2] == crashing_prefix and len(entry.data) > 4) or True
    # stronger: re-run every queue entry; none crashes
    from repro.runtime import execute

    for entry in eng.queue.entries:
        assert not execute(eng.program, entry.data, instr_budget=10_000).crashed


def test_crashing_seed_recorded_not_queued():
    eng = engine(seeds=[b"ABxxxx", b"ok"], seed=0)
    eng.run(10_000)
    assert eng.crash_count >= 1
    assert all(e.data != b"ABxxxx" for e in eng.queue.entries)


def test_timeline_sampled():
    eng = engine().run(300_000)
    assert eng.timeline
    ticks = [sample[0] for sample in eng.timeline]
    assert ticks == sorted(ticks)


def test_novelty_gate_queue_growth():
    eng = engine().run(400_000)
    # every queued entry contributed novelty: traces must not be identical
    traces = [e.trace for e in eng.queue.entries]
    assert len(set(traces)) > 1


def test_afl_config_disables_cmplog():
    config = afl_engine_config(max_input_len=32, exec_instr_budget=10_000)
    assert config.use_cmplog is False
    assert config.legacy_havoc is True
    eng = engine(config=config).run(100_000)
    assert eng.execs > 0


def test_hang_accounting():
    target = """
    fn main(input) {
        if (len(input) > 3) {
            if (input[0] == 'L') { while (1) { } }
        }
        return 0;
    }
    """
    eng = engine(target=target, seeds=[b"LOOPxx", b"ok"], seed=0,
                 config=EngineConfig(max_input_len=16, exec_instr_budget=2_000))
    eng.run(100_000)
    assert eng.hangs >= 1


def test_path_feedback_swaps_in_cleanly():
    eng = engine(feedback=PathFeedback()).run(150_000)
    assert eng.execs > 10
    assert eng.virgin.coverage_count() > 0


def test_throughput_positive():
    eng = engine().run(100_000)
    assert eng.throughput() > 0


def test_corpus_inputs_round_trip():
    eng = engine().run(50_000)
    inputs = eng.corpus_inputs()
    assert inputs == [e.data for e in eng.queue.entries]
