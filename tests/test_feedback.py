"""Coverage-feedback instrumentation tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.feedback import (
    BlockFeedback,
    EdgeFeedback,
    NGramFeedback,
    PathAFLFeedback,
    PathFeedback,
    feedback_by_name,
)
from repro.lang import compile_source
from repro.runtime import execute
from tests.genprog import programs

SAMPLE = """
fn score(x) {
    var s = 0;
    if (x > 10) { s = 2; } else { s = 1; }
    if (x % 2 == 0) { s = s * 3; }
    return s;
}
fn main(input) {
    var total = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        total = total + score(input[i]);
    }
    return total;
}
"""


def compiled():
    return compile_source(SAMPLE)


def test_edge_feedback_assigns_unique_indices():
    program = compiled()
    instr = EdgeFeedback().instrument(program)
    seen = set()
    for table in instr.edge_actions:
        for acts in table.values():
            for act in acts:
                assert act[1] not in seen
                seen.add(act[1])


def test_edge_hits_match_traversals():
    program = compiled()
    instr = EdgeFeedback().instrument(program)
    result = execute(program, bytes([4]), instr)
    # one loop iteration: every hit count positive, entry probes counted
    assert result.hits
    assert all(count >= 1 for count in result.hits.values())


def test_path_feedback_emits_one_id_per_activation():
    program = compiled()
    instr = PathFeedback().instrument(program)
    # Two calls of score with identical behaviour: the score path id is hit
    # twice; main's single path once; loop back edges emit per iteration.
    result = execute(program, bytes([4, 4]), instr)
    assert 2 in result.hits.values()


def test_path_feedback_distinguishes_intra_procedural_paths():
    # score(12): x>10 and even -> path A; score(4): !(x>10) and even -> B;
    # both traverse the same *edges* of main's loop, different score paths.
    program = compiled()
    instr = PathFeedback().instrument(program)
    a = frozenset(execute(program, bytes([12]), instr).hits)
    b = frozenset(execute(program, bytes([4]), instr).hits)
    assert a != b


def test_optimized_and_canonical_path_hits_identical():
    program = compiled()
    fast = feedback_by_name("path").instrument(program)
    slow = feedback_by_name("path-canonical").instrument(program)
    for data in (b"", b"\x04", b"\x0c\x04\xff", bytes(range(32))):
        assert execute(program, data, fast).hits == execute(program, data, slow).hits


def test_canonical_has_at_least_as_many_probe_sites():
    program = compiled()
    fast = feedback_by_name("path").instrument(program)
    slow = feedback_by_name("path-canonical").instrument(program)
    assert fast.probe_sites <= slow.probe_sites


def test_path_probe_sites_fewer_than_edge_sites():
    program = compiled()
    edge = EdgeFeedback().instrument(program)
    path = PathFeedback().instrument(program)
    assert path.probe_sites < edge.probe_sites


def test_block_feedback_weaker_than_edge():
    # Block coverage cannot distinguish which edge entered a join block.
    source = """
    fn main(input) {
        var x = 0;
        if (len(input) > 2) { x = 1; } else { x = 2; }
        if (x > 0) { x = x + 1; }
        return x;
    }
    """
    program = compile_source(source)
    block = BlockFeedback().instrument(program)
    edge = EdgeFeedback().instrument(program)
    b_long = frozenset(execute(program, b"abcd", block).hits)
    b_short = frozenset(execute(program, b"a", block).hits)
    e_long = frozenset(execute(program, b"abcd", edge).hits)
    e_short = frozenset(execute(program, b"a", edge).hits)
    assert e_long != e_short
    assert b_long != b_short  # here blocks differ too (different arms)
    assert len(b_long) <= len(e_long)


def test_ngram_window_bounded():
    program = compiled()
    instr = NGramFeedback(2).instrument(program)
    result = execute(program, bytes([1, 2, 3]), instr)
    assert result.hits
    assert instr.ngram_n == 2


def test_ngram1_close_to_edge_granularity():
    program = compiled()
    one = NGramFeedback(1).instrument(program)
    r1 = execute(program, bytes([4, 12]), one)
    edge = EdgeFeedback().instrument(program)
    r2 = execute(program, bytes([4, 12]), edge)
    # 1-gram tracks single edges; distinct-index counts should be close
    # (entry probes differ).
    assert abs(len(r1.hits) - len(r2.hits)) <= 4


def test_pathafl_includes_edge_coverage_plus_hpath():
    program = compiled()
    instr = PathAFLFeedback(min_blocks=1).instrument(program)
    edge = EdgeFeedback().instrument(program)
    r_pa = execute(program, bytes([4]), instr)
    r_e = execute(program, bytes([4]), edge)
    assert len(r_pa.hits) > len(r_e.hits)  # h-path entries on top of edges


def test_pathafl_prunes_small_functions():
    program = compiled()
    instr = PathAFLFeedback(min_blocks=100).instrument(program)
    # No function qualifies: entry actions only carry the edge-coverage hit.
    for acts in instr.entry_actions:
        assert all(act[0] == 0 for act in acts)


def test_feedback_by_name_rejects_unknown():
    import pytest

    with pytest.raises(ValueError):
        feedback_by_name("quantum")


def test_feedback_by_name_variants():
    assert feedback_by_name("edge").name == "edge"
    assert feedback_by_name("ngram6").n == 6
    assert feedback_by_name("path-canonical").optimize is False


@settings(max_examples=40, deadline=None)
@given(programs(), st.binary(max_size=24))
def test_path_differential_property(source, data):
    """Optimized spanning-tree placement == canonical placement, always."""
    program = compile_source(source)
    fast = PathFeedback().instrument(program)
    slow = PathFeedback(optimize=False).instrument(program)
    r_fast = execute(program, data, fast, instr_budget=100_000)
    r_slow = execute(program, data, slow, instr_budget=100_000)
    assert r_fast.hits == r_slow.hits


@settings(max_examples=30, deadline=None)
@given(programs(), st.binary(max_size=24))
def test_path_ids_always_valid_property(source, data):
    """Every emitted path id decodes to a real acyclic path."""
    from repro.ballarus import build_program_plans
    from repro.coverage.feedback import _stable_hash

    program = compile_source(source)
    plans = build_program_plans(program)
    instr = PathFeedback().instrument(program)
    result = execute(program, data, instr, instr_budget=100_000)
    # Reverse the (path_id ^ fxor) indexing per function and check ranges.
    for plan in plans:
        fxor = _stable_hash("func:" + plan.func_name) & instr.map_mask
        for idx in result.hits:
            candidate = idx ^ fxor
            if 0 <= candidate < plan.num_paths:
                plan.regenerate(candidate)  # must not raise
