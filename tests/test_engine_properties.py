"""Property-based invariants of the fuzzing engine over random programs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bitmap import classify_hits
from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.lang import compile_source
from repro.runtime import execute
from tests.genprog import programs

CONFIG = EngineConfig(max_input_len=24, exec_instr_budget=50_000)


def short_campaign(source, feedback, seed):
    program = compile_source(source)
    engine = FuzzEngine(
        program, feedback, [b"seed-one", b"\x00\x01\x02"], random.Random(seed), CONFIG
    )
    engine.run(60_000)
    return program, engine


@settings(max_examples=25, deadline=None)
@given(programs(), st.integers(0, 100))
def test_queue_entries_never_crash(source, seed):
    program, engine = short_campaign(source, EdgeFeedback(), seed)
    for entry in engine.queue.entries:
        result = execute(program, entry.data, instr_budget=50_000)
        assert not result.crashed
        assert not result.timeout


@settings(max_examples=25, deadline=None)
@given(programs(), st.integers(0, 100))
def test_virgin_map_covers_every_queue_trace(source, seed):
    _program, engine = short_campaign(source, PathFeedback(), seed)
    for entry in engine.queue.entries:
        assert engine.virgin.probe(entry.classified) == (False, False)


@settings(max_examples=20, deadline=None)
@given(programs(), st.integers(0, 100))
def test_queue_traces_match_reexecution(source, seed):
    """A queue entry's stored classified trace is reproducible."""
    program, engine = short_campaign(source, EdgeFeedback(), seed)
    instrumentation = engine.instrumentation
    for entry in engine.queue.entries[:10]:
        result = execute(
            program, entry.data, instrumentation, instr_budget=50_000
        )
        assert classify_hits(result.hits) == entry.classified


@settings(max_examples=15, deadline=None)
@given(programs())
def test_engine_deterministic_across_reruns(source):
    _p1, a = short_campaign(source, PathFeedback(), 7)
    _p2, b = short_campaign(source, PathFeedback(), 7)
    assert a.execs == b.execs
    assert [e.data for e in a.queue.entries] == [e.data for e in b.queue.entries]
    assert a.virgin.bits == b.virgin.bits
