"""Linter tests: one per rule, the committed subject baseline, and a
crash-freedom property over generated programs."""

import json
import os

from hypothesis import given, settings

from repro.analysis.lint import lint_program, lint_source, render_text
from repro.cfg.graph import FunctionCFG
from repro.cfg.instructions import MOV, RET
from repro.cfg.program import ProgramCFG
from repro.lang import compile_source
from repro.subjects import SUITE_NAMES, get_subject
from tests.genprog import programs

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "lint_baseline.json"
)


def rules_of(findings):
    return {f.rule for f in findings}


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# -- rule-by-rule ------------------------------------------------------------


def test_unused_variable():
    findings = lint_source(
        "fn main(input) { var x = 1; return 0; }"
    )
    hits = by_rule(findings, "unused-variable")
    assert len(hits) == 1
    assert hits[0].severity == "warning"
    assert "'x'" in hits[0].message
    assert hits[0].function == "main"


def test_dead_store():
    findings = lint_source(
        """
fn main(input) {
    var x = len(input);
    var y = x + 1;
    x = 2;
    return y;
}
"""
    )
    hits = by_rule(findings, "dead-store")
    assert len(hits) == 1
    assert hits[0].line == 5


def test_loop_carried_store_is_not_dead():
    findings = lint_source(
        """
fn main(input) {
    var x = 0;
    var i = 0;
    while (i < 3) {
        i = i + x;
        x = x + 1;
    }
    return i;
}
"""
    )
    assert by_rule(findings, "dead-store") == []


def test_unreachable_statement_after_return():
    findings = lint_source(
        "fn main(input) { return 0; return 1; }"
    )
    assert by_rule(findings, "unreachable-code")


def test_constant_condition():
    findings = lint_source(
        "fn main(input) { if (1 == 2) { return 3; } return 0; }"
    )
    hits = by_rule(findings, "constant-condition")
    assert hits
    assert "false" in hits[0].message or "not taken" in hits[0].message


def test_tautological_comparison_by_value_ranges():
    # x is input-dependent (SCCP sees nothing), but x & 15 is in [0, 15]
    # so x > 20 is provably false — only the interval rule can say so.
    findings = lint_source(
        """
fn main(input) {
    var x = input[0] & 15;
    if (x > 20) { return 1; }
    return 0;
}
"""
    )
    hits = by_rule(findings, "tautological-comparison")
    assert len(hits) == 1
    assert hits[0].severity == "warning"
    assert "false" in hits[0].message
    assert by_rule(findings, "constant-condition") == []


def test_tautological_comparison_true_direction():
    findings = lint_source(
        """
fn main(input) {
    var x = read16(input, 0);
    if (x < 100000) { return 1; }
    return 0;
}
"""
    )
    hits = by_rule(findings, "tautological-comparison")
    assert len(hits) == 1
    assert "true" in hits[0].message


def test_sccp_constant_branch_not_double_reported():
    # A genuinely constant guard stays a constant-condition finding and
    # must not also appear as tautological-comparison.
    findings = lint_source(
        "fn main(input) { if (1 == 2) { return 3; } return 0; }"
    )
    assert by_rule(findings, "constant-condition")
    assert by_rule(findings, "tautological-comparison") == []


def test_intentional_infinite_loop_not_flagged_as_constant_at_ast_level():
    # while(1){...break...} has an exit; only the dedicated IR rule may
    # mention the constant branch, the loop itself is legal.
    findings = lint_source(
        """
fn main(input) {
    var i = 0;
    while (1) {
        i = i + 1;
        if (i > 3) { break; }
    }
    return i;
}
"""
    )
    assert by_rule(findings, "loop-no-exit") == []


def test_loop_with_no_exit():
    findings = lint_source(
        """
fn main(input) {
    var x = 0;
    while (1) {
        x = x + 1;
    }
    return x;
}
"""
    )
    hits = by_rule(findings, "loop-no-exit")
    assert len(hits) == 1
    assert hits[0].severity == "error"


def test_unused_function():
    findings = lint_source(
        """
fn helper(a) { return a + 1; }
fn main(input) { return 0; }
"""
    )
    hits = by_rule(findings, "unused-function")
    assert len(hits) == 1
    assert "'helper'" in hits[0].message


def test_transitively_used_function_not_flagged():
    findings = lint_source(
        """
fn inner(a) { return a; }
fn outer(a) { return inner(a); }
fn main(input) { return outer(1); }
"""
    )
    assert by_rule(findings, "unused-function") == []


def test_unused_param():
    findings = lint_source(
        """
fn helper(a, b) { return a; }
fn main(input) { return helper(len(input), 2); }
"""
    )
    hits = by_rule(findings, "unused-param")
    assert len(hits) == 1
    assert "'b'" in hits[0].message
    assert hits[0].severity == "info"


def test_use_before_init_on_hand_built_ir():
    # Source-level MiniC cannot express this (var requires an initializer),
    # so the rule is exercised straight on IR.
    cfg = FunctionCFG("f", 0, 0)
    cfg.new_block()
    cfg.nregs = 2
    cfg.blocks[0].instrs = [(MOV, 0, 1)]
    cfg.blocks[0].term = (RET, 0)
    program = ProgramCFG([cfg], strings=[], source_name="handmade")
    hits = by_rule(lint_program(program), "use-before-init")
    assert len(hits) >= 1
    assert hits[0].severity == "error"


def test_clean_program_has_no_findings():
    findings = lint_source(
        """
fn main(input) {
    var total = 0;
    for (var i = 0; i < len(input); i = i + 1) {
        total = total + input[i];
    }
    return total;
}
"""
    )
    assert findings == []


def test_render_text_summary():
    text = render_text(
        lint_source("fn main(input) { var x = len(input); return 0; }")
    )
    assert "unused-variable" in text
    assert text.strip().endswith("(1 warning)")


# -- baseline ----------------------------------------------------------------


def test_subject_findings_match_committed_baseline():
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)["subjects"]
    assert set(baseline) == set(SUITE_NAMES)
    for name in SUITE_NAMES:
        subject = get_subject(name)
        findings = [f.to_dict() for f in lint_source(subject.source, name)]
        assert findings == baseline[name]["findings"], name


def test_baseline_path_spaces_report_pruning():
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)["subjects"]
    pruned = [
        name
        for name, entry in baseline.items()
        if entry["path_space"]["infeasible_paths"] > 0
    ]
    # The acceptance bar is >= 1 subject; the suite comfortably clears it.
    assert len(pruned) >= 1
    for entry in baseline.values():
        space = entry["path_space"]
        assert space["feasible_paths"] + space["infeasible_paths"] == space[
            "num_paths"
        ]


# -- crash freedom -----------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(programs())
def test_lint_never_crashes_on_generated_programs(source):
    findings = lint_source(source, "gen")
    for finding in findings:
        assert finding.severity in ("error", "warning", "info")
        assert finding.line >= 0
    lint_program(compile_source(source), "gen-ir")
