"""CLI tests."""

import pytest

from repro.cli import main


def test_list_prints_all_subjects(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("cflow", "pdftotext", "motivating"):
        assert name in out


def test_show_prints_census(capsys):
    assert main(["show", "gdk"]) == 0
    out = capsys.readouterr().out
    assert "bug census" in out
    assert "scale_row" in out
    assert "functions" in out


def test_fuzz_runs_short_campaign(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert main(["fuzz", "flvmeta", "--config", "pcguard",
                 "--hours", "0.5", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "executions:" in out
    assert "queue:" in out


def test_unknown_subject_rejected():
    with pytest.raises(SystemExit):
        main(["show", "nonexistent"])


def test_unknown_config_rejected():
    with pytest.raises(SystemExit):
        main(["fuzz", "gdk", "--config", "nope"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
