"""CLI tests."""

import pytest

from repro.cli import main


def test_list_prints_all_subjects(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("cflow", "pdftotext", "motivating"):
        assert name in out


def test_show_prints_census(capsys):
    assert main(["show", "gdk"]) == 0
    out = capsys.readouterr().out
    assert "bug census" in out
    assert "scale_row" in out
    assert "functions" in out


def test_show_rare_lists_branch_edges(capsys):
    assert main(["show", "gdk", "--rare", "--limit", "6"]) == 0
    out = capsys.readouterr().out
    assert "rare branch edges" in out
    assert "idx=" in out
    assert "load_bmp" in out


def test_show_rare_taint_adds_byte_masks(capsys):
    assert main(["show", "gdk", "--rare", "--taint", "--limit", "6"]) == 0
    out = capsys.readouterr().out
    assert "bytes=" in out
    assert "bytes=4-5" in out  # load_bmp width field (read_u16le(input, 4))


def test_show_taint_without_rare_is_a_hint(capsys):
    assert main(["show", "gdk", "--taint"]) == 0
    out = capsys.readouterr().out
    assert "--taint only applies together with --rare" in out


def test_fuzz_taint_config_runs(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert main(["fuzz", "gdk", "--config", "taint",
                 "--hours", "0.5", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "executions:" in out


def test_fuzz_runs_short_campaign(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert main(["fuzz", "flvmeta", "--config", "pcguard",
                 "--hours", "0.5", "--scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "executions:" in out
    assert "queue:" in out


def test_unknown_subject_rejected():
    with pytest.raises(SystemExit):
        main(["show", "nonexistent"])


def test_unknown_config_rejected():
    with pytest.raises(SystemExit):
        main(["fuzz", "gdk", "--config", "nope"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


def test_fuzz_output_writes_workspace(tmp_path, capsys, monkeypatch):
    import os

    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    out = str(tmp_path / "out")
    assert main(["fuzz", "gdk", "--config", "path", "--hours", "0.5",
                 "--scale", "0.5", "--output", out]) == 0
    stdout = capsys.readouterr().out
    assert "campaign workspace:" in stdout
    main_dir = os.path.join(out, "main")
    assert os.path.isdir(os.path.join(main_dir, "queue"))
    assert os.listdir(os.path.join(main_dir, "queue"))
    assert os.path.exists(os.path.join(main_dir, "fuzzer_stats"))
    assert os.path.exists(os.path.join(main_dir, "manifest.json"))
    assert not os.path.exists(os.path.join(main_dir, "LOCK"))  # released
    # and the workspace resumes
    assert main(["fuzz", "gdk", "--config", "path", "--hours", "0.5",
                 "--scale", "0.5", "--resume-dir", out]) == 0


def test_fuzz_resume_dir_requires_existing_workspace(tmp_path):
    with pytest.raises(SystemExit):
        main(["fuzz", "gdk", "--resume-dir", str(tmp_path / "missing")])


def test_fuzz_output_and_resume_dir_must_agree(tmp_path):
    with pytest.raises(SystemExit):
        main(["fuzz", "gdk", "--output", "a", "--resume-dir", "b"])


def test_cmin_minimizes_store_queue(tmp_path, capsys, monkeypatch):
    import os

    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    out = str(tmp_path / "out")
    assert main(["fuzz", "flvmeta", "--config", "pcguard", "--hours", "0.5",
                 "--scale", "0.5", "--output", out]) == 0
    capsys.readouterr()
    queue_dir = os.path.join(out, "main", "queue")
    minimized = str(tmp_path / "min")
    assert main(["cmin", "flvmeta", queue_dir, minimized]) == 0
    stdout = capsys.readouterr().out
    assert "minimized" in stdout
    kept = os.listdir(minimized)
    assert 0 < len(kept) <= len(os.listdir(queue_dir))
    # minimized artifacts keep the self-verifying naming scheme
    from repro.fuzzer.store import content_hash, parse_artifact_name

    for name in kept:
        seq, _sig, digest = parse_artifact_name(name)
        with open(os.path.join(minimized, name), "rb") as handle:
            assert content_hash(handle.read()) == digest


def test_cmin_rejects_missing_input_dir(tmp_path):
    with pytest.raises(SystemExit):
        main(["cmin", "flvmeta", str(tmp_path / "nope"), str(tmp_path / "o")])


def test_show_constraints_prints_seed_path_conditions(capsys):
    assert main(["show", "gdk", "--constraints", "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "symbolic constraint(s)" in out
    assert "byte[0]" in out


def test_solve_flips_subject_guard(tmp_path, capsys):
    path = str(tmp_path / "input.bin")
    with open(path, "wb") as handle:
        handle.write(b"MAGC\x00\x00")
    assert main(["solve", "gdk", path]) == 0
    out = capsys.readouterr().out
    assert "symbolic constraint(s)" in out
    assert "flipped with byte[0]=80" in out


def test_solve_json_reports_verified_witness(tmp_path, capsys):
    import json

    path = str(tmp_path / "input.bin")
    with open(path, "wb") as handle:
        handle.write(b"MAGC\x00\x00")
    assert main(["solve", "gdk", path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["target"] == "gdk"
    rows = payload["constraints"]
    assert rows and rows[0]["witness"]["assignment"] == {"0": 80}


def test_solve_source_file_target(tmp_path, capsys):
    source = str(tmp_path / "prog.minic")
    with open(source, "w") as handle:
        handle.write(
            "fn main(input) {\n"
            "    if (len(input) < 1) { return 0; }\n"
            "    if (input[0] * 3 == 96) { trap(1); }\n"
            "    return 1;\n"
            "}\n"
        )
    path = str(tmp_path / "input.bin")
    with open(path, "wb") as handle:
        handle.write(b"\x00")
    assert main(["solve", source, path]) == 0
    out = capsys.readouterr().out
    assert "flipped with byte[0]=32" in out
    assert "TRAP" in out


def test_solve_rejects_unknown_target(tmp_path):
    path = str(tmp_path / "input.bin")
    with open(path, "wb") as handle:
        handle.write(b"x")
    with pytest.raises(SystemExit):
        main(["solve", "no-such-subject", path])
