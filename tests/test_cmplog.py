"""Input-to-state (cmplog) substitution tests."""

from repro.fuzzer.cmplog import candidates_from_log


def test_byte_pair_substitution():
    data = b"WXYZtail"
    candidates = candidates_from_log(data, [(b"WXYZ", b"MAGI")])
    assert b"MAGItail" in candidates


def test_byte_pair_substitution_both_directions():
    data = b"..MAGI.."
    candidates = candidates_from_log(data, [(b"OBSV", b"MAGI")])
    assert b"..OBSV.." in candidates


def test_integer_pair_width1():
    data = bytes([3, 9, 3])
    candidates = candidates_from_log(data, [(3, 7)])
    assert bytes([7, 9, 3]) in candidates
    assert bytes([3, 9, 7]) in candidates


def test_integer_pair_width2_both_endians():
    data = b"\x01\x02...."
    candidates = candidates_from_log(data, [(0x0102, 0x0A0B)])
    assert b"\x0a\x0b...." in candidates
    data_le = b"\x02\x01...."
    candidates_le = candidates_from_log(data_le, [(0x0102, 0x0A0B)])
    assert b"\x0b\x0a...." in candidates_le


def test_no_occurrence_no_candidates():
    assert candidates_from_log(b"zzzz", [(b"AAAA", b"BBBB")]) == []


def test_equal_integer_pair_skipped():
    assert candidates_from_log(b"\x05\x05", [(5, 5)]) == []


def test_mismatched_length_byte_pairs_skipped():
    assert candidates_from_log(b"abc", [(b"ab", b"xyz")]) == []


def test_candidates_deduplicated():
    data = b"\x07"
    candidates = candidates_from_log(data, [(7, 9), (7, 9)])
    assert len(candidates) == len(set(candidates))


def test_duplicate_pairs_skipped_output_identical():
    """A loop re-logging one comparison derives candidates exactly once."""
    data = bytes(range(16))
    unique = [(3, 77), (b"\x04\x05", b"QQ")]
    noisy = unique * 50
    assert candidates_from_log(data, noisy) == candidates_from_log(data, unique)


def test_swapped_duplicate_pairs_skipped_output_identical():
    """(a, b) and (b, a) normalize to one key; both directions are always
    tried anyway, so skipping the swap changes nothing."""
    data = bytes(range(16))
    assert candidates_from_log(data, [(3, 77), (77, 3)]) == candidates_from_log(
        data, [(3, 77)]
    )
    assert candidates_from_log(
        data, [(b"\x01\x02", b"ab"), (b"ab", b"\x01\x02")]
    ) == candidates_from_log(data, [(b"\x01\x02", b"ab")])


def test_cap_respected():
    data = bytes(range(64))
    log = [(i, i + 100) for i in range(64)]
    candidates = candidates_from_log(data, log, max_candidates=10)
    assert len(candidates) <= 10


def test_end_to_end_solves_magic():
    """The classic cmplog win: a 4-byte magic solved in one stage."""
    from repro.lang import compile_source
    from repro.runtime import execute

    program = compile_source(
        'fn main(input) { if (len(input) < 4) { return 0; }'
        ' if (memcmp(input, 0, "FUZZ", 0, 4) == 0) { return 1; } return 0; }'
    )
    seed = b"AAAA"
    logged = execute(program, seed, cmplog=True)
    candidates = candidates_from_log(seed, logged.cmp_log)
    assert any(execute(program, c).retval == 1 for c in candidates)
