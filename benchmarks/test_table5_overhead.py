"""Table V (Appendix A): instrumentation overhead on seed processing.

Paper shape: the path instrumentation costs a small constant factor over
pcguard (geomean 1.26x in the paper) despite placing *fewer* probes —
path-end events are individually costlier.
"""

from conftest import one_shot

from repro.experiments import table5
from repro.experiments.tables import geomean

_BY_BACKEND = {}


def test_table5_instrumentation_overhead(benchmark, show, backend):
    data = one_shot(benchmark, table5.collect)
    show(table5.render(data))
    ratios = [path / max(edge, 1) for _n, edge, path, _es, _ps in data.values()]
    g = geomean(ratios)
    # Small constant overhead, not an explosion (paper: 1.26).
    assert 0.9 <= g <= 2.0
    # Ball-Larus places fewer probe sites than per-edge instrumentation.
    fewer = sum(1 for _n, _e, _p, es, ps in data.values() if ps < es)
    assert fewer >= len(data) * 0.8
    # Virtual cost is a model quantity: both backends must regenerate the
    # table cell-for-cell.
    _BY_BACKEND[backend] = data
    if len(_BY_BACKEND) == 2:
        assert _BY_BACKEND["interp"] == _BY_BACKEND["compile"]
