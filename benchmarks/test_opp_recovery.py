"""Opportunistic bug recovery (the paper's 85.5% observation, Sec. V-A).

Paper shape: even without the edge phase's crashing inputs, the path phase
re-discovers the large majority of the bugs the coarse phase had found,
while adding some of its own.
"""

from conftest import one_shot

from repro.experiments import opp_recovery


def test_opportunistic_recovery(benchmark, show):
    data = one_shot(benchmark, opp_recovery.collect)
    show(opp_recovery.render(data))
    total_phase = sum(len(phase) for phase, _opp in data.values())
    total_recovered = sum(len(phase & opp) for phase, opp in data.values())
    if total_phase:
        assert total_recovered / total_phase >= 0.5
