"""Table III: median queue sizes, ratios vs pcguard, geomeans.

Paper shape: geomean ratios obey path > opp >= cull > ~1 (the two biasing
methods tame the explosion; culling tames it hardest).
"""

from conftest import one_shot

from repro.experiments import table3
from repro.experiments.tables import geomean


def test_table3_queue_ratios(benchmark, show):
    data = one_shot(benchmark, table3.collect)
    show(table3.render(data))
    ratios = {"path": [], "cull": [], "opp": []}
    for sizes in data.values():
        base = max(sizes["pcguard"], 1)
        for config in ratios:
            ratios[config].append(sizes[config] / base)
    g = {config: geomean(values) for config, values in ratios.items()}
    # The central Table III ordering: the baseline explodes the most and
    # culling is the strongest mitigation.
    assert g["path"] >= g["cull"]
    assert g["path"] >= 1.0
