"""Table II + Figure 3: unique bugs/crashes of path, pcguard, cull, opp.

Paper shape: cull finds the most bugs overall; path finds bugs pcguard
misses inside code pcguard covered; every path-aware fuzzer contributes
bugs the others lack (Venn regions are non-trivial).
"""

from conftest import one_shot

from repro.experiments import table2


def test_table2_bugs_and_crashes(benchmark, show):
    data = one_shot(benchmark, table2.collect)
    show(table2.render(data))
    show(table2.render_venn(data))
    bugs, _crashes, subjects, configs = data
    totals = table2.totals(bugs, subjects, configs)
    # Sanity: every fuzzer finds a substantial number of bugs.
    for config in configs:
        assert len(totals[config]) >= 5, config
    # Paper's headline directions (soft: small-run profiles are noisy, but
    # these inequalities encode the claims the reproduction targets).
    union_path_aware = totals["path"] | totals["cull"] | totals["opp"]
    assert union_path_aware - totals["pcguard"], (
        "path-aware fuzzers should expose bugs pcguard misses"
    )
