"""Figure 2: queue-size-over-time shapes of the three strategies.

Paper shape (schematic): the baseline path queue keeps growing; culling's
queue is repeatedly trimmed and stays lower; opportunistic stays edge-sized
for the first half and grows afterwards.
"""

from conftest import one_shot

from repro.experiments import fig2


def test_fig2_queue_timelines(benchmark, show):
    series = one_shot(benchmark, fig2.collect)
    show(fig2.render(series))
    midpoint = fig2.POINTS // 2
    path_final = series["path"][-1]
    cull_final = series["cull"][-1]
    pcguard_final = series["pcguard"][-1]
    # The baseline ends with the largest queue; culling ends below it.
    assert path_final >= cull_final
    assert path_final >= pcguard_final
    # Opportunistic grows in its second (path) half.
    assert series["opp"][-1] >= series["opp"][midpoint - 1]
