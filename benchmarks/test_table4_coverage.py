"""Table IV: edge coverage attained (afl-showmap replay of final queues).

Paper shape: pcguard attains the highest total edge coverage; the path-
aware fuzzers trail in absolute counts yet still reach some edges pcguard
misses.
"""

from conftest import one_shot

from repro.experiments import table4


def test_table4_edge_coverage(benchmark, show):
    data = one_shot(benchmark, table4.collect)
    show(table4.render(data))
    totals = {c: 0 for c in ("path", "pcguard", "cull", "opp")}
    unique_to_path_aware = 0
    for edges in data.values():
        for config in totals:
            totals[config] += len(edges[config])
        union_pa = edges["path"] | edges["cull"] | edges["opp"]
        unique_to_path_aware += len(union_pa - edges["pcguard"])
    # pcguard leads (or ties) total coverage; path-aware never collapses.
    assert totals["pcguard"] >= totals["path"] * 0.9
    assert totals["path"] > 0.5 * totals["pcguard"]
