"""Tables VII-IX (Appendix C): PathAFL / AFL comparison.

Paper shape: PathAFL trails every Ball-Larus fuzzer in unique bugs; its bug
set nearly coincides with plain AFL's; raw "crash" counts dramatically
over-state unique bugs (the dedup critique).
"""

from conftest import one_shot

from repro.experiments import table7_9


def test_tables7_to_9_pathafl(benchmark, show):
    data = one_shot(benchmark, table7_9.collect)
    show(table7_9.render_table7(data))
    show(table7_9.render_table8(data))
    show(table7_9.render_table9(data))
    results, bugs, subjects, runs = data

    def total(config):
        out = set()
        for subject in subjects:
            out |= {(subject, b) for b in bugs[(subject, config)]}
        return out

    # Table VII shape: the modern-engine fuzzers dominate PathAFL.
    assert len(total("cull") | total("path")) >= len(total("pathafl"))
    # Table VIII shape: PathAFL and its AFL base find similar bug sets.
    overlap = len(total("pathafl") & total("afl"))
    assert overlap >= 0.5 * max(len(total("pathafl")), 1)
    # Table IX shape: raw crashes >= AFL-novelty crashes >= stack clusters.
    for subject in subjects:
        for config in ("pathafl", "afl"):
            crashes = sum(results[(subject, config, r)].crash_count for r in range(runs))
            afl_uniq = sum(
                results[(subject, config, r)].afl_unique_crash_count for r in range(runs)
            )
            uniq5 = set()
            for r in range(runs):
                uniq5 |= results[(subject, config, r)].unique_crash_hashes
            assert crashes >= afl_uniq >= 0
            assert crashes >= len(uniq5)
