"""Table I: queue items after 24-hour fuzzing (edge vs path feedback).

Paper shape: the path-aware queue is never meaningfully smaller than the
edge queue, and for loop-heavy subjects (infotocap, lame) it is a multiple.
"""

from conftest import one_shot

from repro.experiments import table1
from repro.experiments.runner import campaign


def test_table1_queue_growth(benchmark, show):
    data = one_shot(benchmark, table1.collect)
    show(table1.render(data))
    total_edge = sum(edge for _f, edge, _p in data.values())
    total_path = sum(path for _f, _e, path in data.values())
    # Paper: aggregate queue explosion under the path feedback.
    assert total_path > total_edge
    # The designated pathological subjects explode hardest.
    ratios = {name: p / max(e, 1) for name, (_f, e, p) in data.items()}
    if "infotocap" in ratios and "exiv2" in ratios:
        assert ratios["infotocap"] > ratios["exiv2"]


def test_single_campaign_cost(benchmark):
    """Throughput reference: one short pcguard campaign on cflow."""
    benchmark.pedantic(
        lambda: campaign("cflow", "pcguard", 9999, hours=2),
        rounds=1,
        iterations=1,
    )
