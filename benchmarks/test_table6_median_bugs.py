"""Table VI (Appendix B): median per-run unique bugs.

Paper shape: the cumulative trends of Table II survive medianing per run.
"""

from conftest import one_shot

from repro.experiments import table6


def test_table6_median_bugs(benchmark, show):
    data = one_shot(benchmark, table6.collect)
    show(table6.render(data))
    results, subjects, runs = data
    # Per-run medians never exceed the cumulative union.
    for subject in subjects:
        for config in table6.CONFIGS:
            per_run = [len(results[(subject, config, r)].bugs) for r in range(runs)]
            union = set()
            for r in range(runs):
                union |= results[(subject, config, r)].bugs
            assert max(per_run) <= len(union)
