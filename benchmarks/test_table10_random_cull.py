"""Table X (Appendix D): random-culling ablation.

Paper shape: cull_r sits between the unbiased baseline and the
edge-preserving cull in total bugs — queue reduction helps by itself, the
coverage-preserving criterion helps more.
"""

from conftest import one_shot

from repro.experiments import table10


def test_table10_random_culling(benchmark, show):
    data = one_shot(benchmark, table10.collect)
    show(table10.render(data))
    bugs, subjects = data

    def total(config):
        out = set()
        for subject in subjects:
            out |= {(subject, b) for b in bugs[(subject, config)]}
        return out

    # Soft ordering (stochastic at small profiles): the edge-preserving
    # criterion should not lose to random culling by a wide margin.
    assert len(total("cull")) + 3 >= len(total("cull_r"))
    # Both culling flavours remain competitive with the baseline.
    assert len(total("cull") | total("cull_r")) >= len(total("path")) * 0.7
