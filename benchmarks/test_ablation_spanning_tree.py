"""Ablation: Ball-Larus spanning-tree probe minimization.

Compares the optimized (chord-only) placement against the canonical
everything-with-nonzero-Val placement across the whole suite: identical
path ids (correctness), fewer probe sites, and lower replay cost — the
probe-minimization design choice of Sec. IV quantified.
"""

from conftest import one_shot

from repro.coverage.feedback import PathFeedback
from repro.experiments.tables import geomean, render_table
from repro.runtime.interpreter import execute
from repro.subjects import get_subject, subject_names


def measure(subject):
    fast = PathFeedback(optimize=True).instrument(subject.program)
    slow = PathFeedback(optimize=False).instrument(subject.program)
    fast_cost = 0
    slow_cost = 0
    for seed in subject.seeds:
        r_fast = execute(subject.program, seed, fast,
                         instr_budget=subject.exec_instr_budget)
        r_slow = execute(subject.program, seed, slow,
                         instr_budget=subject.exec_instr_budget)
        assert r_fast.hits == r_slow.hits  # identical semantics
        fast_cost += r_fast.probe_count
        slow_cost += r_slow.probe_count
    return fast.probe_sites, slow.probe_sites, fast_cost, slow_cost


def test_spanning_tree_ablation(benchmark, show):
    def collect():
        data = {}
        for name in subject_names():
            data[name] = measure(get_subject(name))
        return data

    data = one_shot(benchmark, collect)
    rows = []
    site_ratios = []
    probe_ratios = []
    for name, (fast_sites, slow_sites, fast_cost, slow_cost) in data.items():
        site_ratio = fast_sites / max(slow_sites, 1)
        probe_ratio = fast_cost / max(slow_cost, 1)
        site_ratios.append(site_ratio)
        probe_ratios.append(probe_ratio)
        rows.append([name, slow_sites, fast_sites, site_ratio,
                     slow_cost, fast_cost, probe_ratio])
    rows.append(["GEOMEAN", "", "", geomean(site_ratios), "", "",
                 geomean(probe_ratios)])
    show(render_table(
        ["Benchmark", "canon sites", "opt sites", "sites ratio",
         "canon probes", "opt probes", "probes ratio"],
        rows,
        title="Ablation: spanning-tree probe minimization (identical ids)",
    ))
    # The optimization must never instrument more sites, and should save
    # run-time probe executions overall.
    assert geomean(site_ratios) <= 1.0
    assert geomean(probe_ratios) <= 1.05
