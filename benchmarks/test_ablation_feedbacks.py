"""Ablation: the feedback-sensitivity spectrum.

Sweeps block < edge < 4-gram < path < path-2-gram sensitivity (the related
work's axis, RAID'19) on a subset of subjects: queue size should broadly
grow with sensitivity, while bug findings vary per subject — the paper's
"no universal best sensitivity" observation, with its Sec. VII extension
(path 2-grams) included.
"""

from conftest import one_shot

from repro.experiments.runner import campaign
from repro.experiments.tables import render_table

HOURS = 48
CONFIGS = ["block", "pcguard", "ngram4", "path", "path2gram"]
SUBJECTS = ("infotocap", "gdk", "mujs", "pdftotext")


def collect():
    data = {}
    for subject in SUBJECTS:
        per_config = {}
        for config in CONFIGS:
            result = campaign(subject, config, 0, HOURS)
            per_config[config] = (
                result.queue_size,
                len(result.bugs),
                result.execs,
            )
        data[subject] = per_config
    return data


def test_feedback_sensitivity_spectrum(benchmark, show):
    data = one_shot(benchmark, collect)
    rows = []
    for subject, per_config in data.items():
        for config in CONFIGS:
            queue, bugs, execs = per_config[config]
            rows.append([subject, config, queue, bugs, execs])
    show(render_table(
        ["Benchmark", "feedback", "queue", "bugs", "execs"],
        rows,
        title="Ablation: feedback sensitivity (block -> path 2-grams)",
    ))
    # Sensitivity should inflate queues on the path-explosion subject.
    info = data["infotocap"]
    assert info["path"][0] >= info["pcguard"][0]
    assert info["path2gram"][0] >= info["pcguard"][0]
    # Throughput (execs at equal budget) declines as sensitivity grows.
    assert info["block"][2] >= info["path2gram"][2] * 0.7
