"""Shared benchmark helpers.

Benchmarks double as the experiment harness: each file regenerates one of
the paper's tables/figures and times a representative unit of the
underlying computation with pytest-benchmark.  Campaign matrices are
memoized by the runner (in-process + on-disk), so the suite can be re-run
cheaply; control the profile with REPRO_SCALE / REPRO_RUNS / REPRO_SUBJECTS.

Rendered artifacts are printed (visible with ``-s`` / on failure) *and*
persisted under ``results/benchmarks/`` so a plain ``pytest benchmarks/
--benchmark-only`` run leaves the regenerated tables on disk.
"""

import os
import re

import pytest

_RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results",
    "benchmarks",
)


@pytest.fixture(params=["interp", "compile"])
def backend(request, monkeypatch):
    """Regenerate the artifact under each execution backend.

    Sets REPRO_BACKEND so everything routed through
    :func:`repro.runtime.backend.make_backend` (engines, replay loops)
    executes under the parametrized backend.  The artifacts are virtual-
    clock quantities and must come out identical either way; the fixture
    exists to prove that, not to time the backends (``repro bench`` does
    the timing).
    """
    monkeypatch.setenv("REPRO_BACKEND", request.param)
    return request.param


@pytest.fixture
def show(request):
    """Print a rendered artifact and persist it to results/benchmarks/."""
    slug = re.sub(r"[^A-Za-z0-9_]+", "_", request.node.name)
    path = os.path.join(_RESULTS_DIR, slug + ".txt")
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    # Fresh file per test invocation; multiple show() calls append.
    if os.path.exists(path):
        os.remove(path)

    def _show(text):
        print()
        print(text)
        with open(path, "a") as handle:
            handle.write(text)
            handle.write("\n\n")

    return _show


def one_shot(benchmark, fn):
    """Benchmark an expensive function without repetition."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
