"""Figure 1: the motivating example, end to end.

Checks the figure's structural facts (five acyclic paths in ``foo``) and the
section II-B claim: the bug-triggering "red path" brings no new edges once
its edges were covered separately, but brings a new path id — and the
path-aware fuzzer converts that stepping stone into the crash.
"""

import random

from conftest import one_shot

from repro.ballarus import FunctionPathPlan
from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.runtime import execute
from repro.subjects.motivating import build


def test_fig1_motivating_example(benchmark, show):
    subject = build()
    program = subject.program
    plan = FunctionPathPlan(program.func("foo"))
    assert plan.num_paths == 5

    edge_instr = EdgeFeedback().instrument(program)
    path_instr = PathFeedback().instrument(program)
    rare_benign = b"x" + b"A" * 43
    h_common = b"h" + b"A" * 30
    red_path = b"h" + b"A" * 43
    edges_seen = set()
    paths_seen = set()
    for data in (rare_benign, h_common):
        edges_seen |= set(execute(program, data, edge_instr).hits)
        paths_seen |= set(execute(program, data, path_instr).hits)
    new_edges = set(execute(program, red_path, edge_instr).hits) - edges_seen
    new_paths = set(execute(program, red_path, path_instr).hits) - paths_seen
    show(
        "Figure 1: red path novelty — %d new edges (invisible), %d new path ids"
        % (len(new_edges), len(new_paths))
    )
    assert len(new_edges) == 0
    assert len(new_paths) >= 1

    def fuzz_with_path_feedback():
        engine = FuzzEngine(
            program,
            PathFeedback(),
            subject.seeds,
            random.Random(0),
            EngineConfig(
                max_input_len=subject.max_input_len,
                exec_instr_budget=subject.exec_instr_budget,
            ),
            subject.tokens,
        )
        engine.run(1_500_000)
        return {r.trap.bug_id() for r in engine.unique_crashes.values()}

    found = one_shot(benchmark, fuzz_with_path_feedback)
    assert subject.bugs[0].bug_id in found
