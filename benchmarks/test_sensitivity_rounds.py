"""Culling-round-length sensitivity (the paper's footnote 2).

Paper observation: 3 h and 6 h rounds perform comparably; much longer
rounds approach the unculled baseline.  The bench prints the sweep and
checks only that every round length yields a functioning campaign.
"""

from conftest import one_shot

from repro.experiments import sensitivity


def test_sensitivity_round_lengths(benchmark, show):
    data = one_shot(benchmark, lambda: sensitivity.collect(runs=1))
    show(sensitivity.render(data))
    for subject, per_round in data.items():
        assert set(per_round) == set(sensitivity.ROUND_HOURS)
