"""Path-level triage: explain *which route* set up a crash.

Fuzzes a suite subject briefly, then uses the Ball-Larus path regeneration
(:mod:`repro.triage.pathreport`) to decode the acyclic paths a crashing
input's stepping stone exercised that the seeds never did — the
triage-support payoff the paper describes in Section VI.

Run:  python examples/triage_report.py
"""

import random

from repro.coverage.feedback import PathFeedback
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.subjects import get_subject
from repro.triage.pathreport import explain_crash, profile_input


def main():
    subject = get_subject("gdk")
    print("subject: %s — %s\n" % (subject.name, subject.description))

    engine = FuzzEngine(
        subject.program,
        PathFeedback(),
        subject.seeds,
        random.Random(11),
        EngineConfig(
            max_input_len=subject.max_input_len,
            exec_instr_budget=subject.exec_instr_budget,
        ),
        subject.tokens,
    )
    engine.run(1_500_000)
    print("campaign: %d execs, %d unique crashes\n"
          % (engine.execs, len(engine.unique_crashes)))

    benign = subject.seeds[0]
    print("== path profile of a benign seed ==")
    profile = profile_input(subject.program, benign)
    print(profile.format(max_entries=8))

    for record in list(engine.unique_crashes.values())[:3]:
        print("\n== crash explanation (input %r) ==" % record.data[:24])
        print(explain_crash(subject.program, benign, record.data))


if __name__ == "__main__":
    main()
