"""Exploration biasing on a real suite subject: path vs cull vs opp.

Runs the baseline path-aware fuzzer, the culling driver, and the
opportunistic two-phase campaign on the queue-explosion subject
``infotocap``, then contrasts queue sizes, throughput, coverage, and bugs —
a miniature of the paper's Tables II/III story.

Run:  python examples/culling_campaign.py
"""

import random

from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.campaign import result_from_engines
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.strategies.culling import run_culling_campaign
from repro.strategies.opportunistic import run_opportunistic_campaign
from repro.subjects import get_subject

BUDGET = 2_000_000  # virtual ticks (~a few seconds of wall time)


def engine_config(subject):
    return EngineConfig(
        max_input_len=subject.max_input_len,
        exec_instr_budget=subject.exec_instr_budget,
    )


def run_plain(subject, feedback, name):
    engine = FuzzEngine(
        subject.program, feedback, subject.seeds,
        random.Random(42), engine_config(subject), subject.tokens,
    )
    engine.run(BUDGET)
    return result_from_engines(subject, name, 0, [engine], engine)


def main():
    subject = get_subject("infotocap")
    print("subject: %s — %s" % (subject.name, subject.description))

    results = {}
    results["pcguard"] = run_plain(subject, EdgeFeedback(), "pcguard")
    results["path"] = run_plain(subject, PathFeedback(), "path")

    engines, final = run_culling_campaign(
        subject, PathFeedback, BUDGET, BUDGET // 8,
        random.Random(42), engine_config(subject), criterion="edges",
    )
    results["cull"] = result_from_engines(subject, "cull", 0, engines, final)

    phases, final, _ = run_opportunistic_campaign(
        subject, BUDGET, random.Random(42), engine_config(subject)
    )
    results["opp"] = result_from_engines(subject, "opp", 0, phases, final)

    print("\n%-8s %8s %8s %10s %8s %6s" % (
        "fuzzer", "queue", "execs", "exec/h", "edges", "bugs"))
    for name, result in results.items():
        print("%-8s %8d %8d %10.1f %8d %6d" % (
            name, result.queue_size, result.execs, result.throughput,
            len(result.edges), len(result.bugs)))

    print("\nqueue explosion: path/pcguard = %.2fx, cull/pcguard = %.2fx" % (
        results["path"].queue_size / max(results["pcguard"].queue_size, 1),
        results["cull"].queue_size / max(results["pcguard"].queue_size, 1)))
    only_path_aware = (
        results["cull"].bugs | results["path"].bugs | results["opp"].bugs
    ) - results["pcguard"].bugs
    if only_path_aware:
        print("bugs missed by pcguard but found by a path-aware fuzzer:")
        for bug in sorted(only_path_aware):
            print("  %s:%d (%s)" % bug)


if __name__ == "__main__":
    main()
