"""The paper's Figure 1, executable.

Shows: (1) the five Ball-Larus acyclic paths of ``foo`` and their decoded
block sequences; (2) why edge coverage cannot tell the bug-triggering "red
path" apart once its edges have been seen individually, while the path id
can; (3) a short fuzzing session with the path-aware feedback that finds
the heap overflow.

Run:  python examples/motivating_example.py
"""

import random

from repro.ballarus import FunctionPathPlan
from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.runtime import execute
from repro.subjects.motivating import build


def main():
    subject = build()
    program = subject.program
    foo = program.func("foo")

    print("== Ball-Larus path profile of foo ==")
    plan = FunctionPathPlan(foo)
    print("acyclic paths: %d (the figure's {0..4})" % plan.num_paths)
    for path_id in range(plan.num_paths):
        print("  path %d -> blocks %s" % (path_id, plan.regenerate_blocks(path_id)))

    print("\n== edge coverage aliases the red path ==")
    edge_instr = EdgeFeedback().instrument(program)
    path_instr = PathFeedback().instrument(program)
    # Three executions: rare block via benign exit; common block via the
    # 'h' branch; then the *combination* (rare block + 'h' branch).
    rare_benign = b"x" + b"A" * 43  # len 44: j=3 block, then else branch
    h_common = b"h" + b"A" * 30  # 'h' branch via the j=-2 block
    red_path = b"h" + b"A" * 43  # the figure's red path (len 44: no crash yet)
    seen_edges = set()
    for label, data in (("rare+benign", rare_benign), ("h+common", h_common)):
        hits = execute(program, data, edge_instr).hits
        seen_edges |= set(hits)
        print("  %-12s covers %2d edge-map entries" % (label, len(hits)))
    red_edges = set(execute(program, red_path, edge_instr).hits)
    print("  red path adds %d new edges over the first two -> invisible to "
          "edge coverage" % len(red_edges - seen_edges))

    seen_paths = set()
    for data in (rare_benign, h_common):
        seen_paths |= set(execute(program, data, path_instr).hits)
    red_paths = set(execute(program, red_path, path_instr).hits)
    print("  red path adds %d new PATH ids -> retained by the path-aware "
          "fuzzer" % len(red_paths - seen_paths))

    print("\n== fuzzing with the path-aware feedback ==")
    engine = FuzzEngine(
        program,
        PathFeedback(),
        subject.seeds,
        random.Random(7),
        EngineConfig(
            max_input_len=subject.max_input_len,
            exec_instr_budget=subject.exec_instr_budget,
        ),
        subject.tokens,
    )
    engine.run(1_200_000)
    print("executions: %d, crashes: %d" % (engine.execs, engine.crash_count))
    for record in engine.unique_crashes.values():
        print("found the Figure 1 bug (input %r):" % record.data)
        print(record.trap.report())


if __name__ == "__main__":
    main()
