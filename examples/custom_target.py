"""Bring your own target: write MiniC, pick feedbacks, compare them.

Mirrors the paper's Section VIII-G ("experiment customization"): any program
compatible with the engine can be fuzzed under any feedback.  This example
defines a small INI-style parser with a state-dependent defect and compares
four feedbacks head-to-head on it.

Run:  python examples/custom_target.py
"""

import random

from repro.coverage.feedback import (
    BlockFeedback,
    EdgeFeedback,
    NGramFeedback,
    PathFeedback,
)
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.lang import compile_source

SOURCE = """
fn handle_pair(key, value, limits) {
    // Section mode (key starting with '!') halves the limit index used by
    // a later value write in the same call: the mode + large-value
    // combination is the path-dependent defect.
    var slot = key & 7;
    var mode = 0;
    if (key > 'z') { mode = 1; }
    var at = slot;
    if (mode == 1) { at = slot * 3; }
    if (value > 'w') {
        limits[at + 2] = value;     // BUG: mode * large slot overflows 16
    }
    return at;
}

fn main(input) {
    var n = len(input);
    if (n < 4) { return 0; }
    if (input[0] != '[') { return 1; }
    var limits = alloc(16);
    var pos = 1;
    var pairs = 0;
    while (pos + 2 < n) {
        if (input[pos] == '=') {
            handle_pair(input[pos - 1], input[pos + 1], limits);
            pairs = pairs + 1;
        }
        pos = pos + 1;
        if (pairs > 12) { break; }
    }
    return pairs;
}
"""

FEEDBACKS = [
    ("block", BlockFeedback()),
    ("edge (pcguard)", EdgeFeedback()),
    ("4-gram", NGramFeedback(4)),
    ("path (Ball-Larus)", PathFeedback()),
]


def main():
    program = compile_source(SOURCE, name="custom-ini")
    seeds = [b"[a=b c=d]", b"[x=y]"]
    print("%-18s %8s %8s %8s %6s" % ("feedback", "execs", "queue", "map", "bugs"))
    for name, feedback in FEEDBACKS:
        engine = FuzzEngine(
            program, feedback, seeds, random.Random(99),
            EngineConfig(max_input_len=24, exec_instr_budget=4_000),
            tokens=[b"[", b"="],
        )
        engine.run(500_000)
        bugs = {r.trap.bug_id() for r in engine.unique_crashes.values()}
        print("%-18s %8d %8d %8d %6d" % (
            name, engine.execs, len(engine.queue.entries),
            engine.virgin.coverage_count(), len(bugs)))


if __name__ == "__main__":
    main()
