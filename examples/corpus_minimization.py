"""Corpus minimization: afl-cmin-style vs favored-corpus culling.

Grows a corpus with the path-aware feedback (deliberately inflated by queue
explosion), then minimizes it two ways — the paper's favored-corpus
construction and the afl-cmin-style two-pass cover — and verifies both
preserve the full edge coverage, reproducing the paper's "equivalent
results" remark about the two approaches.

Run:  python examples/corpus_minimization.py
"""

import random

from repro.coverage.feedback import PathFeedback
from repro.fuzzer.cmin import coverage_of, minimize_corpus
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.strategies.culling import edge_preserving_subset
from repro.subjects import get_subject


def main():
    subject = get_subject("infotocap")
    engine = FuzzEngine(
        subject.program,
        PathFeedback(),
        subject.seeds,
        random.Random(3),
        EngineConfig(
            max_input_len=subject.max_input_len,
            exec_instr_budget=subject.exec_instr_budget,
        ),
        subject.tokens,
    )
    engine.run(1_200_000)
    corpus = engine.corpus_inputs()
    full_cov = coverage_of(subject.program, corpus)
    print("path-aware corpus on %s: %d inputs covering %d edges"
          % (subject.name, len(corpus), len(full_cov)))

    favored = edge_preserving_subset(subject.program, corpus)
    cmin = minimize_corpus(subject.program, corpus)
    for name, subset in (("favored-corpus cull", favored), ("afl-cmin style", cmin)):
        cov = coverage_of(subject.program, subset)
        print("%-20s -> %4d inputs, %d edges (%s)" % (
            name, len(subset), len(cov),
            "coverage preserved" if cov == full_cov else "COVERAGE LOST"))


if __name__ == "__main__":
    main()
