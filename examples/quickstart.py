"""Quickstart: compile a target, fuzz it with the path-aware feedback.

Run:  python examples/quickstart.py
"""

import random

from repro.coverage.feedback import PathFeedback
from repro.fuzzer.engine import EngineConfig, FuzzEngine
from repro.lang import compile_source

# A MiniC target: a tiny record parser with a planted off-by-N write.
SOURCE = """
fn parse_record(input, pos, n, table) {
    var kind = input[pos];
    var value = input[pos + 1];
    if (kind == 'W') {
        table[value] = 1;           // BUG: value is attacker-controlled
        return pos + 2;
    }
    if (kind == 'R') {
        if (value < 16) { return pos + 2 + table[value]; }
        return pos + 2;
    }
    return pos + 1;
}

fn main(input) {
    var n = len(input);
    if (n < 4) { return 0; }
    if (memcmp(input, 0, "RC", 0, 2) != 0) { return 1; }
    var table = alloc(16);
    var pos = 2;
    var records = 0;
    while (pos + 2 <= n) {
        pos = parse_record(input, pos, n, table);
        records = records + 1;
        if (records > 20) { break; }
    }
    return records;
}
"""


def main():
    # 1. Compile: lexer -> parser -> semantic checks -> CFG -> optimizer.
    program = compile_source(SOURCE, name="quickstart")
    print("compiled:", program.stats())

    # 2. Fuzz with the paper's Ball-Larus path-aware feedback.
    engine = FuzzEngine(
        program,
        PathFeedback(),
        seeds=[b"RCR\x05W\x03", b"RCxxxx"],
        rng=random.Random(1234),
        config=EngineConfig(max_input_len=32, exec_instr_budget=5_000),
        tokens=[b"RC", b"W", b"R"],
    )
    engine.run(budget_ticks=600_000)

    # 3. Inspect the outcome.
    print("executions:   %d" % engine.execs)
    print("queue size:   %d" % len(engine.queue.entries))
    print("coverage:     %d map entries" % engine.virgin.coverage_count())
    print("crashes:      %d raw, %d unique stacks" % (
        engine.crash_count, len(engine.unique_crashes)))
    for record in engine.unique_crashes.values():
        print("--- crash (input %r)" % record.data)
        print(record.trap.report())


if __name__ == "__main__":
    main()
