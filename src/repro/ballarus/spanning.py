"""Spanning-tree probe minimization (Ball & Larus '96, Sec. 3.3).

After numbering, instrumentation need not touch every edge: pick a spanning
tree of the DAG (plus a virtual EXIT -> ENTRY edge) and place increments only
on the *chords* (non-tree edges).  Each chord ``c`` carries::

    Inc(c) = sum over its fundamental cycle of (+/-) Val(e)

with signs following the cycle orientation.  Because both the Val-sum and
the Inc-sum are linear over the cycle space and agree on the fundamental
cycles, every ENTRY -> EXIT path (closed through the virtual edge) satisfies

    sum of Inc over chords on the path  ==  sum of Val over all path edges
                                        ==  the path id.

Constraints mirroring the LLVM PathProfiling implementation the paper
adapted: the virtual EXIT -> ENTRY edge is forced *into* the tree, and the
back-edge surrogate edges are forced *out* (they must carry the path-end /
path-reset events regardless).

Tree selection maximizes the total static weight of tree edges — weights
come from loop-depth-based frequency estimates — so the hottest edges avoid
probes (the paper's "only a fraction of the CFG edges require
instrumentation").
"""

from repro.ballarus.dag import EXIT, REGULAR, RET_EDGE


def place_increments(dag, weights=None):
    """Mark tree/chord edges of ``dag`` and set ``inc`` on every chord.

    ``weights``: optional map edge-index -> static frequency estimate; higher
    weight means "keep out of the probe set".  Non-chord (tree) edges get
    ``inc = 0`` and ``is_chord = False``.  Returns the number of chords.
    """
    parent = _build_tree(dag, weights or {})
    chords = 0
    for edge in dag.edges:
        if edge.is_chord:
            edge.inc = edge.val + _tree_path_val(parent, edge.dst, edge.src)
            chords += 1
        else:
            edge.inc = 0
    return chords


def canonical_increments(dag):
    """Probe placement without the spanning-tree optimization.

    Every edge is its own "chord" with ``inc = val``; probes are needed only
    where ``inc != 0`` (plus path-end sites).  This is the placement the
    paper's Figure 1 depicts and serves as the differential-testing oracle
    for the optimized placement.
    """
    for edge in dag.edges:
        edge.is_chord = True
        edge.inc = edge.val


def _build_tree(dag, weights):
    """Kruskal maximum spanning tree over the undirected DAG + virtual edge.

    Returns ``parent``: map node -> (parent_node, edge, direction) with the
    ENTRY as root; ``direction`` is +1 when the tree edge points from parent
    to child, -1 otherwise.  Sets ``is_chord`` on every DAG edge.
    """
    entry = dag.nodes[0]
    rank = {node: 0 for node in dag.nodes}
    comp = {node: node for node in dag.nodes}

    def find(node):
        root = node
        while comp[root] != root:
            root = comp[root]
        while comp[node] != root:
            comp[node], node = root, comp[node]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        comp[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        return True

    # The virtual EXIT -> ENTRY edge is first (forced into the tree).
    union(EXIT, entry)
    adjacency = {node: [] for node in dag.nodes}
    candidates = [e for e in dag.edges if e.kind in (REGULAR, RET_EDGE)]
    candidates.sort(key=lambda e: (-weights.get(e.index, 1), e.index))
    for edge in dag.edges:
        edge.is_chord = True
    for edge in candidates:
        if union(edge.src, edge.dst):
            edge.is_chord = False
            adjacency[edge.src].append((edge.dst, edge, 1))
            adjacency[edge.dst].append((edge.src, edge, -1))

    # Root the tree at ENTRY.  EXIT hangs off ENTRY through the virtual edge
    # (val 0), unless it was reached through ret edges already.
    parent = {entry: None}
    stack = [entry]
    while stack:
        node = stack.pop()
        for neighbor, edge, direction in adjacency[node]:
            if neighbor not in parent:
                parent[neighbor] = (node, edge, direction)
                stack.append(neighbor)
    if EXIT not in parent:
        parent[EXIT] = (entry, None, 1)  # the virtual edge, val 0
    missing = [n for n in dag.nodes if n not in parent]
    if missing:  # pragma: no cover - connectivity is guaranteed by pruning
        raise ValueError("spanning tree does not reach nodes %r" % missing)
    return parent


def _tree_path_val(parent, start, goal):
    """Signed Val-sum along the tree path ``start -> goal``.

    Traversing a tree edge in its own direction contributes ``+val``;
    against it, ``-val``.  The fundamental cycle of chord ``c = (src, dst)``
    is ``c`` followed by the tree path ``dst -> src``, so the caller passes
    ``start=c.dst, goal=c.src``.
    """
    ancestors = {}
    node = start
    depth = 0
    while node is not None:
        ancestors[node] = depth
        link = parent[node]
        node = link[0] if link else None
        depth += 1
    # Climb from goal until meeting an ancestor of start (the LCA).
    total_up_from_goal = 0
    node = goal
    while node not in ancestors:
        link = parent[node]
        _, edge, direction = link
        if edge is not None:
            # Climbing child -> parent traverses the edge opposite to its
            # stored direction: direction=+1 means parent->child.
            total_up_from_goal += -direction * edge.val
        node = link[0]
    lca = node
    # Descend start -> lca (i.e. climb from start, then negate).
    total_up_from_start = 0
    node = start
    while node != lca:
        link = parent[node]
        _, edge, direction = link
        if edge is not None:
            total_up_from_start += -direction * edge.val
        node = link[0]
    # Path start -> lca -> goal: climbing start->lca is exactly
    # total_up_from_start; descending lca->goal is the reverse of climbing
    # goal->lca, hence minus total_up_from_goal.
    return total_up_from_start - total_up_from_goal
