"""Per-function path-profiling plans.

A :class:`FunctionPathPlan` packages everything the coverage instrumenter
and the VM need to track Ball-Larus path ids for one function:

- ``edge_incs``      (src, dst) -> run-time increment for regular CFG edges;
- ``ret_emits``      ret-block id -> increment folded into the path-end emit;
- ``back_edge_events`` (u, v) -> (end_inc, reset_val): taking the back edge
  emits ``pathreg + end_inc`` as a finished path id and re-seeds the
  register with ``reset_val`` (the surrogate ENTRY->v increment);
- ``num_paths``      the acyclic-path count (ids are ``0 .. num_paths-1``).

Plans are built either with the spanning-tree-optimized placement (the
default, as in the paper's adapted LLVM pass) or the canonical everything-
with-nonzero-Val placement used by Figure 1 and by the differential tests.
"""

from repro.ballarus.dag import EXIT, REGULAR, RET_EDGE, SURR_ENTRY, build_dag
from repro.ballarus.numbering import number_paths
from repro.ballarus.spanning import canonical_increments, place_increments
from repro.cfg.analysis import loop_depths


class FunctionPathPlan:
    """Instrumentation plan for one function (see module docstring)."""

    __slots__ = (
        "func_name",
        "func_index",
        "num_paths",
        "edge_incs",
        "ret_emits",
        "back_edge_events",
        "dag",
        "optimized",
        "feasible_num_paths",
    )

    def __init__(self, cfg, optimize=True):
        dag = build_dag(cfg)
        self.func_name = cfg.name
        self.func_index = cfg.index
        self.num_paths = number_paths(dag)
        # Filled in by repro.analysis.feasibility when path pruning runs:
        # the statically-feasible subset of num_paths (None = not analyzed).
        self.feasible_num_paths = None
        self.dag = dag
        self.optimized = optimize
        if optimize:
            place_increments(dag, _frequency_weights(cfg, dag))
        else:
            canonical_increments(dag)
        self.edge_incs = {}
        self.ret_emits = {}
        self.back_edge_events = {}
        surr_entry_inc = {}
        surr_exit_inc = {}
        for edge in dag.edges:
            if edge.kind == REGULAR:
                if edge.is_chord and edge.inc != 0:
                    self.edge_incs[(edge.src, edge.dst)] = edge.inc
            elif edge.kind == RET_EDGE:
                self.ret_emits[edge.src] = edge.inc if edge.is_chord else 0
            elif edge.kind == SURR_ENTRY:
                surr_entry_inc[edge.back_edge] = edge.inc
            else:  # SURR_EXIT
                surr_exit_inc[edge.back_edge] = edge.inc
        for back_edge in dag.back_edge_set:
            self.back_edge_events[back_edge] = (
                surr_exit_inc[back_edge],
                surr_entry_inc[back_edge],
            )

    # -- queries -------------------------------------------------------------

    def probe_sites(self):
        """Number of instrumentation points this plan places.

        Counts increment probes on regular edges plus the mandatory path-end
        probes (one per ret block, one per back edge) — comparable with the
        per-edge probe count of edge-coverage instrumentation.
        """
        return (
            len(self.edge_incs)
            + len(self.ret_emits)
            + len(self.back_edge_events)
        )

    def regenerate(self, path_id):
        """Decode ``path_id`` back into its DAG edge sequence.

        The Ball-Larus numbering makes the decoding greedy and unique: at
        each node follow the out-edge with the largest ``val`` not exceeding
        the remaining id.  Raises ValueError for an out-of-range id.
        """
        if not 0 <= path_id < self.num_paths:
            raise ValueError(
                "%s: path id %d out of range [0, %d)"
                % (self.func_name, path_id, self.num_paths)
            )
        remaining = path_id
        node = self.dag.nodes[0]
        edges = []
        while node != EXIT:
            chosen = None
            for edge in reversed(self.dag.out_edges[node]):
                if edge.val <= remaining:
                    chosen = edge
                    break
            if chosen is None:  # pragma: no cover - numbering guarantees one
                raise ValueError("stuck decoding path id %d" % path_id)
            remaining -= chosen.val
            edges.append(chosen)
            node = chosen.dst
        return edges

    def regenerate_blocks(self, path_id):
        """Decode ``path_id`` into the block-id sequence it traverses.

        Surrogate prefixes/suffixes are translated back: a path starting
        with ``ENTRY -> v`` surrogate begins at ``v`` (resumption after a
        back edge); a path ending with a ``u -> EXIT`` surrogate ends at
        ``u`` (truncation at a back edge).
        """
        edges = self.regenerate(path_id)
        blocks = []
        first = edges[0]
        blocks.append(first.dst if first.kind == SURR_ENTRY else first.src)
        for edge in edges:
            if edge.kind == SURR_ENTRY:
                continue
            if edge.dst != EXIT:
                blocks.append(edge.dst)
        return blocks


def _frequency_weights(cfg, dag):
    """Static execution-frequency estimates for spanning-tree selection.

    An edge nested ``d`` loops deep is estimated ``10**d`` times more
    frequent; the maximum spanning tree then shelters the hottest edges from
    instrumentation.
    """
    depths = loop_depths(cfg)
    depths[EXIT] = 0
    weights = {}
    for edge in dag.edges:
        d = min(depths.get(edge.src, 0), depths.get(edge.dst, 0))
        weights[edge.index] = 10 ** min(d, 6)
    return weights


def build_program_plans(program, optimize=True):
    """Build a :class:`FunctionPathPlan` for every function of ``program``."""
    return [FunctionPathPlan(func, optimize) for func in program.funcs]
