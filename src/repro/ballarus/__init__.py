"""Ball-Larus efficient path profiling (MICRO '96), adapted for fuzzing.

Public surface:

- :func:`build_dag` — CFG -> acyclic graph with back-edge surrogates;
- :func:`number_paths` — spatially optimal path numbering;
- :func:`place_increments` — spanning-tree probe minimization;
- :class:`FunctionPathPlan` — everything the instrumenter needs, plus path
  regeneration (id -> block sequence);
- :func:`build_program_plans` — plans for a whole program.
"""

from repro.ballarus.dag import Dag, DagEdge, build_dag, ENTRY, EXIT
from repro.ballarus.numbering import enumerate_paths, number_paths
from repro.ballarus.plan import FunctionPathPlan, build_program_plans
from repro.ballarus.spanning import canonical_increments, place_increments

__all__ = [
    "Dag",
    "DagEdge",
    "build_dag",
    "ENTRY",
    "EXIT",
    "number_paths",
    "enumerate_paths",
    "place_increments",
    "canonical_increments",
    "FunctionPathPlan",
    "build_program_plans",
]
