"""Ball-Larus path numbering.

Assigns each DAG edge an increment value ``val`` such that the sum of values
along every ENTRY -> EXIT path is a *distinct* integer in ``{0 .. n-1}``,
where ``n`` is the number of such paths (spatial optimality, Ball & Larus
'96, Sec. 3.2)::

    NumPaths(EXIT) = 1
    NumPaths(v)    = sum over out-edges e_i = (v -> w_i) of NumPaths(w_i)
    Val(e_i)       = sum over j < i of NumPaths(w_j)

Edge order within a node follows :class:`~repro.ballarus.dag.Dag` insertion
order, making the numbering deterministic.
"""

from repro.ballarus.dag import EXIT


def number_paths(dag):
    """Assign ``val`` to every edge of ``dag``; return total path count.

    The total equals ``NumPaths(ENTRY)`` and is at least 1 for any valid
    function.
    """
    num_paths = {EXIT: 1}
    order = dag.topological_order()
    for node in reversed(order):
        if node == EXIT:
            continue
        running = 0
        for edge in dag.out_edges[node]:
            edge.val = running
            running += num_paths[edge.dst]
        if running == 0:
            # A node with no outgoing DAG edges other than EXIT cannot occur:
            # every block either returns (ret edge) or branches (regular or
            # surrogate exit edge).
            raise ValueError("node %d has no outgoing DAG edges" % node)
        num_paths[node] = running
    return num_paths[dag.nodes[0]]


def path_val_sum(dag, edges):
    """Sum of canonical ``val`` along a list of edges (test/debug helper)."""
    return sum(edge.val for edge in edges)


def enumerate_paths(dag, limit=100_000):
    """Exhaustively enumerate ENTRY -> EXIT paths as edge lists.

    Intended for tests and for the path-regeneration cross-checks; raises
    ValueError when the function has more than ``limit`` acyclic paths.
    """
    entry = dag.nodes[0]
    results = []
    stack = [(entry, [])]
    while stack:
        node, prefix = stack.pop()
        if node == EXIT:
            results.append(prefix)
            if len(results) > limit:
                raise ValueError("more than %d acyclic paths" % limit)
            continue
        for edge in reversed(dag.out_edges[node]):
            stack.append((edge.dst, prefix + [edge]))
    return results
