"""CFG -> DAG transformation for Ball-Larus path profiling.

Following Ball & Larus (MICRO '96), a function CFG with loops is turned into
a DAG over which acyclic paths can be enumerated:

- a virtual EXIT node is added; every RET block gets an edge to EXIT;
- every loop back edge ``u -> v`` is removed and replaced by two *surrogate*
  edges ``ENTRY -> v`` and ``u -> EXIT``.  At run time, taking the back edge
  terminates the current acyclic path (as if exiting at ``u``) and starts a
  new one (as if entering at ``v``).

Parallel edges are explicitly supported (a surrogate may coincide with an
existing CFG edge), so edges are first-class :class:`DagEdge` objects rather
than plain pairs.
"""

from repro.cfg.analysis import back_edges

ENTRY = 0
EXIT = -1

# Edge kinds.
REGULAR = "regular"  # a CFG edge that is not a back edge
RET_EDGE = "ret"  # RET block -> EXIT
SURR_ENTRY = "surr-entry"  # ENTRY -> v, surrogate for back edge (u, v)
SURR_EXIT = "surr-exit"  # u -> EXIT, surrogate for back edge (u, v)


class DagEdge:
    """One edge of the acyclic graph.

    ``val`` is the Ball-Larus increment assigned by the numbering pass;
    ``inc`` the (possibly spanning-tree-optimized) run-time increment, and
    ``is_chord`` whether the edge carries instrumentation in the optimized
    placement.  ``back_edge`` is the (u, v) CFG back edge a surrogate stands
    for (None for regular/ret edges).
    """

    __slots__ = ("index", "src", "dst", "kind", "back_edge", "val", "inc", "is_chord")

    def __init__(self, index, src, dst, kind, back_edge=None):
        self.index = index
        self.src = src
        self.dst = dst
        self.kind = kind
        self.back_edge = back_edge
        self.val = 0
        self.inc = 0
        self.is_chord = True

    def __repr__(self):
        return "DagEdge(#%d %d->%d %s val=%d inc=%d%s)" % (
            self.index,
            self.src,
            self.dst,
            self.kind,
            self.val,
            self.inc,
            " chord" if self.is_chord else " tree",
        )


class Dag:
    """The acyclic view of one function CFG.

    ``nodes`` lists block ids (ENTRY first) plus EXIT; ``out_edges`` maps a
    node to its outgoing :class:`DagEdge` objects in deterministic order
    (terminator order, then ret, then surrogates).
    """

    __slots__ = ("cfg", "nodes", "edges", "out_edges", "in_edges", "back_edge_set")

    def __init__(self, cfg, nodes, edges, back_edge_set):
        self.cfg = cfg
        self.nodes = nodes
        self.edges = edges
        self.back_edge_set = back_edge_set
        self.out_edges = {node: [] for node in nodes}
        self.in_edges = {node: [] for node in nodes}
        for edge in edges:
            self.out_edges[edge.src].append(edge)
            self.in_edges[edge.dst].append(edge)

    def topological_order(self):
        """Nodes in a topological order (ENTRY first, EXIT last)."""
        indegree = {node: len(self.in_edges[node]) for node in self.nodes}
        # ENTRY may have surrogate in-edges only conceptually; it never has
        # DAG in-edges because back edges to the entry block cannot occur in
        # lowered MiniC (loop headers are fresh blocks).
        ready = [node for node in self.nodes if indegree[node] == 0]
        order = []
        while ready:
            node = ready.pop()
            order.append(node)
            for edge in self.out_edges[node]:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self.nodes):
            raise ValueError(
                "%s: DAG transform left a cycle (irreducible flow?)" % self.cfg.name
            )
        return order


def build_dag(cfg):
    """Build the Ball-Larus DAG for ``cfg``.

    Raises ValueError if a back edge targets the entry block (cannot happen
    for CFGs produced by the MiniC lowering) or if a cycle survives.
    """
    backs = back_edges(cfg)
    for src, dst in backs:
        if dst == ENTRY:
            raise ValueError("%s: back edge into the entry block" % cfg.name)
    nodes = [block.id for block in cfg.blocks] + [EXIT]
    edges = []

    def add(src, dst, kind, back_edge=None):
        edge = DagEdge(len(edges), src, dst, kind, back_edge)
        edges.append(edge)
        return edge

    for block in cfg.blocks:
        for succ in block.successors():
            if (block.id, succ) not in backs:
                add(block.id, succ, REGULAR)
    for ret_block in cfg.ret_blocks():
        add(ret_block, EXIT, RET_EDGE)
    for src, dst in sorted(backs):
        add(ENTRY, dst, SURR_ENTRY, (src, dst))
        add(src, EXIT, SURR_EXIT, (src, dst))
    dag = Dag(cfg, nodes, edges, backs)
    dag.topological_order()  # raises if cyclic
    return dag
