"""repro — reproduction of "Towards Path-Aware Coverage-Guided Fuzzing" (CGO 2026).

The package rebuilds, in pure Python, every layer of the paper's system:

- :mod:`repro.lang` — MiniC, a small C-like language (lexer, parser, sema).
- :mod:`repro.cfg` — lowering to basic-block control-flow graphs + analyses.
- :mod:`repro.ballarus` — the Ball-Larus efficient path-profiling algorithm.
- :mod:`repro.runtime` — an interpreting VM with an ASan-like memory model.
- :mod:`repro.coverage` — pluggable coverage feedbacks (edge, path, n-gram,
  block, PathAFL-style) over an AFL-style bitmap.
- :mod:`repro.fuzzer` — an AFL++-like greybox fuzzing engine on a virtual
  clock, plus a reduced AFL-like engine for the baselines.
- :mod:`repro.strategies` — the paper's culling and opportunistic exploration
  biasing methods (and the random-culling ablation).
- :mod:`repro.triage` — crash deduplication (stack hashing, ground-truth bugs).
- :mod:`repro.subjects` — an 18-subject synthetic UNIFUZZ-like benchmark suite.
- :mod:`repro.experiments` — runners regenerating every table and figure.
"""

__version__ = "1.0.0"

from repro.lang import compile_source  # noqa: E402

__all__ = ["compile_source", "__version__"]
