"""IR -> Python compiler: the VM's fast execution backend.

The tree-walking interpreter (:mod:`repro.runtime.interpreter`) dispatches
on a tuple per instruction; that dispatch is the hot path of every campaign.
This module compiles each function's tuple IR into *generated Python source*
once, then executes the compiled closures instead:

- registers become Python locals (``r0``, ``r1``, ...), so operand access is
  a fast-local load instead of a list index through a tuple field;
- operators are bound at compile time — each BIN/UN instruction becomes the
  one arithmetic expression it denotes, with a branchless 64-bit wrap
  (``((v + 2**63) & (2**64-1)) - 2**63``) inlined;
- basic blocks are threaded directly: single-predecessor successors are
  inlined after their predecessor's terminator (straight-line chains and
  if/else diamonds compile to straight-line Python), and only join points
  and loop headers go through a binary dispatch tree on the block id;
- coverage probe actions (:mod:`repro.coverage.feedback`) are inlined at
  their edges with their constants folded into the generated code;
- bookkeeping the interpreter pays per step is hoisted: the instruction
  counter and probe accounting live in function-local integers, flushed to
  the shared cells only around calls, traps, and returns (every point where
  another frame or the harness can observe them);
- for pure edge/block instrumentation (only HIT actions), per-probe
  accounting disappears entirely — each HIT increments exactly one coverage
  cell, so ``probe_count``/``probe_cost`` are recovered as
  ``sum(hits.values())`` after the run.

Semantics are *identical* to the interpreter by construction and by test:
the compiled code runs against the same runtime object (:class:`_Rt` is an
:class:`~repro.runtime.interpreter._Exec` subclass, sharing the heap, the
builtins, the trap/trace machinery, and the rare probe kinds), counts
instructions block-for-block the same way, enforces the same budget and
call-depth limits, and produces field-for-field equal
:class:`~repro.runtime.interpreter.ExecutionResult` values — coverage maps,
Ball-Larus path ids, trap sites, stack traces, cmplog operands, and virtual
cost included.  ``tests/test_compiler*.py`` and the ``backend-equivalence``
CI job hold that obligation on every input.

Compiled programs are memoized in-process keyed on the package source
fingerprint (the PR 2 checkpoint fingerprint), the program's IR fingerprint,
the instrumentation tables, and the probe-pruning plan; set
``REPRO_COMPILE_CACHE=DIR`` to also persist generated sources across
processes (CI caches that directory across jobs).
"""

import hashlib
import json
import os
import re
from collections import OrderedDict

from repro.analysis.dataflow import Liveness, solve
from repro.cfg.instructions import (
    BIN,
    BR,
    BUILTIN,
    CALL,
    CONST,
    JMP,
    LOAD,
    MOV,
    OP_ADD,
    OP_AND,
    OP_BNOT,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LNOT,
    OP_LT,
    OP_MOD,
    OP_MUL,
    OP_NE,
    OP_NEG,
    OP_OR,
    OP_SHL,
    OP_SHR,
    OP_SUB,
    OP_XOR,
    RET,
    STORE,
    STR,
    UN,
)
from repro.analysis.foldops import fold_binop, fold_unop
from repro.lang.builtins_spec import BUILTIN_NAMES
from repro.runtime import traps
from repro.runtime.interpreter import (
    ACT_ADD,
    ACT_END,
    ACT_END_RESET,
    ACT_HIT,
    CMPLOG_CAP,
    DEFAULT_CALL_DEPTH,
    DEFAULT_INSTR_BUDGET,
    PROBE_COSTS,
    _Exec,
)
from repro.runtime.interpreter import ExecutionResult
from repro.runtime.memory import MAX_ALLOC
from repro.runtime.traps import Timeout, Trap
from repro.runtime.values import ArrayRef, wrap_int

_U64 = (1 << 64) - 1
_SIGN = 1 << 63

# Inlining guard: forcing deep single-predecessor chains through the
# dispatch loop keeps generated nesting far below CPython's MAXINDENT.
_MAX_INLINE_DEPTH = 22

CACHE_ENV = "REPRO_COMPILE_CACHE"


class _Restart(Exception):
    """Raised by fast-variant code when a run nears the budget.

    The fast variant keeps exact instruction accounting but checks the
    budget only at dispatch labels, returns, and trap sites instead of at
    every block.  ``_n`` grows monotonically, so any exact-mode timeout is
    eventually noticed at one of those points; execution is deterministic,
    so the handler simply re-runs the input under the exact variant, which
    reproduces the interpreter's timeout point (or completion) verbatim.
    The aborted fast run has no observable effects: its state is discarded
    by the reset that precedes the re-run.
    """


class _Rt(_Exec):
    """Shared execution state for compiled functions.

    Subclasses the interpreter's executor so the heap, builtins, trap and
    stack-trace machinery, cmplog harvesting, and the out-of-line probe
    kinds (n-gram, h-path, path pairs) are *the same code* in both
    backends.  The instruction counter moves into a one-element list
    (``_count_cell``) so generated code can flush its local tally through a
    fast alias; the ``_count`` property keeps the builtins' accounting and
    the result construction transparently in sync.
    """

    def __init__(
        self, compiled, program, instrumentation, instr_budget, call_depth_limit, cmplog
    ):
        self._count_cell = [0]
        self._compiled = compiled
        self._busy = False
        _Exec.__init__(
            self, program, instrumentation, instr_budget, call_depth_limit, cmplog
        )
        self._main_index = program.main_index
        # The input array always lands at the same id (the heap is trimmed
        # back to the string pool between runs), so its handle is reusable.
        self._input_ref = ArrayRef(self._heap._readonly_base)

    @property
    def _count(self):
        return self._count_cell[0]

    @_count.setter
    def _count(self, value):
        self._count_cell[0] = value

    def _call(self, func_index, args):
        return self._compiled[func_index](self, *args)

    def _reset(self, compiled, instr_budget, call_depth_limit, cmplog):
        """Restore pristine per-execution state (cheaper than __init__).

        ``_hits`` and ``_cmp_log`` are handed to the previous run's
        ExecutionResult, so they are replaced, never cleared in place.
        """
        self._compiled = compiled
        self._budget = instr_budget
        self._depth_limit = call_depth_limit
        self._cmplog = cmplog
        heap = self._heap
        del heap._arrays[heap._readonly_base :]
        self._count_cell[0] = 0
        self._probe_acc[0] = 0
        self._probe_acc[1] = 0
        self._hits = {}
        self._cmp_log = []
        self._stack = []
        self._ngram_ring = []
        self._last_path_idx = 0x1505
        self._hpath_state = 0x811C9DC5

    def run(self, input_bytes):
        """The interpreter's run() minus the generic-alloc detour."""
        if len(input_bytes) > MAX_ALLOC:  # pragma: no cover - exact fallback
            return _Exec.run(self, input_bytes)
        arrays = self._heap._arrays
        input_ref = ArrayRef(len(arrays))
        arrays.append(list(input_bytes))
        retval, trap, timeout = 0, None, False
        try:
            retval = self._compiled[self._program.main_index](self, input_ref)
        except Trap as caught:
            trap = caught
        except Timeout:
            timeout = True
        return ExecutionResult(
            retval,
            trap,
            timeout,
            self._count_cell[0],
            self._probe_acc[0],
            self._probe_acc[1],
            self._hits,
            self._cmp_log,
        )

    def _rerun(self, compiled, instr_budget, call_depth_limit, cmplog, input_bytes):
        """Fused ``_reset`` + ``run`` — the pooled-runtime hot path.

        One call frame instead of two, clears that would rewrite an
        already-pristine field are skipped, and per-run state feeding the
        result is kept in locals.  Per-execution wrapper cost rivals the
        program body on shallow runs, so every store here shows up in
        execs/sec.
        """
        self._compiled = compiled
        self._budget = instr_budget
        self._depth_limit = call_depth_limit
        self._cmplog = cmplog
        arrays = self._heap._arrays
        base = self._input_ref.array_id
        if len(arrays) > base:
            del arrays[base:]
        count_cell = self._count_cell
        probe_acc = self._probe_acc
        count_cell[0] = 0
        probe_acc[0] = 0
        probe_acc[1] = 0
        hits = self._hits = {}
        cmp_log = self._cmp_log = []
        if self._stack:
            self._stack = []
        if self._ngram_ring:
            self._ngram_ring = []
        self._last_path_idx = 0x1505
        self._hpath_state = 0x811C9DC5
        if len(input_bytes) > MAX_ALLOC:  # pragma: no cover - exact fallback
            return _Exec.run(self, input_bytes)
        arrays.append(list(input_bytes))
        retval, trap, timeout = 0, None, False
        try:
            retval = compiled[self._main_index](self, self._input_ref)
        except Trap as caught:
            trap = caught
        except Timeout:
            timeout = True
        return ExecutionResult(
            retval,
            trap,
            timeout,
            count_cell[0],
            probe_acc[0],
            probe_acc[1],
            hits,
            cmp_log,
        )


def _compile_reconstruct(schedule):
    """Build a closure applying a prune plan's reconstruction schedule.

    The schedule is inverted into a kept-cell -> ((target, coef), ...) index
    so a run only pays for the kept cells it actually touched: absent cells
    contribute zero to every expression, and ``hits.keys() & index`` narrows
    the walk to contributing cells via a C-level set intersection.  On short
    executions that skips the (typically much larger) cold remainder of the
    program.  Returns ``None`` for an empty schedule.
    """
    if not schedule:
        return None
    contrib = {}
    for target, terms in schedule:
        for source, coef in terms:
            contrib.setdefault(source, []).append((target, coef))
    contrib = {cell: tuple(pairs) for cell, pairs in contrib.items()}
    sources = frozenset(contrib)

    def _recon(hits, _contrib=contrib, _sources=sources):
        touched = hits.keys() & _sources
        if not touched:
            return
        acc = {}
        get = acc.get
        for cell in touched:
            count = hits[cell]
            for target, coef in _contrib[cell]:
                acc[target] = get(target, 0) + coef * count
        for target, total in acc.items():
            if total:
                hits[target] = total

    return _recon


class CompiledProgram:
    """A program compiled under one instrumentation (and optional pruning).

    :meth:`execute` mirrors :func:`repro.runtime.interpreter.execute`.  The
    cmplog variant (comparison-operand harvesting inlined at every
    comparison) is generated lazily on first use.
    """

    __slots__ = (
        "program",
        "instrumentation",
        "prune",
        "_key",
        "_fns",
        "_fns_cmplog",
        "_fns_fast",
        "_fns_cmplog_fast",
        "_reconstruct",
        "_derive_probes",
        "_rt",
    )

    def __init__(self, program, instrumentation, prune, key):
        self.program = program
        self.instrumentation = instrumentation
        self.prune = prune
        self._key = key
        self._fns = None
        self._fns_cmplog = None
        self._fns_fast = None
        self._fns_cmplog_fast = None
        self._rt = None
        # After a clean run each dropped probe's count is a signed linear
        # combination of kept cells (see repro.coverage.prune).  The
        # schedule is compiled into one straight-line closure with literal
        # cell indices — interpreting the (target, terms) tuples per
        # execution costs more than many of the pruned probes did.
        self._reconstruct = (
            _compile_reconstruct(prune.reconstruct) if prune is not None else None
        )
        self._derive_probes = _pure_hit(instrumentation)

    def _functions(self, cmplog, fast=False):
        if fast:
            if cmplog:
                if self._fns_cmplog_fast is None:
                    self._fns_cmplog_fast = _load_functions(
                        self.program, self.instrumentation, self.prune,
                        True, self._key, fast=True,
                    )
                return self._fns_cmplog_fast
            if self._fns_fast is None:
                self._fns_fast = _load_functions(
                    self.program, self.instrumentation, self.prune,
                    False, self._key, fast=True,
                )
            return self._fns_fast
        if cmplog:
            if self._fns_cmplog is None:
                self._fns_cmplog = _load_functions(
                    self.program, self.instrumentation, self.prune, True, self._key
                )
            return self._fns_cmplog
        if self._fns is None:
            self._fns = _load_functions(
                self.program, self.instrumentation, self.prune, False, self._key
            )
        return self._fns

    def execute(
        self,
        input_bytes,
        instr_budget=DEFAULT_INSTR_BUDGET,
        call_depth_limit=DEFAULT_CALL_DEPTH,
        cmplog=False,
    ):
        """Run ``main(input_bytes)``; drop-in for the interpreter's execute."""
        # One pooled runtime per compiled program: per-execution state is
        # reset in place instead of reallocated (the _busy guard falls back
        # to a fresh runtime under reentrant execution).
        if cmplog:
            fns = self._functions(True, fast=True)
        else:
            fns = self._fns_fast
            if fns is None:
                fns = self._functions(False, fast=True)
        rt = self._rt
        if rt is None or rt._busy:
            rt = _Rt(
                fns,
                self.program,
                self.instrumentation,
                instr_budget,
                call_depth_limit,
                cmplog,
            )
            self._rt = rt
        rt._busy = True
        try:
            try:
                result = rt._rerun(
                    fns, instr_budget, call_depth_limit, cmplog, input_bytes
                )
                replay = result.timeout or result.instr_count > instr_budget
            except _Restart:
                replay = True
            if replay:
                # The fast run crossed (or may have crossed) the budget:
                # ``_n`` grows monotonically, so ``instr_count`` within the
                # budget proves the exact variant's per-block checks would
                # never have fired, and anything else is replayed — the
                # program is deterministic — under the exact variant to
                # reproduce the interpreter's precise timeout point.
                rt._reset(
                    self._functions(cmplog), instr_budget, call_depth_limit, cmplog
                )
                result = rt.run(input_bytes)
        finally:
            rt._busy = False
        if self._derive_probes:
            # Pure-HIT instrumentation: every probe executed incremented
            # exactly one map cell by one and cost exactly one tick, so the
            # accounting is the map total (computed before reconstruction —
            # pruned probes were genuinely not executed).
            probes = sum(result.hits.values())
            result.probe_count = probes
            result.probe_cost = probes
        if self._reconstruct is not None and result.trap is None and not result.timeout:
            # Complete executions obey flow conservation, so every pruned
            # probe's count is the recorded signed combination of kept
            # cells; partial (trapped / timed-out) executions keep the raw
            # pruned map — the engine never feeds those to the virgin
            # map's novelty merge.
            self._reconstruct(result.hits)
        return result


def execute(
    program,
    input_bytes,
    instrumentation=None,
    instr_budget=DEFAULT_INSTR_BUDGET,
    call_depth_limit=DEFAULT_CALL_DEPTH,
    cmplog=False,
    prune=None,
):
    """Compile (memoized) and run — signature-compatible with the interpreter."""
    return compile_program(program, instrumentation, prune).execute(
        input_bytes,
        instr_budget=instr_budget,
        call_depth_limit=call_depth_limit,
        cmplog=cmplog,
    )


def _pure_hit(instrumentation):
    """True when every probe action in the program is a plain HIT."""
    if instrumentation is None:
        return True
    for tables in (instrumentation.edge_actions, instrumentation.ret_actions):
        for table in tables:
            for acts in table.values():
                for act in acts:
                    if act[0] != ACT_HIT:
                        return False
    for acts in instrumentation.entry_actions:
        for act in acts:
            if act[0] != ACT_HIT:
                return False
    return True


# -- compilation cache ---------------------------------------------------------

_MEMO = OrderedDict()
_MEMO_CAP = 96
_PACKAGE_FP = None


def _package_fingerprint():
    """The PR 2 package-source fingerprint (checkpoint/cache invalidation)."""
    global _PACKAGE_FP
    if _PACKAGE_FP is None:
        try:
            from repro.experiments.runner import source_fingerprint

            _PACKAGE_FP = source_fingerprint()
        except Exception:  # pragma: no cover - fingerprinting is best-effort
            _PACKAGE_FP = "unfingerprinted"
    return _PACKAGE_FP


def program_fingerprint(program):
    """Deterministic digest of a program's IR (blocks, terminators, strings)."""
    sha = hashlib.sha256()
    sha.update(program.source_name.encode("utf-8", "replace"))
    for func in program.funcs:
        sha.update(
            repr(
                (
                    func.name,
                    func.nparams,
                    func.nregs,
                    [(block.instrs, block.term) for block in func.blocks],
                )
            ).encode("utf-8")
        )
    sha.update(repr(program.strings).encode("utf-8", "replace"))
    return sha.hexdigest()[:16]


def _instrumentation_fingerprint(instrumentation):
    if instrumentation is None:
        return "none"
    sha = hashlib.sha256()
    sha.update(
        repr(
            (
                instrumentation.feedback_name,
                instrumentation.map_mask,
                instrumentation.ngram_n,
                bool(instrumentation.pair_paths),
                [sorted(table.items()) for table in instrumentation.edge_actions],
                [sorted(table.items()) for table in instrumentation.ret_actions],
                list(instrumentation.entry_actions),
            )
        ).encode("utf-8")
    )
    return sha.hexdigest()[:16]


def _cache_key(program, instrumentation, prune):
    return "%s-%s-%s-%s" % (
        _package_fingerprint(),
        program_fingerprint(program),
        _instrumentation_fingerprint(instrumentation),
        prune.token if prune is not None else "noprune",
    )


def compile_program(program, instrumentation=None, prune=None):
    """Memoized compilation of ``program`` under ``instrumentation``.

    ``prune`` is an optional :class:`repro.coverage.prune.PrunePlan`; its
    filtered action tables replace the instrumentation's at codegen time
    and its reconstruction pairs are applied after every clean run.
    """
    key = _cache_key(program, instrumentation, prune)
    cached = _MEMO.get(key)
    if cached is not None:
        _MEMO.move_to_end(key)
        return cached
    compiled = CompiledProgram(program, instrumentation, prune, key)
    _MEMO[key] = compiled
    while len(_MEMO) > _MEMO_CAP:
        _MEMO.popitem(last=False)
    return compiled


def clear_cache():
    """Drop every in-process compiled program (tests use this)."""
    _MEMO.clear()


def _disk_cache_path(key, cmplog, fast=False):
    root = os.environ.get(CACHE_ENV)
    if not root:
        return None
    variant = "cmplog" if cmplog else "plain"
    if fast:
        variant += "-fast"
    return os.path.join(root, "%s-%s.json" % (key, variant))


def _load_functions(program, instrumentation, prune, cmplog, key, fast=False):
    """Generate (or load from the disk cache) and exec one variant's sources."""
    path = _disk_cache_path(key, cmplog, fast)
    sources = None
    if path is not None and os.path.exists(path):
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if payload.get("nfuncs") == len(program.funcs):
                sources = payload["sources"]
        except (OSError, ValueError, KeyError):
            sources = None
    if sources is None:
        sources = generate_sources(program, instrumentation, prune, cmplog, fast)
        if path is not None:
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                tmp = path + ".tmp.%d" % os.getpid()
                with open(tmp, "w") as handle:
                    json.dump({"nfuncs": len(program.funcs), "sources": sources}, handle)
                os.replace(tmp, path)
            except OSError:  # pragma: no cover - cache writes are best-effort
                pass
    from repro.lang.builtins_spec import BUILTIN_CODES
    from repro.runtime.interpreter import _BUILTIN_DISPATCH

    namespace = {
        "ArrayRef": ArrayRef,
        "Timeout": Timeout,
        "_Restart": _Restart,
        "traps": traps,
    }
    for code in BUILTIN_CODES.values():
        namespace["_bi%d" % code] = _BUILTIN_DISPATCH[code]
    for index, source in enumerate(sources):
        filename = "<repro-compiled:%s:%s>" % (
            program.source_name,
            program.funcs[index].name,
        )
        exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    return [namespace["_f%d" % func.index] for func in program.funcs]


# -- code generation -----------------------------------------------------------

# Inlining guards.  Callee bodies this small are expanded at their call
# sites (the Python frame push, argument tuple, and counter flushes around
# a real call dwarf the callee's own work); the per-function budget bounds
# generated-code growth, and the per-site depth guard keeps nesting far
# below CPython's MAXINDENT.
_INLINE_MAX_INSTRS = 64
_INLINE_MAX_BLOCKS = 12
_INLINE_BUDGET = 768
_INLINE_LEAF_INSTRS = 24

# Sentinel cont_label for leaf expansions (single-block callees emitted in
# place with no continuation label; see _emit_leaf_call).
_LEAF_CONT = object()

_LIVE = Liveness()


def _is_lit(expr):
    """Whether a generated operand expression is an integer literal."""
    return expr[0] in "-0123456789"


def generate_sources(program, instrumentation, prune=None, cmplog=False, fast=False):
    """Generated Python source text for every function (in index order).

    ``fast`` selects the lazily-budget-checked variant (see
    :class:`_Restart`): exact ``_n`` accounting, but the per-block budget
    comparison moves to dispatch labels, returns, and trap sites, which
    raise ``_Restart`` instead of ``Timeout``.
    """
    derive = _pure_hit(instrumentation)
    # Probe accounting lives in locals _pn/_pk unless it is derivable from
    # the coverage map afterwards (pure-HIT instrumentation).  The flag is
    # program-wide: an inlined callee's probes land in the caller's locals.
    probe_locals = instrumentation is not None and not derive
    return [
        _FunctionEmitter(
            program, func, instrumentation, prune, cmplog, derive, probe_locals, fast
        ).emit()
        for func in program.funcs
    ]


def _action_tables(instrumentation, prune, func_index):
    """(edge actions, ret actions, entry actions) honouring the prune plan."""
    if instrumentation is None:
        return {}, {}, ()
    if prune is not None:
        return (
            prune.edge_actions[func_index],
            prune.ret_actions[func_index],
            prune.entry_actions[func_index],
        )
    return (
        instrumentation.edge_actions[func_index],
        instrumentation.ret_actions[func_index],
        instrumentation.entry_actions[func_index],
    )


class _FunctionEmitter:
    """Emits one compiled function, expanding small callees at call sites.

    Emission runs under a *context*: the root function, or an inlined callee
    at one call site.  A context carries the register-name prefix (``r`` for
    the root, ``i<site>_r`` for the callee's renamed registers), the path
    register name, the action tables, and the label base mapping the
    callee's block ids into the function's global dispatch-label space.
    Inlined calls keep the exact observable call protocol — depth check,
    stack frame push/pop, per-block accounting — minus the Python frame.

    On top of the structural translation the emitter runs a per-path
    abstract state while generating code:

    - ``env``/``pend``: registers holding a known constant, whose defining
      store has not been emitted yet.  Reads fold to literals; compares and
      arithmetic over two known constants fold at compile time (sharing
      ``fold_binop``'s exact wrap semantics); stores materialize only when
      control reaches a dispatch label whose block may read them (per the
      :class:`~repro.analysis.dataflow.Liveness` solution) — values dead at
      every observation point are never written at all.  Registers are
      unobservable in traps and timeouts, so trap paths never materialize.
    - ``kind``: registers proven int (arithmetic results, passed checks) or
      proven array (alloc/string results, passed checks).  Proofs elide the
      interpreter's dynamic class/readonly checks and the TypeError guards;
      a statically failing check compiles to its unconditional trap.

    State is forked at branches, threaded through inlined successors, and
    reset at dispatch labels (whose predecessors are unknown).
    """

    def __init__(
        self,
        program,
        func,
        instrumentation,
        prune,
        cmplog,
        derive_probes,
        probe_locals,
        fast=False,
    ):
        self.program = program
        self.root = func
        self.instrumentation = instrumentation
        self.prune = prune
        self.cmplog = cmplog
        self.fast = fast
        self.derive_probes = derive_probes
        self.mask = instrumentation.map_mask if instrumentation is not None else 0
        self.pair_paths = bool(
            instrumentation is not None and instrumentation.pair_paths
        )
        self.probe_locals = probe_locals
        # Current emission context (swapped while expanding an inline site).
        self.func = func
        self.fname = repr(func.name)
        self.rp = "r"
        self.pr = "_pr"
        self.label_base = 0
        self.cont_label = None
        self.ret_reg = None
        self.inline_site = None
        self.edge_acts, self.ret_acts, self.entry_acts = _action_tables(
            instrumentation, prune, func.index
        )
        preds = func.predecessors()
        self.entry_has_preds = bool(preds.get(0))
        # Join points and the entry go through the dispatch loop; everything
        # with a unique predecessor is inlined at its one reference site.
        self.labels = {0}
        self.labels.update(b for b, ps in preds.items() if len(ps) >= 2)
        # label -> ("block", ctx, callee_block) | ("cont", block, index) for
        # labels that belong to inline sites rather than root blocks.
        self.label_info = {}
        self._next_label = len(func.blocks)
        self._next_site = 0
        self._inline_spent = 0
        self._leaf_active = set()
        self._leaf_returned = False
        self.const_lines = []
        self._const_count = 0
        # Per-path abstract state (see class docstring).
        self.env = {}
        self.pend = set()
        self.kind = {}
        self.buf = {}
        self.prv = None
        self._dead = False
        self._live_cache = {}

    # -- small helpers ----------------------------------------------------

    def _r(self, index):
        return "%s%d" % (self.rp, index)

    def _const(self, value):
        name = "_k%d_%d" % (self.root.index, self._const_count)
        self._const_count += 1
        self.const_lines.append("%s = %r" % (name, value))
        return name

    def _wrap_expr(self, expr):
        """Branchless signed-64-bit wrap of ``expr`` (== values.wrap_int)."""
        return "((%s + %d) & %d) - %d" % (expr, _SIGN, _U64, _SIGN)

    def _flush_lines(self, ind, zero=False):
        """Sync local counters to the shared cells (observation points)."""
        lines = [ind + "_ic[0] = _n"]
        if self.probe_locals:
            lines.append(ind + "_pa[0] += _pn")
            lines.append(ind + "_pa[1] += _pk")
            if zero:
                lines.append(ind + "_pn = 0")
                lines.append(ind + "_pk = 0")
        return lines

    def _emit_trap(self, out, ind, kind, line, detail_expr):
        out.extend(self._flush_lines(ind))
        out.append(
            ind
            + "rt._trap(traps.%s, %s, %d, %s)" % (kind, self.fname, line, detail_expr)
        )

    def _static_trap(self, out, ind, kind, line, detail_expr):
        """This point traps on every execution that reaches it: emit the
        trap unconditionally and mark the rest of the block dead (its code
        would be unreachable, and folded operands could make it
        syntactically meaningless)."""
        self._emit_trap(out, ind, kind, line, detail_expr)
        self._dead = True

    def _emit_hit(self, out, ind, idx_expr):
        # dict.get beats try/except here on both fresh and repeated cells:
        # a raised KeyError costs ~4x a miss, and fuzz executions are
        # dominated by shallow runs where every touched cell is fresh.
        if idx_expr.isdigit() or idx_expr.isidentifier():
            out.append(
                ind + "_hits[%s] = _hits.get(%s, 0) + 1" % (idx_expr, idx_expr)
            )
        else:
            out.append(ind + "_hx = %s" % idx_expr)
            out.append(ind + "_hits[_hx] = _hits.get(_hx, 0) + 1")

    # -- per-path abstract state ------------------------------------------

    def _live(self):
        """Liveness solution for the current context's function (cached)."""
        result = self._live_cache.get(self.func.index)
        if result is None:
            result = solve(self.func, _LIVE)
            self._live_cache[self.func.index] = result
        return result

    def _live_after(self, block_id, index):
        """Registers read after instruction ``index`` of ``block_id``."""
        block = self.func.blocks[block_id]
        live = _LIVE.transfer_term(block.term, self._live().exit[block_id])
        for j in range(len(block.instrs) - 1, index, -1):
            live = _LIVE.transfer_instr(block.instrs[j], live)
        return live

    def _reset_state(self):
        self.env = {}
        self.pend = set()
        self.kind = {}
        self.buf = {}
        # Known value of the path register on this path (None = dynamic).
        self.prv = None

    def _use(self, index):
        name = self._r(index)
        value = self.env.get(name)
        return name if value is None else repr(value)

    def _setc(self, index, value):
        name = self._r(index)
        self.env[name] = value
        self.pend.add(name)
        self.kind[name] = "int"
        self.buf.pop(name, None)

    def _def(self, index, kind=None):
        name = self._r(index)
        self.env.pop(name, None)
        self.pend.discard(name)
        if kind is None:
            self.kind.pop(name, None)
        else:
            self.kind[name] = kind
        self.buf.pop(name, None)
        return name

    def _buffer(self, out, ind, reg):
        """Local holding ``reg``'s backing list, binding it on first use.

        Sound because a heap slot is never replaced: ``alloc`` appends,
        ``copy``/``fill``/STORE mutate the list in place, and nothing —
        including calls — rebinds an existing array id.  The binding dies
        with the register (``_def``/``_setc``) and forks with the rest of
        the per-path abstract state at branches."""
        name = self._r(reg)
        local = self.buf.get(name)
        if local is None:
            local = "_b" + name
            out.append(ind + "%s = _arrays[%s.array_id]" % (local, name))
            self.buf[name] = local
        return local

    def _materialize(self, out, ind, need):
        """Emit deferred constant stores for the registers in ``need``."""
        for name in sorted(self.pend & need):
            out.append(ind + "%s = %d" % (name, self.env[name]))
        self.pend -= need

    # -- probe actions ----------------------------------------------------

    def _emit_actions(self, acts, out, ind):
        """Inline a tuple of probe actions (the VM's edge-transition work)."""
        if self.probe_locals:
            count = sum(1 for act in acts if act[0] <= ACT_END)
            cost = sum(PROBE_COSTS[act[0]] for act in acts if act[0] <= ACT_END)
            if count:
                out.append(ind + "_pn += %d" % count)
                out.append(ind + "_pk += %d" % cost)
        for act in acts:
            kind = act[0]
            if kind == ACT_HIT:
                self._emit_hit(out, ind, "%d" % act[1])
            elif kind == ACT_ADD:
                out.append(ind + "%s += %d" % (self.pr, act[1]))
                if self.prv is not None:
                    self.prv += act[1]
            elif kind == ACT_END_RESET:
                x = self._emit_path_idx(out, ind, act[1], act[3])
                self._emit_hit(out, ind, x)
                out.append(ind + "%s = %d" % (self.pr, act[2]))
                self.prv = act[2]
                self._emit_pair_hit(out, ind, x)
            elif kind == ACT_END:
                x = self._emit_path_idx(out, ind, act[1], act[2])
                self._emit_hit(out, ind, x)
                self._emit_pair_hit(out, ind, x)
            else:
                # Rare kinds (n-gram, h-path): the interpreter's out-of-line
                # handler, verbatim — it updates the shared accounting, so
                # flush-and-zero the pending local tallies first.
                if self.probe_locals:
                    out.append(ind + "_pa[0] += _pn")
                    out.append(ind + "_pa[1] += _pk")
                    out.append(ind + "_pn = 0")
                    out.append(ind + "_pk = 0")
                name = self._const(act)
                out.append(
                    ind
                    + "%s = rt._run_one_action(%s, %s, %d)"
                    % (self.pr, name, self.pr, self.mask)
                )
                self.prv = None

    def _emit_path_idx(self, out, ind, add, salt):
        """The map index ``((pr + add) ^ salt) & mask`` — folded to a
        literal when the path register's value is known on this path (the
        common case on shallow runs, where no dispatched label has wiped
        the abstract state)."""
        if self.prv is not None:
            return "%d" % (((self.prv + add) ^ salt) & self.mask)
        out.append(
            ind + "_x = ((%s + %d) ^ %d) & %d" % (self.pr, add, salt, self.mask)
        )
        return "_x"

    def _emit_pair_hit(self, out, ind, x):
        if not self.pair_paths:
            return
        out.append(
            ind + "_y = ((rt._last_path_idx * 2654435761) ^ %s) & %d" % (x, self.mask)
        )
        self._emit_hit(out, ind, "_y")
        out.append(ind + "rt._last_path_idx = %s" % x)

    def _uses_pathreg(self):
        """Whether the current context's actions touch the path register."""
        for table in (self.edge_acts, self.ret_acts):
            for acts in table.values():
                for act in acts:
                    if act[0] != ACT_HIT:
                        return True
        return False

    # -- instructions -----------------------------------------------------

    def _emit_instr(self, ins, out, ind):
        op = ins[0]
        if op == CONST:
            self._setc(ins[1], ins[2])
        elif op == MOV:
            src = self._r(ins[2])
            if src in self.env:
                self._setc(ins[1], self.env[src])
            else:
                kind = self.kind.get(src)
                out.append(ind + "%s = %s" % (self._def(ins[1], kind), src))
        elif op == BIN:
            self._emit_bin(ins, out, ind)
        elif op == UN:
            self._emit_un(ins, out, ind)
        elif op == LOAD:
            self._emit_load(ins, out, ind)
        elif op == STORE:
            self._emit_store(ins, out, ind)
        elif op == CALL:
            dst, func_index, args, line = ins[1], ins[2], ins[3], ins[4]
            out.append(ind + "if len(_stack) + 1 >= _dl:")
            self._emit_trap(
                out, ind + "    ", "STACK_OVERFLOW", line, '"call depth exceeded"'
            )
            out.append(ind + "_stack.append((%s, %d))" % (self.fname, line))
            out.extend(self._flush_lines(ind, zero=True))
            call_args = "".join(", " + self._use(reg) for reg in args)
            out.append(
                ind + "%s = _fns[%d](rt%s)" % (self._def(dst), func_index, call_args)
            )
            out.append(ind + "_n = _ic[0]")
            out.append(ind + "_stack.pop()")
        elif op == BUILTIN:
            dst, code, args, line = ins[1], ins[2], ins[3], ins[4]
            inline = self._BUILTIN_INLINE.get(BUILTIN_NAMES[code])
            if inline is not None:
                inline(self, out, ind, dst, args, line)
                return
            out.extend(self._flush_lines(ind, zero=True))
            arg_list = ", ".join(self._use(reg) for reg in args)
            out.append(
                ind
                + "%s = _bi%d(rt, [%s], %s, %d)"
                % (self._def(dst), code, arg_list, self.fname, line)
            )
            out.append(ind + "_n = _ic[0]")
        else:  # STR
            out.append(
                ind + "%s = ArrayRef(%d, True)" % (self._def(ins[1], "sarr"), ins[2])
            )

    _CMP_OPS = {OP_LT: "<", OP_LE: "<=", OP_GT: ">", OP_GE: ">="}
    _BIT_OPS = {OP_AND: "&", OP_OR: "|", OP_XOR: "^"}

    def _emit_bin(self, ins, out, ind):
        binop, dst, a, b, line = ins[1], ins[2], ins[3], ins[4], ins[5]
        ra, rb = self._use(a), self._use(b)
        va = self.env.get(self._r(a))
        vb = self.env.get(self._r(b))
        log_cmp = self.cmplog and binop in (OP_LT, OP_LE, OP_GT, OP_GE, OP_EQ, OP_NE)
        # Statically trapping forms first: the interpreter checks the
        # divisor/shift operand before touching the other one, so a constant
        # bad operand traps no matter what the left side holds.
        if binop in (OP_DIV, OP_MOD) and vb == 0:
            detail = '"division by zero"' if binop == OP_DIV else '"modulo by zero"'
            self._static_trap(out, ind, "DIV_BY_ZERO", line, detail)
            return
        if binop in (OP_SHL, OP_SHR) and vb is not None and not 0 <= vb <= 63:
            self._static_trap(out, ind, "SHIFT_RANGE", line, repr("shift by %d" % vb))
            return
        if va is not None and vb is not None:
            if binop in (OP_DIV, OP_MOD):
                q = va // vb if (va >= 0) == (vb >= 0) else -(va // -vb)
                value = wrap_int(q) if binop == OP_DIV else wrap_int(va - q * vb)
            else:
                value = fold_binop(binop, va, vb)
            if log_cmp:
                out.append(ind + "if len(_cl) < %d:" % CMPLOG_CAP)
                out.append(ind + "    _cl.append((%d, %d))" % (va, vb))
            self._setc(dst, value)
            return
        safe = (
            self.kind.get(self._r(a)) == "int" and self.kind.get(self._r(b)) == "int"
        )
        rd = self._def(dst, "int")
        target = "_w" if log_cmp else rd
        if binop in (OP_EQ, OP_NE):
            cmp_op = "==" if binop == OP_EQ else "!="
            out.append(ind + "%s = 1 if %s %s %s else 0" % (target, ra, cmp_op, rb))
            if log_cmp:
                self._emit_cmplog(out, ind, ra, rb, rd)
            return
        inner = ind
        if not safe:
            out.append(ind + "try:")
            inner = ind + "    "
        if binop in self._CMP_OPS:
            out.append(
                inner
                + "%s = 1 if %s %s %s else 0" % (target, ra, self._CMP_OPS[binop], rb)
            )
        elif binop in (OP_ADD, OP_SUB):
            # One constant operand folds into the wrap bias; the add/sub and
            # the bias addition collapse into a single +constant.
            if vb is not None:
                bias = _SIGN + vb if binop == OP_ADD else _SIGN - vb
                out.append(
                    inner + "%s = ((%s + %d) & %d) - %d" % (rd, ra, bias, _U64, _SIGN)
                )
            elif va is not None and binop == OP_ADD:
                out.append(
                    inner
                    + "%s = ((%s + %d) & %d) - %d" % (rd, rb, _SIGN + va, _U64, _SIGN)
                )
            elif va is not None:
                out.append(
                    inner
                    + "%s = ((%d - %s) & %d) - %d" % (rd, _SIGN + va, rb, _U64, _SIGN)
                )
            else:
                op_ch = "+" if binop == OP_ADD else "-"
                out.append(
                    inner
                    + "%s = %s" % (rd, self._wrap_expr("%s %s %s" % (ra, op_ch, rb)))
                )
        elif binop == OP_MUL:
            out.append(inner + "%s = %s" % (rd, self._wrap_expr("%s * %s" % (ra, rb))))
        elif binop in self._BIT_OPS:
            out.append(inner + "%s = %s %s %s" % (rd, ra, self._BIT_OPS[binop], rb))
        elif binop in (OP_DIV, OP_MOD):
            # C-truncating division without abs() calls: floor-div equals
            # truncation when the signs agree; otherwise negate the
            # floor-div against the negated divisor.  A constant divisor
            # fixes its sign, so the agreement test collapses.
            if vb is None:
                out.append(inner + "if %s == 0:" % rb)
                detail = (
                    '"division by zero"' if binop == OP_DIV else '"modulo by zero"'
                )
                self._emit_trap(out, inner + "    ", "DIV_BY_ZERO", line, detail)
                out.append(
                    inner
                    + "_w = %s // %s if (%s >= 0) == (%s >= 0) else -(%s // -%s)"
                    % (ra, rb, ra, rb, ra, rb)
                )
            elif vb > 0:
                out.append(
                    inner
                    + "_w = %s // %d if %s >= 0 else -(%s // %d)" % (ra, vb, ra, ra, -vb)
                )
            else:
                out.append(
                    inner
                    + "_w = %s // %d if %s < 0 else -(%s // %d)" % (ra, vb, ra, ra, -vb)
                )
            if binop == OP_DIV:
                out.append(inner + "%s = %s" % (rd, self._wrap_expr("_w")))
            else:
                out.append(
                    inner + "%s = %s" % (rd, self._wrap_expr("%s - _w * %s" % (ra, rb)))
                )
        else:  # OP_SHL / OP_SHR
            if vb is None:
                out.append(inner + "if %s < 0 or %s > 63:" % (rb, rb))
                self._emit_trap(
                    out, inner + "    ", "SHIFT_RANGE", line, '"shift by %%d" %% %s' % rb
                )
            if binop == OP_SHL:
                out.append(
                    inner + "%s = %s" % (rd, self._wrap_expr("(%s << %s)" % (ra, rb)))
                )
            else:
                out.append(inner + "%s = %s >> %s" % (rd, ra, rb))
        if not safe:
            out.append(ind + "except TypeError:")
            self._emit_trap(
                out, ind + "    ", "TYPE_CONFUSION", line, '"array used as integer"'
            )
        if log_cmp:
            self._emit_cmplog(out, ind, ra, rb, rd)

    def _emit_cmplog(self, out, ind, ra, rb, rd):
        # Matches the interpreter: operands logged after the comparison,
        # before the destination register (which may alias an operand) is
        # overwritten with the result held in _w.
        out.append(ind + "if len(_cl) < %d:" % CMPLOG_CAP)
        out.append(ind + "    _cl.append((%s, %s))" % (ra, rb))
        out.append(ind + "%s = _w" % rd)

    def _emit_un(self, ins, out, ind):
        unop, dst, a = ins[1], ins[2], ins[3]
        ra = self._use(a)
        va = self.env.get(self._r(a))
        if va is not None:
            self._setc(dst, fold_unop(unop, va))
            return
        safe = self.kind.get(self._r(a)) == "int"
        rd = self._def(dst, "int")
        if unop == OP_LNOT:
            out.append(ind + "%s = 1 if %s == 0 else 0" % (rd, ra))
            return
        inner = ind
        if not safe:
            out.append(ind + "try:")
            inner = ind + "    "
        if unop == OP_NEG:
            out.append(inner + "%s = %s" % (rd, self._wrap_expr("-%s" % ra)))
        else:  # OP_BNOT
            out.append(inner + "%s = %s" % (rd, self._wrap_expr("~%s" % ra)))
        if not safe:
            out.append(ind + "except TypeError:")
            self._emit_trap(
                out, ind + "    ", "TYPE_CONFUSION", 0, '"array in arithmetic"'
            )

    def _emit_load(self, ins, out, ind):
        dst, arr, idx, line = ins[1], ins[2], ins[3], ins[4]
        if not self._check_array(out, ind, arr, line, '"indexing a non-array"'):
            return
        buf = self._buffer(out, ind, arr)
        if not self._emit_index_check(out, ind, idx, line, "OOB_READ", buf):
            return
        idx_expr = self._use(idx)
        out.append(ind + "%s = %s[%s]" % (self._def(dst), buf, idx_expr))

    def _emit_store(self, ins, out, ind):
        arr, idx, src, line = ins[1], ins[2], ins[3], ins[4]
        if not self._check_array(out, ind, arr, line, '"indexing a non-array"'):
            return
        name = self._r(arr)
        k = self.kind.get(name)
        if k == "sarr":
            self._static_trap(out, ind, "READONLY_WRITE", line, '"write to constant"')
            return
        if k != "warr":
            out.append(ind + "if %s.readonly or %s.array_id < _rb:" % (name, name))
            self._emit_trap(
                out, ind + "    ", "READONLY_WRITE", line, '"write to constant"'
            )
        buf = self._buffer(out, ind, arr)
        if not self._emit_index_check(out, ind, idx, line, "OOB_WRITE", buf):
            return
        out.append(ind + "%s[%s] = %s" % (buf, self._use(idx), self._use(src)))

    def _emit_index_check(self, out, ind, idx, line, trap_kind, buf="_s"):
        """Bounds (and, unless provably int, class) check for an index."""
        iv = self.env.get(self._r(idx))
        if iv is not None:
            detail = '"index %d of %%d" %% len(%s)' % (iv, buf)
            if iv < 0:
                self._static_trap(out, ind, trap_kind, line, detail)
                return False
            out.append(ind + "if %d >= len(%s):" % (iv, buf))
            self._emit_trap(out, ind + "    ", trap_kind, line, detail)
            return True
        name = self._r(idx)
        if self.kind.get(name) == "int":
            out.append(ind + "if %s < 0 or %s >= len(%s):" % (name, name, buf))
        else:
            out.append(
                ind
                + "if %s.__class__ is ArrayRef or %s < 0 or %s >= len(%s):"
                % (name, name, name, buf)
            )
        self._emit_trap(
            out,
            ind + "    ",
            trap_kind,
            line,
            '"index %%r of %%d" %% (%s, len(%s))' % (name, buf),
        )
        self.kind[name] = "int"
        return True

    # -- inline builtins ---------------------------------------------------
    # Each mirrors the corresponding _Exec._bi_* method exactly: same check
    # order, same trap kinds and details, same virtual-time charges (held in
    # the local counter; every trap path flushes first, so the shared cell
    # is current at each observation point).  copy/fill/trap stay on the
    # out-of-line dispatch — they are rare and mutation-heavy.

    def _check_array(self, out, ind, reg, line, detail='"expected an array"'):
        name = self._r(reg)
        k = self.kind.get(name)
        if k in ("arr", "warr", "sarr"):
            return True
        if k == "int":
            self._static_trap(out, ind, "TYPE_CONFUSION", line, detail)
            return False
        out.append(ind + "if %s.__class__ is not ArrayRef:" % name)
        self._emit_trap(out, ind + "    ", "TYPE_CONFUSION", line, detail)
        self.kind[name] = "arr"
        return True

    def _check_int(self, out, ind, reg, line):
        name = self._r(reg)
        k = self.kind.get(name)
        if k == "int":
            return True
        if k is not None:
            self._static_trap(
                out, ind, "TYPE_CONFUSION", line, '"expected an integer"'
            )
            return False
        out.append(ind + "if %s.__class__ is ArrayRef:" % name)
        self._emit_trap(
            out, ind + "    ", "TYPE_CONFUSION", line, '"expected an integer"'
        )
        self.kind[name] = "int"
        return True

    def _inline_len(self, out, ind, dst, a, line):
        if not self._check_array(out, ind, a[0], line):
            return
        buf = self._buffer(out, ind, a[0])
        out.append(ind + "%s = len(%s)" % (self._def(dst, "int"), buf))

    def _inline_abs(self, out, ind, dst, a, line):
        va = self.env.get(self._r(a[0]))
        if va is not None:
            self._setc(dst, wrap_int(abs(va)))
            return
        if not self._check_int(out, ind, a[0], line):
            return
        out.append(
            ind
            + "%s = %s"
            % (self._def(dst, "int"), self._wrap_expr("_abs(%s)" % self._r(a[0])))
        )

    def _inline_min(self, out, ind, dst, a, line):
        va = self.env.get(self._r(a[0]))
        vb = self.env.get(self._r(a[1]))
        if va is not None and vb is not None:
            self._setc(dst, va if va <= vb else vb)
            return
        if not self._check_int(out, ind, a[0], line):
            return
        if not self._check_int(out, ind, a[1], line):
            return
        ea, eb = self._use(a[0]), self._use(a[1])
        out.append(
            ind + "%s = %s if %s <= %s else %s" % (self._def(dst, "int"), ea, ea, eb, eb)
        )

    def _inline_max(self, out, ind, dst, a, line):
        va = self.env.get(self._r(a[0]))
        vb = self.env.get(self._r(a[1]))
        if va is not None and vb is not None:
            self._setc(dst, va if va >= vb else vb)
            return
        if not self._check_int(out, ind, a[0], line):
            return
        if not self._check_int(out, ind, a[1], line):
            return
        ea, eb = self._use(a[0]), self._use(a[1])
        out.append(
            ind + "%s = %s if %s >= %s else %s" % (self._def(dst, "int"), ea, ea, eb, eb)
        )

    def _inline_alloc(self, out, ind, dst, a, line):
        if not self._check_int(out, ind, a[0], line):
            return
        expr = self._use(a[0])
        out.append(ind + "_a = _alloc(%s)" % expr)
        out.append(ind + "if _a is None:")
        self._emit_trap(
            out, ind + "    ", "BAD_ALLOC", line, '"alloc(%%d)" %% %s' % expr
        )
        # size is valid (>= 0) past the None check, so max(size, 0) == size.
        out.append(ind + "_n += %s >> 4" % expr)
        out.append(ind + "%s = _a" % self._def(dst, "warr"))

    def _inline_memcmp(self, out, ind, dst, a, line):
        for reg, check in (
            (a[0], self._check_array),
            (a[1], self._check_int),
            (a[2], self._check_array),
            (a[3], self._check_int),
            (a[4], self._check_int),
        ):
            if not check(out, ind, reg, line):
                return
        aoff, boff, n = self._use(a[1]), self._use(a[3]), self._use(a[4])
        buf_a = self._buffer(out, ind, a[0])
        terms = []
        if not (_is_lit(aoff) and int(aoff) >= 0):
            terms.append("%s < 0" % aoff)
        if not (_is_lit(n) and int(n) >= 0):
            terms.append("%s < 0" % n)
        terms.append("%s + %s > len(%s)" % (aoff, n, buf_a))
        out.append(ind + "if %s:" % " or ".join(terms))
        self._emit_trap(
            out,
            ind + "    ",
            "OOB_READ",
            line,
            '"range [%%d, %%d) of %%d" %% (%s, %s + %s, len(%s))'
            % (aoff, aoff, n, buf_a),
        )
        # n >= 0 is established by the first window check.
        buf_b = self._buffer(out, ind, a[2])
        terms = []
        if not (_is_lit(boff) and int(boff) >= 0):
            terms.append("%s < 0" % boff)
        terms.append("%s + %s > len(%s)" % (boff, n, buf_b))
        out.append(ind + "if %s:" % " or ".join(terms))
        self._emit_trap(
            out,
            ind + "    ",
            "OOB_READ",
            line,
            '"range [%%d, %%d) of %%d" %% (%s, %s + %s, len(%s))'
            % (boff, boff, n, buf_b),
        )
        out.append(ind + "_n += %s" % n)
        out.append(ind + "_s = %s[%s : %s + %s]" % (buf_a, aoff, aoff, n))
        out.append(ind + "_t = %s[%s : %s + %s]" % (buf_b, boff, boff, n))
        if self.cmplog:
            out.append(ind + "if len(_cl) < %d:" % CMPLOG_CAP)
            out.append(
                ind + "    _cl.append((bytes(v & 255 for v in _s),"
                " bytes(v & 255 for v in _t)))"
            )
        out.append(ind + "%s = 0 if _s == _t else 1" % self._def(dst, "int"))

    def _inline_read(self, out, ind, dst, a, line, width, big_endian):
        if not self._check_array(out, ind, a[0], line):
            return
        if not self._check_int(out, ind, a[1], line):
            return
        off = self._use(a[1])
        buf = self._buffer(out, ind, a[0])
        lit = _is_lit(off) and int(off) >= 0
        if lit:
            out.append(ind + "if %d > len(%s):" % (int(off) + width, buf))
        else:
            out.append(
                ind + "if %s < 0 or %s + %d > len(%s):" % (off, off, width, buf)
            )
        self._emit_trap(
            out,
            ind + "    ",
            "OOB_READ",
            line,
            '"range [%%d, %%d) of %%d" %% (%s, %s + %d, len(%s))'
            % (off, off, width, buf),
        )
        parts = []
        for j in range(width):
            shift = 8 * (width - 1 - j) if big_endian else 8 * j
            if lit:
                cell = "%s[%d]" % (buf, int(off) + j)
            else:
                cell = "%s[%s]" % (buf, off) if j == 0 else "%s[%s + %d]" % (buf, off, j)
            if shift:
                parts.append("((%s & 255) << %d)" % (cell, shift))
            else:
                parts.append("(%s & 255)" % cell)
        out.append(ind + "%s = %s" % (self._def(dst, "int"), " | ".join(parts)))

    def _inline_read16(self, out, ind, dst, a, line):
        self._inline_read(out, ind, dst, a, line, 2, True)

    def _inline_read32(self, out, ind, dst, a, line):
        self._inline_read(out, ind, dst, a, line, 4, True)

    def _inline_read16le(self, out, ind, dst, a, line):
        self._inline_read(out, ind, dst, a, line, 2, False)

    def _inline_read32le(self, out, ind, dst, a, line):
        self._inline_read(out, ind, dst, a, line, 4, False)

    _BUILTIN_INLINE = {
        "len": _inline_len,
        "abs": _inline_abs,
        "min": _inline_min,
        "max": _inline_max,
        "alloc": _inline_alloc,
        "memcmp": _inline_memcmp,
        "read16": _inline_read16,
        "read32": _inline_read32,
        "read16le": _inline_read16le,
        "read32le": _inline_read32le,
    }

    # -- inlined IR calls --------------------------------------------------

    def _enter_inline(self, callee, site, base, cont, ret_reg):
        saved = (
            self.func,
            self.fname,
            self.rp,
            self.pr,
            self.label_base,
            self.cont_label,
            self.ret_reg,
            self.inline_site,
            self.edge_acts,
            self.ret_acts,
            self.entry_acts,
            self.env,
            self.pend,
            self.kind,
            self.buf,
            self.prv,
        )
        self.func = callee
        self.fname = repr(callee.name)
        self.rp = "i%d_r" % site
        self.pr = "_q%d" % site
        self.label_base = base
        self.cont_label = cont
        self.ret_reg = ret_reg
        self.inline_site = site
        self.edge_acts, self.ret_acts, self.entry_acts = _action_tables(
            self.instrumentation, self.prune, callee.index
        )
        self._reset_state()
        return saved

    def _restore(self, saved):
        (
            self.func,
            self.fname,
            self.rp,
            self.pr,
            self.label_base,
            self.cont_label,
            self.ret_reg,
            self.inline_site,
            self.edge_acts,
            self.ret_acts,
            self.entry_acts,
            self.env,
            self.pend,
            self.kind,
            self.buf,
            self.prv,
        ) = saved

    def _inlinable(self, ins):
        """Whether this CALL should be expanded at the site (root ctx only)."""
        if self.inline_site is not None:
            return False
        callee = self.program.funcs[ins[2]]
        size = sum(len(block.instrs) for block in callee.blocks)
        if size > _INLINE_MAX_INSTRS or len(callee.blocks) > _INLINE_MAX_BLOCKS:
            return False
        return self._inline_spent + size <= _INLINE_BUDGET

    def _leaf_inlinable(self, ins):
        """Whether this CALL is a leaf expansion: a single straight-line
        RET block small enough that the call protocol outweighs the body.

        Unlike :meth:`_inlinable`, this works in ANY context (including
        inside an already-inlined callee) because the expansion needs no
        continuation label — the caller's emission simply continues after
        it.  ``_leaf_active`` breaks self-recursive chains."""
        if ins[2] in self._leaf_active:
            return False
        callee = self.program.funcs[ins[2]]
        if len(callee.blocks) != 1:
            return False
        block = callee.blocks[0]
        return block.term[0] == RET and len(block.instrs) <= _INLINE_LEAF_INSTRS

    def _emit_leaf_call(self, ins, out, depth):
        """Expand a single-block callee in place, at any inline depth.

        Protocol identical to a real call (depth check, stack frame,
        instruction accounting, entry/RET probe actions, traps under the
        callee's name) minus the Python frame and counter flushes.  The
        callee's RET assigns the destination register and emission falls
        through to the rest of the caller's block with its abstract state
        intact."""
        ind = "    " * depth
        dst, func_index, args, line = ins[1], ins[2], ins[3], ins[4]
        callee = self.program.funcs[func_index]
        site = self._next_site
        self._next_site += 1
        out.append(ind + "if len(_stack) + 1 >= _dl:")
        self._emit_trap(
            out, ind + "    ", "STACK_OVERFLOW", line, '"call depth exceeded"'
        )
        out.append(ind + "_stack.append((%s, %d))" % (self.fname, line))
        arg_exprs = [self._use(reg) for reg in args]
        arg_kinds = [self.kind.get(self._r(reg)) for reg in args]
        ret_name = self._def(dst)
        saved = self._enter_inline(callee, site, self._next_label, _LEAF_CONT, ret_name)
        for pi, (expr, k) in enumerate(zip(arg_exprs, arg_kinds)):
            if _is_lit(expr):
                self._setc(pi, int(expr))
            else:
                out.append(ind + "%s = %s" % (self._def(pi, k), expr))
        for i in range(callee.nparams, callee.nregs):
            self._setc(i, 0)
        if self._uses_pathreg():
            out.append(ind + "%s = 0" % self.pr)
            self.prv = 0
        if self.entry_acts:
            if all(act[0] == ACT_HIT for act in self.entry_acts):
                self._emit_actions(self.entry_acts, out, ind)
            else:
                name = self._const(tuple(self.entry_acts))
                out.append(ind + "rt._run_actions(%s, 0, %d)" % (name, self.mask))
        self._leaf_active.add(func_index)
        self._leaf_returned = False
        self._emit_block(0, out, depth)
        returned = self._leaf_returned
        self._leaf_active.discard(func_index)
        self._restore(saved)
        if not returned:
            # The callee's one block statically traps: nothing after the
            # call site can run.
            self._dead = True

    def _emit_inline_call(self, block_id, index, ins, out, depth):
        """Expand a CALL at its site: same protocol, no Python frame.

        The callee's blocks are emitted under a fresh context whose labels
        live in the function's global dispatch space; its RETs assign the
        caller's destination register and jump to a continuation label
        holding the rest of the caller's block.  The depth check, the stack
        frame push/pop, and the per-block instruction accounting are all
        preserved, so traps, traces, and timeouts are bit-identical to a
        real call — only the frame, argument tuple, and counter flushes go.
        """
        ind = "    " * depth
        dst, func_index, args, line = ins[1], ins[2], ins[3], ins[4]
        callee = self.program.funcs[func_index]
        site = self._next_site
        self._next_site += 1
        base = self._next_label
        self._next_label += len(callee.blocks)
        cont = self._next_label
        self._next_label += 1
        self._inline_spent += sum(len(block.instrs) for block in callee.blocks)
        ctx = (callee, site, base, cont, self._r(dst))
        for b in range(len(callee.blocks)):
            self.label_info[base + b] = ("block", ctx, b)
        self.label_info[cont] = ("cont", block_id, index + 1)
        cpreds = callee.predecessors()
        if cpreds.get(0):
            self.labels.add(base)
        self.labels.update(base + b for b, ps in cpreds.items() if len(ps) >= 2)
        self.labels.add(cont)
        # Deferred caller constants that the continuation (a dispatch label,
        # which starts with no knowledge) may read must be real first.
        need = {self._r(i) for i in self._live_after(block_id, index)}
        self._materialize(out, ind, need)
        out.append(ind + "if len(_stack) + 1 >= _dl:")
        self._emit_trap(
            out, ind + "    ", "STACK_OVERFLOW", line, '"call depth exceeded"'
        )
        out.append(ind + "_stack.append((%s, %d))" % (self.fname, line))
        arg_exprs = [self._use(reg) for reg in args]
        arg_kinds = [self.kind.get(self._r(reg)) for reg in args]
        saved = self._enter_inline(*ctx)
        entry_dispatched = base in self.labels
        if entry_dispatched:
            # The callee entry is a loop header: its body goes through the
            # dispatch loop and assumes nothing, so arguments and scratch
            # zeros must all be real locals.
            for pi, expr in enumerate(arg_exprs):
                out.append(ind + "%s = %s" % (self._r(pi), expr))
            scratch = list(range(callee.nparams, callee.nregs))
            while scratch:
                chunk, scratch = scratch[:12], scratch[12:]
                out.append(ind + " = ".join(self._r(i) for i in chunk) + " = 0")
        else:
            # Entry emitted inline right here: constant arguments seed the
            # callee's environment, proofs about argument kinds carry over,
            # and the scratch zero-init becomes deferred constants.
            for pi, (expr, k) in enumerate(zip(arg_exprs, arg_kinds)):
                if _is_lit(expr):
                    self._setc(pi, int(expr))
                else:
                    out.append(ind + "%s = %s" % (self._def(pi, k), expr))
            for i in range(callee.nparams, callee.nregs):
                self._setc(i, 0)
        if self._uses_pathreg():
            out.append(ind + "%s = 0" % self.pr)
            self.prv = 0
        if self.entry_acts:
            if all(act[0] == ACT_HIT for act in self.entry_acts):
                self._emit_actions(self.entry_acts, out, ind)
            else:
                name = self._const(tuple(self.entry_acts))
                out.append(ind + "rt._run_actions(%s, 0, %d)" % (name, self.mask))
        if entry_dispatched:
            out.append(ind + "cur = %d" % base)
            out.append(ind + "continue")
        else:
            self._emit_block(0, out, depth)
        self._restore(saved)

    # -- blocks and control flow ------------------------------------------

    def _try_fuse(self, ins, cond, block_id, out, ind):
        """Fold a block-final compare straight into its BR.

        Returns the branch condition expression, or None when the compare
        must materialize its 0/1 result (the register outlives the branch,
        or both operands are constants — the static-branch path then takes
        over).  cmplog still sees the operands; a trapping compare keeps its
        TypeError guard with the truth value parked in ``_w``.
        """
        if cond in self._live().exit[block_id]:
            return None
        if ins[0] == UN:
            if ins[1] != OP_LNOT or ins[2] != cond:
                return None
            expr = self._use(ins[3])
            if _is_lit(expr):
                return None
            self._def(cond)
            return "%s == 0" % expr
        if ins[2] != cond:
            return None
        binop, line = ins[1], ins[5]
        if binop not in (OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE):
            return None
        ra, rb = self._use(ins[3]), self._use(ins[4])
        if _is_lit(ra) and _is_lit(rb):
            return None
        if binop in (OP_EQ, OP_NE):
            if self.cmplog:
                out.append(ind + "if len(_cl) < %d:" % CMPLOG_CAP)
                out.append(ind + "    _cl.append((%s, %s))" % (ra, rb))
            self._def(cond)
            return "%s %s %s" % (ra, "==" if binop == OP_EQ else "!=", rb)
        safe = (
            self.kind.get(self._r(ins[3])) == "int"
            and self.kind.get(self._r(ins[4])) == "int"
        )
        op_ch = self._CMP_OPS[binop]
        if safe:
            out.append(ind + "_w = %s %s %s" % (ra, op_ch, rb))
        else:
            out.append(ind + "try:")
            out.append(ind + "    _w = %s %s %s" % (ra, op_ch, rb))
            out.append(ind + "except TypeError:")
            self._emit_trap(
                out, ind + "    ", "TYPE_CONFUSION", line, '"array used as integer"'
            )
        if self.cmplog:
            out.append(ind + "if len(_cl) < %d:" % CMPLOG_CAP)
            out.append(ind + "    _cl.append((%s, %s))" % (ra, rb))
        self._def(cond)
        return "_w"

    def _emit_block(self, block_id, out, depth, start=0, account=True):
        """Emit one block's accounting, body, and threaded terminator.

        ``start``/``account`` support continuation labels: the tail of a
        block resuming after an inlined call re-enters here without
        re-charging the block's instruction count.
        """
        ind = "    " * depth
        block = self.func.blocks[block_id]
        if account:
            out.append(ind + "_n += %d" % (len(block.instrs) + 1))
            if not self.fast:
                out.append(ind + "if _n > _budget:")
                out.extend(self._flush_lines(ind + "    "))
                out.append(ind + "    raise Timeout(_budget)")
        instrs = block.instrs
        term = block.term
        fused = None
        for k in range(start, len(instrs)):
            ins = instrs[k]
            if ins[0] == CALL and self._leaf_inlinable(ins):
                self._emit_leaf_call(ins, out, depth)
                if self._dead:
                    self._dead = False
                    return
                continue
            if ins[0] == CALL and self._inlinable(ins):
                self._emit_inline_call(block_id, k, ins, out, depth)
                return  # the rest of the block lives at the continuation
            if (
                k == len(instrs) - 1
                and term[0] == BR
                and term[2] != term[3]
                and ins[0] in (BIN, UN)
            ):
                fused = self._try_fuse(ins, term[1], block_id, out, ind)
                if fused is not None:
                    break
            self._emit_instr(ins, out, ind)
            if self._dead:
                # A statically-decided trap: nothing below here can run.
                self._dead = False
                return
        top = term[0]
        if top == JMP or (top == BR and term[2] == term[3]):
            target = term[1] if top == JMP else term[2]
            self._emit_goto(block_id, target, out, depth)
        elif top == BR:
            cond_name = self._r(term[1])
            if fused is None and cond_name in self.env:
                # Statically decided branch: only the taken edge exists.
                taken = term[2] if self.env[cond_name] != 0 else term[3]
                self._emit_goto(block_id, taken, out, depth)
                return
            out.append(ind + "if %s:" % (fused if fused is not None else cond_name))
            saved = (self.env, self.pend, self.kind, self.buf, self.prv)
            self.env = dict(self.env)
            self.pend = set(self.pend)
            self.kind = dict(self.kind)
            self.buf = dict(self.buf)
            self._emit_goto(block_id, term[2], out, depth + 1)
            self.env, self.pend, self.kind, self.buf, self.prv = saved
            out.append(ind + "else:")
            self._emit_goto(block_id, term[3], out, depth + 1)
        else:  # RET
            acts = self.ret_acts.get(block_id)
            if acts:
                self._emit_actions(acts, out, ind)
            value = term[1]
            expr = "0" if value == -1 else self._use(value)
            if self.cont_label is _LEAF_CONT:
                # Leaf expansion: assign and pop right here; the caller's
                # emission continues after the call site, no dispatch.
                out.append(ind + "%s = %s" % (self.ret_reg, expr))
                out.append(ind + "_stack.pop()")
                self._leaf_returned = True
            elif self.cont_label is not None:
                # Inlined callee: hand the value to the caller's register
                # and resume the caller at its continuation label (which
                # pops the stack frame, matching the interpreter's order).
                out.append(ind + "%s = %s" % (self.ret_reg, expr))
                out.append(ind + "cur = %d" % self.cont_label)
                out.append(ind + "continue")
            else:
                out.extend(self._flush_lines(ind))
                out.append(ind + "return " + expr)

    def _emit_goto(self, src, dst, out, depth):
        """Edge actions, then either inline the target or thread to dispatch."""
        ind = "    " * depth
        acts = self.edge_acts.get((src, dst))
        if acts:
            self._emit_actions(acts, out, ind)
        label = self.label_base + dst
        if label in self.labels or depth > _MAX_INLINE_DEPTH:
            self.labels.add(label)
            # The label's body starts with no knowledge: deferred constants
            # it may read (the live-in set) must be real before we jump.
            need = {self._r(i) for i in self._live().entry[dst]}
            self._materialize(out, ind, need)
            out.append(ind + "cur = %d" % label)
            out.append(ind + "continue")
        else:
            self._emit_block(dst, out, depth)

    def _emit_dispatch(self, labels, bodies, out, depth):
        """Binary dispatch tree over the label set (O(log n) per transition)."""
        ind = "    " * depth
        if len(labels) == 1:
            out.extend(bodies[labels[0]])
            return
        mid = len(labels) // 2
        out.append(ind + "if cur < %d:" % labels[mid])
        self._emit_dispatch(labels[:mid], bodies, out, depth + 1)
        out.append(ind + "else:")
        self._emit_dispatch(labels[mid:], bodies, out, depth + 1)

    def _emit_label_body(self, label):
        """One dispatched body: a root block, an inlined-callee block, or a
        continuation (the tail of a caller block after an inlined call)."""
        lines = []
        info = self.label_info.get(label)
        if info is None:
            self._reset_state()
            if label == 0 and not self.entry_has_preds:
                # Function entry, entered exactly once: every scratch
                # register is a known zero; defer the stores until a
                # dispatched successor can actually read them.  The path
                # register is the prologue's fresh zero (entry actions are
                # either all-HIT or discard their pr result, so they never
                # perturb it).
                for i in range(self.root.nparams, self.root.nregs):
                    self._setc(i, 0)
                self.prv = 0
            self._emit_block(label, lines, 0)
        elif info[0] == "block":
            saved = self._enter_inline(*info[1])
            self._emit_block(info[2], lines, 0)
            self._restore(saved)
        else:  # continuation: pop the inlined frame, run the block's tail
            self._reset_state()
            lines.append("_stack.pop()")
            self._emit_block(info[1], lines, 0, start=info[2], account=False)
        return lines

    def emit(self):
        func = self.func
        # First pass: emit every dispatched block body (the label set can
        # grow while emitting — deep inline chains cut off, inlined calls
        # adding callee-block and continuation labels).
        bodies = {}
        while True:
            todo = sorted(label for label in self.labels if label not in bodies)
            if not todo:
                break
            for label in todo:
                bodies[label] = self._emit_label_body(label)
        labels = sorted(bodies)
        # A function with a single dispatched block (no joins, no loops)
        # needs no dispatch loop at all: the body never re-enters.
        looping = len(labels) > 1 or any(
            line.endswith("continue") for line in bodies[0]
        )
        body = []
        if looping:
            if self.fast:
                # Every cycle re-enters the dispatch loop through a label
                # (single-predecessor chains are cut off at the inline depth
                # cap), so a budget guard per label bounds every run.
                for label in labels:
                    bodies[label] = [
                        "if _n > _budget:",
                        "    raise _Restart",
                    ] + bodies[label]
            depths = _tree_depths(labels)
            shifted = {
                label: ["    " * (2 + depths[label]) + line for line in bodies[label]]
                for label in labels
            }
            self._emit_dispatch(labels, shifted, body, 2)
        else:
            body = ["    " + line for line in bodies[0]]
        # Entry actions run before the first block's accounting, exactly as
        # the interpreter's single _run_actions(entry, 0, mask) call does:
        # all-HIT tables are inlined; anything else goes through that very
        # method so path-register threading between entry actions matches.
        entry_lines = []
        if self.entry_acts:
            if all(act[0] == ACT_HIT for act in self.entry_acts):
                self._emit_actions(self.entry_acts, entry_lines, "    ")
            else:
                name = self._const(tuple(self.entry_acts))
                entry_lines.append(
                    "    rt._run_actions(%s, 0, %d)" % (name, self.mask)
                )
        # Preamble: only the aliases the generated code actually uses.
        params = ", ".join(["rt"] + [self._r(i) for i in range(func.nparams)])
        text = "\n".join(entry_lines + body)
        head = list(self.const_lines)
        head.append("def _f%d(%s):" % (func.index, params))
        head.append("    _ic = rt._count_cell")
        head.append("    _n = _ic[0]")
        head.append("    _budget = rt._budget")
        for name, expr in (
            ("_pa", "rt._probe_acc"),
            ("_hits", "rt._hits"),
            ("_arrays", "rt._heap._arrays"),
            ("_rb", "rt._heap._readonly_base"),
            ("_alloc", "rt._heap.alloc"),
            ("_abs", "abs"),
            ("_stack", "rt._stack"),
            ("_dl", "rt._depth_limit"),
            ("_cl", "rt._cmp_log"),
            ("_fns", "rt._compiled"),
        ):
            # Word-boundary match: a bare substring test binds _cl in every
            # function that mentions __class__.
            if re.search(r"\b%s\b" % name, text):
                head.append("    %s = %s" % (name, expr))
        if self.entry_has_preds:
            # The entry is a loop header re-entered through the dispatch
            # loop, so the scratch zero-init must be real stores up front
            # (otherwise the entry body defers them as known constants).
            scratch = list(range(func.nparams, func.nregs))
            while scratch:
                chunk, scratch = scratch[:12], scratch[12:]
                head.append("    " + " = ".join(self._r(i) for i in chunk) + " = 0")
        if "_pr" in text:
            head.append("    _pr = 0")
        if self.probe_locals:
            head.append("    _pn = 0")
            head.append("    _pk = 0")
        head.extend(entry_lines)
        if looping:
            head.append("    cur = 0")
            head.append("    while True:")
        return "\n".join(head) + "\n" + "\n".join(body) + "\n"


def _tree_depths(labels):
    """Depth of each label's leaf in the binary dispatch tree."""
    depths = {}

    def walk(subset, depth):
        if len(subset) == 1:
            depths[subset[0]] = depth
            return
        mid = len(subset) // 2
        walk(subset[:mid], depth + 1)
        walk(subset[mid:], depth + 1)

    walk(list(labels), 0)
    return depths
