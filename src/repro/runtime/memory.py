"""VM heap with ASan-like bounds enforcement.

Arrays are Python lists of ints; every access is bounds-checked by the VM,
so an out-of-bounds index produces a deterministic trap at the faulting
instruction — the behavioural analogue of compiling the target with
AddressSanitizer as the paper does.
"""

from repro.runtime.values import ArrayRef

# Allocation guard: a fuzzer-controlled size above this traps (models OOM /
# allocator limits that ASan enforces with allocator_may_return_null=0).
MAX_ALLOC = 1 << 20


# String pools are immutable at runtime (every write path traps on readonly
# refs first), so the materialized per-string lists can be shared by every
# execution of the same program instead of re-copied per Heap.  Keyed on the
# pool's identity; the stored pool reference guards against id reuse.
_POOL_CACHE = {}
_POOL_CACHE_CAP = 64


def _materialize_pool(string_pool):
    cached = _POOL_CACHE.get(id(string_pool))
    if cached is not None and cached[0] is string_pool:
        return cached[1]
    arrays = [list(s) for s in string_pool]
    if len(_POOL_CACHE) >= _POOL_CACHE_CAP:
        _POOL_CACHE.clear()
    _POOL_CACHE[id(string_pool)] = (string_pool, arrays)
    return arrays


class Heap:
    """Per-execution heap: grows monotonically, freed wholesale at exit."""

    __slots__ = ("_arrays", "_readonly_base")

    def __init__(self, string_pool=()):
        # Read-only string constants occupy the first array ids.
        self._arrays = list(_materialize_pool(string_pool)) if string_pool else []
        self._readonly_base = len(self._arrays)

    def alloc(self, size):
        """Allocate a zeroed array of ``size`` elements; returns ArrayRef.

        Returns None when the size is invalid (negative or over MAX_ALLOC);
        the VM turns that into a BAD_ALLOC trap with the caller's site.
        """
        if size < 0 or size > MAX_ALLOC:
            return None
        array_id = len(self._arrays)
        self._arrays.append([0] * size)
        return ArrayRef(array_id)

    def string_ref(self, index):
        """Handle for string-pool constant ``index`` (read-only)."""
        return ArrayRef(index, readonly=True)

    def storage(self, ref):
        """The backing list for ``ref`` (no bounds involved)."""
        return self._arrays[ref.array_id]

    def length(self, ref):
        return len(self._arrays[ref.array_id])

    def is_readonly(self, ref):
        return ref.readonly or ref.array_id < self._readonly_base

    def snapshot_bytes(self, ref):
        """The array contents as bytes (elements masked to 0..255)."""
        return bytes(v & 0xFF for v in self._arrays[ref.array_id])
