"""Execution backend selection: the reference interpreter or the compiler.

Every consumer that runs MiniC programs (the fuzz engine, the experiment
runners, the bench harness) goes through :func:`make_backend` so the choice
between the reference interpreter (``repro.runtime.interpreter``) and the
IR-to-Python compiler (``repro.runtime.compiler``) is one knob:

- the ``REPRO_BACKEND`` environment variable (``interp`` | ``compile``),
- or an explicit ``backend=`` argument, which wins over the environment.

The interpreter stays the semantic reference: the compiled backend is
differentially tested against it (same return values, traps, coverage
maps, Ball-Larus path ids, instruction accounting) and any divergence is a
compiler bug, never a spec change.

A :class:`Backend` additionally owns the compile-only throughput layers so
callers need no backend-specific branches:

- ``probe_prune=True`` applies flow-conservation probe elision
  (:func:`repro.coverage.prune.build_prune_plan`) at compile time; counts
  of elided probes are reconstructed after each complete run, so observed
  coverage maps are unchanged while ``probe_cost`` drops.
- :meth:`Backend.respecialize` drops probes whose cells have saturated a
  virgin map's buckets (:func:`repro.coverage.prune.saturated_cells`) and
  recompiles.  This changes what the maps record (saturated cells stop
  being counted) and therefore the virtual clock's probe charges — callers
  wanting bit-identical cross-backend campaigns leave it off.
"""

import os

from repro.coverage.prune import apply_saturation, build_prune_plan, saturated_cells
from repro.runtime import interpreter
from repro.runtime.compiler import compile_program

BACKENDS = ("interp", "compile")

_ENV_VAR = "REPRO_BACKEND"


def resolve_backend(name=None):
    """The effective backend name: argument, else environment, else interp."""
    if name is None:
        name = os.environ.get(_ENV_VAR) or "interp"
    if name not in BACKENDS:
        raise ValueError(
            "unknown backend %r (expected one of %s; set %s or pass backend=)"
            % (name, "/".join(BACKENDS), _ENV_VAR)
        )
    return name


class Backend:
    """One program's executor under a chosen backend and instrumentation.

    ``execute(data, instr_budget=..., call_depth_limit=..., cmplog=...)``
    has the interpreter's signature minus the leading program/instrumentation
    arguments (bound at construction).
    """

    __slots__ = (
        "name",
        "program",
        "instrumentation",
        "execute",
        "_base_plan",
        "_plan",
        "_saturated",
    )

    def taint_execute(self, data, **kwargs):
        """Run ``data`` under taint tracking; returns (result, TaintMap).

        The taint semantics live in the reference interpreter only
        (:mod:`repro.taint.track`); the compiled backend *transparently
        falls back* to it for taint runs — the fallback contract of DESIGN
        §12.  The taint interpreter's observables are bit-identical to the
        plain interpreter's, and probe pruning never applies here (taint
        runs always use the full instrumentation, whose observed maps equal
        the reconstructed pruned ones).
        """
        from repro.taint.track import taint_execute

        return taint_execute(self.program, data, self.instrumentation, **kwargs)

    def __init__(self, name, program, instrumentation=None, probe_prune=False):
        self.name = resolve_backend(name)
        self.program = program
        self.instrumentation = instrumentation
        self._saturated = frozenset()
        if self.name == "interp":
            self._base_plan = None
            self._plan = None

            def _run(data, **kwargs):
                return interpreter.execute(program, data, instrumentation, **kwargs)

            self.execute = _run
        else:
            # build_prune_plan returns None for instrumentations it cannot
            # soundly elide (path-state actions), so probe_prune=True is
            # safe to request unconditionally.
            self._base_plan = (
                build_prune_plan(program, instrumentation) if probe_prune else None
            )
            self._plan = self._base_plan
            self.execute = compile_program(
                program, instrumentation, self._plan
            ).execute

    @property
    def prune_plan(self):
        """The active PrunePlan (None under interp or unpruned compile)."""
        return self._plan

    def respecialize(self, virgin):
        """De-instrument probes that can no longer produce novelty.

        Given the campaign's virgin map, drops every probe writing a cell
        whose AFL buckets have all been observed and recompiles.  Returns
        True when a recompilation happened.  No-op under the interpreter
        backend (its dispatch pays per-action either way).
        """
        if self.name != "compile":
            return False
        cells = saturated_cells(virgin)
        if cells <= self._saturated:
            return False
        self._saturated = frozenset(cells)
        plan = apply_saturation(
            self.program, self.instrumentation, cells, base=self._base_plan
        )
        if plan is self._plan:
            return False
        self._plan = plan
        self.execute = compile_program(
            self.program, self.instrumentation, plan
        ).execute
        return True


def make_backend(program, instrumentation=None, backend=None, probe_prune=False):
    """Build a :class:`Backend` honoring ``REPRO_BACKEND`` when unset."""
    return Backend(backend, program, instrumentation, probe_prune=probe_prune)
