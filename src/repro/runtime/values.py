"""Runtime value model.

MiniC has two runtime value kinds:

- integers — signed 64-bit with silent wraparound, like optimized C on the
  paper's x86-64 targets;
- array handles — :class:`ArrayRef` objects pointing into the VM heap.

Registers hold either kind; using an array where an int is required (or vice
versa) is a runtime type trap, standing in for the memory corruption a
confused C program would exhibit.
"""

_U64_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def wrap_int(value):
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= _U64_MASK
    if value & _SIGN_BIT:
        value -= 1 << 64
    return value


class ArrayRef:
    """A handle to a heap array.

    ``array_id`` indexes the VM heap; ``readonly`` marks string-pool
    constants (writes through them trap, like writing to ``.rodata``).
    """

    __slots__ = ("array_id", "readonly")

    def __init__(self, array_id, readonly=False):
        self.array_id = array_id
        self.readonly = readonly

    def __repr__(self):
        tag = "ro" if self.readonly else "rw"
        return "ArrayRef(#%d, %s)" % (self.array_id, tag)
