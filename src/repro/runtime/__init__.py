"""Execution runtime: values, heap, traps, and the interpreting VM."""

from repro.runtime.interpreter import ExecutionResult, execute
from repro.runtime.traps import Frame, Timeout, Trap
from repro.runtime.values import ArrayRef, wrap_int

__all__ = [
    "execute",
    "ExecutionResult",
    "Trap",
    "Timeout",
    "Frame",
    "ArrayRef",
    "wrap_int",
]
