"""The MiniC virtual machine.

A tuple-dispatch interpreter over :class:`~repro.cfg.program.ProgramCFG`.
Coverage instrumentation is supplied as *edge action tables* (see
:mod:`repro.coverage.instrumenter`): when control moves from block ``src`` to
block ``dst`` the VM executes the small action tuples attached to that edge.
Action kinds::

    (HIT, map_idx)                    raw-hit a coverage map index
    (ADD, delta)                      pathreg += delta          (Ball-Larus)
    (END_RESET, inc, reset, fxor)     emit path id, reset pathreg (back edge)
    (END, inc, fxor)                  emit path id (function return)
    (NGRAM, ehash)                    fold edge hash into n-gram state + hit
    (HPATH, ehash)                    PathAFL-style rolling whole-program hash

The VM additionally counts executed instructions (the virtual-time basis) and
executed probe actions, enforces an instruction budget (hangs), a call-depth
limit (stack overflow), and — when ``cmplog`` is requested — harvests
comparison operands for the input-to-state mutation stage.
"""

from repro.cfg.instructions import (
    BIN,
    BR,
    BUILTIN,
    CALL,
    COMPARISON_OPS,
    CONST,
    JMP,
    LOAD,
    MOV,
    OP_ADD,
    OP_AND,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LT,
    OP_MOD,
    OP_MUL,
    OP_NE,
    OP_OR,
    OP_SHL,
    OP_SUB,
    OP_XOR,
    OP_LNOT,
    OP_NEG,
    STORE,
    UN,
)
from repro.lang.builtins_spec import BUILTIN_CODES
from repro.runtime.memory import Heap
from repro.runtime import traps
from repro.runtime.traps import Frame, Timeout, Trap
from repro.runtime.values import ArrayRef, wrap_int

# Action kinds (see module docstring).
ACT_HIT = 0
ACT_ADD = 1
ACT_END_RESET = 2
ACT_END = 3
ACT_NGRAM = 4
ACT_HPATH = 5

DEFAULT_INSTR_BUDGET = 400_000
DEFAULT_CALL_DEPTH = 64
CMPLOG_CAP = 2048

_U64 = (1 << 64) - 1

# Virtual-time cost of each probe action kind, indexed by the ACT_* code.
# Edge/block hits are a single map increment; path terminations hash, index,
# update the (cache-unfriendly, sparsely indexed) map and reset the state —
# the dominant cost the paper measures as its 1.26x seed-processing ratio;
# n-gram and h-path updates carry their rolling-state arithmetic.
PROBE_COSTS = (1, 1, 9, 9, 4, 3)


class ExecutionResult:
    """Outcome of one test-case execution."""

    __slots__ = (
        "retval",
        "trap",
        "timeout",
        "instr_count",
        "probe_count",
        "probe_cost",
        "hits",
        "cmp_log",
    )

    def __init__(
        self, retval, trap, timeout, instr_count, probe_count, probe_cost, hits, cmp_log
    ):
        self.retval = retval
        self.trap = trap
        self.timeout = timeout
        self.instr_count = instr_count
        self.probe_count = probe_count
        self.probe_cost = probe_cost
        self.hits = hits
        self.cmp_log = cmp_log

    @property
    def virtual_cost(self):
        """Virtual-clock ticks this execution consumed (work + probes)."""
        return self.instr_count + self.probe_cost

    @property
    def crashed(self):
        return self.trap is not None

    def __repr__(self):
        status = "crash" if self.crashed else ("timeout" if self.timeout else "ok")
        return "ExecutionResult(%s, instrs=%d, hits=%d)" % (
            status,
            self.instr_count,
            len(self.hits),
        )


def execute(
    program,
    input_bytes,
    instrumentation=None,
    instr_budget=DEFAULT_INSTR_BUDGET,
    call_depth_limit=DEFAULT_CALL_DEPTH,
    cmplog=False,
):
    """Run ``program.main(input_bytes)`` and return an ExecutionResult."""
    vm = _Exec(program, instrumentation, instr_budget, call_depth_limit, cmplog)
    return vm.run(input_bytes)


class _Exec:
    def __init__(self, program, instrumentation, instr_budget, call_depth_limit, cmplog):
        self._program = program
        self._instr = instrumentation
        self._budget = instr_budget
        self._depth_limit = call_depth_limit
        self._cmplog = cmplog
        self._heap = Heap(program.strings)
        self._count = 0
        # [probe count, probe cost]: a list so inner loops can update it
        # through one local alias instead of attribute writes.
        self._probe_acc = [0, 0]
        self._hits = {}
        self._cmp_log = []
        self._stack = []  # (caller function name, call-site line)
        self._ngram_ring = []
        self._ngram_n = instrumentation.ngram_n if instrumentation else 1
        self._pair_paths = bool(instrumentation and getattr(instrumentation, "pair_paths", False))
        self._last_path_idx = 0x1505
        self._hpath_state = 0x811C9DC5

    def run(self, input_bytes):
        input_ref = self._heap.alloc(len(input_bytes))
        storage = self._heap.storage(input_ref)
        storage[: len(input_bytes)] = input_bytes
        retval, trap, timeout = 0, None, False
        try:
            retval = self._call(self._program.main_index, [input_ref])
        except Trap as caught:
            trap = caught
        except Timeout:
            timeout = True
        return ExecutionResult(
            retval,
            trap,
            timeout,
            self._count,
            self._probe_acc[0],
            self._probe_acc[1],
            self._hits,
            self._cmp_log,
        )

    # -- trap helpers --------------------------------------------------------

    def _trace(self, func_name, line):
        frames = [Frame(func_name, line)]
        for caller, callsite in reversed(self._stack):
            frames.append(Frame(caller, callsite))
        return frames

    def _trap(self, kind, func_name, line, detail):
        raise Trap(kind, func_name, line, detail, self._trace(func_name, line))

    # -- the interpreter loop ------------------------------------------------

    def _call(self, func_index, args):
        program = self._program
        func = program.funcs[func_index]
        fname = func.name
        heap = self._heap
        hits = self._hits
        probe_acc = self._probe_acc
        probe_costs = PROBE_COSTS
        regs = [0] * func.nregs
        regs[: len(args)] = args
        if self._instr is not None:
            erows = self._instr.edge_rows[func_index]
            racts = self._instr.ret_actions[func_index]
            enacts = self._instr.entry_actions[func_index]
            mask = self._instr.map_mask
            if enacts:
                self._run_actions(enacts, 0, mask)
        else:
            erows = racts = None
            mask = 0
        pathreg = 0
        blocks = func.blocks
        cur = 0
        budget = self._budget
        while True:
            block = blocks[cur]
            instrs = block.instrs
            self._count += len(instrs) + 1
            if self._count > budget:
                raise Timeout(budget)
            for ins in instrs:
                op = ins[0]
                if op == BIN:
                    binop = ins[1]
                    try:
                        a = regs[ins[3]]
                        b = regs[ins[4]]
                        if binop == OP_EQ:
                            value = 1 if a == b else 0
                        elif binop == OP_NE:
                            value = 1 if a != b else 0
                        elif binop == OP_ADD:
                            value = wrap_int(a + b)
                        elif binop == OP_SUB:
                            value = wrap_int(a - b)
                        elif binop == OP_LT:
                            value = 1 if a < b else 0
                        elif binop == OP_LE:
                            value = 1 if a <= b else 0
                        elif binop == OP_GT:
                            value = 1 if a > b else 0
                        elif binop == OP_GE:
                            value = 1 if a >= b else 0
                        elif binop == OP_MUL:
                            value = wrap_int(a * b)
                        elif binop == OP_AND:
                            value = a & b
                        elif binop == OP_OR:
                            value = a | b
                        elif binop == OP_XOR:
                            value = a ^ b
                        elif binop == OP_DIV:
                            if b == 0:
                                self._trap(traps.DIV_BY_ZERO, fname, ins[5], "division by zero")
                            value = wrap_int(_c_div(a, b))
                        elif binop == OP_MOD:
                            if b == 0:
                                self._trap(traps.DIV_BY_ZERO, fname, ins[5], "modulo by zero")
                            value = wrap_int(_c_mod(a, b))
                        elif binop == OP_SHL:
                            if b < 0 or b > 63:
                                self._trap(
                                    traps.SHIFT_RANGE, fname, ins[5], "shift by %d" % b
                                )
                            value = wrap_int(a << b)
                        else:  # OP_SHR
                            if b < 0 or b > 63:
                                self._trap(
                                    traps.SHIFT_RANGE, fname, ins[5], "shift by %d" % b
                                )
                            value = a >> b
                    except TypeError:
                        self._trap(
                            traps.TYPE_CONFUSION, fname, ins[5], "array used as integer"
                        )
                    if self._cmplog and binop in COMPARISON_OPS:
                        if len(self._cmp_log) < CMPLOG_CAP:
                            self._cmp_log.append((a, b))
                    regs[ins[2]] = value
                elif op == CONST:
                    regs[ins[1]] = ins[2]
                elif op == MOV:
                    regs[ins[1]] = regs[ins[2]]
                elif op == LOAD:
                    arr = regs[ins[2]]
                    idx = regs[ins[3]]
                    if not isinstance(arr, ArrayRef):
                        self._trap(
                            traps.TYPE_CONFUSION, fname, ins[4], "indexing a non-array"
                        )
                    storage = heap.storage(arr)
                    if isinstance(idx, ArrayRef) or idx < 0 or idx >= len(storage):
                        self._trap(
                            traps.OOB_READ,
                            fname,
                            ins[4],
                            "index %r of %d" % (idx, len(storage)),
                        )
                    regs[ins[1]] = storage[idx]
                elif op == STORE:
                    arr = regs[ins[1]]
                    idx = regs[ins[2]]
                    if not isinstance(arr, ArrayRef):
                        self._trap(
                            traps.TYPE_CONFUSION, fname, ins[4], "indexing a non-array"
                        )
                    if heap.is_readonly(arr):
                        self._trap(
                            traps.READONLY_WRITE, fname, ins[4], "write to constant"
                        )
                    storage = heap.storage(arr)
                    if isinstance(idx, ArrayRef) or idx < 0 or idx >= len(storage):
                        self._trap(
                            traps.OOB_WRITE,
                            fname,
                            ins[4],
                            "index %r of %d" % (idx, len(storage)),
                        )
                    storage[idx] = regs[ins[3]]
                elif op == UN:
                    unop = ins[1]
                    a = regs[ins[3]]
                    try:
                        if unop == OP_NEG:
                            regs[ins[2]] = wrap_int(-a)
                        elif unop == OP_LNOT:
                            regs[ins[2]] = 1 if a == 0 else 0
                        else:
                            regs[ins[2]] = wrap_int(~a)
                    except TypeError:
                        self._trap(traps.TYPE_CONFUSION, fname, 0, "array in arithmetic")
                elif op == CALL:
                    if len(self._stack) + 1 >= self._depth_limit:
                        self._trap(
                            traps.STACK_OVERFLOW, fname, ins[4], "call depth exceeded"
                        )
                    self._stack.append((fname, ins[4]))
                    regs[ins[1]] = self._call(ins[2], [regs[r] for r in ins[3]])
                    self._stack.pop()
                elif op == BUILTIN:
                    regs[ins[1]] = self._builtin(
                        ins[2], [regs[r] for r in ins[3]], fname, ins[4]
                    )
                else:  # STR
                    regs[ins[1]] = heap.string_ref(ins[2])
            term = block.term
            top = term[0]
            if top == BR:
                nxt = term[2] if regs[term[1]] else term[3]
            elif top == JMP:
                nxt = term[1]
            else:  # RET
                if racts is not None:
                    acts = racts.get(cur)
                    if acts:
                        self._run_actions(acts, pathreg, mask)
                value = term[1]
                return 0 if value == -1 else regs[value]
            if erows is not None:
                row = erows[cur]
                if row is not None:
                    acts = row.get(nxt)
                    if acts:
                        # Inlined action dispatch: the two hot kinds (edge
                        # hit, Ball-Larus increment) avoid a function call.
                        for act in acts:
                            kind = act[0]
                            probe_acc[0] += 1
                            probe_acc[1] += probe_costs[kind]
                            if kind == 0:  # ACT_HIT
                                idx = act[1]
                                if idx in hits:
                                    hits[idx] += 1
                                else:
                                    hits[idx] = 1
                            elif kind == 1:  # ACT_ADD
                                pathreg += act[1]
                            elif kind == 2:  # ACT_END_RESET
                                idx = ((pathreg + act[1]) ^ act[3]) & mask
                                if idx in hits:
                                    hits[idx] += 1
                                else:
                                    hits[idx] = 1
                                pathreg = act[2]
                                if self._pair_paths:
                                    pair = (
                                        (self._last_path_idx * 0x9E3779B1) ^ idx
                                    ) & mask
                                    hits[pair] = hits.get(pair, 0) + 1
                                    self._last_path_idx = idx
                            else:  # rare kinds: ngram / hpath / ret-end
                                probe_acc[0] -= 1
                                probe_acc[1] -= probe_costs[kind]
                                pathreg = self._run_one_action(act, pathreg, mask)
            cur = nxt

    def _run_actions(self, acts, pathreg, mask):
        """Execute probe actions; returns the (possibly updated) path register."""
        for act in acts:
            pathreg = self._run_one_action(act, pathreg, mask)
        return pathreg

    def _pair_hit(self, idx, mask):
        """Fold consecutive path-id emissions into a 2-gram map hit.

        Implements the paper's Sec. VII future-work feedback: 2-grams of
        acyclic paths across path terminations (loop exits and function
        boundaries).  No-op unless the instrumentation enables it.
        """
        if not self._pair_paths:
            return
        pair = ((self._last_path_idx * 0x9E3779B1) ^ idx) & mask
        hits = self._hits
        hits[pair] = hits.get(pair, 0) + 1
        self._last_path_idx = idx

    def _run_one_action(self, act, pathreg, mask):
        """Execute one probe action (the out-of-line path for rare kinds)."""
        hits = self._hits
        kind = act[0]
        self._probe_acc[0] += 1
        self._probe_acc[1] += PROBE_COSTS[kind]
        if kind == ACT_HIT:
            idx = act[1]
            hits[idx] = hits.get(idx, 0) + 1
        elif kind == ACT_ADD:
            pathreg += act[1]
        elif kind == ACT_END_RESET:
            idx = ((pathreg + act[1]) ^ act[3]) & mask
            hits[idx] = hits.get(idx, 0) + 1
            pathreg = act[2]
            self._pair_hit(idx, mask)
        elif kind == ACT_END:
            idx = ((pathreg + act[1]) ^ act[2]) & mask
            hits[idx] = hits.get(idx, 0) + 1
            self._pair_hit(idx, mask)
        elif kind == ACT_NGRAM:
            # Rolling window over the last n edge hashes, each weighted
            # by its position (AFL++'s ngram instrumentation analogue).
            ring = self._ngram_ring
            ring.append(act[1])
            if len(ring) > self._ngram_n:
                ring.pop(0)
            state = 0
            for pos, ehash in enumerate(ring):
                state ^= (ehash << pos) & _U64
            idx = (state ^ (state >> 32)) & mask
            hits[idx] = hits.get(idx, 0) + 1
        else:  # ACT_HPATH
            self._hpath_state = ((self._hpath_state * 33) ^ act[1]) & _U64
            state = self._hpath_state
            idx = (state ^ (state >> 32)) & mask
            hits[idx] = hits.get(idx, 0) + 1
        return pathreg

    # -- builtins --------------------------------------------------------------

    def _builtin(self, code, args, fname, line):
        name = _BUILTIN_DISPATCH[code]
        return name(self, args, fname, line)

    def _array_arg(self, value, fname, line):
        if not isinstance(value, ArrayRef):
            self._trap(traps.TYPE_CONFUSION, fname, line, "expected an array")
        return value

    def _int_arg(self, value, fname, line):
        if isinstance(value, ArrayRef):
            self._trap(traps.TYPE_CONFUSION, fname, line, "expected an integer")
        return value

    def _bounded_slice(self, ref, off, n, fname, line, kind):
        storage = self._heap.storage(ref)
        if off < 0 or n < 0 or off + n > len(storage):
            self._trap(
                kind, fname, line, "range [%d, %d) of %d" % (off, off + n, len(storage))
            )
        return storage

    def _bi_alloc(self, args, fname, line):
        size = self._int_arg(args[0], fname, line)
        ref = self._heap.alloc(size)
        if ref is None:
            self._trap(traps.BAD_ALLOC, fname, line, "alloc(%d)" % size)
        self._count += max(size, 0) >> 4  # allocation cost in virtual time
        return ref

    def _bi_len(self, args, fname, line):
        ref = self._array_arg(args[0], fname, line)
        return self._heap.length(ref)

    def _bi_abs(self, args, fname, line):
        return wrap_int(abs(self._int_arg(args[0], fname, line)))

    def _bi_min(self, args, fname, line):
        return min(
            self._int_arg(args[0], fname, line), self._int_arg(args[1], fname, line)
        )

    def _bi_max(self, args, fname, line):
        return max(
            self._int_arg(args[0], fname, line), self._int_arg(args[1], fname, line)
        )

    def _bi_memcmp(self, args, fname, line):
        a = self._array_arg(args[0], fname, line)
        aoff = self._int_arg(args[1], fname, line)
        b = self._array_arg(args[2], fname, line)
        boff = self._int_arg(args[3], fname, line)
        n = self._int_arg(args[4], fname, line)
        sa = self._bounded_slice(a, aoff, n, fname, line, traps.OOB_READ)
        sb = self._bounded_slice(b, boff, n, fname, line, traps.OOB_READ)
        self._count += n
        left = sa[aoff : aoff + n]
        right = sb[boff : boff + n]
        if self._cmplog and len(self._cmp_log) < CMPLOG_CAP:
            self._cmp_log.append(
                (bytes(v & 0xFF for v in left), bytes(v & 0xFF for v in right))
            )
        return 0 if left == right else 1

    def _bi_copy(self, args, fname, line):
        dst = self._array_arg(args[0], fname, line)
        doff = self._int_arg(args[1], fname, line)
        src = self._array_arg(args[2], fname, line)
        soff = self._int_arg(args[3], fname, line)
        n = self._int_arg(args[4], fname, line)
        if self._heap.is_readonly(dst):
            self._trap(traps.READONLY_WRITE, fname, line, "copy into constant")
        sdst = self._bounded_slice(dst, doff, n, fname, line, traps.OOB_WRITE)
        ssrc = self._bounded_slice(src, soff, n, fname, line, traps.OOB_READ)
        self._count += n
        sdst[doff : doff + n] = ssrc[soff : soff + n]
        return 0

    def _bi_fill(self, args, fname, line):
        ref = self._array_arg(args[0], fname, line)
        off = self._int_arg(args[1], fname, line)
        n = self._int_arg(args[2], fname, line)
        value = self._int_arg(args[3], fname, line)
        if self._heap.is_readonly(ref):
            self._trap(traps.READONLY_WRITE, fname, line, "fill into constant")
        storage = self._bounded_slice(ref, off, n, fname, line, traps.OOB_WRITE)
        self._count += n
        storage[off : off + n] = [value] * n
        return 0

    def _read_scalar(self, args, fname, line, width, big_endian):
        ref = self._array_arg(args[0], fname, line)
        off = self._int_arg(args[1], fname, line)
        storage = self._bounded_slice(ref, off, width, fname, line, traps.OOB_READ)
        value = 0
        window = storage[off : off + width]
        if not big_endian:
            window = list(reversed(window))
        for byte in window:
            value = (value << 8) | (byte & 0xFF)
        return value

    def _bi_read16(self, args, fname, line):
        return self._read_scalar(args, fname, line, 2, True)

    def _bi_read32(self, args, fname, line):
        return self._read_scalar(args, fname, line, 4, True)

    def _bi_read16le(self, args, fname, line):
        return self._read_scalar(args, fname, line, 2, False)

    def _bi_read32le(self, args, fname, line):
        return self._read_scalar(args, fname, line, 4, False)

    def _bi_trap(self, args, fname, line):
        code = self._int_arg(args[0], fname, line)
        self._trap(traps.ASSERT_FAIL, fname, line, "trap(%d)" % code)


def _c_div(a, b):
    """C-style truncating division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a, b):
    """C-style remainder (sign follows the dividend)."""
    return a - _c_div(a, b) * b


_BUILTIN_DISPATCH = {
    BUILTIN_CODES["alloc"]: _Exec._bi_alloc,
    BUILTIN_CODES["len"]: _Exec._bi_len,
    BUILTIN_CODES["abs"]: _Exec._bi_abs,
    BUILTIN_CODES["min"]: _Exec._bi_min,
    BUILTIN_CODES["max"]: _Exec._bi_max,
    BUILTIN_CODES["memcmp"]: _Exec._bi_memcmp,
    BUILTIN_CODES["copy"]: _Exec._bi_copy,
    BUILTIN_CODES["fill"]: _Exec._bi_fill,
    BUILTIN_CODES["read16"]: _Exec._bi_read16,
    BUILTIN_CODES["read32"]: _Exec._bi_read32,
    BUILTIN_CODES["read16le"]: _Exec._bi_read16le,
    BUILTIN_CODES["read32le"]: _Exec._bi_read32le,
    BUILTIN_CODES["trap"]: _Exec._bi_trap,
}
