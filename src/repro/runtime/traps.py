"""Crash taxonomy and stack traces.

A :class:`Trap` is the VM's analogue of an AddressSanitizer report: it names
the defect kind, the faulting source site, and the call stack.  The faulting
``(function, line, kind)`` triple is the *ground-truth bug identity* used by
the triage oracle (standing in for the paper's manual root-cause analysis),
while the stack trace feeds the stack-hash "unique crash" clustering.
"""

# Trap kinds (strings for readable reports; compared by identity in sets).
OOB_READ = "heap-buffer-overflow-read"
OOB_WRITE = "heap-buffer-overflow-write"
READONLY_WRITE = "readonly-write"
DIV_BY_ZERO = "division-by-zero"
SHIFT_RANGE = "shift-out-of-range"
BAD_ALLOC = "bad-allocation-size"
TYPE_CONFUSION = "type-confusion"
STACK_OVERFLOW = "stack-overflow"
ASSERT_FAIL = "assertion-failure"

ALL_KINDS = (
    OOB_READ,
    OOB_WRITE,
    READONLY_WRITE,
    DIV_BY_ZERO,
    SHIFT_RANGE,
    BAD_ALLOC,
    TYPE_CONFUSION,
    STACK_OVERFLOW,
    ASSERT_FAIL,
)


class Frame:
    """One stack-trace frame: the function plus the relevant source line."""

    __slots__ = ("function", "line")

    def __init__(self, function, line):
        self.function = function
        self.line = line

    def key(self):
        return (self.function, self.line)

    def __repr__(self):
        return "%s:%d" % (self.function, self.line)

    def __eq__(self, other):
        return isinstance(other, Frame) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())


class Trap(Exception):
    """A crashing execution.

    ``kind``       one of the module-level kind constants;
    ``function``   the function containing the faulting site;
    ``line``       the faulting source line;
    ``detail``     free-form description (index, size, ...);
    ``stack``      innermost-first list of :class:`Frame` (the faulting frame
                   first, then each caller at its call-site line).
    """

    def __init__(self, kind, function, line, detail, stack):
        super().__init__("%s at %s:%d (%s)" % (kind, function, line, detail))
        self.kind = kind
        self.function = function
        self.line = line
        self.detail = detail
        self.stack = stack

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``self.args`` (the
        # formatted message), which does not match this signature; crash
        # records cross process boundaries in parallel campaigns, so spell
        # out the real constructor arguments.
        return (Trap, (self.kind, self.function, self.line, self.detail, self.stack))

    def bug_id(self):
        """Ground-truth bug identity: the faulting site plus defect kind."""
        return (self.function, self.line, self.kind)

    def report(self):
        """An ASan-style multi-line textual report."""
        lines = ["ERROR: %s (%s)" % (self.kind, self.detail)]
        for depth, frame in enumerate(self.stack):
            lines.append("    #%d %s:%d" % (depth, frame.function, frame.line))
        return "\n".join(lines)


class Timeout(Exception):
    """Execution exceeded its instruction budget (a hang, not a crash)."""

    def __init__(self, budget):
        super().__init__("execution exceeded %d instructions" % budget)
        self.budget = budget

    def __reduce__(self):
        return (Timeout, (self.budget,))
