"""Hand-written lexer for MiniC.

Supports decimal and hexadecimal integer literals, character literals with
the usual escapes, double-quoted byte-string literals, ``//`` line comments
and ``/* */`` block comments.
"""

from repro.lang.errors import LexError
from repro.lang.tokens import EOF, IDENT, INT, KEYWORDS, PUNCT, STRING, Token

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
}


def tokenize(source):
    """Convert MiniC ``source`` text into a list of tokens ending with EOF.

    Raises :class:`~repro.lang.errors.LexError` on malformed input.
    """
    tokens = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit():
            tok, pos = _lex_number(source, pos, line)
            tokens.append(tok)
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            name = source[start:pos]
            if name in KEYWORDS:
                tokens.append(Token(name, name, line))
            else:
                tokens.append(Token(IDENT, name, line))
            continue
        if ch == "'":
            value, pos = _lex_char(source, pos, line)
            tokens.append(Token(INT, value, line))
            continue
        if ch == '"':
            value, pos, line = _lex_string(source, pos, line)
            tokens.append(Token(STRING, value, line))
            continue
        punct = _match_punct(source, pos)
        if punct is not None:
            tokens.append(Token(punct, punct, line))
            pos += len(punct)
            continue
        raise LexError("unexpected character %r" % ch, line)
    tokens.append(Token(EOF, None, line))
    return tokens


def _match_punct(source, pos):
    for punct in PUNCT:
        if source.startswith(punct, pos):
            return punct
    return None


def _lex_number(source, pos, line):
    length = len(source)
    start = pos
    if source.startswith("0x", pos) or source.startswith("0X", pos):
        pos += 2
        while pos < length and source[pos] in "0123456789abcdefABCDEF":
            pos += 1
        if pos == start + 2:
            raise LexError("malformed hex literal", line)
        return Token(INT, int(source[start:pos], 16), line), pos
    while pos < length and source[pos].isdigit():
        pos += 1
    if pos < length and (source[pos].isalpha() or source[pos] == "_"):
        raise LexError("malformed number %r" % source[start : pos + 1], line)
    return Token(INT, int(source[start:pos]), line), pos


def _lex_char(source, pos, line):
    # pos points at the opening quote.
    pos += 1
    if pos >= len(source):
        raise LexError("unterminated character literal", line)
    ch = source[pos]
    if ch == "\\":
        pos += 1
        if pos >= len(source) or source[pos] not in _ESCAPES:
            raise LexError("bad escape in character literal", line)
        value = _ESCAPES[source[pos]]
    else:
        value = ord(ch)
        if value > 255:
            raise LexError("non-byte character literal", line)
    pos += 1
    if pos >= len(source) or source[pos] != "'":
        raise LexError("unterminated character literal", line)
    return value, pos + 1


def _lex_string(source, pos, line):
    # pos points at the opening quote.
    pos += 1
    out = bytearray()
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == '"':
            return bytes(out), pos + 1, line
        if ch == "\n":
            raise LexError("unterminated string literal", line)
        if ch == "\\":
            pos += 1
            if pos >= length or source[pos] not in _ESCAPES:
                raise LexError("bad escape in string literal", line)
            out.append(_ESCAPES[source[pos]])
        else:
            code = ord(ch)
            if code > 255:
                raise LexError("non-byte character in string literal", line)
            out.append(code)
        pos += 1
    raise LexError("unterminated string literal", line)
