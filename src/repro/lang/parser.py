"""Recursive-descent parser for MiniC.

Grammar (EBNF, ``{}`` = repetition, ``[]`` = optional)::

    program   = { funcdef } ;
    funcdef   = "fn" IDENT "(" [ IDENT { "," IDENT } ] ")" block ;
    block     = "{" { stmt } "}" ;
    stmt      = "var" IDENT "=" expr ";"
              | "if" "(" expr ")" block [ "else" ( block | if-stmt ) ]
              | "while" "(" expr ")" block
              | "for" "(" [ simple ] ";" [ expr ] ";" [ simple ] ")" block
              | "break" ";" | "continue" ";"
              | "return" [ expr ] ";"
              | simple ";" ;
    simple    = IDENT "=" expr
              | postfix "[" expr "]" "=" expr
              | expr ;
    expr      = precedence-climbing over || && | ^ & == != < <= > >=
                << >> + - * / % ;
    unary     = ( "-" | "!" | "~" ) unary | postfix ;
    postfix   = primary { "[" expr "]" | "(" args ")" } ;
    primary   = INT | STRING | IDENT | "(" expr ")" ;

Operator precedence matches C.  ``&&`` and ``||`` short-circuit (the lowering
gives them genuine control flow).
"""

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import EOF, IDENT, INT, STRING

# Binary operator precedence, highest binds tightest.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_UNARY_OPS = ("-", "!", "~")


def parse(source):
    """Parse MiniC ``source`` into an :class:`~repro.lang.ast_nodes.Program`.

    Raises :class:`~repro.lang.errors.ParseError` (or ``LexError``) on
    malformed input.
    """
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self):
        return self._tokens[self._pos]

    def _advance(self):
        tok = self._tokens[self._pos]
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _check(self, kind):
        return self._peek().kind == kind

    def _accept(self, kind):
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind):
        tok = self._peek()
        if tok.kind != kind:
            raise ParseError(
                "expected %r, found %r" % (kind, tok.value if tok.value is not None else tok.kind),
                tok.line,
            )
        return self._advance()

    # -- grammar -----------------------------------------------------------

    def parse_program(self):
        funcs = []
        while not self._check(EOF):
            funcs.append(self._funcdef())
        return ast.Program(funcs)

    def _funcdef(self):
        start = self._expect("fn")
        name = self._expect(IDENT).value
        self._expect("(")
        params = []
        if not self._check(")"):
            params.append(self._expect(IDENT).value)
            while self._accept(","):
                params.append(self._expect(IDENT).value)
        self._expect(")")
        body = self._block()
        return ast.FuncDef(name, params, body, start.line)

    def _block(self):
        start = self._expect("{")
        stmts = []
        while not self._check("}"):
            if self._check(EOF):
                raise ParseError("unterminated block", start.line)
            stmts.append(self._stmt())
        self._expect("}")
        return ast.Block(stmts, start.line)

    def _stmt(self):
        tok = self._peek()
        if tok.kind == "var":
            return self._var_decl()
        if tok.kind == "if":
            return self._if_stmt()
        if tok.kind == "while":
            self._advance()
            self._expect("(")
            cond = self._expr()
            self._expect(")")
            body = self._block()
            return ast.While(cond, body, tok.line)
        if tok.kind == "for":
            return self._for_stmt()
        if tok.kind == "break":
            self._advance()
            self._expect(";")
            node = ast.Break(tok.line)
            return node
        if tok.kind == "continue":
            self._advance()
            self._expect(";")
            return ast.Continue(tok.line)
        if tok.kind == "return":
            self._advance()
            value = None if self._check(";") else self._expr()
            self._expect(";")
            return ast.Return(value, tok.line)
        stmt = self._simple_stmt()
        self._expect(";")
        return stmt

    def _var_decl(self):
        start = self._expect("var")
        name = self._expect(IDENT).value
        self._expect("=")
        init = self._expr()
        self._expect(";")
        return ast.VarDecl(name, init, start.line)

    def _if_stmt(self):
        start = self._expect("if")
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        then_block = self._block()
        else_block = None
        if self._accept("else"):
            if self._check("if"):
                nested = self._if_stmt()
                else_block = ast.Block([nested], nested.line)
            else:
                else_block = self._block()
        return ast.If(cond, then_block, else_block, start.line)

    def _for_stmt(self):
        start = self._expect("for")
        self._expect("(")
        init = None
        if not self._check(";"):
            if self._check("var"):
                tok = self._advance()
                name = self._expect(IDENT).value
                self._expect("=")
                init = ast.VarDecl(name, self._expr(), tok.line)
            else:
                init = self._simple_stmt()
        self._expect(";")
        cond = None if self._check(";") else self._expr()
        self._expect(";")
        step = None if self._check(")") else self._simple_stmt()
        self._expect(")")
        body = self._block()
        return ast.For(init, cond, step, body, start.line)

    def _simple_stmt(self):
        """An assignment or a bare expression (no trailing semicolon)."""
        tok = self._peek()
        expr = self._expr()
        if self._accept("="):
            value = self._expr()
            if isinstance(expr, ast.Name):
                return ast.Assign(expr.name, value, tok.line)
            if isinstance(expr, ast.Index):
                return ast.IndexAssign(expr.array, expr.index, value, tok.line)
            raise ParseError("invalid assignment target", tok.line)
        return ast.ExprStmt(expr, tok.line)

    # -- expressions -------------------------------------------------------

    def _expr(self, min_prec=1):
        left = self._unary()
        while True:
            tok = self._peek()
            prec = _PRECEDENCE.get(tok.kind)
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._expr(prec + 1)
            left = ast.BinOp(tok.kind, left, right, tok.line)

    def _unary(self):
        tok = self._peek()
        if tok.kind in _UNARY_OPS:
            self._advance()
            return ast.UnOp(tok.kind, self._unary(), tok.line)
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            tok = self._peek()
            if tok.kind == "[":
                self._advance()
                index = self._expr()
                self._expect("]")
                expr = ast.Index(expr, index, tok.line)
            elif tok.kind == "(":
                if not isinstance(expr, ast.Name):
                    raise ParseError("only named functions can be called", tok.line)
                self._advance()
                args = []
                if not self._check(")"):
                    args.append(self._expr())
                    while self._accept(","):
                        args.append(self._expr())
                self._expect(")")
                expr = ast.Call(expr.name, args, tok.line)
            else:
                return expr

    def _primary(self):
        tok = self._peek()
        if tok.kind == INT:
            self._advance()
            return ast.IntLit(tok.value, tok.line)
        if tok.kind == STRING:
            self._advance()
            return ast.StrLit(tok.value, tok.line)
        if tok.kind == IDENT:
            self._advance()
            return ast.Name(tok.value, tok.line)
        if tok.kind == "(":
            self._advance()
            expr = self._expr()
            self._expect(")")
            return expr
        raise ParseError(
            "expected expression, found %r" % (tok.value if tok.value is not None else tok.kind),
            tok.line,
        )
