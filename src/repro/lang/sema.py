"""Semantic analysis for MiniC.

Checks performed before lowering:

- function names are unique and do not collide with builtins;
- every call resolves to a user function or builtin with matching arity;
- every variable is declared (``var``) before use; block scoping with
  shadowing is allowed, but re-declaring a name in the same block is not;
- assignment targets are declared variables;
- ``break``/``continue`` appear only inside loops;
- function parameters are unique.

Raises :class:`~repro.lang.errors.SemaError` on the first violation.
"""

from repro.lang import ast_nodes as ast
from repro.lang.builtins_spec import BUILTINS
from repro.lang.errors import SemaError


def check_program(program):
    """Validate ``program`` (an :class:`ast.Program`).  Returns None."""
    funcs = {}
    for func in program.funcs:
        if func.name in BUILTINS:
            raise SemaError(
                "function %r shadows a builtin" % func.name, func.line
            )
        if func.name in funcs:
            raise SemaError("duplicate function %r" % func.name, func.line)
        funcs[func.name] = func
    for func in program.funcs:
        _FuncChecker(func, funcs).run()


class _FuncChecker:
    def __init__(self, func, funcs):
        self._func = func
        self._funcs = funcs
        self._scopes = []
        self._loop_depth = 0

    def run(self):
        seen = set()
        for param in self._func.params:
            if param in seen:
                raise SemaError(
                    "duplicate parameter %r in %r" % (param, self._func.name),
                    self._func.line,
                )
            seen.add(param)
        self._scopes.append(set(self._func.params))
        self._check_block(self._func.body, new_scope=False)
        self._scopes.pop()

    # -- scope helpers -----------------------------------------------------

    def _declare(self, name, line):
        if name in self._scopes[-1]:
            raise SemaError("re-declaration of %r" % name, line)
        self._scopes[-1].add(name)

    def _is_declared(self, name):
        return any(name in scope for scope in self._scopes)

    # -- statements --------------------------------------------------------

    def _check_block(self, block, new_scope=True):
        if new_scope:
            self._scopes.append(set())
        for stmt in block.stmts:
            self._check_stmt(stmt)
        if new_scope:
            self._scopes.pop()

    def _check_stmt(self, stmt):
        if isinstance(stmt, ast.VarDecl):
            self._check_expr(stmt.init)
            self._declare(stmt.name, stmt.line)
        elif isinstance(stmt, ast.Assign):
            if not self._is_declared(stmt.name):
                raise SemaError("assignment to undeclared %r" % stmt.name, stmt.line)
            self._check_expr(stmt.value)
        elif isinstance(stmt, ast.IndexAssign):
            self._check_expr(stmt.array)
            self._check_expr(stmt.index)
            self._check_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond)
            self._check_block(stmt.then_block)
            if stmt.else_block is not None:
                self._check_block(stmt.else_block)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond)
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self._scopes.append(set())
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_expr(stmt.cond)
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
            if stmt.step is not None:
                self._check_stmt(stmt.step)
            self._scopes.pop()
        elif isinstance(stmt, ast.Break):
            if self._loop_depth == 0:
                raise SemaError("break outside loop", stmt.line)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise SemaError("continue outside loop", stmt.line)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        else:  # pragma: no cover - parser produces no other statement kinds
            raise SemaError("unknown statement %r" % stmt, stmt.line)

    # -- expressions -------------------------------------------------------

    def _check_expr(self, expr):
        if isinstance(expr, (ast.IntLit, ast.StrLit)):
            return
        if isinstance(expr, ast.Name):
            if not self._is_declared(expr.name):
                raise SemaError("use of undeclared %r" % expr.name, expr.line)
            return
        if isinstance(expr, ast.BinOp):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return
        if isinstance(expr, ast.UnOp):
            self._check_expr(expr.operand)
            return
        if isinstance(expr, ast.Index):
            self._check_expr(expr.array)
            self._check_expr(expr.index)
            return
        if isinstance(expr, ast.Call):
            self._check_call(expr)
            return
        raise SemaError("unknown expression %r" % expr, expr.line)

    def _check_call(self, call):
        if call.callee in BUILTINS:
            expected = BUILTINS[call.callee]
        elif call.callee in self._funcs:
            expected = len(self._funcs[call.callee].params)
        else:
            raise SemaError("call to unknown function %r" % call.callee, call.line)
        if len(call.args) != expected:
            raise SemaError(
                "%r expects %d argument(s), got %d"
                % (call.callee, expected, len(call.args)),
                call.line,
            )
        for arg in call.args:
            self._check_expr(arg)
