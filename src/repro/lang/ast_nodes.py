"""AST node classes for MiniC.

Every node records the 1-based source ``line`` of the token that introduced
it; the CFG lowering propagates lines onto instructions so that crash sites
(and hence ground-truth bug identities) are stable source locations.
"""


class Node:
    """Base class for AST nodes (equality by type + fields, for tests)."""

    __slots__ = ("line",)
    _fields = ()

    def __init__(self, line):
        self.line = line

    def children(self):
        """Yield the values of this node's declared fields (for traversals)."""
        for name in self._fields:
            yield getattr(self, name)

    def __eq__(self, other):
        if type(self) is not type(other):
            return False
        return all(
            getattr(self, name) == getattr(other, name) for name in self._fields
        )

    def __hash__(self):
        return hash((type(self),) + tuple(repr(c) for c in self.children()))

    def __repr__(self):
        parts = ", ".join("%s=%r" % (n, getattr(self, n)) for n in self._fields)
        return "%s(%s)" % (type(self).__name__, parts)


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


class Program(Node):
    """A whole translation unit: a list of :class:`FuncDef`."""

    __slots__ = ("funcs",)
    _fields = ("funcs",)

    def __init__(self, funcs, line=1):
        super().__init__(line)
        self.funcs = funcs


class FuncDef(Node):
    """``fn name(params) { body }``; ``body`` is a :class:`Block`."""

    __slots__ = ("name", "params", "body")
    _fields = ("name", "params", "body")

    def __init__(self, name, params, body, line):
        super().__init__(line)
        self.name = name
        self.params = params
        self.body = body


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class Block(Node):
    """A brace-delimited statement list."""

    __slots__ = ("stmts",)
    _fields = ("stmts",)

    def __init__(self, stmts, line):
        super().__init__(line)
        self.stmts = stmts


class VarDecl(Node):
    """``var name = init;`` — introduces ``name`` in the enclosing scope."""

    __slots__ = ("name", "init")
    _fields = ("name", "init")

    def __init__(self, name, init, line):
        super().__init__(line)
        self.name = name
        self.init = init


class Assign(Node):
    """``name = value;``"""

    __slots__ = ("name", "value")
    _fields = ("name", "value")

    def __init__(self, name, value, line):
        super().__init__(line)
        self.name = name
        self.value = value


class IndexAssign(Node):
    """``array[index] = value;``"""

    __slots__ = ("array", "index", "value")
    _fields = ("array", "index", "value")

    def __init__(self, array, index, value, line):
        super().__init__(line)
        self.array = array
        self.index = index
        self.value = value


class If(Node):
    """``if (cond) then_block else else_part`` (``else_part`` may be None)."""

    __slots__ = ("cond", "then_block", "else_block")
    _fields = ("cond", "then_block", "else_block")

    def __init__(self, cond, then_block, else_block, line):
        super().__init__(line)
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block


class While(Node):
    """``while (cond) body``"""

    __slots__ = ("cond", "body")
    _fields = ("cond", "body")

    def __init__(self, cond, body, line):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Node):
    """``for (init; cond; step) body`` — each header part may be None."""

    __slots__ = ("init", "cond", "step", "body")
    _fields = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, line):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Break(Node):
    """``break;``"""

    __slots__ = ()


class Continue(Node):
    """``continue;``"""

    __slots__ = ()


class Return(Node):
    """``return expr;`` or ``return;`` (value None)."""

    __slots__ = ("value",)
    _fields = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class ExprStmt(Node):
    """An expression evaluated for its side effects (typically a call)."""

    __slots__ = ("expr",)
    _fields = ("expr",)

    def __init__(self, expr, line):
        super().__init__(line)
        self.expr = expr


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class IntLit(Node):
    """Integer (or character) literal."""

    __slots__ = ("value",)
    _fields = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class StrLit(Node):
    """Byte-string literal; evaluates to a read-only global byte array."""

    __slots__ = ("value",)
    _fields = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class Name(Node):
    """A variable reference."""

    __slots__ = ("name",)
    _fields = ("name",)

    def __init__(self, name, line):
        super().__init__(line)
        self.name = name


class BinOp(Node):
    """``left op right`` — op is the surface spelling (``+``, ``&&``, ...)."""

    __slots__ = ("op", "left", "right")
    _fields = ("op", "left", "right")

    def __init__(self, op, left, right, line):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class UnOp(Node):
    """``op operand`` — op is one of ``-``, ``!``, ``~``."""

    __slots__ = ("op", "operand")
    _fields = ("op", "operand")

    def __init__(self, op, operand, line):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Index(Node):
    """``array[index]`` load."""

    __slots__ = ("array", "index")
    _fields = ("array", "index")

    def __init__(self, array, index, line):
        super().__init__(line)
        self.array = array
        self.index = index


class Call(Node):
    """``callee(args...)`` — a user function or a builtin."""

    __slots__ = ("callee", "args")
    _fields = ("callee", "args")

    def __init__(self, callee, args, line):
        super().__init__(line)
        self.callee = callee
        self.args = args
