"""MiniC front-end: lexer, parser, semantic checks, and compilation driver."""

from repro.cfg.lowering import lower_program
from repro.cfg.optimize import optimize_program
from repro.lang.errors import LexError, MiniCError, ParseError, SemaError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.sema import check_program

__all__ = [
    "compile_source",
    "tokenize",
    "parse",
    "check_program",
    "MiniCError",
    "LexError",
    "ParseError",
    "SemaError",
]


def compile_source(source, name="<program>", optimize=True, verify=True):
    """Compile MiniC ``source`` into a validated ProgramCFG.

    Pipeline: lex -> parse -> semantic checks -> CFG lowering ->
    (optionally) middle-end cleanups -> validation.  This mirrors the paper's
    setup where path instrumentation runs after the optimizer, on the final
    CFG shape.

    With ``verify`` (the default) the full IR verifier runs after lowering
    and again after optimization, together with the trap-site preservation
    check: optimizer bugs fail compilation instead of silently corrupting
    bug identities downstream.
    """
    program_ast = parse(source)
    check_program(program_ast)
    program = lower_program(program_ast, name)
    if verify:
        # Imported lazily: repro.analysis.verify depends on this package
        # for the builtin spec.
        from repro.analysis.verify import (
            check_trap_preservation,
            trap_signature,
            verify_program,
        )

        verify_program(program)
        if optimize:
            before = trap_signature(program)
            optimize_program(program)
            verify_program(program)
            check_trap_preservation(before, trap_signature(program), name)
    elif optimize:
        optimize_program(program)
    program.validate()
    return program
