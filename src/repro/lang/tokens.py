"""Token definitions for MiniC.

A token is a lightweight value object ``Token(kind, value, line)``.  Kinds are
interned strings; keyword and punctuation kinds equal their spelling (so the
parser can say ``expect("while")`` or ``expect("{")``).
"""

# Token kinds that carry a payload.
INT = "INT"  # integer literal; value is the int
STRING = "STRING"  # string literal; value is the bytes
IDENT = "IDENT"  # identifier; value is the name
EOF = "EOF"

KEYWORDS = frozenset(
    ["fn", "var", "if", "else", "while", "for", "break", "continue", "return"]
)

# Multi-character punctuation, longest first so the lexer can greedily match.
PUNCT = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~",
    "&", "|", "^", "(", ")", "{", "}", "[", "]", ",", ";",
]


class Token:
    """One lexical token: ``kind`` (see module docstring), ``value``, ``line``."""

    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token(%r, %r, line=%d)" % (self.kind, self.value, self.line)

    def __eq__(self, other):
        return (
            isinstance(other, Token)
            and self.kind == other.kind
            and self.value == other.value
            and self.line == other.line
        )

    def __hash__(self):
        return hash((self.kind, self.value, self.line))
