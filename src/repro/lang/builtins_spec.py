"""The MiniC builtin-function surface.

Builtins are the VM's "libc": array allocation, bounded memory helpers, and
small arithmetic utilities.  Each entry maps the surface name to its arity.
All memory-touching builtins are bounds-checked by the runtime and therefore
are potential crash sites, exactly like a C program under AddressSanitizer.

``memcmp`` additionally feeds the cmplog (input-to-state) channel when the
engine runs a logging execution, mirroring AFL++'s cmplog shared library.
"""

# name -> number of arguments.  All builtins produce a value (possibly 0).
BUILTINS = {
    # core
    "alloc": 1,  # alloc(n) -> fresh zeroed array of n bytes/ints
    "len": 1,  # len(a) -> element count
    "abs": 1,
    "min": 2,
    "max": 2,
    # bounded memory helpers (each a potential ASan-style trap site)
    "memcmp": 5,  # memcmp(a, aoff, b, boff, n) -> 0 if equal else 1
    "copy": 5,  # copy(dst, doff, src, soff, n) -> 0
    "fill": 4,  # fill(a, off, n, value) -> 0
    # big/little-endian scalar reads
    "read16": 2,
    "read32": 2,
    "read16le": 2,
    "read32le": 2,
    # explicit abort (models assert()/abort() reachable defects)
    "trap": 1,
}

# Stable small integer codes used by the instruction encoding and the VM.
BUILTIN_CODES = {name: code for code, name in enumerate(sorted(BUILTINS))}
BUILTIN_NAMES = {code: name for name, code in BUILTIN_CODES.items()}
