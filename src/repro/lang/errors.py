"""Diagnostics for the MiniC front-end."""


class MiniCError(Exception):
    """Base class for every front-end diagnostic.

    Carries the 1-based source ``line`` the diagnostic points at (0 when the
    location is unknown, e.g. an end-of-file error discovered past the last
    token).
    """

    def __init__(self, message, line=0):
        super().__init__(message if not line else "line %d: %s" % (line, message))
        self.message = message
        self.line = line


class LexError(MiniCError):
    """Raised on malformed input at the character level."""


class ParseError(MiniCError):
    """Raised on a syntax error."""


class SemaError(MiniCError):
    """Raised on a semantic error (unknown names, bad arity, misplaced break)."""
