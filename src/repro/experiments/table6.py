"""Table VI (Appendix B): median per-run unique bugs.

The paper complements the cumulative Table II with per-run medians; the
trends (cull ahead, path close behind pcguard) should survive, if less
crisply.  Pairwise intersection/subtraction cells are computed per run and
then the median across runs is reported.
"""

from repro.experiments.runner import profile_runs, profile_subjects, run_matrix
from repro.experiments.tables import median, render_table

HOURS = 48
CONFIGS = ["path", "pcguard", "cull", "opp"]

PAIR_COLUMNS = [
    ("cap", "path", "pcguard"),
    ("cap", "cull", "pcguard"),
    ("cap", "opp", "pcguard"),
    ("diff", "path", "pcguard"),
    ("diff", "pcguard", "path"),
    ("diff", "cull", "pcguard"),
    ("diff", "pcguard", "cull"),
    ("diff", "opp", "pcguard"),
    ("diff", "cull", "opp"),
]


def collect(subjects=None, runs=None):
    subjects = profile_subjects() if subjects is None else subjects
    runs = profile_runs() if runs is None else runs
    results = run_matrix(CONFIGS, HOURS, subjects, runs)
    return results, subjects, runs


def render(data=None):
    if data is None:
        data = collect()
    results, subjects, runs = data
    headers = ["Benchmark"] + CONFIGS + [
        ("%s∩%s" if op == "cap" else "%s\\%s") % (a, b) for op, a, b in PAIR_COLUMNS
    ]
    rows = []
    col_totals = [0] * (len(CONFIGS) + len(PAIR_COLUMNS))
    for subject in subjects:
        row = [subject]
        values = []
        for config in CONFIGS:
            values.append(
                median([len(results[(subject, config, r)].bugs) for r in range(runs)])
            )
        for op, a, b in PAIR_COLUMNS:
            per_run = []
            for r in range(runs):
                sa = results[(subject, a, r)].bugs
                sb = results[(subject, b, r)].bugs
                per_run.append(len(sa & sb) if op == "cap" else len(sa - sb))
            values.append(median(per_run))
        row.extend(values)
        rows.append(row)
        for i, v in enumerate(values):
            col_totals[i] += v
    rows.append(["TOTAL"] + col_totals)
    return render_table(
        headers, rows, title="Table VI: median unique bugs per run"
    )


if __name__ == "__main__":
    print(render())
