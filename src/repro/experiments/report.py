"""Full evaluation report: regenerate every table and figure in one run.

Usage::

    python -m repro.experiments.report            # all artifacts
    python -m repro.experiments.report table2 fig2

Honours the REPRO_SCALE / REPRO_RUNS / REPRO_SUBJECTS environment knobs and
shares campaigns across tables through the runner cache.
"""

import sys
import time

from repro.experiments import (
    fig2,
    opp_recovery,
    sensitivity,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7_9,
    table10,
)


def _table2_block():
    data = table2.collect()
    return table2.render(data) + "\n\n" + table2.render_venn(data)


def _table7_9_block():
    data = table7_9.collect()
    return "\n\n".join(
        [
            table7_9.render_table7(data),
            table7_9.render_table8(data),
            table7_9.render_table9(data),
        ]
    )


ARTIFACTS = {
    "table1": lambda: table1.render(),
    "table2": _table2_block,
    "table3": lambda: table3.render(),
    "table4": lambda: table4.render(),
    "table5": lambda: table5.render(),
    "table6": lambda: table6.render(),
    "table7_9": _table7_9_block,
    "table10": lambda: table10.render(),
    "fig2": lambda: fig2.render(),
    "sensitivity": lambda: sensitivity.render(),
    "opp_recovery": lambda: opp_recovery.render(),
}


def main(argv):
    wanted = argv or list(ARTIFACTS)
    for name in wanted:
        if name not in ARTIFACTS:
            raise SystemExit("unknown artifact %r (choose from %s)" % (name, list(ARTIFACTS)))
    for name in wanted:
        start = time.time()
        print("=" * 72)
        print(ARTIFACTS[name]())
        print("[%s took %.1fs]" % (name, time.time() - start))
        print()


if __name__ == "__main__":
    main(sys.argv[1:])
