"""``repro bench``: wall-clock throughput of the execution backends.

Measures executions/second and virtual ticks/second per subject for the
interpreter and the compiled backend over the same input set, reports the
per-subject speedup and its geometric mean, and writes a ``BENCH_<date>.json``
record.  The regression gate compares *speedups* (compiled relative to the
interpreter measured in the same process moments apart), not raw rates:
absolute execs/sec shift with the host machine, while the ratio is stable
enough to gate in CI.

Methodology notes (kept honest on purpose):

- Inputs are each subject's seeds grown to ``max_input_len`` by doubling —
  deterministic, and deep enough that the measurement is not dominated by
  argument shuffling on near-empty inputs.
- Both backends are warmed (compilation, caches) before timing.
- Timing interleaves best-of-``repeats`` passes per backend, which
  suppresses thermal / scheduler drift: a slow machine moment hurts one
  pass, not one backend.
- The default feedback is ``path`` (the paper's core instrumentation);
  probe pruning is applied where sound (pure-HIT feedbacks), since that is
  how the compiled backend actually runs in campaigns.
"""

import json
import os
import time
from time import perf_counter as _perf_counter

from repro.coverage.feedback import feedback_by_name
from repro.coverage.prune import build_prune_plan
from repro.runtime.backend import make_backend
from repro.runtime.compiler import compile_program
from repro.subjects import SUITE_NAMES, get_subject

DEFAULT_FEEDBACK = "path"
DEFAULT_REPEATS = 3
DEFAULT_MIN_SECONDS = 0.25
QUICK_MIN_SECONDS = 0.08
QUICK_REPEATS = 2
DEFAULT_GATE_PCT = 10.0


def grow_inputs(subject, limit=4):
    """Deterministic bench corpus: seeds doubled up to the input cap."""
    grown = []
    for seed in list(subject.seeds)[:limit]:
        data = bytes(seed)
        if not data:
            continue
        while len(data) * 2 <= subject.max_input_len:
            data += data
        grown.append(data[: subject.max_input_len])
    return grown or [b"A" * subject.max_input_len]


def _measure(execute, inputs, min_seconds):
    """One timing pass: (execs/sec, ticks/sec) over >= min_seconds."""
    execs = 0
    ticks = 0
    start = _perf_counter()
    while True:
        for data in inputs:
            result = execute(data)
            ticks += result.virtual_cost
            execs += 1
        elapsed = _perf_counter() - start
        if elapsed >= min_seconds:
            return execs / elapsed, ticks / elapsed


def bench_subject(
    name,
    feedback=DEFAULT_FEEDBACK,
    repeats=DEFAULT_REPEATS,
    min_seconds=DEFAULT_MIN_SECONDS,
):
    """Best-of-``repeats`` interleaved measurement of one subject.

    Returns a dict with per-backend rates and the compiled/interp speedup.
    """
    subject = get_subject(name)
    program = subject.program
    instrumentation = feedback_by_name(feedback).instrument(program)
    prune = build_prune_plan(program, instrumentation)
    interp = make_backend(program, instrumentation, backend="interp")
    compiled = compile_program(program, instrumentation, prune)
    inputs = grow_inputs(subject)
    # Warm both sides: compilation, code caches, allocator pools.
    for data in inputs:
        interp.execute(data)
        compiled.execute(data)
    interp_execs = interp_ticks = 0.0
    compiled_execs = compiled_ticks = 0.0
    for _ in range(repeats):
        execs, ticks = _measure(interp.execute, inputs, min_seconds)
        if execs > interp_execs:
            interp_execs, interp_ticks = execs, ticks
        execs, ticks = _measure(compiled.execute, inputs, min_seconds)
        if execs > compiled_execs:
            compiled_execs, compiled_ticks = execs, ticks
    return {
        "subject": name,
        "feedback": feedback,
        "pruned_probes": prune.dropped if prune is not None else 0,
        "interp": {"execs_per_sec": interp_execs, "ticks_per_sec": interp_ticks},
        "compiled": {
            "execs_per_sec": compiled_execs,
            "ticks_per_sec": compiled_ticks,
        },
        "speedup": compiled_execs / interp_execs if interp_execs else 0.0,
    }


def geomean(values):
    product = 1.0
    values = list(values)
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def run_bench(
    subjects=None,
    feedback=DEFAULT_FEEDBACK,
    quick=False,
    repeats=None,
    progress=None,
):
    """Bench every subject; returns the full report dict."""
    subjects = list(subjects) if subjects else list(SUITE_NAMES)
    if repeats is None:
        repeats = QUICK_REPEATS if quick else DEFAULT_REPEATS
    min_seconds = QUICK_MIN_SECONDS if quick else DEFAULT_MIN_SECONDS
    rows = []
    for name in subjects:
        row = bench_subject(
            name, feedback=feedback, repeats=repeats, min_seconds=min_seconds
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    return {
        "date": time.strftime("%Y-%m-%d"),
        "feedback": feedback,
        "quick": quick,
        "repeats": repeats,
        "subjects": rows,
        "geomean_speedup": geomean(row["speedup"] for row in rows),
    }


def write_report(report, out_dir="."):
    """Write ``BENCH_<date>.json`` under ``out_dir``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_%s.json" % report["date"])
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def baseline_from_report(report):
    """The committed-baseline shape: speedups only (machine-portable)."""
    return {
        "feedback": report["feedback"],
        "speedups": {
            row["subject"]: round(row["speedup"], 3) for row in report["subjects"]
        },
        "geomean_speedup": round(report["geomean_speedup"], 3),
    }


def check_against_baseline(report, baseline, gate_pct=DEFAULT_GATE_PCT):
    """Gate the report's speedups against a committed baseline.

    A subject fails when its measured speedup drops more than ``gate_pct``
    percent below the baseline's; the geomean is gated the same way.
    Subjects absent from the baseline are ignored (new subjects should not
    fail the gate until the baseline is refreshed).  Returns a list of
    failure strings (empty = pass).
    """
    failures = []
    allowed = 1.0 - gate_pct / 100.0
    baseline_speedups = baseline.get("speedups", {})
    for row in report["subjects"]:
        expected = baseline_speedups.get(row["subject"])
        if expected is None:
            continue
        if row["speedup"] < expected * allowed:
            failures.append(
                "%s: speedup %.2fx is more than %.0f%% below baseline %.2fx"
                % (row["subject"], row["speedup"], gate_pct, expected)
            )
    expected = baseline.get("geomean_speedup")
    if expected is not None and report["geomean_speedup"] < expected * allowed:
        failures.append(
            "geomean: %.2fx is more than %.0f%% below baseline %.2fx"
            % (report["geomean_speedup"], gate_pct, expected)
        )
    return failures


def format_row(row):
    return "%-14s interp %9.0f/s %12.0f t/s   compiled %9.0f/s %12.0f t/s   %5.2fx" % (
        row["subject"],
        row["interp"]["execs_per_sec"],
        row["interp"]["ticks_per_sec"],
        row["compiled"]["execs_per_sec"],
        row["compiled"]["ticks_per_sec"],
        row["speedup"],
    )
