"""Table II + Figure 3: unique bugs and unique crashes per fuzzer.

Cumulative (union across runs) unique bugs and unique crashes for the four
main fuzzers, with the paper's pairwise intersections/subtractions and the
Venn-region counts of Figure 3.  These are the headline results: the paper
reports cull > pcguard in total bugs (+10.1%), path finding 14 bugs pcguard
misses, and opp contributing bugs neither baseline exposes.
"""

from repro.experiments.runner import (
    cumulative_bugs,
    cumulative_crashes,
    profile_runs,
    profile_subjects,
    run_matrix,
)
from repro.experiments.tables import render_table
from repro.triage.report import venn_regions

HOURS = 48
CONFIGS = ["path", "pcguard", "cull", "opp"]

# The pairwise columns of the paper's Table II, as (op, a, b) descriptors.
PAIR_COLUMNS = [
    ("cap", "path", "pcguard"),
    ("cap", "cull", "pcguard"),
    ("cap", "opp", "pcguard"),
    ("cap", "opp", "cull"),
    ("diff", "path", "pcguard"),
    ("diff", "pcguard", "path"),
    ("diff", "cull", "pcguard"),
    ("diff", "pcguard", "cull"),
    ("diff", "opp", "pcguard"),
    ("diff", "pcguard", "opp"),
    ("diff", "opp", "cull"),
    ("diff", "cull", "opp"),
]


def collect(subjects=None, runs=None, hours=HOURS, configs=None):
    """Raw sets: (bugs, crashes) keyed by (subject, config)."""
    subjects = profile_subjects() if subjects is None else subjects
    runs = profile_runs() if runs is None else runs
    configs = CONFIGS if configs is None else configs
    results = run_matrix(configs, hours, subjects, runs)
    bugs = cumulative_bugs(results, subjects, configs, runs)
    crashes = cumulative_crashes(results, subjects, configs, runs)
    return bugs, crashes, subjects, configs


def totals(bugs, subjects, configs):
    """Whole-suite union per config, namespaced by subject.

    Works for both bug-id tuples and crash-hash strings.
    """
    out = {}
    for config in configs:
        union = set()
        for subject in subjects:
            union |= {(subject, b) for b in bugs[(subject, config)]}
        out[config] = union
    return out


def _cell(op, sets_a, sets_b):
    if op == "cap":
        return len(sets_a & sets_b)
    return len(sets_a - sets_b)


def render(data=None):
    if data is None:
        data = collect()
    bugs, crashes, subjects, configs = data
    headers = ["Benchmark"] + configs + [
        ("%s∩%s" if op == "cap" else "%s\\%s") % (a, b)
        for op, a, b in PAIR_COLUMNS
    ]
    rows = []
    for subject in subjects:
        row = [subject]
        for config in configs:
            row.append(
                "%d (%d)"
                % (len(bugs[(subject, config)]), len(crashes[(subject, config)]))
            )
        for op, a, b in PAIR_COLUMNS:
            row.append(_cell(op, bugs[(subject, a)], bugs[(subject, b)]))
        rows.append(row)
    total_bugs = totals(bugs, subjects, configs)
    total_crashes = totals(crashes, subjects, configs)
    total_row = ["TOTAL"]
    for config in configs:
        total_row.append(
            "%d (%d)" % (len(total_bugs[config]), len(total_crashes[config]))
        )
    for op, a, b in PAIR_COLUMNS:
        total_row.append(_cell(op, total_bugs[a], total_bugs[b]))
    rows.append(total_row)
    return render_table(
        headers,
        rows,
        title="Table II: unique bugs (unique crashes) cumulatively across runs",
    )


def render_venn(data=None):
    """Figure 3: Venn-region counts for the fuzzer set relations."""
    if data is None:
        data = collect()
    bugs, _, subjects, configs = data
    total = totals(bugs, subjects, configs)
    blocks = []
    for group in (("path", "pcguard"), ("cull", "opp", "pcguard"), ("path", "cull", "opp")):
        if not all(g in configs for g in group):
            continue
        regions = venn_regions(total, group)
        lines = ["Figure 3 (%s):" % " vs ".join(group)]
        for membership, count in sorted(
            regions.items(), key=lambda kv: (-len(kv[0]), sorted(kv[0]))
        ):
            lines.append("  exactly {%s}: %d" % (" & ".join(sorted(membership)), count))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


if __name__ == "__main__":
    data = collect()
    print(render(data))
    print()
    print(render_venn(data))
