"""Table I: subject statistics — queue items after 24-hour fuzzing.

For every subject: function count, and the queue size after a 24 h campaign
with the edge feedback vs. the path-aware feedback (median across runs).
The paper's observation: path queues range from slightly larger to
dramatically larger depending on the subject's loop/branch structure.
"""

from repro.experiments.runner import profile_runs, profile_subjects, run_matrix
from repro.experiments.tables import median, render_table
from repro.subjects import get_subject

HOURS = 24
CONFIGS = ["pcguard", "path"]


def collect(subjects=None, runs=None):
    """Raw data: {subject: (functions, edge_queue, path_queue)}."""
    subjects = profile_subjects() if subjects is None else subjects
    runs = profile_runs() if runs is None else runs
    results = run_matrix(CONFIGS, HOURS, subjects, runs)
    data = {}
    for name in subjects:
        functions = get_subject(name).program.stats()["functions"]
        edge_q = median(
            [results[(name, "pcguard", r)].queue_size for r in range(runs)]
        )
        path_q = median([results[(name, "path", r)].queue_size for r in range(runs)])
        data[name] = (functions, edge_q, path_q)
    return data


def render(data=None):
    data = collect() if data is None else data
    rows = []
    for name, (functions, edge_q, path_q) in data.items():
        rows.append([name, functions, edge_q, path_q, path_q / max(edge_q, 1)])
    rows.append(
        [
            "TOTAL",
            sum(r[1] for r in rows),
            sum(r[2] for r in rows),
            sum(r[3] for r in rows),
            sum(r[3] for r in rows) / max(sum(r[2] for r in rows), 1),
        ]
    )
    return render_table(
        ["Benchmark", "Functions", "Queue (edge)", "Queue (path)", "ratio"],
        rows,
        title="Table I: queue items after 24-hour fuzzing (median of runs)",
    )


if __name__ == "__main__":
    print(render())
