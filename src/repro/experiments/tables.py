"""ASCII table rendering + small statistics helpers for the experiments."""

import math


def render_table(headers, rows, title=None):
    """Fixed-width table; numeric cells are right-aligned."""
    columns = [[str(h) for h in headers]] + [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [max(len(col[i]) for col in columns) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(columns[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in columns[1:]:
        cells = []
        for text, width in zip(row, widths):
            if _is_number(text):
                cells.append(text.rjust(width))
            else:
                cells.append(text.ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _fmt(cell):
    if isinstance(cell, float):
        return "%.2f" % cell
    return str(cell)


def _is_number(text):
    try:
        float(text)
        return True
    except ValueError:
        return False


def geomean(values):
    """Geometric mean of positive values (0.0 for an empty list)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 0.0
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


def median(values):
    """Median (lower of the two middles for even counts, like AFL stats)."""
    ordered = sorted(values)
    if not ordered:
        return 0
    return ordered[(len(ordered) - 1) // 2]
