"""Opportunistic bug recovery (paper Sec. V-A).

The paper removes phase-1 crashing inputs before the opportunistic switch
and then asks how many of the edge phase's bugs the path phase *recovers*
on its own: 65 of 76 (85.5%) in their campaigns.  This experiment measures
the analogous recovery rate: bugs found by the pcguard half versus bugs the
opp configuration (whose credited findings come only from the path phase)
re-discovers.
"""

from repro.experiments.runner import (
    profile_runs,
    profile_subjects,
    run_matrix,
)
from repro.experiments.tables import render_table

HOURS = 48
PHASE_HOURS = 24  # the edge phase of the opportunistic split


def collect(subjects=None, runs=None):
    subjects = profile_subjects() if subjects is None else subjects
    runs = profile_runs() if runs is None else runs
    opp_results = run_matrix(["opp"], HOURS, subjects, runs)
    phase_results = run_matrix(["pcguard"], PHASE_HOURS, subjects, runs)
    data = {}
    for subject in subjects:
        phase_bugs = set()
        opp_bugs = set()
        for run_seed in range(runs):
            phase_bugs |= phase_results[(subject, "pcguard", run_seed)].bugs
            opp_bugs |= opp_results[(subject, "opp", run_seed)].bugs
        data[subject] = (phase_bugs, opp_bugs)
    return data


def render(data=None):
    data = collect() if data is None else data
    rows = []
    total_phase = 0
    total_recovered = 0
    total_extra = 0
    for subject, (phase_bugs, opp_bugs) in data.items():
        recovered = len(phase_bugs & opp_bugs)
        extra = len(opp_bugs - phase_bugs)
        total_phase += len(phase_bugs)
        total_recovered += recovered
        total_extra += extra
        rate = 100.0 * recovered / len(phase_bugs) if phase_bugs else 100.0
        rows.append([subject, len(phase_bugs), recovered, rate, extra])
    total_rate = 100.0 * total_recovered / total_phase if total_phase else 100.0
    rows.append(["TOTAL", total_phase, total_recovered, total_rate, total_extra])
    return render_table(
        ["Benchmark", "edge-phase bugs", "recovered by opp", "recovery %",
         "extra opp bugs"],
        rows,
        title="Opportunistic recovery (paper: 65/76 = 85.5%)",
    )


if __name__ == "__main__":
    print(render())
