"""Culling-round sensitivity study (the paper's footnote 2).

Sweeps the culling-round length over {3, 6, 12} hours of a 48-hour budget.
The paper found 3 h and 6 h comparable (6 h slightly ahead) and 12 h
detrimental.  This uses dedicated configs outside FUZZER_CONFIGS so the
main tables stay untouched.
"""

from repro.coverage.feedback import PathFeedback
from repro.experiments.config import campaign_rng
from repro.experiments.runner import profile_runs, profile_scale
from repro.experiments.tables import render_table
from repro.fuzzer.campaign import result_from_engines
from repro.fuzzer.clock import hours_to_ticks
from repro.fuzzer.engine import EngineConfig
from repro.strategies.culling import run_culling_campaign
from repro.subjects import get_subject

HOURS = 48
ROUND_HOURS = (3, 6, 12)
DEFAULT_SUBJECTS = ("pdftotext", "gdk", "objdump", "cflow")


def run_one(subject_name, round_hours, run_seed):
    subject = get_subject(subject_name)
    scale = profile_scale()
    config = EngineConfig(
        max_input_len=subject.max_input_len,
        exec_instr_budget=subject.exec_instr_budget,
    )
    rng = campaign_rng(subject_name, "cull%dh" % round_hours, run_seed)
    engines, final = run_culling_campaign(
        subject,
        PathFeedback,
        hours_to_ticks(HOURS, scale),
        hours_to_ticks(round_hours, scale),
        rng,
        config,
        criterion="edges",
    )
    return result_from_engines(
        subject, "cull%dh" % round_hours, run_seed, engines, final
    )


def collect(subjects=DEFAULT_SUBJECTS, runs=None):
    runs = profile_runs() if runs is None else runs
    data = {}
    for subject_name in subjects:
        per_round = {}
        for round_hours in ROUND_HOURS:
            bugs = set()
            for run_seed in range(runs):
                bugs |= run_one(subject_name, round_hours, run_seed).bugs
            per_round[round_hours] = bugs
        data[subject_name] = per_round
    return data


def render(data=None):
    data = collect() if data is None else data
    rows = []
    totals = {h: 0 for h in ROUND_HOURS}
    for subject, per_round in data.items():
        row = [subject] + [len(per_round[h]) for h in ROUND_HOURS]
        for h in ROUND_HOURS:
            totals[h] += len(per_round[h])
        rows.append(row)
    rows.append(["TOTAL"] + [totals[h] for h in ROUND_HOURS])
    return render_table(
        ["Benchmark"] + ["%dh rounds" % h for h in ROUND_HOURS],
        rows,
        title="Sensitivity: culling-round length (cumulative unique bugs)",
    )


if __name__ == "__main__":
    print(render())
