"""Fuzzer configurations and the single-campaign entry point.

``FUZZER_CONFIGS`` names every configuration evaluated in the paper plus
the extensions:

==============  ============================================================
``pcguard``     AFL++-like engine, edge-coverage feedback (the baseline)
``path``        same engine, Ball-Larus path-aware feedback (Sec. III-A)
``cull``        path + round-based edge-preserving culling (Sec. III-B1)
``cull_r``      path + random culling (Appendix D ablation)
``cull_paths``  path + path-identity culling (the footnote's inferior pick)
``opp``         edge phase then path phase, 50/50 split (Sec. III-B2)
``pathafl``     AFL-like engine + PathAFL-style h-path feedback (App. C)
``afl``         AFL-like engine + edge feedback (App. C baseline)
``ngram4``      AFL++-like engine + 4-gram feedback (related work)
``block``       AFL++-like engine + block coverage (weakest feedback)
``path2gram``   path + 2-grams of consecutive acyclic paths (Sec. VII)
``taint``       pcguard + taint-guided rare-branch targeting (DESIGN §12)
``concolic``    taint + plateau-triggered concolic solving (DESIGN §14)
==============  ============================================================

The paper's timing ratios are preserved: 48-hour campaigns, 6-hour culling
rounds, a 24 h/24 h opportunistic split.
"""

import hashlib
import os
import random

from repro.coverage.feedback import (
    BlockFeedback,
    EdgeFeedback,
    NGramFeedback,
    PathAFLFeedback,
    PathFeedback,
    PathPairFeedback,
)
from repro.fuzzer.campaign import result_from_engines
from repro.fuzzer.engine import EngineConfig, FuzzEngine, afl_engine_config
from repro.strategies.culling import run_culling_campaign
from repro.strategies.opportunistic import run_opportunistic_campaign

# Paper timing: 48 h campaigns, 6 h culling rounds -> 8 rounds.
CULL_ROUND_FRACTION = 6.0 / 48.0
OPP_SWITCH_FRACTION = 0.5


class ConfigSpec:
    """How to build and drive one fuzzer configuration."""

    def __init__(self, name, kind, feedback_factory=None, engine_style="aflpp",
                 criterion=None, engine_overrides=None):
        self.name = name
        self.kind = kind  # "plain" | "cull" | "opp"
        self.feedback_factory = feedback_factory
        self.engine_style = engine_style  # "aflpp" | "afl"
        self.criterion = criterion
        # Extra EngineConfig keyword arguments layered over the subject's
        # execution limits (e.g. {"use_taint": True} for the taint config).
        self.engine_overrides = engine_overrides or {}

    @property
    def supports_instances(self):
        """Whether this config can run as a main/secondary instance campaign.

        Plain single-engine configs can; the culling and opportunistic
        drivers orchestrate their own engine phases and would need their
        own sync protocol.
        """
        return self.kind == "plain"

    def engine_config(self, subject):
        kwargs = dict(
            max_input_len=subject.max_input_len,
            exec_instr_budget=subject.exec_instr_budget,
            call_depth_limit=subject.call_depth_limit,
        )
        kwargs.update(self.engine_overrides)
        if self.engine_style == "afl":
            return afl_engine_config(**kwargs)
        return EngineConfig(**kwargs)


FUZZER_CONFIGS = {
    "pcguard": ConfigSpec("pcguard", "plain", EdgeFeedback),
    "path": ConfigSpec("path", "plain", PathFeedback),
    "cull": ConfigSpec("cull", "cull", PathFeedback, criterion="edges"),
    "cull_r": ConfigSpec("cull_r", "cull", PathFeedback, criterion="random"),
    "cull_paths": ConfigSpec("cull_paths", "cull", PathFeedback, criterion="paths"),
    "opp": ConfigSpec("opp", "opp"),
    "pathafl": ConfigSpec("pathafl", "plain", PathAFLFeedback, engine_style="afl"),
    "afl": ConfigSpec("afl", "plain", EdgeFeedback, engine_style="afl"),
    "ngram4": ConfigSpec("ngram4", "plain", lambda: NGramFeedback(4)),
    "block": ConfigSpec("block", "plain", BlockFeedback),
    "path2gram": ConfigSpec("path2gram", "plain", PathPairFeedback),
    "taint": ConfigSpec(
        "taint", "plain", EdgeFeedback, engine_overrides={"use_taint": True}
    ),
    "concolic": ConfigSpec(
        "concolic",
        "plain",
        EdgeFeedback,
        engine_overrides={"use_taint": True, "use_concolic": True},
    ),
}


def campaign_rng(subject_name, config_name, run_seed):
    """A deterministic RNG unique to (subject, config, run)."""
    digest = hashlib.sha256(
        ("%s|%s|%d" % (subject_name, config_name, run_seed)).encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))


def _run_plain_checkpointed(
    engine, budget_ticks, checkpoint_path, checkpoint_every, resume_store=False
):
    """Drive a plain engine in checkpointed slices (resume-aware).

    If ``checkpoint_path`` holds a valid snapshot of this campaign, the
    engine resumes from it instead of recomputing from zero; stale or
    corrupt files are refused (typed validation) and the campaign restarts
    fresh.  Slicing at ``run_until`` barriers is trajectory-neutral, so the
    result is byte-identical to an uninterrupted :meth:`FuzzEngine.run`.

    With a store attached (``engine.store``), a successful checkpoint
    resume backfills the store from the snapshot, and a *failed* one falls
    back to replaying the store's surviving artifacts when ``resume_store``
    allows (lossless, though not tick-identical — see
    :mod:`repro.fuzzer.store`).
    """
    from repro.fuzzer.checkpoint import CheckpointError

    resumed = False
    if os.path.exists(checkpoint_path):
        try:
            engine.resume(checkpoint_path)
            resumed = True
            if engine.store is not None:
                from repro.fuzzer.store import attach_store

                attach_store(engine, engine.store)
        except (CheckpointError, OSError):
            pass  # unusable snapshot: recompute from zero
    if not resumed:
        engine.start(budget_ticks)
        _replay_store(engine, resume_store)
    every = checkpoint_every or max(1, budget_ticks // 8)
    while True:
        target = min(budget_ticks, (engine.clock.ticks // every + 1) * every)
        engine.run_until(target)
        engine.save_checkpoint(checkpoint_path, meta={"ticks": engine.clock.ticks})
        if engine.clock.ticks >= budget_ticks:
            break
    engine.finish()
    return engine


def _replay_store(engine, resume_store):
    """Rebuild a started engine from its store's surviving artifacts."""
    store = engine.store
    if store is not None and resume_store and store.has_artifacts():
        store.replay_into(engine)


def run_config(
    subject, config_name, run_seed, budget_ticks, checkpoint_path=None,
    checkpoint_every=None, telemetry=None, store=None, resume_store=False,
):
    """Run one campaign and return its CampaignResult.

    ``checkpoint_path`` (plain configs only) makes the campaign durable:
    the engine snapshots there periodically (every ``checkpoint_every``
    ticks, default budget / 8) and resumes from a valid snapshot instead
    of recomputing from zero — see :mod:`repro.fuzzer.checkpoint`.

    ``store`` (plain configs only) attaches a
    :class:`~repro.fuzzer.store.CampaignStore`: every retained input,
    crash, and hang streams to the workspace as found, and
    ``fuzzer_stats`` is finalized at campaign end.  ``resume_store=True``
    additionally rebuilds the engine from the store's surviving artifacts
    before fuzzing (the ``--resume-dir`` path; lossless but not
    tick-identical).  The store is an observer: the campaign result is
    field-for-field equal to a store-less run.

    ``telemetry`` (plain configs only) is an
    :class:`~repro.telemetry.trace.EngineTelemetry` for the engine: spans,
    metric snapshots, and live plateau events, with zero effect on the
    campaign result (the determinism contract CI asserts).
    """
    spec = FUZZER_CONFIGS[config_name]
    if store is not None and spec.kind != "plain":
        raise ValueError(
            "config %r (%s) cannot stream to a campaign store; "
            "only plain single-engine configs can" % (config_name, spec.kind)
        )
    rng = campaign_rng(subject.name, config_name, run_seed)
    engine_config = spec.engine_config(subject)
    if spec.kind == "plain":
        engine = FuzzEngine(
            subject.program,
            spec.feedback_factory(),
            subject.seeds,
            rng,
            engine_config,
            subject.tokens,
            telemetry=telemetry,
        )
        if store is not None:
            engine.store = store  # before start(): the dry run streams seeds
        if checkpoint_path:
            _run_plain_checkpointed(
                engine, budget_ticks, checkpoint_path, checkpoint_every,
                resume_store=resume_store,
            )
        else:
            engine.start(budget_ticks)
            _replay_store(engine, resume_store)
            engine.run_until(budget_ticks)
            engine.finish()
        if store is not None:
            store.finalize(engine)
        engines, final = [engine], engine
    elif spec.kind == "cull":
        engines, final = run_culling_campaign(
            subject,
            spec.feedback_factory,
            budget_ticks,
            max(1, int(budget_ticks * CULL_ROUND_FRACTION)),
            rng,
            engine_config,
            criterion=spec.criterion,
        )
    elif spec.kind == "opp":
        engines, final, _ = run_opportunistic_campaign(
            subject, budget_ticks, rng, engine_config, OPP_SWITCH_FRACTION
        )
    else:  # pragma: no cover
        raise ValueError("unknown config kind %r" % spec.kind)
    return result_from_engines(subject, config_name, run_seed, engines, final)
