"""Table III: median queue sizes and ratios against pcguard.

Queue explosion quantified: the paper measures path at a 4.46x geometric-
mean queue inflation, cull at 2.22x, opp at 3.15x — the ordering
path > opp > cull > 1 is the shape this table must reproduce.
"""

from repro.experiments.runner import profile_runs, profile_subjects, run_matrix
from repro.experiments.tables import geomean, median, render_table

HOURS = 48
CONFIGS = ["path", "pcguard", "cull", "opp"]


def collect(subjects=None, runs=None):
    subjects = profile_subjects() if subjects is None else subjects
    runs = profile_runs() if runs is None else runs
    results = run_matrix(CONFIGS, HOURS, subjects, runs)
    data = {}
    for subject in subjects:
        sizes = {
            config: median(
                [results[(subject, config, r)].queue_size for r in range(runs)]
            )
            for config in CONFIGS
        }
        data[subject] = sizes
    return data


def render(data=None):
    data = collect() if data is None else data
    rows = []
    ratios = {"path": [], "cull": [], "opp": []}
    for subject, sizes in data.items():
        base = max(sizes["pcguard"], 1)
        row = [subject] + [sizes[c] for c in CONFIGS]
        for config in ("path", "cull", "opp"):
            ratio = sizes[config] / base
            ratios[config].append(ratio)
            row.append(ratio)
        rows.append(row)
    rows.append(
        ["GEOMEAN", "", "", "", ""]
        + [geomean(ratios[c]) for c in ("path", "cull", "opp")]
    )
    return render_table(
        ["Benchmark", "path", "pcguard", "cull", "opp",
         "path/pcg", "cull/pcg", "opp/pcg"],
        rows,
        title="Table III: median queue sizes and ratios vs pcguard",
    )


if __name__ == "__main__":
    print(render())
