"""Campaign runner with memoization.

Tables II, III, IV and VI all consume the *same* campaigns (the paper
derives them from one set of 10 x 48 h runs per subject/fuzzer), so the
runner caches results both in-process and on disk.  The disk cache key
includes a fingerprint of the package sources, so code changes invalidate
it automatically.

Scaling knobs (environment):

- ``REPRO_SCALE``    virtual-hours multiplier (default 0.25: one paper hour
  is 100 000 ticks — a few thousand executions);
- ``REPRO_RUNS``     repetitions per (subject, config) pair (default 3;
  the paper used 10);
- ``REPRO_SUBJECTS`` comma-separated subject allowlist (default: all 18);
- ``REPRO_NO_CACHE`` set to disable the on-disk cache;
- ``REPRO_JOBS``     worker processes for :func:`run_matrix` (default 1,
  i.e. the sequential path; any N > 1 fans cells out over N processes
  with identical results — see :mod:`repro.fuzzer.parallel`);
- ``REPRO_CHECKPOINT_DIR``  directory for campaign checkpoints: long cells
  snapshot their engine state there periodically and *resume* instead of
  recomputing from zero after a crash/retry (``repro report --resume``);
- ``REPRO_CELL_RESTARTS``   transient-failure retries per matrix cell
  (default 0; crashed/timed-out cells are restarted with backoff and,
  with checkpointing on, pick up from their last snapshot).
"""

import hashlib
import os
import pickle

from repro.experiments.config import FUZZER_CONFIGS, run_config
from repro.fuzzer.clock import hours_to_ticks
from repro.subjects import get_subject, subject_names

_MEMORY_CACHE = {}
_SOURCE_FINGERPRINT = None


def profile_scale():
    return float(os.environ.get("REPRO_SCALE", "0.25"))


def profile_runs():
    return int(os.environ.get("REPRO_RUNS", "3"))


def profile_subjects():
    names = os.environ.get("REPRO_SUBJECTS")
    if not names:
        return subject_names()
    return [n.strip() for n in names.split(",") if n.strip()]


def profile_jobs():
    return int(os.environ.get("REPRO_JOBS", "1"))


def _cache_dir():
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    return os.path.join(root, ".repro_cache")


def _source_fingerprint():
    """Hash of (path, size, mtime) for every package source file."""
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is not None:
        return _SOURCE_FINGERPRINT
    package_root = os.path.dirname(os.path.dirname(__file__))
    hasher = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            stat = os.stat(path)
            hasher.update(
                ("%s|%d|%d" % (path, stat.st_size, int(stat.st_mtime))).encode()
            )
    _SOURCE_FINGERPRINT = hasher.hexdigest()[:16]
    return _SOURCE_FINGERPRINT


def source_fingerprint():
    """Public fingerprint of the package sources.

    Checkpoint files embed it (see :mod:`repro.fuzzer.checkpoint`) so that
    resuming a snapshot across a code change is refused instead of
    silently diverging — the same invalidation rule the result cache uses.
    """
    return _source_fingerprint()


def profile_checkpoint_dir():
    """Directory for durable campaign checkpoints (None: checkpointing off)."""
    return os.environ.get("REPRO_CHECKPOINT_DIR") or None


def _campaign_token(subject_name, config_name, run_seed, hours, scale):
    return "%s-%s-%d-%s-%s-%s" % (
        subject_name,
        config_name,
        run_seed,
        hours,
        scale,
        _source_fingerprint(),
    )


def _campaign_checkpoint_path(subject_name, config_name, run_seed, hours, scale):
    """Per-cell checkpoint file (same identity key as the result cache)."""
    directory = profile_checkpoint_dir()
    if not directory:
        return None
    token = _campaign_token(subject_name, config_name, run_seed, hours, scale)
    digest = hashlib.sha256(token.encode()).hexdigest()[:24]
    return os.path.join(directory, "campaign-%s.ckpt" % digest)


def campaign(subject_name, config_name, run_seed, hours, scale=None):
    """One (possibly cached) campaign; ``hours`` are paper-campaign hours.

    With ``REPRO_CHECKPOINT_DIR`` set, the campaign periodically snapshots
    its engine state and — if a prior attempt died mid-run — resumes from
    the snapshot instead of recomputing from zero, which is what makes
    matrix-cell retries cheap for long campaigns.
    """
    scale = profile_scale() if scale is None else scale
    key = (subject_name, config_name, run_seed, hours, scale)
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]
    use_disk = not os.environ.get("REPRO_NO_CACHE")
    disk_path = None
    if use_disk:
        token = _campaign_token(subject_name, config_name, run_seed, hours, scale)
        digest = hashlib.sha256(token.encode()).hexdigest()[:24]
        disk_path = os.path.join(_cache_dir(), digest + ".pkl")
        if os.path.exists(disk_path):
            with open(disk_path, "rb") as handle:
                result = pickle.load(handle)
            _MEMORY_CACHE[key] = result
            return result
    subject = get_subject(subject_name)
    budget = hours_to_ticks(hours, scale)
    checkpoint_path = _campaign_checkpoint_path(
        subject_name, config_name, run_seed, hours, scale
    )
    if checkpoint_path is not None and FUZZER_CONFIGS[config_name].kind != "plain":
        checkpoint_path = None  # phased drivers orchestrate their own engines
    telemetry = None
    if FUZZER_CONFIGS[config_name].kind == "plain":
        # With REPRO_TRACE set, every fresh (uncached) matrix cell traces
        # into its own suffixed JSONL file; cache hits stay silent.
        from repro import telemetry as _telemetry

        telemetry = _telemetry.engine_telemetry(
            label="%s-%s-%d" % (subject_name, config_name, run_seed),
            budget_ticks=budget,
        )
    result = run_config(
        subject, config_name, run_seed, budget, checkpoint_path=checkpoint_path,
        telemetry=telemetry,
    )
    if telemetry is not None:
        telemetry.finish(budget)
    _MEMORY_CACHE[key] = result
    if disk_path is not None:
        os.makedirs(_cache_dir(), exist_ok=True)
        tmp_path = disk_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            pickle.dump(result, handle)
        os.replace(tmp_path, disk_path)
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        # The campaign completed; its resume point is no longer needed.
        try:
            os.remove(checkpoint_path)
        except OSError:
            pass
    return result


def run_matrix(config_names, hours, subjects=None, runs=None, scale=None, jobs=None):
    """Campaigns for every (subject, config, run-seed) combination.

    Returns {(subject_name, config_name, run_seed): CampaignResult}.

    With ``jobs`` > 1 (default: the ``REPRO_JOBS`` environment knob) cells
    are fanned out over a process pool; per-cell RNGs depend only on the
    cell key, so the result dict is equal to the sequential one.  A cell
    whose worker fails is reported (with every completed cell attached)
    via :class:`~repro.fuzzer.parallel.ParallelMatrixError` only after the
    rest of the matrix has finished.
    """
    subjects = profile_subjects() if subjects is None else subjects
    runs = profile_runs() if runs is None else runs
    jobs = profile_jobs() if jobs is None else int(jobs)
    keys = [
        (subject_name, config_name, run_seed)
        for subject_name in subjects
        for config_name in config_names
        for run_seed in range(runs)
    ]
    if jobs > 1 and len(keys) > 1:
        return _run_matrix_parallel(keys, hours, scale, jobs)
    results = {}
    for key in keys:
        results[key] = campaign(key[0], key[1], key[2], hours, scale)
    return results


def _run_matrix_parallel(keys, hours, scale, jobs):
    """Fan uncached cells out over worker processes (cache-aware)."""
    from repro.fuzzer.parallel import ParallelMatrixError, run_cells

    scale = profile_scale() if scale is None else scale
    results = {}
    tasks = {}
    for key in keys:
        mem_key = key + (hours, scale)
        if mem_key in _MEMORY_CACHE:
            results[key] = _MEMORY_CACHE[mem_key]
        else:
            # Workers re-check the on-disk cache themselves (and write to
            # it), so only the in-process memoization is resolved here.
            tasks[key] = key + (hours, scale)
    if tasks:
        fresh, failures = run_cells(tasks, jobs=jobs)
        for key, result in fresh.items():
            _MEMORY_CACHE[key + (hours, scale)] = result
            results[key] = result
        if failures:
            raise ParallelMatrixError(failures, results)
    return results


def cumulative_bugs(results, subjects, config_names, runs):
    """Per-(subject, config) union of bugs across runs — the paper's
    "cumulatively across the 10 runs" aggregation."""
    out = {}
    for subject_name in subjects:
        for config_name in config_names:
            bugs = set()
            for run_seed in range(runs):
                bugs |= results[(subject_name, config_name, run_seed)].bugs
            out[(subject_name, config_name)] = bugs
    return out


def cumulative_crashes(results, subjects, config_names, runs):
    """Per-(subject, config) union of unique-crash stack hashes across runs."""
    out = {}
    for subject_name in subjects:
        for config_name in config_names:
            hashes = set()
            for run_seed in range(runs):
                hashes |= results[(subject_name, config_name, run_seed)].unique_crash_hashes
            out[(subject_name, config_name)] = hashes
    return out
