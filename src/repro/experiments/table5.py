"""Table V (Appendix A): instrumentation overhead on seed processing.

Replays a large queue (from a pcguard campaign) once under the edge
instrumentation and once under the path instrumentation, comparing total
processing cost — the paper's initial-calibration measurement, which lands
at a 1.26 geometric-mean ratio.  We report virtual-clock cost (the model's
ground truth, including the novelty-check term) plus the probe-site counts
showing that Ball-Larus placement instruments *fewer* sites than per-edge
coverage.
"""

from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.experiments.runner import campaign, profile_subjects
from repro.experiments.tables import geomean, render_table
from repro.fuzzer.engine import FuzzEngine
from repro.runtime.backend import make_backend
from repro.subjects import get_subject

QUEUE_HOURS = 24


def _seed_queue(subject_name):
    """A realistic queue: the corpus retained by a pcguard campaign."""
    result = campaign(subject_name, "pcguard", 0, QUEUE_HOURS)
    # CampaignResult does not keep raw inputs (cache size); regenerate the
    # queue deterministically by re-running the same engine configuration.
    from repro.experiments.config import FUZZER_CONFIGS, campaign_rng
    from repro.fuzzer.clock import hours_to_ticks
    from repro.experiments.runner import profile_scale

    subject = get_subject(subject_name)
    spec = FUZZER_CONFIGS["pcguard"]
    engine = FuzzEngine(
        subject.program,
        spec.feedback_factory(),
        subject.seeds,
        campaign_rng(subject_name, "pcguard", 0),
        spec.engine_config(subject),
        subject.tokens,
    )
    engine.run(hours_to_ticks(QUEUE_HOURS, profile_scale()))
    assert len(engine.queue.entries) == result.queue_size
    return [entry.data for entry in engine.queue.entries]


def replay_cost(subject, inputs, feedback, backend=None):
    """Total virtual cost of processing ``inputs`` once under ``feedback``.

    Includes the novelty-scan term (proportional to the trace size), like
    AFL's initial calibration the paper measures.  ``backend`` picks the
    execution backend (None: honor REPRO_BACKEND); virtual cost is a model
    quantity, so the result is backend-invariant — the table regenerates
    identically under the interpreter and the compiler.
    """
    instrumentation = feedback.instrument(subject.program)
    run = make_backend(subject.program, instrumentation, backend=backend).execute
    total = 0
    for data in inputs:
        result = run(data, instr_budget=subject.exec_instr_budget)
        total += result.virtual_cost + len(result.hits) // 4
    return total, instrumentation.probe_sites


def collect(subjects=None, backend=None):
    subjects = profile_subjects() if subjects is None else subjects
    data = {}
    for name in subjects:
        subject = get_subject(name)
        inputs = _seed_queue(name)
        edge_cost, edge_sites = replay_cost(
            subject, inputs, EdgeFeedback(), backend=backend
        )
        path_cost, path_sites = replay_cost(
            subject, inputs, PathFeedback(), backend=backend
        )
        data[name] = (len(inputs), edge_cost, path_cost, edge_sites, path_sites)
    return data


def render(data=None):
    data = collect() if data is None else data
    rows = []
    ratios = []
    for name, (count, edge_cost, path_cost, edge_sites, path_sites) in data.items():
        ratio = path_cost / max(edge_cost, 1)
        ratios.append(ratio)
        rows.append([name, count, edge_cost, path_cost, ratio, edge_sites, path_sites])
    rows.append(["GEOMEAN", "", "", "", geomean(ratios), "", ""])
    return render_table(
        ["Benchmark", "seeds", "pcguard cost", "path cost", "path/pcguard",
         "edge probes", "path probes"],
        rows,
        title="Table V: seed-processing cost, edge vs path instrumentation",
    )


if __name__ == "__main__":
    print(render())
