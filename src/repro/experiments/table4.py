"""Table IV: edge coverage attained by each fuzzer (afl-showmap replay).

Cumulative (union across runs) edges covered by each fuzzer's final queue,
measured by replaying every retained test case under edge instrumentation —
independent of the campaign's own feedback, as the paper does with
``afl-showmap`` on a pcguard binary.  The shape to reproduce: pcguard >=
opp >= {path, cull} in totals, while each path-aware fuzzer still reaches
some edges pcguard misses (the "occasionally unlocks code" observation).
"""

from repro.experiments.runner import profile_runs, profile_subjects, run_matrix
from repro.experiments.tables import render_table

HOURS = 48
CONFIGS = ["path", "pcguard", "cull", "opp"]


def collect(subjects=None, runs=None):
    subjects = profile_subjects() if subjects is None else subjects
    runs = profile_runs() if runs is None else runs
    results = run_matrix(CONFIGS, HOURS, subjects, runs)
    data = {}
    for subject in subjects:
        edges = {}
        for config in CONFIGS:
            union = set()
            for r in range(runs):
                union |= results[(subject, config, r)].edges
            edges[config] = union
        data[subject] = edges
    return data


def render(data=None):
    data = collect() if data is None else data
    rows = []
    totals = {config: 0 for config in CONFIGS}
    total_diffs = {"path": 0, "cull": 0, "opp": 0}
    for subject, edges in data.items():
        row = [subject] + [len(edges[c]) for c in CONFIGS]
        for config in ("path", "cull", "opp"):
            diff = len(edges[config] - edges["pcguard"])
            total_diffs[config] += diff
            row.append(diff)
        rows.append(row)
        for config in CONFIGS:
            totals[config] += len(edges[config])
    rows.append(
        ["TOTAL"]
        + [totals[c] for c in CONFIGS]
        + [total_diffs[c] for c in ("path", "cull", "opp")]
    )
    return render_table(
        ["Benchmark", "path", "pcguard", "cull", "opp",
         "path\\pcg", "cull\\pcg", "opp\\pcg"],
        rows,
        title="Table IV: cumulative edge coverage and edges missed by pcguard",
    )


if __name__ == "__main__":
    print(render())
