"""Figure 2: queue-size-over-time profiles of the three strategies.

The paper's Figure 2 is a schematic: the baseline path-aware queue grows
unboundedly; culling's saw-tooths down at every round; opportunistic stays
flat (edge phase) then grows under path feedback.  This module regenerates
the actual series from campaign timelines on a queue-explosion subject and
renders them as aligned text series (plus a crude sparkline).
"""

from repro.experiments.runner import campaign, profile_scale
from repro.fuzzer.clock import TICKS_PER_HOUR

HOURS = 48
CONFIGS = ["path", "cull", "opp", "pcguard"]
DEFAULT_SUBJECT = "infotocap"
POINTS = 24

_SPARK = " .:-=+*#%@"


def collect(subject=DEFAULT_SUBJECT, run_seed=0):
    """Queue-size series resampled to POINTS buckets per config."""
    series = {}
    span = HOURS * TICKS_PER_HOUR * profile_scale()
    for config in CONFIGS:
        result = campaign(subject, config, run_seed, HOURS)
        samples = [(t, q) for (t, q, _cov, _cr, _ex) in result.timeline]
        resampled = []
        for i in range(POINTS):
            cutoff = span * (i + 1) / POINTS
            eligible = [q for t, q in samples if t <= cutoff]
            resampled.append(eligible[-1] if eligible else 0)
        series[config] = resampled
    return series


def render(series=None, subject=DEFAULT_SUBJECT):
    series = collect(subject) if series is None else series
    peak = max(max(v) for v in series.values()) or 1
    lines = ["Figure 2: queue size over time on %r (peak=%d)" % (subject, peak)]
    for config in CONFIGS:
        values = series[config]
        spark = "".join(
            _SPARK[min(int(v / peak * (len(_SPARK) - 1)), len(_SPARK) - 1)]
            for v in values
        )
        lines.append("%-8s |%s| final=%d" % (config, spark, values[-1]))
    lines.append(
        "(expected shape: path grows most; cull saw-tooths/stays lower; "
        "opp flat then grows; pcguard lowest)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render())
