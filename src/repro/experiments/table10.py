"""Table X (Appendix D): the random-culling ablation.

``cull_r`` replaces the edge-preserving culling criterion with a random
2-16% retention.  The paper finds cull_r between path and cull in totals
(81 vs 77 vs 98) — queue reduction alone already helps, but the
coverage-preserving criterion is the real driver.  ``cull_paths`` (the
footnote's path-identity criterion) is included as an extra column.
"""

from repro.experiments.runner import (
    cumulative_bugs,
    profile_runs,
    profile_subjects,
    run_matrix,
)
from repro.experiments.tables import render_table

HOURS = 48
CONFIGS = ["path", "cull_r", "cull", "cull_paths"]


def collect(subjects=None, runs=None):
    subjects = profile_subjects() if subjects is None else subjects
    runs = profile_runs() if runs is None else runs
    results = run_matrix(CONFIGS, HOURS, subjects, runs)
    bugs = cumulative_bugs(results, subjects, CONFIGS, runs)
    return bugs, subjects


def render(data=None):
    if data is None:
        data = collect()
    bugs, subjects = data
    headers = [
        "Benchmark", "path", "cull_r", "cull", "cull_paths",
        "path∩cull_r", "cull∩cull_r",
        "path\\cull_r", "cull_r\\path", "cull\\cull_r", "cull_r\\cull",
    ]
    rows = []
    tot = [0] * (len(headers) - 1)
    for subject in subjects:
        b = {c: bugs[(subject, c)] for c in CONFIGS}
        values = [
            len(b["path"]), len(b["cull_r"]), len(b["cull"]), len(b["cull_paths"]),
            len(b["path"] & b["cull_r"]), len(b["cull"] & b["cull_r"]),
            len(b["path"] - b["cull_r"]), len(b["cull_r"] - b["path"]),
            len(b["cull"] - b["cull_r"]), len(b["cull_r"] - b["cull"]),
        ]
        rows.append([subject] + values)
        tot = [t + v for t, v in zip(tot, values)]
    rows.append(["TOTAL"] + tot)
    return render_table(
        headers, rows, title="Table X: culling-criterion ablation (random vs edges)"
    )


if __name__ == "__main__":
    print(render())
