"""Experiment runners regenerating every table and figure of the paper."""

from repro.experiments.config import FUZZER_CONFIGS, run_config
from repro.experiments.runner import campaign, run_matrix

__all__ = ["FUZZER_CONFIGS", "run_config", "campaign", "run_matrix"]
