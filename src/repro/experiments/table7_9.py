"""Tables VII-IX (Appendix C): the PathAFL and AFL comparison.

- Table VII: unique bugs of path/cull/opp vs PathAFL with pairwise sets —
  the paper's claim: PathAFL finds roughly a third of what the Ball-Larus
  fuzzers find, with a handful of bugs unique to it.
- Table VIII: PathAFL vs its own AFL base — nearly identical bug sets.
- Table IX: raw crashes vs stack-hash unique crashes for PathAFL and AFL —
  the over-counting critique (PathAFL's "unique crash" novelty criterion
  inflates counts; we report the AFL edge-novelty count as their notion).
"""

from repro.experiments.runner import (
    cumulative_bugs,
    profile_runs,
    profile_subjects,
    run_matrix,
)
from repro.experiments.tables import render_table

HOURS = 48
CONFIGS = ["path", "pathafl", "cull", "opp", "afl"]


def collect(subjects=None, runs=None):
    subjects = profile_subjects() if subjects is None else subjects
    runs = profile_runs() if runs is None else runs
    results = run_matrix(CONFIGS, HOURS, subjects, runs)
    bugs = cumulative_bugs(results, subjects, CONFIGS, runs)
    return results, bugs, subjects, runs


def render_table7(data=None):
    if data is None:
        data = collect()
    _, bugs, subjects, _ = data
    headers = [
        "Benchmark", "path", "pathafl", "cull", "opp",
        "path∩pafl", "cull∩pafl", "opp∩pafl",
        "path\\pafl", "pafl\\path", "cull\\pafl", "pafl\\cull",
        "opp\\pafl", "pafl\\opp",
    ]
    rows = []
    tot = [0] * (len(headers) - 1)
    for subject in subjects:
        b = {c: bugs[(subject, c)] for c in CONFIGS}
        values = [
            len(b["path"]), len(b["pathafl"]), len(b["cull"]), len(b["opp"]),
            len(b["path"] & b["pathafl"]), len(b["cull"] & b["pathafl"]),
            len(b["opp"] & b["pathafl"]),
            len(b["path"] - b["pathafl"]), len(b["pathafl"] - b["path"]),
            len(b["cull"] - b["pathafl"]), len(b["pathafl"] - b["cull"]),
            len(b["opp"] - b["pathafl"]), len(b["pathafl"] - b["opp"]),
        ]
        rows.append([subject] + values)
        tot = [t + v for t, v in zip(tot, values)]
    rows.append(["TOTAL"] + tot)
    return render_table(headers, rows, title="Table VII: our fuzzers vs PathAFL")


def render_table8(data=None):
    if data is None:
        data = collect()
    _, bugs, subjects, _ = data
    headers = ["Benchmark", "pathafl", "afl", "pathafl∩afl", "pathafl\\afl", "afl\\pathafl"]
    rows = []
    tot = [0] * 5
    for subject in subjects:
        pa = bugs[(subject, "pathafl")]
        base = bugs[(subject, "afl")]
        values = [len(pa), len(base), len(pa & base), len(pa - base), len(base - pa)]
        rows.append([subject] + values)
        tot = [t + v for t, v in zip(tot, values)]
    rows.append(["TOTAL"] + tot)
    return render_table(headers, rows, title="Table VIII: PathAFL vs its AFL base")


def render_table9(data=None):
    if data is None:
        data = collect()
    results, _, subjects, runs = data
    headers = [
        "Benchmark",
        "pathafl crashes", "pathafl afl-uniq", "pathafl uniq5",
        "afl crashes", "afl afl-uniq", "afl uniq5",
    ]
    rows = []
    tot = [0] * 6
    for subject in subjects:
        values = []
        for config in ("pathafl", "afl"):
            crashes = sum(
                results[(subject, config, r)].crash_count for r in range(runs)
            )
            afl_uniq = sum(
                results[(subject, config, r)].afl_unique_crash_count
                for r in range(runs)
            )
            uniq5 = set()
            for r in range(runs):
                uniq5 |= results[(subject, config, r)].unique_crash_hashes
            values.extend([crashes, afl_uniq, len(uniq5)])
        rows.append([subject] + values)
        tot = [t + v for t, v in zip(tot, values)]
    rows.append(["TOTAL"] + tot)
    return render_table(
        headers, rows,
        title="Table IX: crash counts vs AFL-novelty vs stack-hash clustering",
    )


if __name__ == "__main__":
    data = collect()
    print(render_table7(data))
    print()
    print(render_table8(data))
    print()
    print(render_table9(data))
