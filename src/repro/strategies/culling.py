"""The culling exploration-biasing method (paper Sec. III-B1, IV).

A driver orchestrates fuzzer rounds: after each *culling round*, the queue
is pruned down to a subset that preserves the coverage criterion, and a
fresh engine instance is started seeded with the culled queue.  The fresh
start resets the virgin map, giving re-discovered paths a new chance to be
prioritized (the "fresh start / revisit prioritization choices" rationale).
Culling time is charged against the campaign budget, as the paper's driver
subtracts it from the last round.

Culling criteria:

- ``edges``  — retain a minimal-ish set of test cases preserving the *edge*
  coverage of the whole queue (the paper's choice; favored-corpus greedy
  set cover over an edge-instrumented replay);
- ``paths``  — preserve coverage under the fuzzer's own (path) feedback
  (the alternative the paper found inferior);
- ``random`` — keep a random 2-16% of the queue (Appendix D's cull_r).
"""

from repro.coverage.feedback import EdgeFeedback
from repro.fuzzer.engine import FuzzEngine
from repro.runtime.interpreter import execute

# Virtual ticks charged per queue entry examined by a culling pass (replay
# plus set-cover bookkeeping); mirrors the paper accounting culling costs
# inside the fuzzing budget.
CULL_COST_PER_ENTRY = 40


def edge_preserving_subset(program, inputs, instr_budget=60_000):
    """Greedy set cover over an edge-instrumented replay of ``inputs``.

    Returns the selected inputs (order preserved).  This is the favored-
    corpus construction the paper uses instead of ``afl-cmin``.
    """
    instrumentation = EdgeFeedback().instrument(program)
    traces = []
    for data in inputs:
        result = execute(program, data, instrumentation, instr_budget=instr_budget)
        if result.crashed or result.timeout:
            traces.append(frozenset())
            continue
        traces.append(frozenset(result.hits))
    # Champion per edge: cheapest (cost x len) input covering it.
    champion = {}
    for position, (data, trace) in enumerate(zip(inputs, traces)):
        key = (len(data), position)
        for idx in trace:
            if idx not in champion or key < champion[idx][0]:
                champion[idx] = (key, position)
    chosen = set()
    uncovered = set(champion)
    for idx in sorted(champion):
        if idx not in uncovered:
            continue
        position = champion[idx][1]
        chosen.add(position)
        uncovered.difference_update(traces[position])
    return [inputs[i] for i in sorted(chosen)]


def path_preserving_subset(engine):
    """Favored subset under the engine's own feedback (path identity)."""
    return [entry.data for entry in engine.queue.favored_entries()]


def random_subset(inputs, rng, keep_low=0.02, keep_high=0.16):
    """Random culling: keep a uniformly drawn 2-16% slice (at least one)."""
    if not inputs:
        return []
    fraction = rng.uniform(keep_low, keep_high)
    count = max(1, int(len(inputs) * fraction))
    return [inputs[i] for i in sorted(rng.sample(range(len(inputs)), count))]


def run_culling_campaign(
    subject,
    feedback_factory,
    total_budget,
    round_budget,
    rng,
    config,
    criterion="edges",
):
    """Run the round-based culling campaign.

    Returns ``(engines, final_engine)``: every round's engine (for crash
    accounting) and the last one (whose queue is the campaign's corpus).
    """
    program = subject.program
    seeds = list(subject.seeds)
    engines = []
    remaining = total_budget
    while remaining > 0:
        this_round = min(round_budget, remaining)
        engine = FuzzEngine(
            program,
            feedback_factory(),
            seeds,
            rng,
            config,
            subject.tokens,
        )
        engine.run(this_round)
        engines.append(engine)
        remaining -= max(engine.clock.ticks, 1)
        if remaining <= 0:
            break
        inputs = engine.corpus_inputs()
        cull_cost = CULL_COST_PER_ENTRY * len(inputs)
        remaining -= cull_cost
        if criterion == "edges":
            seeds = edge_preserving_subset(program, inputs, config.exec_instr_budget)
        elif criterion == "paths":
            seeds = path_preserving_subset(engine)
        elif criterion == "random":
            seeds = random_subset(inputs, rng)
        else:
            raise ValueError("unknown culling criterion %r" % criterion)
        if not seeds:
            seeds = list(subject.seeds)
    return engines, engines[-1]
