"""The opportunistic exploration-biasing method (paper Sec. III-B2, IV).

The campaign starts under the coarse edge feedback to amass code coverage
quickly, then switches to the path-aware feedback for the remaining budget.
Before the switch, the edge-phase queue is pre-processed as the paper
prescribes:

1. crashing inputs found by the less sensitive phase are removed (they are
   never queued by construction, and the phase's crashes are *not* credited
   to the opportunistic fuzzer);
2. the queue is trimmed to a smaller set preserving all exercised edges
   (the favored-corpus construction), so the path phase starts from a
   compact, coverage-complete corpus without inherited path diversity.
"""

from repro.coverage.feedback import EdgeFeedback, PathFeedback
from repro.fuzzer.engine import FuzzEngine


def preprocess_queue(edge_engine):
    """The paper's pre-switch queue processing (drop crashers, edge trim).

    Crashing inputs never enter the queue, so step 1 amounts to ignoring
    the edge phase's crash corpus; step 2 is the favored-subset selection,
    which for an edge-feedback engine preserves exactly the exercised
    edges.
    """
    return [entry.data for entry in edge_engine.queue.favored_entries()]


def run_opportunistic_campaign(
    subject,
    total_budget,
    rng,
    config,
    switch_fraction=0.5,
    edge_feedback_factory=EdgeFeedback,
    path_feedback_factory=PathFeedback,
    prepared_queue=None,
):
    """Run the two-phase opportunistic campaign.

    ``prepared_queue`` lets callers reuse an existing saturated edge-phase
    corpus (the paper reuses 24-hour pcguard queues); when given, the whole
    budget goes to the path phase.  Returns ``(engines, final_engine,
    edge_engine)`` where ``engines`` holds only the phases whose crashes are
    credited to the opportunistic fuzzer (the path phase).
    """
    program = subject.program
    edge_engine = None
    if prepared_queue is None:
        edge_budget = int(total_budget * switch_fraction)
        edge_engine = FuzzEngine(
            program,
            edge_feedback_factory(),
            subject.seeds,
            rng,
            config,
            subject.tokens,
        )
        edge_engine.run(edge_budget)
        seeds = preprocess_queue(edge_engine)
        path_budget = total_budget - edge_engine.clock.ticks
    else:
        seeds = list(prepared_queue)
        path_budget = total_budget
    if not seeds:
        seeds = list(subject.seeds)
    path_engine = FuzzEngine(
        program,
        path_feedback_factory(),
        seeds,
        rng,
        config,
        subject.tokens,
    )
    path_engine.run(max(path_budget, 1))
    return [path_engine], path_engine, edge_engine
