"""Exploration-biasing strategies: culling, opportunistic, random culling."""

from repro.strategies.culling import (
    edge_preserving_subset,
    path_preserving_subset,
    random_subset,
    run_culling_campaign,
)
from repro.strategies.opportunistic import (
    preprocess_queue,
    run_opportunistic_campaign,
)

__all__ = [
    "run_culling_campaign",
    "run_opportunistic_campaign",
    "edge_preserving_subset",
    "path_preserving_subset",
    "random_subset",
    "preprocess_queue",
]
