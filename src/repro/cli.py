"""Command-line interface.

Usage::

    python -m repro list
    python -m repro show cflow
    python -m repro fuzz gdk --config cull --hours 4 --run-seed 1
    python -m repro fuzz gdk --config path --workers 4   # main/secondary
    python -m repro report --jobs 8 table2 fig2

``fuzz`` runs one campaign of any registered configuration and prints the
summary plus the triaged crashes; with ``--workers N`` it becomes an
AFL++-style instance-parallel campaign with periodic corpus sync.
``report`` regenerates the paper's tables/figures (see
:mod:`repro.experiments.report`); ``--jobs N`` fans the campaign matrix
out over N worker processes with identical results.
"""

import argparse
import logging
import os

from repro.experiments.config import FUZZER_CONFIGS, run_config
from repro.fuzzer.clock import hours_to_ticks
from repro.subjects import all_subject_names, get_subject


def build_arg_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Path-aware coverage-guided fuzzing (CGO 2026) reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list benchmark subjects")

    show = commands.add_parser("show", help="describe one subject")
    show.add_argument("subject", choices=all_subject_names())

    fuzz = commands.add_parser("fuzz", help="run one fuzzing campaign")
    fuzz.add_argument("subject", choices=all_subject_names())
    fuzz.add_argument("--config", default="path", choices=sorted(FUZZER_CONFIGS))
    fuzz.add_argument("--hours", type=float, default=2.0,
                      help="virtual campaign hours (default 2)")
    fuzz.add_argument("--scale", type=float, default=1.0,
                      help="virtual-clock scale (default 1.0)")
    fuzz.add_argument("--run-seed", type=int, default=0)
    fuzz.add_argument("--workers", type=int, default=1,
                      help="parallel fuzzing instances with corpus sync "
                           "(default 1: single instance)")
    fuzz.add_argument("--sync-hours", type=float, default=None,
                      help="virtual hours between corpus syncs "
                           "(default: hours / 8)")
    fuzz.add_argument("--checkpoint", metavar="PATH", default=None,
                      help="periodically snapshot campaign state to PATH "
                           "(single-instance) or use PATH as the per-worker "
                           "checkpoint directory (--workers > 1)")
    fuzz.add_argument("--checkpoint-every", type=float, default=None,
                      metavar="HOURS",
                      help="virtual hours between snapshots (default: hours/8)")
    fuzz.add_argument("--resume", metavar="PATH", default=None,
                      help="resume a single-instance campaign from a "
                           "checkpoint file (implies --checkpoint PATH)")
    fuzz.add_argument("--max-restarts", type=int, default=3,
                      help="per-worker restart budget before the campaign "
                           "degrades (--workers > 1; default 3)")
    fuzz.add_argument("--worker-timeout", type=float, default=None,
                      help="wall seconds before a silent worker counts as "
                           "stalled (default 120)")
    fuzz.add_argument("--verbose", action="store_true",
                      help="log per-worker progress and sync events")

    report = commands.add_parser("report", help="regenerate paper artifacts")
    report.add_argument("artifacts", nargs="*", help="table1..table10, fig2, ...")
    report.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the campaign matrix "
                             "(default: REPRO_JOBS or 1)")
    report.add_argument("--resume", action="store_true",
                        help="checkpoint long campaign cells and resume them "
                             "across retries/restarts instead of recomputing "
                             "from zero (sets REPRO_CHECKPOINT_DIR and a "
                             "default REPRO_CELL_RESTARTS=2)")
    return parser


def cmd_list(_args):
    for name in all_subject_names():
        subject = get_subject(name)
        print("%-12s %2d bugs  %s" % (name, len(subject.bugs), subject.description))
    return 0


def cmd_show(args):
    subject = get_subject(args.subject)
    stats = subject.program.stats()
    print("subject: %s" % subject.name)
    print("  %s" % subject.description)
    print("  program: %(functions)d functions, %(blocks)d blocks, "
          "%(edges)d edges" % stats)
    print("  seeds: %d, dictionary tokens: %d, max input: %d bytes"
          % (len(subject.seeds), len(subject.tokens), subject.max_input_len))
    print("  bug census (%d):" % len(subject.bugs))
    for bug in subject.bugs:
        function, line, kind = bug.bug_id
        print("    %-11s %s:%d %s — %s" % (
            "[%s]" % bug.difficulty, function, line, kind, bug.description))
    return 0


def cmd_fuzz(args):
    if args.workers < 1:
        raise SystemExit("repro fuzz: error: --workers must be >= 1")
    if args.resume and args.checkpoint and args.resume != args.checkpoint:
        raise SystemExit("repro fuzz: error: --resume and --checkpoint disagree")
    subject = get_subject(args.subject)
    budget = hours_to_ticks(args.hours, args.scale)
    checkpoint_every = (
        hours_to_ticks(args.checkpoint_every, args.scale)
        if args.checkpoint_every
        else None
    )
    if args.verbose:
        logging.basicConfig(level=logging.INFO, format="%(message)s")
    if args.workers > 1:
        from repro.fuzzer.parallel import run_instance_campaign
        from repro.fuzzer.supervisor import RestartPolicy

        if args.resume:
            raise SystemExit(
                "repro fuzz: error: --resume is single-instance; "
                "instance campaigns resume through --checkpoint DIR supervision"
            )
        sync_hours = args.sync_hours
        sync_ticks = (
            hours_to_ticks(sync_hours, args.scale) if sync_hours else None
        )
        print("fuzzing %s with %r: %d instances x %.1f virtual hours (%d ticks)..."
              % (subject.name, args.config, args.workers, args.hours, budget))
        result, _, stats = run_instance_campaign(
            subject.name,
            args.config,
            args.run_seed,
            budget,
            workers=args.workers,
            sync_interval_ticks=sync_ticks,
            checkpoint_dir=args.checkpoint,
            restart_policy=RestartPolicy(max_restarts=args.max_restarts),
            worker_timeout=args.worker_timeout,
        )
        for line in stats.summary_lines():
            print("  " + line)
        if getattr(result, "degraded", False):
            print("  WARNING: campaign degraded (some workers were dropped)")
    else:
        checkpoint_path = args.resume or args.checkpoint
        if args.resume and not os.path.exists(args.resume):
            raise SystemExit(
                "repro fuzz: error: no checkpoint at %r to resume" % args.resume
            )
        print("fuzzing %s with %r for %.1f virtual hours (%d ticks)..."
              % (subject.name, args.config, args.hours, budget))
        result = run_config(
            subject,
            args.config,
            args.run_seed,
            budget,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
    print("executions: %d (%d hangs), throughput %.0f exec/vh"
          % (result.execs, result.hangs, result.throughput))
    print("queue: %d entries; edge coverage: %d" % (result.queue_size, len(result.edges)))
    print("crashes: %d raw, %d unique stacks, %d unique bugs"
          % (result.crash_count, len(result.crash_records), len(result.bugs)))
    for record in sorted(result.crash_records, key=lambda r: r.found_at):
        function, line, kind = record.bug
        print("  bug %s:%d (%s), first seen at tick %d, %d crashes"
              % (function, line, kind, record.found_at, record.count))
    return 0


def cmd_report(args):
    from repro.experiments.report import main as report_main

    if args.jobs is not None:
        # The report modules call run_matrix without a jobs argument; the
        # environment knob is how the fan-out degree reaches them.
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.resume:
        # Durable matrix cells: campaigns checkpoint periodically and a
        # crashed/retried cell resumes from its snapshot (see runner docs).
        from repro.experiments.runner import _cache_dir

        os.environ.setdefault(
            "REPRO_CHECKPOINT_DIR", os.path.join(_cache_dir(), "checkpoints")
        )
        os.environ.setdefault("REPRO_CELL_RESTARTS", "2")
    report_main(args.artifacts)
    return 0


def main(argv=None):
    args = build_arg_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "show": cmd_show,
        "fuzz": cmd_fuzz,
        "report": cmd_report,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
