"""Command-line interface.

Usage::

    python -m repro list
    python -m repro show cflow
    python -m repro fuzz gdk --config cull --hours 4 --run-seed 1
    python -m repro fuzz gdk --config path --workers 4   # main/secondary
    python -m repro fuzz gdk --trace out.jsonl           # telemetry trace
    python -m repro fuzz gdk --output out/               # durable workspace
    python -m repro fuzz gdk --resume-dir out/           # continue a killed run
    python -m repro cmin gdk out/main/queue min/         # minimize a corpus
    python -m repro lint                                 # lint all 18 subjects
    python -m repro lint lame path/to/prog.mc --paths    # + path-space pruning
    python -m repro lint --check-baseline results/lint_baseline.json
    python -m repro report --jobs 8 table2 fig2
    python -m repro telemetry report out.jsonl --html report.html
    python -m repro telemetry overhead --gate 5
    python -m repro serve svc/ --submit gdk --submit mp3gain:path:1
    python -m repro serve svc/ --daemon --lease-ttl 30  # stays up for intake
    python -m repro serve svc/ --standby 60 --lease-ttl 30  # hot standby
    python -m repro job svc/ submit gdk --tenant sec --priority 1
    python -m repro job svc/ status                  # read-only journal fold
    python -m repro job svc/ status req-8f3a...      # resolve an intake nonce
    python -m repro job svc/ cancel j000001
    python -m repro job svc/ drain                   # daemon exits after backlog
    python -m repro job svc/ compact                 # snapshot + prune (stopped)
    python -m repro job svc/ crashes j000000

``fuzz`` runs one campaign of any registered configuration and prints the
summary plus the triaged crashes; with ``--workers N`` it becomes an
AFL++-style instance-parallel campaign with periodic corpus sync, and with
``--trace PATH`` the full telemetry pipeline (events, spans, metrics,
plateaus) is persisted as JSONL.  ``--output DIR`` streams every retained
input, crash, and hang to an AFL-style on-disk workspace
(:mod:`repro.fuzzer.store`); ``--resume-dir DIR`` continues a killed
campaign from whatever that workspace durably holds.  ``cmin`` minimizes an
on-disk corpus (a store's ``queue/``, say) with the afl-cmin analogue.
``lint`` runs the MiniC static analyzer (:mod:`repro.analysis.lint`) over
subject names and/or source files; ``--paths`` adds the Ball-Larus
path-feasibility report, ``--json`` emits machine-readable findings, and
``--check-baseline``/``--write-baseline`` gate CI on finding drift.
``report`` regenerates the paper's tables/figures (see
:mod:`repro.experiments.report`); ``--jobs N`` fans the campaign matrix out
over N worker processes with identical results.  ``telemetry`` renders
traces (TTY/markdown/HTML) and runs the tracing overhead gate.  ``serve``
runs the crash-safe campaign service (:mod:`repro.service`): it recovers
whatever an earlier (possibly killed) service journaled under ROOT, admits
``--submit`` jobs, and drives everything to a terminal state; ``job``
inspects or feeds a service root without running one (``submit`` journals
a submission for the next serve, ``status``/``crashes`` are read-only).
``--verbose`` is global: it configures the ``repro`` logger for every
subcommand.
"""

import argparse
import logging
import os

from repro.experiments.config import FUZZER_CONFIGS, run_config
from repro.fuzzer.clock import hours_to_ticks
from repro.subjects import all_subject_names, get_subject


def build_arg_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Path-aware coverage-guided fuzzing (CGO 2026) reproduction",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="log campaign progress (any subcommand)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list benchmark subjects")

    show = commands.add_parser("show", help="describe one subject")
    show.add_argument("subject", choices=all_subject_names())
    show.add_argument("--rare", action="store_true",
                      help="list branch sites ranked by hit-rarity over the "
                           "seed corpus's edge coverage maps (rarest first)")
    show.add_argument("--taint", action="store_true",
                      help="with --rare: run the seeds under taint tracking "
                           "and add each site's input byte mask")
    show.add_argument("--limit", type=int, default=24, metavar="N",
                      help="show at most N branch sites (default 24; 0 = all)")
    show.add_argument("--constraints", action="store_true",
                      help="replay each seed under the shadow interpreter "
                           "and print its path condition (DESIGN §14)")

    fuzz = commands.add_parser("fuzz", help="run one fuzzing campaign")
    fuzz.add_argument("subject", choices=all_subject_names())
    fuzz.add_argument("--config", default="path", choices=sorted(FUZZER_CONFIGS))
    fuzz.add_argument("--hours", type=float, default=2.0,
                      help="virtual campaign hours (default 2)")
    fuzz.add_argument("--scale", type=float, default=1.0,
                      help="virtual-clock scale (default 1.0)")
    fuzz.add_argument("--run-seed", type=int, default=0)
    fuzz.add_argument("--workers", type=int, default=1,
                      help="parallel fuzzing instances with corpus sync "
                           "(default 1: single instance)")
    fuzz.add_argument("--sync-hours", type=float, default=None,
                      help="virtual hours between corpus syncs "
                           "(default: hours / 8)")
    fuzz.add_argument("--checkpoint", metavar="PATH", default=None,
                      help="periodically snapshot campaign state to PATH "
                           "(single-instance) or use PATH as the per-worker "
                           "checkpoint directory (--workers > 1)")
    fuzz.add_argument("--checkpoint-every", type=float, default=None,
                      metavar="HOURS",
                      help="virtual hours between snapshots (default: hours/8)")
    fuzz.add_argument("--resume", metavar="PATH", default=None,
                      help="resume a single-instance campaign from a "
                           "checkpoint file (implies --checkpoint PATH)")
    fuzz.add_argument("--max-restarts", type=int, default=3,
                      help="per-worker restart budget before the campaign "
                           "degrades (--workers > 1; default 3)")
    fuzz.add_argument("--worker-timeout", type=float, default=None,
                      help="wall seconds before a silent worker counts as "
                           "stalled (default 120)")
    # Back-compat spelling of the global flag.  SUPPRESS keeps this copy
    # from clobbering a `repro --verbose fuzz ...` value with False.
    fuzz.add_argument("--verbose", action="store_true",
                      default=argparse.SUPPRESS,
                      help="log per-worker progress and sync events")
    fuzz.add_argument("--trace", metavar="PATH", default=None,
                      help="write a telemetry trace (events, spans, metrics, "
                           "plateaus) to PATH as JSONL; workers write "
                           "PATH-derived sibling files")
    fuzz.add_argument("--output", metavar="DIR", default=None,
                      help="durable AFL-style campaign workspace: stream "
                           "every retained input, crash, and hang to "
                           "DIR/<worker>/{queue,crashes,hangs}/ as found")
    fuzz.add_argument("--resume-dir", metavar="DIR", default=None,
                      help="resume a killed campaign from its --output "
                           "workspace (lossless for everything durably "
                           "written; damaged files are quarantined)")

    cmin = commands.add_parser(
        "cmin", help="minimize an on-disk corpus (afl-cmin analogue)"
    )
    cmin.add_argument("subject", choices=all_subject_names())
    cmin.add_argument("input_dir", metavar="IN",
                      help="directory of input files (e.g. a store's queue/)")
    cmin.add_argument("output_dir", metavar="OUT",
                      help="directory for the minimized corpus")
    cmin.add_argument("--config", default="pcguard",
                      choices=sorted(name for name, spec in FUZZER_CONFIGS.items()
                                     if spec.kind == "plain"),
                      help="feedback to minimize under (default pcguard, "
                           "i.e. edge coverage like afl-cmin)")

    lint = commands.add_parser(
        "lint", help="run the MiniC linter / path-feasibility analysis"
    )
    lint.add_argument("targets", nargs="*", metavar="TARGET",
                      help="subject names and/or MiniC source files "
                           "(default: all 18 evaluation subjects)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings (and path spaces) as JSON")
    lint.add_argument("--paths", action="store_true",
                      help="also report statically-infeasible Ball-Larus "
                           "paths per target")
    lint.add_argument("--path-cap", type=int, default=None, metavar="N",
                      help="enumerate path feasibility only for functions "
                           "with at most N numbered paths (default 20000); "
                           "larger functions fall back to the dead-edge bound")
    lint.add_argument("--check-baseline", metavar="PATH", default=None,
                      help="compare findings + path spaces against a "
                           "committed baseline; exit 1 on drift")
    lint.add_argument("--write-baseline", metavar="PATH", default=None,
                      help="write the current findings + path spaces as the "
                           "new baseline")

    solve = commands.add_parser(
        "solve",
        help="extract an input's path condition and solve branch flips",
    )
    solve.add_argument("target", metavar="TARGET",
                       help="a subject name or a MiniC source file")
    solve.add_argument("input", metavar="INPUT",
                       help="input file to replay ('-' reads stdin)")
    solve.add_argument("--max-bytes", type=int, default=4, metavar="N",
                       help="skip constraints supported by more than N input "
                            "bytes (default 4)")
    solve.add_argument("--node-budget", type=int, default=4096, metavar="N",
                       help="interval-split search nodes per constraint "
                            "(default 4096)")
    solve.add_argument("--flips", type=int, default=0, metavar="N",
                       help="attempt at most N flips (default 0 = all)")
    solve.add_argument("--json", action="store_true",
                       help="emit constraints and witnesses as JSON")

    report = commands.add_parser("report", help="regenerate paper artifacts")
    report.add_argument("artifacts", nargs="*", help="table1..table10, fig2, ...")
    report.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the campaign matrix "
                             "(default: REPRO_JOBS or 1)")
    report.add_argument("--resume", action="store_true",
                        help="checkpoint long campaign cells and resume them "
                             "across retries/restarts instead of recomputing "
                             "from zero (sets REPRO_CHECKPOINT_DIR and a "
                             "default REPRO_CELL_RESTARTS=2)")

    telemetry = commands.add_parser(
        "telemetry", help="render telemetry traces / check tracing overhead"
    )
    telemetry_actions = telemetry.add_subparsers(dest="action", required=True)

    tel_report = telemetry_actions.add_parser(
        "report", help="summarize one or more JSONL trace files"
    )
    tel_report.add_argument("traces", nargs="+", metavar="TRACE",
                            help="JSONL trace file(s); worker sibling files "
                                 "merge by wall timestamp")
    tel_report.add_argument("--html", metavar="PATH", default=None,
                            help="also write a static HTML report")
    tel_report.add_argument("--markdown", metavar="PATH", default=None,
                            help="also write a markdown report")
    tel_report.add_argument("--tail", type=int, default=0, metavar="N",
                            help="print the last N raw event lines too")

    tel_overhead = telemetry_actions.add_parser(
        "overhead",
        help="measure tracing overhead on a smoke campaign and gate it",
    )
    tel_overhead.add_argument("--subject", default="flvmeta",
                              choices=all_subject_names())
    tel_overhead.add_argument("--config", default="pcguard",
                              choices=sorted(FUZZER_CONFIGS))
    tel_overhead.add_argument("--hours", type=float, default=2.0)
    tel_overhead.add_argument("--scale", type=float, default=4.0)
    tel_overhead.add_argument("--repeats", type=int, default=3,
                              help="best-of-N timing repeats (default 3)")
    tel_overhead.add_argument("--gate", type=float, default=5.0,
                              metavar="PCT",
                              help="fail when overhead exceeds PCT%% "
                                   "(default 5)")
    tel_overhead.add_argument("--trace-dir", metavar="DIR", default=None,
                              help="keep the traced run's JSONL under DIR "
                                   "(default: a temp dir, discarded)")

    serve = commands.add_parser(
        "serve",
        help="run the campaign service: schedule job campaigns to completion",
    )
    serve.add_argument("root", metavar="ROOT",
                       help="service root directory (journal + job stores)")
    serve.add_argument("--submit", action="append", default=[],
                       metavar="SUBJECT[:CONFIG[:SEED[:TENANT[:PRIO]]]]",
                       help="submit a job before serving (repeatable); "
                            "previously journaled pending jobs run too")
    serve.add_argument("--max-workers", type=int, default=2,
                       help="concurrent job worker processes (default 2)")
    serve.add_argument("--budget-ticks", type=int, default=60_000,
                       help="virtual-tick budget per submitted job "
                            "(default 60000)")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="per-job retry budget before it degrades "
                            "(default 2)")
    serve.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       help="seconds of heartbeat silence before an attempt "
                            "counts as stalled (default 30)")
    serve.add_argument("--wall-budget", type=float, default=600.0,
                       help="wall seconds per job attempt (default 600)")
    serve.add_argument("--tenant", action="append", default=[],
                       metavar="NAME:RUN:PEND:RETRIES",
                       help="tenant policy: max running, max pending, "
                            "retry budget (repeatable)")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip fsync on journal/store writes (tests only: "
                            "trades crash-safety for speed)")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="write the service telemetry trace to PATH "
                            "as JSONL")
    serve.add_argument("--daemon", action="store_true",
                       help="keep serving after the backlog drains, picking "
                            "up `repro job submit/cancel` from other "
                            "processes; exits on `repro job drain`")
    serve.add_argument("--lease-ttl", type=float, default=None, metavar="SECS",
                       help="hold the root under a renewed lease instead of "
                            "pid-liveness: a standby can steal the root once "
                            "this service stops renewing for SECS")
    serve.add_argument("--standby", type=float, default=None, metavar="SECS",
                       help="if the root is held, wait up to SECS for its "
                            "lease to lapse instead of failing (hot standby)")
    serve.add_argument("--compact-after", type=int, default=0, metavar="N",
                       help="compact the journal after every N records "
                            "(default 0: never auto-compact)")
    serve.add_argument("--poll", type=float, default=0.25, metavar="SECS",
                       help="daemon intake poll interval (default 0.25)")
    serve.add_argument("--service-index", type=int, default=0, metavar="N",
                       help="this service's index for fault-injection "
                            "coordinates (default 0)")

    job = commands.add_parser(
        "job", help="inspect or feed a service root (safe while it serves)"
    )
    job.add_argument("root", metavar="ROOT", help="service root directory")
    job_actions = job.add_subparsers(dest="action", required=True)

    job_submit = job_actions.add_parser(
        "submit", help="journal a job submission for the next `repro serve`"
    )
    job_submit.add_argument("subject", choices=all_subject_names())
    job_submit.add_argument("--config", default="path",
                            choices=sorted(FUZZER_CONFIGS))
    job_submit.add_argument("--run-seed", type=int, default=0)
    job_submit.add_argument("--tenant", default="default")
    job_submit.add_argument("--priority", type=int, default=0)
    job_submit.add_argument("--budget-ticks", type=int, default=60_000)
    job_submit.add_argument("--max-retries", type=int, default=2)
    job_submit.add_argument("--require-checkpoint", action="store_true",
                            help="degrade (typed checkpoint-corrupt) instead "
                                 "of replaying the store when the resume "
                                 "checkpoint is damaged")

    job_status = job_actions.add_parser(
        "status", help="fold the journal (read-only) and print the job table"
    )
    job_status.add_argument("job_id", nargs="?", default=None,
                            help="one job id or a req-… intake nonce "
                                 "(default: the whole table)")
    job_status.add_argument("--json", action="store_true",
                            help="emit machine-readable snapshots")

    job_cancel = job_actions.add_parser(
        "cancel", help="cancel one job (journals directly, or asks a live "
                       "daemon via an intake request)"
    )
    job_cancel.add_argument("job_id")

    job_actions.add_parser(
        "drain", help="ask the daemon on this root to finish its backlog "
                      "and exit (request is honored by the next daemon if "
                      "none is live)"
    )

    job_actions.add_parser(
        "compact", help="fold settled history into a snapshot and prune "
                        "covered records (stopped roots only)"
    )

    job_crashes = job_actions.add_parser(
        "crashes", help="list one job's deduped crash artifacts"
    )
    job_crashes.add_argument("job_id")
    job_crashes.add_argument("--json", action="store_true")

    bench = commands.add_parser(
        "bench",
        help="measure interp vs compiled backend throughput per subject",
    )
    bench.add_argument("subjects", nargs="*", metavar="SUBJECT",
                       help="subjects to bench (default: the 18-subject "
                            "evaluation suite)")
    bench.add_argument("--quick", action="store_true",
                       help="short CI-sized passes (noisier, ~10x faster)")
    bench.add_argument("--feedback", default=None,
                       help="instrumentation to bench under (default path)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="best-of-N interleaved timing passes")
    bench.add_argument("--out-dir", metavar="DIR", default=".",
                       help="directory for BENCH_<date>.json (default .)")
    bench.add_argument("--baseline", metavar="PATH",
                       default="results/bench_baseline.json",
                       help="committed speedup baseline to gate against "
                            "(default results/bench_baseline.json; gate "
                            "skipped when the file is absent)")
    bench.add_argument("--gate-pct", type=float, default=10.0, metavar="PCT",
                       help="fail when a speedup drops more than PCT%% "
                            "below the baseline (default 10)")
    bench.add_argument("--write-baseline", action="store_true",
                       help="rewrite the baseline from this run instead of "
                            "gating against it")
    return parser


def cmd_list(_args):
    for name in all_subject_names():
        subject = get_subject(name)
        print("%-12s %2d bugs  %s" % (name, len(subject.bugs), subject.description))
    return 0


def cmd_show(args):
    subject = get_subject(args.subject)
    stats = subject.program.stats()
    print("subject: %s" % subject.name)
    print("  %s" % subject.description)
    print("  program: %(functions)d functions, %(blocks)d blocks, "
          "%(edges)d edges" % stats)
    print("  seeds: %d, dictionary tokens: %d, max input: %d bytes"
          % (len(subject.seeds), len(subject.tokens), subject.max_input_len))
    from repro.analysis.feasibility import program_path_space

    space = program_path_space(subject.program)
    print("  path space: %d Ball-Larus paths, %d statically infeasible "
          "(%d feasible)" % (space["num_paths"], space["infeasible_paths"],
                             space["feasible_paths"]))
    print("  bug census (%d):" % len(subject.bugs))
    for bug in subject.bugs:
        function, line, kind = bug.bug_id
        print("    %-11s %s:%d %s — %s" % (
            "[%s]" % bug.difficulty, function, line, kind, bug.description))
    if getattr(args, "rare", False):
        _show_rare_branches(subject, args.taint, args.limit)
    elif getattr(args, "taint", False):
        print("  (--taint only applies together with --rare)")
    if getattr(args, "constraints", False):
        _show_seed_constraints(subject, args.limit)
    return 0


def _show_seed_constraints(subject, limit):
    """``show --constraints``: each seed's path condition, shadow-replayed."""
    from repro.analysis.symbolic import extract_path_condition

    for position, seed in enumerate(subject.seeds):
        result, condition = extract_path_condition(
            subject.program,
            seed,
            instr_budget=subject.exec_instr_budget,
            call_depth_limit=subject.call_depth_limit,
        )
        outcome = "ok"
        if result.timeout:
            outcome = "timeout"
        elif result.trap is not None:
            outcome = result.trap.kind
        print("  seed %d (%d bytes, %s): %d symbolic constraint(s)%s"
              % (position, len(seed), outcome, len(condition),
                 ", truncated" if condition.truncated else ""))
        shown = (
            condition.constraints[:limit]
            if limit and limit > 0
            else condition.constraints
        )
        for constraint in shown:
            print("    [%d] %s" % (constraint.index, constraint.describe()))
        if len(shown) < len(condition):
            print("    ... %d more (raise --limit)"
                  % (len(condition) - len(shown)))


def _mask_ranges(mask):
    """Render a byte-offset set as compact ranges, e.g. ``0-3,7,12-13``."""
    if not mask:
        return "-"
    offsets = sorted(mask)
    runs = []
    start = prev = offsets[0]
    for off in offsets[1:]:
        if off == prev + 1:
            prev = off
            continue
        runs.append((start, prev))
        start = prev = off
    runs.append((start, prev))
    return ",".join(
        "%d" % lo if lo == hi else "%d-%d" % (lo, hi) for lo, hi in runs
    )


def _show_rare_branches(subject, with_taint, limit):
    """``show --rare``: branch sites ranked by seed-corpus hit-rarity.

    Executes the subject's seeds under edge-coverage instrumentation (the
    same maps a ``pcguard``/``taint`` campaign observes), counts how many
    seeds cover each conditional-branch edge, and prints the sites rarest
    first — the ones the taint-guided stage would target.  ``--taint``
    additionally runs the seeds under :func:`repro.taint.taint_execute`
    and shows which input bytes each site's condition depends on.
    """
    from repro.coverage.feedback import EdgeFeedback
    from repro.runtime.backend import make_backend
    from repro.taint import build_branch_index

    instr = EdgeFeedback().instrument(subject.program)
    backend = make_backend(subject.program, instr)
    branch_index = build_branch_index(subject.program, instr)
    run_kwargs = dict(
        instr_budget=subject.exec_instr_budget,
        call_depth_limit=subject.call_depth_limit,
    )
    counts = dict.fromkeys(branch_index, 0)
    site_masks = {}
    for seed in subject.seeds:
        result = backend.execute(seed, **run_kwargs)
        for index in result.hits:
            if index in counts:
                counts[index] += 1
        if with_taint:
            _, tmap = backend.taint_execute(seed, **run_kwargs)
            for site, mask in tmap.branch_masks.items():
                site_masks[site] = site_masks.get(site, frozenset()) | mask
    ranked = sorted(counts.items(), key=lambda item: (item[1], item[0]))
    total = len(subject.seeds)
    shown = ranked[:limit] if limit and limit > 0 else ranked
    print("  rare branch edges (%d seeds, %d conditional edges%s):"
          % (total, len(ranked),
             ", rarest %d" % len(shown) if len(shown) < len(ranked) else ""))
    for index, rarity in shown:
        info = branch_index[index]
        line = "    %3d/%-3d idx=%-5d %s:%d -> %d" % (
            rarity, total, index, info.site[0], info.site[1], info.dst)
        if with_taint:
            line += "  bytes=%s" % _mask_ranges(site_masks.get(info.site))
        print(line)
    if with_taint and not site_masks:
        print("    (no seed reached a tainted branch condition)")


def cmd_fuzz(args):
    if args.workers < 1:
        raise SystemExit("repro fuzz: error: --workers must be >= 1")
    if args.resume and args.checkpoint and args.resume != args.checkpoint:
        raise SystemExit("repro fuzz: error: --resume and --checkpoint disagree")
    if args.resume_dir and args.output and args.resume_dir != args.output:
        raise SystemExit("repro fuzz: error: --resume-dir and --output disagree")
    if args.resume_dir and not os.path.isdir(args.resume_dir):
        raise SystemExit(
            "repro fuzz: error: no campaign workspace at %r to resume"
            % args.resume_dir
        )
    output_dir = args.resume_dir or args.output
    resume_store = bool(args.resume_dir)
    subject = get_subject(args.subject)
    budget = hours_to_ticks(args.hours, args.scale)
    checkpoint_every = (
        hours_to_ticks(args.checkpoint_every, args.scale)
        if args.checkpoint_every
        else None
    )
    telemetry = None
    if args.trace:
        from repro import telemetry as _telemetry

        # Workers inherit the trace destination through the environment and
        # re-home their sinks to PATH-derived sibling files (child_trace).
        os.environ[_telemetry.TRACE_ENV] = args.trace
        _telemetry.start_trace(args.trace)
    if args.workers > 1:
        from repro.fuzzer.parallel import run_instance_campaign
        from repro.fuzzer.supervisor import RestartPolicy

        if args.resume:
            raise SystemExit(
                "repro fuzz: error: --resume is single-instance; "
                "instance campaigns resume through --checkpoint DIR supervision"
            )
        sync_hours = args.sync_hours
        sync_ticks = (
            hours_to_ticks(sync_hours, args.scale) if sync_hours else None
        )
        print("fuzzing %s with %r: %d instances x %.1f virtual hours (%d ticks)..."
              % (subject.name, args.config, args.workers, args.hours, budget))
        result, _, stats = run_instance_campaign(
            subject.name,
            args.config,
            args.run_seed,
            budget,
            workers=args.workers,
            sync_interval_ticks=sync_ticks,
            checkpoint_dir=args.checkpoint,
            restart_policy=RestartPolicy(max_restarts=args.max_restarts),
            worker_timeout=args.worker_timeout,
            output_dir=output_dir,
            resume_store=resume_store,
        )
        for line in stats.summary_lines():
            print("  " + line)
        if getattr(result, "degraded", False):
            print("  WARNING: campaign degraded (some workers were dropped)")
    else:
        checkpoint_path = args.resume or args.checkpoint
        if args.resume and not os.path.exists(args.resume):
            raise SystemExit(
                "repro fuzz: error: no checkpoint at %r to resume" % args.resume
            )
        print("fuzzing %s with %r for %.1f virtual hours (%d ticks)..."
              % (subject.name, args.config, args.hours, budget))
        if args.trace:
            from repro import telemetry as _telemetry
            from repro.telemetry.bus import CampaignEvent

            telemetry = _telemetry.engine_telemetry(
                label="%s-%s-%d" % (subject.name, args.config, args.run_seed),
                budget_ticks=budget,
            )
            if telemetry is not None:
                telemetry.bus.publish(CampaignEvent(
                    "begin", subject.name, args.config, args.run_seed,
                    workers=1, budget=budget,
                ))
        store = None
        if output_dir:
            from repro.fuzzer.store import CampaignStore

            store = CampaignStore(
                output_dir,
                meta={
                    "subject": subject.name,
                    "config": args.config,
                    "run_seed": args.run_seed,
                },
            )
        try:
            result = run_config(
                subject,
                args.config,
                args.run_seed,
                budget,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                telemetry=telemetry,
                store=store,
                resume_store=resume_store,
            )
        finally:
            if store is not None:
                store.close()
        if store is not None and store.quarantine_count:
            print("WARNING: quarantined %d damaged workspace file(s) under %s"
                  % (store.quarantine_count,
                     os.path.join(store.worker_dir, "quarantine")))
        if telemetry is not None:
            from repro.telemetry.bus import CampaignEvent

            telemetry.finish(budget)
            telemetry.bus.publish(CampaignEvent(
                "end", subject.name, args.config, args.run_seed,
                workers=1, budget=budget,
            ))
            telemetry.bus.flush()
    print("executions: %d (%d hangs), throughput %.0f exec/vh"
          % (result.execs, result.hangs, result.throughput))
    print("queue: %d entries; edge coverage: %d" % (result.queue_size, len(result.edges)))
    print("crashes: %d raw, %d unique stacks, %d unique bugs"
          % (result.crash_count, len(result.crash_records), len(result.bugs)))
    for record in sorted(result.crash_records, key=lambda r: r.found_at):
        function, line, kind = record.bug
        print("  bug %s:%d (%s), first seen at tick %d, %d crashes"
              % (function, line, kind, record.found_at, record.count))
    plateaus = getattr(result, "plateaus", ())
    if plateaus:
        print("coverage plateaus: %d" % len(plateaus))
        for plateau in plateaus:
            end = "open" if plateau.open else "tick %d" % plateau.end_tick
            print("  flat at %d edges from tick %d to %s"
                  % (plateau.value, plateau.start_tick, end))
    if args.trace:
        print("telemetry trace: %s (render with "
              "`repro telemetry report %s`)" % (args.trace, args.trace))
    if output_dir:
        print("campaign workspace: %s (resume with "
              "`repro fuzz %s --resume-dir %s`)"
              % (output_dir, args.subject, output_dir))
    return 0


def cmd_cmin(args):
    from repro.fuzzer.cmin import coverage_of, minimize_corpus
    from repro.fuzzer.store import artifact_name, atomic_write_bytes, content_hash

    subject = get_subject(args.subject)
    spec = FUZZER_CONFIGS[args.config]
    if not os.path.isdir(args.input_dir):
        raise SystemExit(
            "repro cmin: error: no input directory %r" % args.input_dir
        )
    # Collect input files, skipping store sidecars and exact duplicates
    # (content hash) so identical entries from different worker slices do
    # not inflate the trace pass.
    inputs = []
    seen = set()
    for name in sorted(os.listdir(args.input_dir)):
        path = os.path.join(args.input_dir, name)
        if not os.path.isfile(path):
            continue
        if name.endswith((".report.txt", ".triage.json", ".json")) or ".tmp." in name:
            continue
        with open(path, "rb") as handle:
            data = handle.read()
        digest = content_hash(data)
        if not data or digest in seen:
            continue
        seen.add(digest)
        inputs.append(data)
    if not inputs:
        raise SystemExit(
            "repro cmin: error: no corpus files in %r" % args.input_dir
        )
    feedback = spec.feedback_factory()
    budget = subject.exec_instr_budget
    kept = minimize_corpus(
        subject.program, inputs, feedback=feedback, instr_budget=budget
    )
    os.makedirs(args.output_dir, exist_ok=True)
    for seq, data in enumerate(kept):
        atomic_write_bytes(
            os.path.join(args.output_dir, artifact_name(seq, content_hash(data))),
            data,
        )
    before = coverage_of(subject.program, inputs, feedback=feedback, instr_budget=budget)
    after = coverage_of(subject.program, kept, feedback=feedback, instr_budget=budget)
    print("minimized %d unique inputs -> %d (%s coverage: %d -> %d indices)"
          % (len(inputs), len(kept), args.config, len(before), len(after)))
    print("wrote %d files to %s" % (len(kept), args.output_dir))
    return 0 if after >= before else 1


def _lint_payload(args):
    """Lint every target; {name: {findings, path_space?}} plus Findings."""
    from repro.analysis.feasibility import DEFAULT_PATH_CAP, program_path_space
    from repro.analysis.lint import lint_source
    from repro.lang import compile_source
    from repro.subjects import SUITE_NAMES

    targets = args.targets or list(SUITE_NAMES)
    path_cap = args.path_cap if args.path_cap is not None else DEFAULT_PATH_CAP
    want_paths = bool(
        args.paths or args.json or args.check_baseline or args.write_baseline
    )
    payload = {}
    all_findings = []
    for target in targets:
        if os.path.isfile(target):
            with open(target) as handle:
                source = handle.read()
            name = target
            program = compile_source(source, name) if want_paths else None
        else:
            try:
                subject = get_subject(target)
            except KeyError:
                raise SystemExit(
                    "repro lint: error: %r is neither a subject nor a file"
                    % target
                )
            source = subject.source
            name = subject.name
            program = subject.program if want_paths else None
        findings = lint_source(source, name)
        entry = {"findings": [f.to_dict() for f in findings]}
        if program is not None:
            space = program_path_space(program, path_cap=path_cap)
            entry["path_space"] = {
                key: space[key]
                for key in (
                    "num_paths",
                    "feasible_paths",
                    "infeasible_paths",
                    "dead_edges",
                )
            }
        payload[name] = entry
        all_findings.extend(findings)
    return payload, all_findings


def cmd_lint(args):
    import json

    from repro.analysis.lint import render_text

    payload, findings = _lint_payload(args)
    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            json.dump({"subjects": payload}, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote baseline for %d target(s) to %s"
              % (len(payload), args.write_baseline))
        return 0
    if args.check_baseline:
        with open(args.check_baseline) as handle:
            baseline = json.load(handle).get("subjects", {})
        # Round-trip through JSON so tuples/ints normalize identically.
        current = json.loads(json.dumps(payload))
        drift = []
        for name in sorted(set(baseline) | set(current)):
            if name not in baseline:
                drift.append("%s: not in baseline" % name)
            elif name not in current:
                drift.append("%s: in baseline but not linted" % name)
            elif baseline[name] != current[name]:
                got = len(current[name]["findings"])
                want = len(baseline[name]["findings"])
                detail = "%d findings (baseline %d)" % (got, want)
                if baseline[name].get("path_space") != current[name].get(
                    "path_space"
                ):
                    detail += "; path space changed %r -> %r" % (
                        baseline[name].get("path_space"),
                        current[name].get("path_space"),
                    )
                drift.append("%s: %s" % (name, detail))
        if drift:
            print("lint baseline drift (%d target(s)):" % len(drift))
            for line in drift:
                print("  " + line)
            print("re-record with: repro lint --write-baseline %s"
                  % args.check_baseline)
            return 1
        print("lint baseline clean: %d target(s), %d finding(s)"
              % (len(payload), len(findings)))
        return 0
    # Error-severity findings fail the command (warnings/info do not).
    status = 1 if any(f.severity == "error" for f in findings) else 0
    if args.json:
        print(json.dumps({"subjects": payload}, indent=2, sort_keys=True))
        return status
    print(render_text(findings))
    if args.paths:
        for name in sorted(payload):
            space = payload[name].get("path_space")
            if space:
                print("%s: %d of %d Ball-Larus paths statically infeasible "
                      "(%d dead edges)"
                      % (name, space["infeasible_paths"], space["num_paths"],
                         space["dead_edges"]))
    return status


def cmd_solve(args):
    """``repro solve``: path condition + bounded flip solving for one input.

    The command-line face of the concolic stage (DESIGN §14): replay the
    input under the shadow interpreter with every byte symbolic, print the
    collected path condition, then ask the bounded solver for a witness
    flipping each constraint — verifying every witness by concrete replay.
    """
    import json as _json
    import sys

    from repro.analysis.solver import apply_witness, solve_flip
    from repro.analysis.symbolic import extract_path_condition
    from repro.lang import compile_source
    from repro.runtime.interpreter import execute

    run_kwargs = {}
    if os.path.isfile(args.target):
        with open(args.target) as handle:
            source = handle.read()
        name = args.target
        program = compile_source(source, name)
    else:
        try:
            subject = get_subject(args.target)
        except KeyError:
            raise SystemExit(
                "repro solve: error: %r is neither a subject nor a file"
                % args.target
            )
        name = subject.name
        program = subject.program
        run_kwargs = dict(
            instr_budget=subject.exec_instr_budget,
            call_depth_limit=subject.call_depth_limit,
        )
    if args.input == "-":
        data = sys.stdin.buffer.read()
    else:
        with open(args.input, "rb") as handle:
            data = handle.read()

    result, condition = extract_path_condition(
        program,
        data,
        instr_budget=run_kwargs.get("instr_budget", 400_000),
        call_depth_limit=run_kwargs.get("call_depth_limit", 64),
    )
    rows = []
    budget = args.flips if args.flips and args.flips > 0 else len(condition)
    attempted = 0
    for constraint in condition:
        row = {
            "index": constraint.index,
            "site": "%s:%d" % constraint.site,
            "support": sorted(constraint.support()),
            "constraint": constraint.describe(),
        }
        if attempted < budget:
            attempted += 1
            assignment, stats = solve_flip(
                constraint,
                condition.prefix(constraint.index),
                data,
                max_bytes=args.max_bytes,
                node_budget=args.node_budget,
            )
            row["nodes"] = stats.nodes
            if assignment is None:
                row["witness"] = None
                row["gave_up"] = stats.gave_up
            else:
                witness = apply_witness(data, assignment)
                replay = execute(program, witness, **run_kwargs)
                row["witness"] = {
                    "assignment": {
                        str(off): value
                        for off, value in sorted(assignment.items())
                    },
                    "bytes": witness.hex(),
                    "retval": replay.retval,
                    "trap": (
                        replay.trap.kind if replay.trap is not None else None
                    ),
                }
        rows.append(row)
    if args.json:
        print(_json.dumps({
            "target": name,
            "input_len": len(data),
            "trapped": result.trap.kind if result.trap is not None else None,
            "truncated": condition.truncated,
            "constraints": rows,
        }, indent=2, sort_keys=True))
        return 0
    print("%s: %d byte(s), %d symbolic constraint(s)%s"
          % (name, len(data), len(condition),
             ", truncated" if condition.truncated else ""))
    if result.trap is not None:
        print("  input already traps: %s" % result.trap.kind)
    for row in rows:
        print("  [%d] %s" % (row["index"], row["constraint"]))
        if "witness" not in row:
            print("      (not attempted; raise --flips)")
        elif row["witness"] is None:
            why = "support cap" if row.get("gave_up") else (
                "%d nodes exhausted" % args.node_budget)
            print("      unsolved (%s)" % why)
        else:
            witness = row["witness"]
            edits = ", ".join(
                "byte[%s]=%d" % item for item in witness["assignment"].items()
            )
            outcome = (
                "TRAP %s" % witness["trap"]
                if witness["trap"]
                else "retval %d" % witness["retval"]
            )
            print("      flipped with %s (%d nodes) -> %s"
                  % (edits, row["nodes"], outcome))
    return 0


def cmd_telemetry(args):
    from repro.telemetry import render

    if args.action == "report":
        for path in args.traces:
            if not os.path.exists(path):
                raise SystemExit(
                    "repro telemetry: error: no trace at %r" % path
                )
        lines = render.render_report(
            args.traces, html_path=args.html, markdown_path=args.markdown
        )
        for line in lines:
            print(line)
        if args.tail:
            events, _ = render.load_traces(args.traces)
            print()
            for line in render.tail_lines(events)[-args.tail:]:
                print(line)
        if args.html:
            print("wrote %s" % args.html)
        if args.markdown:
            print("wrote %s" % args.markdown)
        return 0
    # action == "overhead"
    from repro.telemetry.overhead import measure_overhead

    report = measure_overhead(
        subject_name=args.subject,
        config_name=args.config,
        hours=args.hours,
        scale=args.scale,
        repeats=args.repeats,
        gate_pct=args.gate,
        trace_dir=args.trace_dir,
    )
    for line in report.lines():
        print(line)
    return 0 if report.passed else 1


def cmd_bench(args):
    from repro.experiments import bench as _bench

    feedback = args.feedback or _bench.DEFAULT_FEEDBACK
    report = _bench.run_bench(
        subjects=args.subjects or None,
        feedback=feedback,
        quick=args.quick,
        repeats=args.repeats,
        progress=lambda row: print(_bench.format_row(row)),
    )
    print("geomean speedup: %.2fx" % report["geomean_speedup"])
    path = _bench.write_report(report, args.out_dir)
    print("wrote %s" % path)
    if args.write_baseline:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        with open(args.baseline, "w") as fh:
            import json

            json.dump(_bench.baseline_from_report(report), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print("wrote %s" % args.baseline)
        return 0
    if not os.path.exists(args.baseline):
        print("no baseline at %s; gate skipped" % args.baseline)
        return 0
    with open(args.baseline) as fh:
        import json

        baseline = json.load(fh)
    failures = _bench.check_against_baseline(
        report, baseline, gate_pct=args.gate_pct
    )
    for failure in failures:
        print("REGRESSION: %s" % failure)
    if failures:
        return 1
    print("bench gate passed (within %.0f%% of baseline)" % args.gate_pct)
    return 0


def _parse_submit_spec(text):
    """``subject[:config[:seed[:tenant[:prio]]]]`` -> submit() kwargs."""
    parts = text.split(":")
    subject = parts[0]
    if subject not in all_subject_names():
        raise SystemExit(
            "repro serve: error: unknown subject %r in --submit %r"
            % (subject, text)
        )
    config = parts[1] if len(parts) > 1 and parts[1] else "path"
    if config not in FUZZER_CONFIGS:
        raise SystemExit(
            "repro serve: error: unknown config %r in --submit %r"
            % (config, text)
        )
    try:
        run_seed = int(parts[2]) if len(parts) > 2 and parts[2] else 0
        priority = int(parts[4]) if len(parts) > 4 and parts[4] else 0
    except ValueError:
        raise SystemExit(
            "repro serve: error: non-integer seed/priority in --submit %r"
            % text
        )
    tenant = parts[3] if len(parts) > 3 and parts[3] else "default"
    return {
        "subject": subject,
        "config": config,
        "run_seed": run_seed,
        "tenant": tenant,
        "priority": priority,
    }


def _print_job_table(jobs):
    for job_id in sorted(jobs):
        snap = jobs[job_id].snapshot()
        line = "  %-8s %-9s %s/%s#%d tenant=%s attempts=%d retries=%d" % (
            snap["job"], snap["state"], snap["subject"], snap["config"],
            snap["run_seed"], snap["tenant"], snap["attempts"],
            snap["retries_used"],
        )
        summary = snap.get("summary") or {}
        if summary:
            line += "  %d execs, %d crash sig(s)" % (
                summary.get("execs", 0), len(summary.get("crash_sigs", ())),
            )
        reason = snap.get("reason")
        if reason:
            line += "  [%s] %s" % (reason["category"], reason["detail"])
        print(line)


def cmd_serve(args):
    import asyncio

    from repro.fuzzer.supervisor import RestartPolicy
    from repro.fuzzer.store import StoreLockError
    from repro.service import AdmissionError, CampaignService, TenantPolicy
    from repro.service.lease import LeaseLostError

    if args.trace:
        from repro import telemetry as _telemetry

        os.environ[_telemetry.TRACE_ENV] = args.trace
        _telemetry.start_trace(args.trace)
    policies = []
    for text in args.tenant:
        parts = text.split(":")
        if len(parts) != 4:
            raise SystemExit(
                "repro serve: error: --tenant wants NAME:RUN:PEND:RETRIES, "
                "got %r" % text
            )
        try:
            policies.append(
                TenantPolicy(parts[0], int(parts[1]), int(parts[2]),
                             int(parts[3]))
            )
        except ValueError:
            raise SystemExit(
                "repro serve: error: non-integer quota in --tenant %r" % text
            )
    submissions = [_parse_submit_spec(text) for text in args.submit]
    try:
        service = CampaignService(
            args.root,
            max_workers=args.max_workers,
            policies=policies,
            restart_policy=RestartPolicy(
                max_restarts=args.max_retries, backoff_base=0.05,
                backoff_max=1.0
            ),
            heartbeat_timeout=args.heartbeat_timeout,
            wall_budget=args.wall_budget,
            fsync=not args.no_fsync,
            lease_ttl=args.lease_ttl,
            standby_wait=args.standby,
            compact_after=args.compact_after,
            poll_interval=args.poll,
            service_index=args.service_index,
        )
    except StoreLockError as exc:
        raise SystemExit(
            "repro serve: error: %s (use --standby SECS to wait for the "
            "lease to lapse)" % exc
        )
    try:
        if service.quarantined:
            print("WARNING: quarantined %d damaged journal record(s)"
                  % len(service.quarantined))
        for kwargs in submissions:
            try:
                job_id = service.submit(
                    budget_ticks=args.budget_ticks,
                    max_retries=args.max_retries,
                    **kwargs,
                )
            except AdmissionError as exc:
                print("refused %s/%s#%d: %s"
                      % (kwargs["subject"], kwargs["config"],
                         kwargs["run_seed"], exc))
                continue
            print("submitted %s: %s/%s#%d (tenant=%s, prio=%d)"
                  % (job_id, kwargs["subject"], kwargs["config"],
                     kwargs["run_seed"], kwargs["tenant"], kwargs["priority"]))
        if args.daemon:
            print("daemon on %s (fence epoch %d): waiting for jobs; stop "
                  "with `repro job %s drain`"
                  % (args.root, service.lease.epoch, args.root))
        try:
            summary = asyncio.run(
                service.serve_forever() if args.daemon
                else service.run_until_idle()
            )
        except LeaseLostError as exc:
            # Another service fenced this one off the root.  Exit distinct
            # from failure: our journaled work up to the steal is intact.
            print("FENCED: %s" % exc)
            return 75
        print("served %d job(s): %s" % (
            summary["jobs"],
            ", ".join("%d %s" % (count, state)
                      for state, count in sorted(summary["states"].items()))
            or "none",
        ))
        _print_job_table(service.jobs)
        signatures = service.crash_signatures()
        print("deduped crash signatures: %d unique (%d artifact(s))"
              % (summary["dedupe"]["unique"], summary["dedupe"]["total"]))
        for sig, count in signatures.items():
            print("  sig:%s  %d artifact(s) via %s"
                  % (sig, count, ",".join(service.dedupe.jobs_for(sig))))
        degraded = summary["states"].get("degraded", 0)
        if degraded:
            print("WARNING: %d job(s) degraded (see reasons above)" % degraded)
        return 1 if degraded else 0
    finally:
        service.close()
        if args.trace:
            from repro.telemetry.bus import get_bus

            get_bus().flush()
            print("telemetry trace: %s" % args.trace)


def cmd_job(args):
    import json

    from repro.fuzzer.store import StoreLockError
    from repro.service import list_job_crashes, load_job_table, submit_offline
    from repro.service.intake import drain_request
    from repro.service.orchestrator import (
        JOBS_DIR,
        cancel_offline,
        compact_offline,
        load_service_state,
    )

    if args.action == "submit":
        job_id = submit_offline(
            args.root,
            subject=args.subject,
            config=args.config,
            run_seed=args.run_seed,
            tenant=args.tenant,
            priority=args.priority,
            budget_ticks=args.budget_ticks,
            max_retries=args.max_retries,
            require_checkpoint=args.require_checkpoint,
        )
        if job_id.startswith("req-"):
            print("requested %s (a live service owns %s; track it with "
                  "`repro job %s status %s`)"
                  % (job_id, args.root, args.root, job_id))
        else:
            print("journaled %s (runs on the next `repro serve %s`)"
                  % (job_id, args.root))
        return 0
    if args.action == "cancel":
        try:
            result = cancel_offline(args.root, args.job_id)
        except KeyError:
            raise SystemExit(
                "repro job: error: unknown job %r" % args.job_id
            )
        if result is True:
            print("cancelled %s" % args.job_id)
        elif result is False:
            print("%s already terminal; nothing to cancel" % args.job_id)
        else:
            print("requested %s (a live service owns %s; it re-checks and "
                  "settles the cancel)" % (result, args.root))
        return 0
    if args.action == "drain":
        nonce = drain_request(args.root)
        print("requested %s (the daemon on %s finishes its backlog and "
              "exits)" % (nonce, args.root))
        return 0
    if args.action == "compact":
        try:
            path = compact_offline(args.root)
        except StoreLockError as exc:
            raise SystemExit(
                "repro job: error: %s (a live daemon compacts on its own "
                "cadence; stop it first)" % exc
            )
        if path is None:
            print("nothing to compact (empty journal)")
        else:
            print("compacted into %s" % os.path.basename(path))
        return 0
    state, quarantined, pending = load_service_state(args.root)
    jobs, epochs, conflicts = state.jobs, state.epochs, state.conflicts
    if args.action == "status":
        if args.job_id is not None and args.job_id.startswith("req-"):
            # An intake nonce: resolve it through the fold's settled-request
            # table, falling back to the still-pending request files.
            if args.job_id in state.handled:
                job_id = state.handled[args.job_id]
                if job_id is None:
                    print("%s: settled (refused or acknowledged)"
                          % args.job_id)
                    return 0
                print("%s -> %s" % (args.job_id, job_id))
                args.job_id = job_id
            elif any(req["nonce"] == args.job_id for req in pending):
                print("%s: pending (no daemon has settled it yet)"
                      % args.job_id)
                return 0
            else:
                raise SystemExit(
                    "repro job: error: unknown request %r" % args.job_id
                )
        if args.job_id is not None:
            if args.job_id not in jobs:
                raise SystemExit(
                    "repro job: error: unknown job %r" % args.job_id
                )
            snaps = [jobs[args.job_id].snapshot()]
        else:
            snaps = [jobs[job_id].snapshot() for job_id in sorted(jobs)]
        if args.json:
            print(json.dumps(
                {
                    "epochs": epochs,
                    "conflicts": conflicts,
                    "quarantined": len(quarantined),
                    "pending_requests": [req["nonce"] for req in pending],
                    "jobs": snaps,
                },
                indent=2, sort_keys=True,
            ))
            return 0
        print("%d job(s), %d service epoch(s), %d fold conflict(s), "
              "%d quarantined record(s), %d pending request(s)"
              % (len(jobs), epochs, conflicts, len(quarantined),
                 len(pending)))
        _print_job_table({snap["job"]: jobs[snap["job"]] for snap in snaps})
        return 0
    # action == "crashes"
    if args.job_id not in jobs:
        raise SystemExit("repro job: error: unknown job %r" % args.job_id)
    crashes = list_job_crashes(
        os.path.join(os.path.abspath(args.root), JOBS_DIR), args.job_id
    )
    if args.json:
        print(json.dumps(crashes, indent=2, sort_keys=True))
        return 0
    print("%d crash artifact(s) for %s" % (len(crashes), args.job_id))
    for crash in crashes:
        triage = crash["triage"] or {}
        frames = triage.get("stack") or triage.get("frames") or []
        top = frames[0] if frames else "?"
        print("  sig:%s  %s  top=%s" % (crash["sig"], crash["path"], top))
    return 0


def cmd_report(args):
    from repro.experiments.report import main as report_main

    if args.jobs is not None:
        # The report modules call run_matrix without a jobs argument; the
        # environment knob is how the fan-out degree reaches them.
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.resume:
        # Durable matrix cells: campaigns checkpoint periodically and a
        # crashed/retried cell resumes from its snapshot (see runner docs).
        from repro.experiments.runner import _cache_dir

        os.environ.setdefault(
            "REPRO_CHECKPOINT_DIR", os.path.join(_cache_dir(), "checkpoints")
        )
        os.environ.setdefault("REPRO_CELL_RESTARTS", "2")
    report_main(args.artifacts)
    return 0


def main(argv=None):
    args = build_arg_parser().parse_args(argv)
    if getattr(args, "verbose", False):
        # Configure the package logger for every subcommand; basicConfig is
        # a no-op when the root logger is already set up, so this composes
        # with embedding applications.
        logging.basicConfig(level=logging.INFO, format="%(message)s")
        logging.getLogger("repro").setLevel(logging.INFO)
    handler = {
        "list": cmd_list,
        "show": cmd_show,
        "fuzz": cmd_fuzz,
        "cmin": cmd_cmin,
        "lint": cmd_lint,
        "solve": cmd_solve,
        "report": cmd_report,
        "telemetry": cmd_telemetry,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "job": cmd_job,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
