"""A bounded constraint solver for flipping branch conditions.

No external SMT: the solver works on the small expression language of
:mod:`repro.analysis.symbolic` with **interval-split search**.  To flip a
constraint it maintains one byte-range domain per supporting input byte
(starting at ``[0, 255]``), repeatedly bisecting the widest domain, and
prunes whole subdomains with the interval evaluator: if the target
expression's interval over a subdomain cannot reach the desired truth
value — or forces some *prefix* constraint off its recorded direction —
no assignment inside that subdomain can work, and the subtree dies
without enumeration.  Pruning is sound because
:func:`~repro.analysis.symbolic.interval_expr` over-approximates every
non-trapping evaluation.

At fully-singleton leaves the candidate is checked *concretely* with
:func:`~repro.analysis.symbolic.eval_expr` (VM-exact semantics, traps
reject), so no imprecision anywhere above can produce a false witness.
Callers still replay witnesses through the real interpreter — the solver
only predicts; the fuzzer's queue only trusts executions.

Search order is deterministic and minimal-perturbation: the half of a
bisected domain containing the *original* byte value is explored first,
so the first witness found tends to differ from the seed input in as few
byte values as possible.
"""

from repro.analysis.interval import Interval
from repro.analysis.symbolic import (
    _BIN as _SYM_BIN,
    SymExpr,
    eval_expr,
    expr_support,
    interval_expr,
    match_byte_fold,
)
from repro.cfg.instructions import OP_EQ, OP_NE

DEFAULT_MAX_BYTES = 4
DEFAULT_NODE_BUDGET = 4096


class SolveStats:
    """Counters for one :func:`solve_flip` attempt."""

    __slots__ = ("nodes", "evals", "solved", "support_bytes", "gave_up")

    def __init__(self):
        self.nodes = 0
        self.evals = 0
        self.solved = False
        self.support_bytes = 0
        self.gave_up = False

    def clock_cost(self):
        """A deterministic virtual cost for the fuzzer's clock."""
        return self.nodes * 2 + self.evals * 8


def apply_witness(data, assignment):
    """Return ``data`` with the witness's byte assignment applied."""
    out = bytearray(data)
    for offset, value in assignment.items():
        out[offset] = value & 0xFF
    return bytes(out)


def _direct_equality(constraint, want_true, data, active, stats):
    """Solve ``fold ==/!= const`` by byte assignment; None to fall back."""
    expr = constraint.expr
    if (
        not isinstance(expr, SymExpr)
        or expr.kind != _SYM_BIN
        or expr.op not in (OP_EQ, OP_NE)
    ):
        return None
    # Want the *equality* to hold: EQ flipped to true, or NE flipped to
    # false.  Inequalities are easy for the search; don't shortcut them.
    if not ((expr.op == OP_EQ) == want_true):
        return None
    lhs, rhs = expr.a, expr.b
    if isinstance(lhs, int):
        lhs, rhs = rhs, lhs
    if not isinstance(rhs, int):
        return None
    offsets = match_byte_fold(lhs)
    if offsets is None or len(set(offsets)) != len(offsets):
        return None
    width = len(offsets)
    if rhs < 0 or rhs >= 1 << (8 * width):
        return None
    assignment = {
        off: (rhs >> (8 * (width - 1 - position))) & 0xFF
        for position, off in enumerate(offsets)
    }

    def byte_at(off):
        return assignment.get(off, data[off])

    stats.evals += 1
    value = eval_expr(expr, byte_at)
    if value is None or (value != 0) != want_true:
        return None
    if any(c.holds(byte_at) is not True for c in active):
        return None
    return assignment


def solve_flip(
    constraint,
    prefix_constraints,
    data,
    max_bytes=DEFAULT_MAX_BYTES,
    node_budget=DEFAULT_NODE_BUDGET,
):
    """Find input bytes flipping ``constraint``'s branch direction.

    Searches for an assignment to the constraint's supporting bytes that
    makes its expression's truthiness ``not constraint.taken_true``
    while keeping every *prefix* constraint (those recorded earlier on
    the path whose support overlaps the changed bytes) on its recorded
    direction — so the execution plausibly still reaches the guard.

    Returns ``(assignment, stats)`` where ``assignment`` maps byte
    offsets to new values (None when unsolved).  Purely deterministic.
    """
    stats = SolveStats()
    want_true = not constraint.taken_true
    support = sorted(expr_support(constraint.expr))
    stats.support_bytes = len(support)
    if not support or len(support) > max_bytes:
        stats.gave_up = True
        return None, stats
    if any(off < 0 or off >= len(data) for off in support):
        stats.gave_up = True
        return None, stats
    support_set = set(support)
    active = [
        c
        for c in prefix_constraints
        if c.index < constraint.index and c.support() & support_set
    ]
    # Bytes a prefix constraint reads that we are *not* changing stay at
    # their original values: fixed singleton domains for interval pruning.
    fixed = {}
    for c in active:
        for off in c.support() - support_set:
            fixed[off] = Interval(data[off], data[off])

    # Input-to-state shortcut: an equality between a pure byte-fold read
    # (read16/read32/input[i]) and a constant is solved by assigning the
    # constant's bytes directly — no search.  The candidate still passes
    # the same concrete verification as any DFS leaf.
    direct = _direct_equality(constraint, want_true, data, active, stats)
    if direct is not None:
        stats.solved = True
        return direct, stats

    def byte_at_factory(domains):
        def byte_at(off):
            dom = domains.get(off)
            return dom.lo if dom is not None else data[off]

        return byte_at

    def viable(expr, want, lookup):
        iv = interval_expr(expr, lookup)
        if want:
            return not iv.is_zero()
        return not iv.excludes_zero()

    root = {off: Interval(0, 255) for off in support}
    stack = [root]
    while stack:
        if stats.nodes >= node_budget:
            stats.gave_up = True
            return None, stats
        stats.nodes += 1
        domains = stack.pop()
        lookup = dict(fixed)
        lookup.update(domains)
        if not viable(constraint.expr, want_true, lookup):
            continue
        pruned = False
        for c in active:
            if not viable(c.expr, c.taken_true, lookup):
                pruned = True
                break
        if pruned:
            continue
        widest = None
        width = 0
        for off in support:
            dom = domains[off]
            span = dom.hi - dom.lo
            if span > width:
                width = span
                widest = off
        if widest is None:
            # All domains are singletons: concrete VM-exact check.
            stats.evals += 1
            byte_at = byte_at_factory(domains)
            value = eval_expr(constraint.expr, byte_at)
            if value is None or (value != 0) != want_true:
                continue
            if any(c.holds(byte_at) is not True for c in active):
                continue
            stats.solved = True
            return {off: domains[off].lo for off in support}, stats
        dom = domains[widest]
        mid = (dom.lo + dom.hi) // 2
        low = Interval(dom.lo, mid)
        high = Interval(mid + 1, dom.hi)
        original = data[widest]
        # Stack is LIFO: push the preferred half (containing the original
        # byte value) last so it is explored first.
        first, second = (low, high) if low.contains(original) else (high, low)
        alt = dict(domains)
        alt[widest] = second
        stack.append(alt)
        pref = dict(domains)
        pref[widest] = first
        stack.append(pref)
    stats.gave_up = False
    return None, stats
