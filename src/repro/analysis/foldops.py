"""Shared constant-folding semantics for MiniC integer operators.

One table, three consumers: the middle-end folder
(:mod:`repro.cfg.optimize`), conditional constant propagation
(:mod:`repro.analysis.constprop`), and the symbolic evaluator
(:mod:`repro.analysis.symbolic`).  All of them must agree with the VM
bit for bit, so the rules live here — a leaf module that depends only
on the instruction constants and :func:`repro.runtime.values.wrap_int`.

The contract:

- division and modulo are *never* evaluated statically (a constant zero
  divisor must trap at its original runtime site);
- shifts are evaluated only for in-range amounts (``0 <= b < 64``);
  out-of-range amounts trap at runtime;
- everything else wraps to signed 64-bit two's complement, matching the
  interpreter's inline dispatch exactly.
"""

from repro.cfg.instructions import (
    OP_ADD,
    OP_AND,
    OP_BNOT,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LNOT,
    OP_LT,
    OP_MOD,
    OP_MUL,
    OP_NE,
    OP_NEG,
    OP_OR,
    OP_SHL,
    OP_SHR,
    OP_SUB,
    OP_XOR,
)
from repro.runtime.values import wrap_int

FOLDABLE_BIN = {
    OP_ADD: lambda a, b: a + b,
    OP_SUB: lambda a, b: a - b,
    OP_MUL: lambda a, b: a * b,
    OP_LT: lambda a, b: int(a < b),
    OP_LE: lambda a, b: int(a <= b),
    OP_GT: lambda a, b: int(a > b),
    OP_GE: lambda a, b: int(a >= b),
    OP_EQ: lambda a, b: int(a == b),
    OP_NE: lambda a, b: int(a != b),
    OP_AND: lambda a, b: a & b,
    OP_OR: lambda a, b: a | b,
    OP_XOR: lambda a, b: a ^ b,
}

FOLDABLE_UN = {
    OP_NEG: lambda a: -a,
    OP_LNOT: lambda a: int(a == 0),
    OP_BNOT: lambda a: ~a,
}


def fold_binop(binop, a, b):
    """Statically evaluate ``a binop b``, or None when it must stay runtime.

    Division and modulo are never evaluated (a constant zero divisor must
    trap at its original site), and shifts only for in-range amounts.  The
    result matches the VM bit for bit (64-bit wrap-around), so the constant
    propagation analyses share these exact semantics.
    """
    if binop in (OP_DIV, OP_MOD):
        return None
    if binop in (OP_SHL, OP_SHR):
        if not 0 <= b < 64:
            return None
        return wrap_int(a << b) if binop == OP_SHL else wrap_int(a >> b)
    return wrap_int(FOLDABLE_BIN[binop](a, b))


def fold_unop(unop, a):
    """Statically evaluate ``unop a`` (always foldable; no unary op traps)."""
    return wrap_int(FOLDABLE_UN[unop](a))
