"""Generic worklist dataflow solver over the tuple IR.

A :class:`DataflowAnalysis` describes one problem: a direction, a lattice
(via ``join`` plus the ``boundary``/``initial`` elements), and per-
instruction transfer functions.  :func:`solve` iterates a block-level
worklist (seeded in reverse postorder for forward problems, postorder for
backward ones) to the least fixed point and returns the per-block states
at block entry and exit.

States are opaque to the solver; the concrete analyses here use
frozensets (reaching definitions, liveness) and integer bitmasks
(must-defined registers) — registers are dense, so a bitmask join is a
single ``&``/``|``.

Concrete analyses:

- :class:`ReachingDefinitions` — forward, may; which definition sites can
  reach each program point;
- :class:`Liveness` — backward, may; which registers are live (read before
  redefinition on some path);
- :class:`MustDefined` — forward, must; which registers are written on
  *every* path from the entry (the verifier's def-before-use check).

Conditional constant propagation lives in
:mod:`repro.analysis.constprop`: its lattice needs the executable-edge
refinement that a plain block worklist does not model.
"""

from repro.cfg.analysis import reverse_postorder
from repro.cfg.instructions import instr_def, instr_uses, term_uses

FORWARD = "forward"
BACKWARD = "backward"


class DataflowAnalysis:
    """One dataflow problem; subclass and override the hooks."""

    direction = FORWARD

    def boundary(self, cfg):
        """State at the entry (forward) or fed into every RET block exit
        (backward)."""
        raise NotImplementedError

    def initial(self, cfg):
        """Optimistic starting state for every other block."""
        raise NotImplementedError

    def join(self, a, b):
        """Combine states where control-flow paths meet."""
        raise NotImplementedError

    def transfer_instr(self, instr, state):
        """State after one instruction (in analysis direction)."""
        raise NotImplementedError

    def transfer_term(self, term, state):
        """State across the terminator; identity by default."""
        return state

    def transfer_block(self, block, state):
        """State across a whole block, in the analysis direction."""
        if self.direction == FORWARD:
            for instr in block.instrs:
                state = self.transfer_instr(instr, state)
            if block.term is not None:
                state = self.transfer_term(block.term, state)
            return state
        if block.term is not None:
            state = self.transfer_term(block.term, state)
        for instr in reversed(block.instrs):
            state = self.transfer_instr(instr, state)
        return state


class DataflowResult:
    """Fixed-point states per block.

    ``entry[b]``/``exit[b]`` are the states at the top and bottom of block
    ``b`` in *program order* regardless of analysis direction (so for a
    backward problem ``entry[b]`` is the final, most-informed state).
    """

    __slots__ = ("analysis", "entry", "exit")

    def __init__(self, analysis, entry, exit_states):
        self.analysis = analysis
        self.entry = entry
        self.exit = exit_states


def solve(cfg, analysis):
    """Run ``analysis`` over ``cfg`` to a fixed point; a DataflowResult."""
    if analysis.direction == FORWARD:
        return _solve_forward(cfg, analysis)
    return _solve_backward(cfg, analysis)


def _solve_forward(cfg, analysis):
    preds = cfg.predecessors()
    order = reverse_postorder(cfg)
    position = {b: i for i, b in enumerate(order)}
    entry = {}
    exit_states = {}
    boundary = analysis.boundary(cfg)
    for block in cfg.blocks:
        entry[block.id] = boundary if block.id == 0 else analysis.initial(cfg)
        exit_states[block.id] = analysis.transfer_block(block, entry[block.id])
    worklist = list(order)
    in_worklist = set(worklist)
    while worklist:
        worklist.sort(key=lambda b: position.get(b, 0), reverse=True)
        block_id = worklist.pop()
        in_worklist.discard(block_id)
        if block_id != 0:
            state = None
            for pred in preds[block_id]:
                state = (
                    exit_states[pred]
                    if state is None
                    else analysis.join(state, exit_states[pred])
                )
            if state is None:
                state = analysis.initial(cfg)
            entry[block_id] = state
        new_exit = analysis.transfer_block(cfg.blocks[block_id], entry[block_id])
        if new_exit != exit_states[block_id]:
            exit_states[block_id] = new_exit
            for succ in cfg.successors(block_id):
                if succ not in in_worklist:
                    worklist.append(succ)
                    in_worklist.add(succ)
    return DataflowResult(analysis, entry, exit_states)


def _solve_backward(cfg, analysis):
    order = list(reversed(reverse_postorder(cfg)))  # postorder
    position = {b: i for i, b in enumerate(order)}
    preds = cfg.predecessors()
    entry = {}
    exit_states = {}
    boundary = analysis.boundary(cfg)
    ret_blocks = set(cfg.ret_blocks())
    for block in cfg.blocks:
        exit_states[block.id] = (
            boundary if block.id in ret_blocks else analysis.initial(cfg)
        )
        entry[block.id] = analysis.transfer_block(block, exit_states[block.id])
    worklist = list(order)
    in_worklist = set(worklist)
    while worklist:
        worklist.sort(key=lambda b: position.get(b, 0), reverse=True)
        block_id = worklist.pop()
        in_worklist.discard(block_id)
        succs = cfg.successors(block_id)
        if succs:
            state = None
            for succ in succs:
                state = (
                    entry[succ]
                    if state is None
                    else analysis.join(state, entry[succ])
                )
            if block_id in ret_blocks:
                state = analysis.join(state, boundary)
            exit_states[block_id] = state
        new_entry = analysis.transfer_block(
            cfg.blocks[block_id], exit_states[block_id]
        )
        if new_entry != entry[block_id]:
            entry[block_id] = new_entry
            for pred in preds[block_id]:
                if pred not in in_worklist:
                    worklist.append(pred)
                    in_worklist.add(pred)
    return DataflowResult(analysis, entry, exit_states)


# --------------------------------------------------------------------------
# Concrete analyses
# --------------------------------------------------------------------------

PARAM_SITE = "param"


class ReachingDefinitions(DataflowAnalysis):
    """Forward may-analysis: the definition sites reaching each point.

    States are frozensets of ``(reg, site)`` where ``site`` is
    ``(block_id, instr_index)`` for an instruction definition or
    ``(PARAM_SITE, i)`` for the i-th parameter.  Per-instruction transfer:
    a write to ``r`` kills every other definition of ``r`` and gens its
    own site.  Sites are attached per block during :meth:`transfer_block`
    (the solver calls it with the block in hand).
    """

    direction = FORWARD

    def boundary(self, cfg):
        return frozenset(
            (reg, (PARAM_SITE, reg)) for reg in range(cfg.nparams)
        )

    def initial(self, cfg):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer_block(self, block, state):
        defs = set(state)
        for index, instr in enumerate(block.instrs):
            dst = instr_def(instr)
            if dst is None:
                continue
            defs = {d for d in defs if d[0] != dst}
            defs.add((dst, (block.id, index)))
        return frozenset(defs)

    def transfer_instr(self, instr, state):  # pragma: no cover - block-level
        raise NotImplementedError("ReachingDefinitions works block-at-a-time")

    def definitions_reaching_uses(self, cfg):
        """Map each use site to the definition sites that may feed it.

        Returns ``{(block_id, instr_index, reg): frozenset(sites)}``; the
        terminator uses a pseudo instr_index of ``len(block.instrs)``.
        """
        result = solve(cfg, self)
        reaching = {}
        for block in cfg.blocks:
            defs = set(result.entry[block.id])
            for index, instr in enumerate(block.instrs):
                for reg in instr_uses(instr):
                    reaching[(block.id, index, reg)] = frozenset(
                        site for r, site in defs if r == reg
                    )
                dst = instr_def(instr)
                if dst is not None:
                    defs = {d for d in defs if d[0] != dst}
                    defs.add((dst, (block.id, index)))
            if block.term is not None:
                for reg in term_uses(block.term):
                    reaching[(block.id, len(block.instrs), reg)] = frozenset(
                        site for r, site in defs if r == reg
                    )
        return reaching


class Liveness(DataflowAnalysis):
    """Backward may-analysis: registers read before redefinition.

    States are frozensets of live registers.
    """

    direction = BACKWARD

    def boundary(self, cfg):
        return frozenset()

    def initial(self, cfg):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer_instr(self, instr, state):
        dst = instr_def(instr)
        if dst is not None:
            state = state - {dst}
        uses = instr_uses(instr)
        if uses:
            state = state | frozenset(uses)
        return state

    def transfer_term(self, term, state):
        uses = term_uses(term)
        if uses:
            state = state | frozenset(uses)
        return state

    def dead_writes(self, cfg):
        """Definition sites whose value is never read: (block_id, index).

        CALL/BUILTIN destinations are excluded (the call happens for its
        side effects; an ignored result is idiomatic, not a dead store).
        """
        from repro.cfg.instructions import BUILTIN, CALL

        result = solve(cfg, self)
        dead = []
        for block in cfg.blocks:
            live = result.exit[block.id]
            if block.term is not None:
                live = self.transfer_term(block.term, live)
            trailing = []
            for index in range(len(block.instrs) - 1, -1, -1):
                instr = block.instrs[index]
                dst = instr_def(instr)
                if (
                    dst is not None
                    and dst not in live
                    and instr[0] not in (CALL, BUILTIN)
                ):
                    trailing.append((block.id, index))
                live = self.transfer_instr(instr, live)
            dead.extend(reversed(trailing))
        return dead


class MustDefined(DataflowAnalysis):
    """Forward must-analysis: registers written on every path from entry.

    States are integer bitmasks (bit ``r`` set means register ``r`` is
    definitely defined); the join is bitwise AND.  ``ALL`` (all registers)
    is the optimistic initial state so unreached joins do not pessimise.
    """

    direction = FORWARD

    def boundary(self, cfg):
        return (1 << cfg.nparams) - 1

    def initial(self, cfg):
        return (1 << cfg.nregs) - 1

    def join(self, a, b):
        return a & b

    def transfer_instr(self, instr, state):
        dst = instr_def(instr)
        if dst is not None:
            state |= 1 << dst
        return state

    def undefined_uses(self, cfg):
        """Uses of possibly-undefined registers.

        Returns ``[(block_id, instr_index, reg)]``; the terminator uses a
        pseudo index of ``len(block.instrs)``.  Empty on well-formed IR.
        """
        result = solve(cfg, self)
        problems = []
        for block in cfg.blocks:
            defined = result.entry[block.id]
            for index, instr in enumerate(block.instrs):
                for reg in instr_uses(instr):
                    if reg < 0 or not (defined >> reg) & 1:
                        problems.append((block.id, index, reg))
                defined = self.transfer_instr(instr, defined)
            if block.term is not None:
                for reg in term_uses(block.term):
                    if reg < 0 or not (defined >> reg) & 1:
                        problems.append((block.id, len(block.instrs), reg))
        return problems
