"""Interval (value-range) abstract interpretation over the tuple IR.

Where SCCP (:mod:`repro.analysis.constprop`) tracks *exact* constants and
gives up the moment a value varies, this pass tracks a sound ``[lo, hi]``
range for every register — so ``x = input[0] & 15`` is known to lie in
``[0, 15]`` even though its exact value is input-dependent, and a later
``if (x > 20)`` is *proved* always-false.  Three consumers:

- the linter's ``tautological-comparison`` rule (branches SCCP cannot
  decide but value ranges can);
- the Ball-Larus feasibility pruner (interval contradictions refute
  additional numbered paths beyond the SCCP equality machinery);
- the concolic solver (:mod:`repro.analysis.solver`), which uses the same
  interval arithmetic to prune subdomains of its bounded search.

The analysis mirrors SCCP's executable-edge worklist: environments flow
only along edges proven possible, branch directions *refine* the pushed
environment (the true edge of ``r < k`` clamps ``r`` below ``k``), and a
threshold-widening step bounds ascending chains through loops so the
fixed point terminates.  All transfer functions over-approximate the
VM's wrap-around semantics: any operation that could wrap 64-bit
two's-complement returns the full range rather than a wrong bound.
"""

from repro.cfg.instructions import (
    BIN,
    BR,
    BUILTIN,
    COMPARISON_OPS,
    CONST,
    JMP,
    MOV,
    OP_ADD,
    OP_AND,
    OP_BNOT,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LNOT,
    OP_LT,
    OP_MOD,
    OP_MUL,
    OP_NE,
    OP_NEG,
    OP_OR,
    OP_SHL,
    OP_SHR,
    OP_SUB,
    OP_XOR,
    RET,
    UN,
    instr_def,
)
from repro.lang.builtins_spec import BUILTIN_CODES

INT_MIN = -(1 << 63)
INT_MAX = (1 << 63) - 1

# Widening thresholds: common guard constants in parser-style programs.
# A bound that keeps growing jumps to the next threshold instead of
# climbing one loop iteration at a time; the set is finite, so every
# ascending chain of widened intervals is finite too.
WIDEN_THRESHOLDS = (
    INT_MIN,
    -(1 << 31),
    -65536,
    -256,
    -1,
    0,
    1,
    255,
    256,
    65535,
    65536,
    (1 << 31) - 1,
    INT_MAX,
)

# Joins into one block's entry beyond this count start widening.
WIDEN_AFTER = 2

# Cap on decreasing (narrowing) rounds after the widened fixed point;
# each round propagates recovered precision one edge further, so the cap
# only truncates precision on extremely deep CFGs, never soundness.
NARROW_ROUNDS_CAP = 64


class Interval:
    """A closed signed-64-bit range ``[lo, hi]`` (immutable, never empty).

    Emptiness is represented *outside* the class — operations that can
    refute (intersection, branch refinement) return ``None`` for the
    empty set so callers must acknowledge infeasibility explicitly.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi

    def __eq__(self, other):
        return (
            isinstance(other, Interval)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self):
        return hash((self.lo, self.hi))

    def __repr__(self):
        return "[%d, %d]" % (self.lo, self.hi)

    def is_singleton(self):
        return self.lo == self.hi

    def contains(self, value):
        return self.lo <= value <= self.hi

    def excludes_zero(self):
        return self.lo > 0 or self.hi < 0

    def is_zero(self):
        return self.lo == 0 and self.hi == 0


FULL = Interval(INT_MIN, INT_MAX)
TRUE = Interval(1, 1)
FALSE = Interval(0, 0)
BOOL = Interval(0, 1)


def make_interval(lo, hi):
    """An :class:`Interval` clamped into signed-64 range; FULL on overflow."""
    if lo < INT_MIN or hi > INT_MAX:
        return FULL
    return Interval(lo, hi)


def singleton(value):
    if INT_MIN <= value <= INT_MAX:
        return Interval(value, value)
    return FULL


def intersect(a, b):
    """``a ∩ b``, or None when the ranges are disjoint."""
    lo = a.lo if a.lo >= b.lo else b.lo
    hi = a.hi if a.hi <= b.hi else b.hi
    if lo > hi:
        return None
    return Interval(lo, hi)


def hull(a, b):
    """The smallest interval containing both ``a`` and ``b``."""
    return Interval(min(a.lo, b.lo), max(a.hi, b.hi))


def widen(old, new):
    """Threshold-widen ``old ∪ new``: jump growing bounds to thresholds."""
    lo, hi = min(old.lo, new.lo), max(old.hi, new.hi)
    if lo < old.lo:
        lo = max((t for t in WIDEN_THRESHOLDS if t <= lo), default=INT_MIN)
    if hi > old.hi:
        hi = min((t for t in WIDEN_THRESHOLDS if t >= hi), default=INT_MAX)
    return Interval(lo, hi)


def _magnitude(iv):
    """``max(|lo|, |hi|)`` — may exceed INT_MAX when lo == INT_MIN."""
    return max(abs(iv.lo), abs(iv.hi))


def _bin_add(a, b):
    return make_interval(a.lo + b.lo, a.hi + b.hi)


def _bin_sub(a, b):
    return make_interval(a.lo - b.hi, a.hi - b.lo)


def _bin_mul(a, b):
    corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return make_interval(min(corners), max(corners))


def _bin_div(a, b):
    # C-style truncation shrinks magnitude — except INT_MIN / -1, which
    # wraps; when |a| can reach 2**63 the bound is unusable, return FULL.
    m = _magnitude(a)
    if m > INT_MAX:
        return FULL
    return Interval(-m, m)


def _bin_mod(a, b):
    # Non-trap continuation implies b != 0, so |b| >= 1 and the C-style
    # remainder satisfies |a % b| <= min(|a|, |b| - 1), sign following a.
    m = min(_magnitude(a), _magnitude(b) - 1)
    if m < 0:
        m = 0
    if m > INT_MAX:
        m = INT_MAX
    if a.lo >= 0:
        return Interval(0, m)
    if a.hi <= 0:
        return Interval(-m, 0)
    return Interval(-m, m)


def _bin_and(a, b):
    # For nonnegative x, y: 0 <= x & y <= min(x, y); masking with a known
    # nonnegative operand bounds the result even when the other is FULL.
    if a.lo >= 0 and b.lo >= 0:
        return Interval(0, min(a.hi, b.hi))
    if a.lo >= 0:
        return Interval(0, a.hi)
    if b.lo >= 0:
        return Interval(0, b.hi)
    return FULL


def _bits_bound(hi):
    """Smallest ``2**k - 1 >= hi`` for ``hi >= 0``."""
    return (1 << hi.bit_length()) - 1


def _bin_or(a, b):
    # For nonnegative x, y: max(x, y) <= x | y <= next_pow2(max) - 1.
    if a.lo >= 0 and b.lo >= 0:
        bound = max(_bits_bound(a.hi), _bits_bound(b.hi))
        return make_interval(max(a.lo, b.lo), bound)
    return FULL


def _bin_xor(a, b):
    if a.lo >= 0 and b.lo >= 0:
        bound = max(_bits_bound(a.hi), _bits_bound(b.hi))
        return make_interval(0, bound)
    return FULL


def _bin_shl(a, b):
    # Non-trap continuation: shift amount in [0, 63].
    b = intersect(b, Interval(0, 63))
    if b is None or a.lo < 0:
        return FULL
    hi = a.hi << b.hi
    if hi > INT_MAX:
        return FULL
    return Interval(a.lo << b.lo, hi)


def _bin_shr(a, b):
    # Arithmetic shift, monotone in each argument separately: extrema at
    # the corners of the (a, clamped b) box.
    b = intersect(b, Interval(0, 63))
    if b is None:
        return FULL
    corners = (
        a.lo >> b.lo,
        a.lo >> b.hi,
        a.hi >> b.lo,
        a.hi >> b.hi,
    )
    return Interval(min(corners), max(corners))


def _cmp(truth):
    """truth: True (provably holds), False (provably fails), None."""
    if truth is None:
        return BOOL
    return TRUE if truth else FALSE


def _bin_lt(a, b):
    if a.hi < b.lo:
        return TRUE
    if a.lo >= b.hi:
        return FALSE
    return BOOL


def _bin_le(a, b):
    if a.hi <= b.lo:
        return TRUE
    if a.lo > b.hi:
        return FALSE
    return BOOL


def _bin_eq(a, b):
    if a.is_singleton() and b.is_singleton() and a.lo == b.lo:
        return TRUE
    if intersect(a, b) is None:
        return FALSE
    return BOOL


def _negate_bool(iv):
    if iv is TRUE:
        return FALSE
    if iv is FALSE:
        return TRUE
    return BOOL


_BIN_OPS = {
    OP_ADD: _bin_add,
    OP_SUB: _bin_sub,
    OP_MUL: _bin_mul,
    OP_DIV: _bin_div,
    OP_MOD: _bin_mod,
    OP_AND: _bin_and,
    OP_OR: _bin_or,
    OP_XOR: _bin_xor,
    OP_SHL: _bin_shl,
    OP_SHR: _bin_shr,
    OP_LT: _bin_lt,
    OP_LE: _bin_le,
    OP_GT: lambda a, b: _bin_lt(b, a),
    OP_GE: lambda a, b: _bin_le(b, a),
    OP_EQ: _bin_eq,
    OP_NE: lambda a, b: _negate_bool(_bin_eq(a, b)),
}


def bin_interval(binop, a, b):
    """A sound interval for ``a binop b`` under the VM's semantics."""
    return _BIN_OPS[binop](a, b)


def un_interval(unop, a):
    if unop == OP_NEG:
        if a.lo == INT_MIN:  # -INT_MIN wraps back to INT_MIN
            return FULL
        return Interval(-a.hi, -a.lo)
    if unop == OP_LNOT:
        if a.is_zero():
            return TRUE
        if a.excludes_zero():
            return FALSE
        return BOOL
    if unop == OP_BNOT:  # ~x == -x - 1, exact and never wraps
        return Interval(-a.hi - 1, -a.lo - 1)
    return FULL


# Builtin return-value ranges (dst intervals; args are value intervals
# where integer-typed, FULL for array refs).
_B_CODE = BUILTIN_CODES

_BUILTIN_RANGES = {
    _B_CODE["len"]: Interval(0, INT_MAX),
    _B_CODE["memcmp"]: BOOL,
    _B_CODE["copy"]: FALSE,
    _B_CODE["fill"]: FALSE,
    _B_CODE["read16"]: Interval(0, 0xFFFF),
    _B_CODE["read16le"]: Interval(0, 0xFFFF),
    _B_CODE["read32"]: Interval(0, 0xFFFFFFFF),
    _B_CODE["read32le"]: Interval(0, 0xFFFFFFFF),
}


def _builtin_interval(code, arg_ivs):
    fixed = _BUILTIN_RANGES.get(code)
    if fixed is not None:
        return fixed
    if code == _B_CODE["abs"] and arg_ivs and arg_ivs[0] is not None:
        a = arg_ivs[0]
        if a.lo == INT_MIN:  # abs(INT_MIN) wraps
            return FULL
        return Interval(max(a.lo, 0) if a.lo >= 0 else 0, _magnitude(a))
    if code == _B_CODE["min"] and len(arg_ivs) == 2 and None not in arg_ivs:
        a, b = arg_ivs
        return Interval(min(a.lo, b.lo), min(a.hi, b.hi))
    if code == _B_CODE["max"] and len(arg_ivs) == 2 and None not in arg_ivs:
        a, b = arg_ivs
        return Interval(max(a.lo, b.lo), max(a.hi, b.hi))
    return FULL


def interval_transfer(instr, env):
    """Abstract-interpret one instruction over an interval env (in place).

    Absence from ``env`` plays SCCP's TOP role ("no value has reached
    here yet"); :data:`FULL` plays BOTTOM ("any value").  The same
    optimistic treatment is sound here for the same reason: environments
    only flow along executable edges, and an absent operand means the
    defining path has not been proven executable yet.
    """
    op = instr[0]
    if op == CONST:
        env[instr[1]] = singleton(instr[2])
        return
    if op == MOV:
        src = env.get(instr[2])
        if src is None:
            env.pop(instr[1], None)
        else:
            env[instr[1]] = src
        return
    if op == BIN:
        a = env.get(instr[3])
        b = env.get(instr[4])
        if a is None or b is None:
            env.pop(instr[2], None)
            return
        env[instr[2]] = bin_interval(instr[1], a, b)
        return
    if op == UN:
        a = env.get(instr[3])
        if a is None:
            env.pop(instr[2], None)
        else:
            env[instr[2]] = un_interval(instr[1], a)
        return
    if op == BUILTIN:
        arg_ivs = [env.get(reg, FULL) for reg in instr[3]]
        env[instr[1]] = _builtin_interval(instr[2], arg_ivs)
        return
    dst = instr_def(instr)
    if dst is not None:
        env[dst] = FULL


# Constraint-directed narrowing: given that ``a op b`` holds, clamp both
# operand intervals.  Returns (a', b') or (None, None) when contradictory.

_NEGATE_OP = {
    OP_LT: OP_GE,
    OP_LE: OP_GT,
    OP_GT: OP_LE,
    OP_GE: OP_LT,
    OP_EQ: OP_NE,
    OP_NE: OP_EQ,
}


def refine_compare(binop, a, b):
    """Narrow ``(a, b)`` assuming ``a binop b`` is true; None pair if not."""
    if binop == OP_GT:
        b2, a2 = refine_compare(OP_LT, b, a)
        return a2, b2
    if binop == OP_GE:
        b2, a2 = refine_compare(OP_LE, b, a)
        return a2, b2
    if binop == OP_LT:
        if b.hi == INT_MIN or a.lo == INT_MAX:
            return None, None
        na = intersect(a, Interval(INT_MIN, b.hi - 1))
        nb = intersect(b, Interval(a.lo + 1, INT_MAX))
    elif binop == OP_LE:
        na = intersect(a, Interval(INT_MIN, b.hi))
        nb = intersect(b, Interval(a.lo, INT_MAX))
    elif binop == OP_EQ:
        na = nb = intersect(a, b)
    elif binop == OP_NE:
        na, nb = a, b
        if b.is_singleton():
            na = _shave(a, b.lo)
        if a.is_singleton() and na is not None:
            nb = _shave(b, a.lo)
    else:
        return a, b
    if na is None or nb is None:
        return None, None
    return na, nb


def _shave(iv, value):
    """Remove ``value`` from ``iv`` when it sits on an endpoint."""
    if iv.is_singleton():
        return None if iv.lo == value else iv
    if iv.lo == value:
        return Interval(iv.lo + 1, iv.hi)
    if iv.hi == value:
        return Interval(iv.lo, iv.hi - 1)
    return iv


def exclude_zero(iv):
    """``iv`` minus zero when zero is an endpoint; None for exactly [0,0]."""
    return _shave(iv, 0)


class IntervalResult:
    """The interval fixed point for one function CFG.

    Mirrors :class:`~repro.analysis.constprop.ConstResult`:
    ``entry_env[b]`` maps registers to :class:`Interval`s at block entry
    (absent register = value never reached there), blocks absent from
    ``executable_blocks`` were never proven reachable, and
    :meth:`dead_edges` lists edges the program provably never takes.
    """

    __slots__ = ("cfg", "entry_env", "executable_blocks", "executable_edges")

    def __init__(self, cfg, entry_env, executable_blocks, executable_edges):
        self.cfg = cfg
        self.entry_env = entry_env
        self.executable_blocks = executable_blocks
        self.executable_edges = executable_edges

    def dead_edges(self):
        """CFG edges with an executable source that are never taken."""
        return {
            (src, dst)
            for src, dst in self.cfg.edges()
            if src in self.executable_blocks
            and (src, dst) not in self.executable_edges
        }

    def unreachable_blocks(self):
        return {
            block.id
            for block in self.cfg.blocks
            if block.id not in self.executable_blocks
        }

    def proved_branches(self):
        """Executable two-way BRs whose outcome value ranges decide.

        Returns ``[(block_id, cond_value)]`` with ``cond_value`` 1 when
        the branch always takes the true edge, 0 when always false —
        including branches SCCP cannot fold because the condition is not
        a compile-time constant, merely range-bounded.
        """
        found = []
        for block in self.cfg.blocks:
            if block.id not in self.executable_blocks:
                continue
            term = block.term
            if term is None or term[0] != BR or term[2] == term[3]:
                continue
            env = dict(self.entry_env.get(block.id, {}))
            for instr in block.instrs:
                interval_transfer(instr, env)
            cond = env.get(term[1])
            if cond is None:
                continue
            if cond.excludes_zero():
                found.append((block.id, 1))
            elif cond.is_zero():
                found.append((block.id, 0))
        return found


def _walk_facts(block, env):
    """Transfer a whole block, tracking comparison provenance.

    Returns ``(env, facts)`` where ``facts[dst] = (binop, ra, rb)``
    records that ``dst`` currently holds ``ra binop rb``; facts die when
    any involved register is overwritten.
    """
    facts = {}
    for instr in block.instrs:
        candidate = None
        if (
            instr[0] == BIN
            and instr[1] in COMPARISON_OPS
            and instr[2] != instr[3]
            and instr[2] != instr[4]
        ):
            candidate = (instr[1], instr[3], instr[4])
        interval_transfer(instr, env)
        dst = instr_def(instr)
        if dst is not None:
            facts.pop(dst, None)
            stale = [r for r, f in facts.items() if dst in (f[1], f[2])]
            for r in stale:
                del facts[r]
            if candidate is not None:
                facts[dst] = candidate
    return env, facts


def _refined_edge_env(env, facts, cond_reg, taken_true):
    """The env pushed along one BR edge, or None when the edge is refuted."""
    out = dict(env)
    fact = facts.get(cond_reg)
    cond = out.get(cond_reg)
    if fact is not None:
        binop, ra, rb = fact
        if not taken_true:
            binop = _NEGATE_OP[binop]
        na, nb = refine_compare(binop, out.get(ra, FULL), out.get(rb, FULL))
        if na is None:
            return None
        out[ra] = na
        out[rb] = nb
        out[cond_reg] = TRUE if taken_true else FALSE
        return out
    if taken_true:
        if cond is not None:
            narrowed = exclude_zero(cond)
            if narrowed is None:
                return None
            out[cond_reg] = narrowed
    else:
        if cond is not None and cond.excludes_zero():
            return None
        out[cond_reg] = FALSE
    return out


def interval_analysis(cfg):
    """Run the interval fixed point over ``cfg``; an :class:`IntervalResult`.

    Same executable-edge worklist shape as
    :func:`~repro.analysis.constprop.conditional_constants`; block-entry
    environments grow monotonically under hull, switching to threshold
    widening once a block has been joined more than :data:`WIDEN_AFTER`
    times, which bounds every chain and guarantees termination.
    """
    entry_env = {0: {reg: FULL for reg in range(cfg.nparams)}}
    executable_blocks = set()
    executable_edges = set()
    join_counts = {}
    worklist = [0]
    pending = {0}
    while worklist:
        block_id = worklist.pop()
        pending.discard(block_id)
        executable_blocks.add(block_id)
        block = cfg.blocks[block_id]
        for target, out_env in _block_pushes(cfg, block_id, entry_env):
            edge = (block_id, target)
            first_time = edge not in executable_edges
            executable_edges.add(edge)
            target_env = entry_env.setdefault(target, {})
            widening = join_counts.get(target, 0) > WIDEN_AFTER
            join_counts[target] = join_counts.get(target, 0) + 1
            changed = _join_env(target_env, out_env, widening)
            if (first_time or changed) and target not in pending:
                worklist.append(target)
                pending.add(target)
    _narrow(cfg, entry_env, executable_blocks, executable_edges)
    return IntervalResult(cfg, entry_env, executable_blocks, executable_edges)


def _block_pushes(cfg, block_id, entry_env):
    """Out-envs pushed along each viable successor edge of one block."""
    block = cfg.blocks[block_id]
    env, facts = _walk_facts(block, dict(entry_env.get(block_id, {})))
    term = block.term
    if term is None or term[0] == RET:
        return []
    if term[0] == JMP:
        return [(term[1], env)]
    if term[2] == term[3]:
        return [(term[2], env)]
    pushes = []
    cond = env.get(term[1])
    if cond is None or not cond.is_zero():
        refined = _refined_edge_env(env, facts, term[1], True)
        if refined is not None:
            pushes.append((term[2], refined))
    if cond is None or not cond.excludes_zero():
        refined = _refined_edge_env(env, facts, term[1], False)
        if refined is not None:
            pushes.append((term[3], refined))
    return pushes


def _narrow(cfg, entry_env, executable_blocks, executable_edges):
    """Decreasing iteration: claw back precision the widening gave up.

    Each round recomputes every executable block's entry as the plain
    hull-join of its executable predecessors' (refined) out-envs, then
    intersects with the current entry — both are sound
    over-approximations of the reachable states, so their intersection
    is too.  Loop exits regain exact bounds this way: the widened header
    range re-narrows once the back edge's clamped push is re-joined
    without widening.  Entries only ever shrink (intersection), so the
    iteration cannot oscillate; it stops at the first unchanged round or
    at :data:`NARROW_ROUNDS_CAP` (each round propagates recovered
    precision one edge further through the CFG).  The executable sets
    are left as computed above — conservative, since narrowed envs could
    only kill *more* edges.
    """
    for _ in range(NARROW_ROUNDS_CAP):
        new_entry = {0: {reg: FULL for reg in range(cfg.nparams)}}
        for block_id in sorted(executable_blocks):
            for target, out_env in _block_pushes(cfg, block_id, entry_env):
                if (block_id, target) not in executable_edges:
                    continue
                _join_env(new_entry.setdefault(target, {}), out_env, False)
        changed = False
        for block_id in sorted(executable_blocks):
            fresh = new_entry.get(block_id)
            if fresh is None:
                continue
            current = entry_env.setdefault(block_id, {})
            for reg, value in fresh.items():
                old = current.get(reg)
                narrowed = value if old is None else intersect(old, value)
                if narrowed is None:
                    narrowed = value
                if old != narrowed:
                    current[reg] = narrowed
                    changed = True
        if not changed:
            break


def _join_env(into, other, widening):
    """Hull-join ``other`` into ``into``; True when ``into`` changed.

    A register absent from ``other`` stays as-is in ``into`` (absent =
    optimistic TOP, the identity of the join, exactly as in SCCP).
    """
    changed = False
    for reg, value in other.items():
        old = into.get(reg)
        if old is None:
            into[reg] = value
            changed = True
            continue
        joined = widen(old, value) if widening else hull(old, value)
        if joined != old:
            into[reg] = joined
            changed = True
    return changed
