"""Conditional constant propagation with executable-edge tracking.

The Wegman-Zadeck sparse conditional constant propagation idea adapted to
the (non-SSA) tuple IR: block-entry environments map registers to lattice
values (TOP = no information yet, a concrete int, or BOTTOM = varies),
and environments only flow along edges proven *executable*.  A branch
whose condition evaluates to a constant marks a single out-edge
executable; the other side never contributes to joins, which is what lets
facts like ``var debug = 0; ... if (debug == 1)`` survive the join that a
pessimistic analysis would smear to BOTTOM.

Evaluation reuses :func:`repro.analysis.foldops.fold_binop` /
:func:`fold_unop`, so the abstract semantics match the VM (64-bit
wrap-around) and the middle end bit for bit.  Division, modulo and
out-of-range shifts are never evaluated — they may trap, and a trapping
site must stay a runtime event.

The result feeds three consumers: the linter (constant conditions,
unreachable blocks), the Ball-Larus path-feasibility pruner (dead CFG
edges shrink the numbered path space), and tests cross-checking the
optimizer.
"""

from repro.cfg.instructions import BIN, BR, CONST, JMP, MOV, RET, UN, instr_def
from repro.analysis.foldops import fold_binop, fold_unop

# Lattice: TOP (optimistic "unknown yet") and BOTTOM ("provably varies").
# Concrete constants are plain ints.  TOP is represented by *absence* from
# an environment; BOTTOM by this sentinel.
BOTTOM = object()


class ConstResult:
    """The SCCP fixed point for one function CFG.

    ``entry_env[b]`` maps registers to constants (or BOTTOM) at the entry
    of block ``b``; blocks absent from the map were never proven
    executable.  ``executable_edges`` is the set of CFG edges that can be
    taken; :meth:`dead_edges` is its complement restricted to executable
    sources — edges the program provably never takes.
    """

    __slots__ = ("cfg", "entry_env", "executable_blocks", "executable_edges")

    def __init__(self, cfg, entry_env, executable_blocks, executable_edges):
        self.cfg = cfg
        self.entry_env = entry_env
        self.executable_blocks = executable_blocks
        self.executable_edges = executable_edges

    def dead_edges(self):
        """CFG edges with an executable source that are never taken."""
        return {
            (src, dst)
            for src, dst in self.cfg.edges()
            if src in self.executable_blocks
            and (src, dst) not in self.executable_edges
        }

    def unreachable_blocks(self):
        """Blocks never executable (dead code guarded by constants)."""
        return {
            block.id
            for block in self.cfg.blocks
            if block.id not in self.executable_blocks
        }

    def constant_branches(self):
        """Executable BR terminators with exactly one live out-edge.

        Returns ``[(block_id, cond_value)]`` where ``cond_value`` is the
        branch condition's known constant.
        """
        found = []
        for block in self.cfg.blocks:
            if block.id not in self.executable_blocks:
                continue
            term = block.term
            if term is None or term[0] != BR or term[2] == term[3]:
                continue
            value = _eval_block_reg(block, term[1], self.entry_env.get(block.id, {}))
            if value is not BOTTOM and value is not None:
                found.append((block.id, value))
        return found


def _eval_block_reg(block, reg, entry_env):
    """Re-evaluate ``reg`` at the end of ``block`` from its entry env."""
    env = dict(entry_env)
    for instr in block.instrs:
        _transfer(instr, env)
    return env.get(reg)


def _transfer(instr, env):
    """Abstract-interpret one instruction over ``env`` (in place)."""
    op = instr[0]
    if op == CONST:
        env[instr[1]] = instr[2]
        return
    if op == MOV:
        src = env.get(instr[2])
        if src is None:
            env.pop(instr[1], None)
        else:
            env[instr[1]] = src
        return
    if op == BIN:
        a = env.get(instr[3])
        b = env.get(instr[4])
        if a is BOTTOM or b is BOTTOM:
            env[instr[2]] = BOTTOM
            return
        if a is None or b is None:
            env.pop(instr[2], None)  # stays TOP until operands resolve
            return
        folded = fold_binop(instr[1], a, b)
        env[instr[2]] = BOTTOM if folded is None else folded
        return
    if op == UN:
        a = env.get(instr[3])
        if a is BOTTOM:
            env[instr[2]] = BOTTOM
        elif a is None:
            env.pop(instr[2], None)
        else:
            env[instr[2]] = fold_unop(instr[1], a)
        return
    # LOAD/STORE/CALL/BUILTIN/STR: any written register becomes unknown.
    dst = instr_def(instr)
    if dst is not None:
        env[dst] = BOTTOM


def _join_value(a, b):
    if a is None:
        return b
    if b is None:
        return a
    if a is BOTTOM or b is BOTTOM or a != b:
        return BOTTOM
    return a


def _join_env(into, other):
    """Join ``other`` into ``into``; True when ``into`` changed."""
    changed = False
    for reg, value in other.items():
        joined = _join_value(into.get(reg), value)
        if joined is not into.get(reg) and joined != into.get(reg):
            into[reg] = joined
            changed = True
    return changed


def conditional_constants(cfg):
    """Run SCCP over ``cfg``; returns a :class:`ConstResult`."""
    entry_env = {0: {reg: BOTTOM for reg in range(cfg.nparams)}}
    executable_blocks = set()
    executable_edges = set()
    worklist = [0]
    pending = {0}
    while worklist:
        block_id = worklist.pop()
        pending.discard(block_id)
        executable_blocks.add(block_id)
        block = cfg.blocks[block_id]
        env = dict(entry_env.get(block_id, {}))
        for instr in block.instrs:
            _transfer(instr, env)
        term = block.term
        if term is None:
            continue
        targets = _executable_targets(term, env)
        for target in targets:
            edge = (block_id, target)
            first_time = edge not in executable_edges
            executable_edges.add(edge)
            target_env = entry_env.setdefault(target, {})
            changed = _join_env(target_env, env)
            if (first_time or changed) and target not in pending:
                worklist.append(target)
                pending.add(target)
    return ConstResult(cfg, entry_env, executable_blocks, executable_edges)


def _executable_targets(term, env):
    op = term[0]
    if op == JMP:
        return (term[1],)
    if op == RET:
        return ()
    # BR: a known-constant condition selects one side; TOP and BOTTOM are
    # both treated as "could go either way" (TOP conservatively so — a
    # never-resolving condition register only occurs on malformed IR).
    if term[2] == term[3]:
        return (term[2],)
    cond = env.get(term[1])
    if cond is None or cond is BOTTOM:
        return (term[2], term[3])
    return (term[2],) if cond != 0 else (term[3],)
