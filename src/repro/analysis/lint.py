"""MiniC linter: source- and IR-level diagnostics with typed findings.

Rules (severity in brackets):

- ``use-before-init`` [error]  — a register may be read before any write
  reaches it on some path (IR, :class:`MustDefined`).  The MiniC grammar
  forces initializers on ``var``, so this fires only on hand-built or
  corrupted IR — it is the linter's view of the verifier invariant.
- ``loop-no-exit`` [error]     — a natural loop with no exiting edge and
  no return inside its body: the program cannot leave it.
- ``dead-store`` [warning]     — an assignment whose value is never read
  afterwards (source-order heuristic, loop-aware: a read anywhere inside
  an enclosing loop keeps a store alive).
- ``unused-variable`` [warning] — a declared variable that is never read.
- ``unreachable-code`` [warning] — statements after ``return``/``break``/
  ``continue`` in the same block, and IR blocks SCCP proves can never
  execute.
- ``constant-condition`` [warning] — an ``if``/``while`` condition that
  always evaluates the same way (literal folding on the AST, conditional
  constant propagation on the IR).  ``while (1)`` style intentional
  infinite loops are exempt at the AST level.
- ``tautological-comparison`` [warning] — a guard the interval analysis
  proves always-true/false by value ranges alone, where SCCP cannot
  (the operands are input-dependent but range-bounded, e.g.
  ``x = input[0] & 15`` followed by ``if (x > 20)``).
- ``unused-function`` [warning] — a function unreachable from ``main``
  in the call graph.
- ``unused-param`` [info]      — the value passed for a parameter is
  never used (IR liveness at function entry).

:func:`lint_source` runs everything; :func:`lint_program` runs the
IR-only subset on an already-compiled :class:`ProgramCFG` (used by the
property tests over generated programs and by hand-built IR).
"""

from repro.analysis.constprop import conditional_constants
from repro.analysis.dataflow import Liveness, MustDefined, solve
from repro.analysis.interval import interval_analysis
from repro.cfg.analysis import natural_loops
from repro.cfg.instructions import (
    BIN,
    BINOPS,
    BUILTIN,
    CALL,
    LOAD,
    RET,
    STORE,
    UNOPS,
)
from repro.cfg.lowering import lower_program
from repro.analysis.foldops import fold_binop, fold_unop
from repro.cfg.optimize import optimize_program
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.sema import check_program

_SEVERITY_ORDER = {"error": 0, "warning": 1, "info": 2}


class Finding:
    """One diagnostic: rule id, severity, location, message."""

    __slots__ = ("rule", "severity", "file", "line", "message", "function")

    def __init__(self, rule, severity, file, line, message, function=None):
        self.rule = rule
        self.severity = severity
        self.file = file
        self.line = line
        self.message = message
        self.function = function

    def to_dict(self):
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "function": self.function,
        }

    def format(self):
        where = "%s:%d" % (self.file, self.line)
        text = "%s: %s: %s: %s" % (where, self.severity, self.rule, self.message)
        if self.function:
            text += " [in %s]" % self.function
        return text

    def sort_key(self):
        return (
            self.file,
            self.line,
            _SEVERITY_ORDER.get(self.severity, 3),
            self.rule,
            self.message,
        )

    def __repr__(self):
        return "Finding(%s)" % self.format()


def lint_source(source, name="<source>"):
    """Lint MiniC source text; returns sorted, deduplicated Findings.

    Raises the usual front-end errors (ParseError, SemaError) on code
    that does not compile — linting presumes a valid program.
    """
    tree = parse(source)
    check_program(tree)
    findings = []
    _ast_rules(tree, name, findings)
    program = lower_program(tree, name)
    optimize_program(program)
    _ir_rules(program, name, findings, tree)
    return _finish(findings)


def lint_program(program, name=None):
    """Lint an already-compiled program (IR-level rules only)."""
    findings = []
    _ir_rules(program, name or program.source_name, findings, None)
    return _finish(findings)


def _finish(findings):
    seen = set()
    unique = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = (finding.rule, finding.file, finding.line, finding.function)
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    return unique


# --------------------------------------------------------------------------
# AST-level rules
# --------------------------------------------------------------------------


def _walk(node):
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in current.children():
            if isinstance(child, ast.Node):
                stack.append(child)
            elif isinstance(child, list):
                for item in child:
                    if isinstance(item, ast.Node):
                        stack.append(item)


def _ast_rules(tree, name, findings):
    _check_unused_functions(tree, name, findings)
    for func in tree.funcs:
        _check_unreachable_stmts(func, name, findings)
        _check_constant_conditions(func, name, findings)
        _check_variable_usage(func, name, findings)


def _check_unused_functions(tree, name, findings):
    user_funcs = {f.name for f in tree.funcs}
    callees = {f.name: set() for f in tree.funcs}
    for func in tree.funcs:
        for node in _walk(func.body):
            if isinstance(node, ast.Call) and node.callee in user_funcs:
                callees[func.name].add(node.callee)
    reachable = set()
    stack = ["main"] if "main" in user_funcs else []
    while stack:
        current = stack.pop()
        if current in reachable:
            continue
        reachable.add(current)
        stack.extend(callees[current])
    for func in tree.funcs:
        if func.name not in reachable:
            findings.append(
                Finding(
                    "unused-function",
                    "warning",
                    name,
                    func.line,
                    "function '%s' is never called" % func.name,
                    func.name,
                )
            )


def _check_unreachable_stmts(func, name, findings):
    for node in _walk(func.body):
        if not isinstance(node, ast.Block):
            continue
        for index, stmt in enumerate(node.stmts[:-1]):
            if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
                following = node.stmts[index + 1]
                findings.append(
                    Finding(
                        "unreachable-code",
                        "warning",
                        name,
                        following.line,
                        "statement is unreachable (follows a jump)",
                        func.name,
                    )
                )
                break


def _const_eval(expr):
    """Fold an expression of literals to an int, or None."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.UnOp):
        value = _const_eval(expr.operand)
        if value is None:
            return None
        return fold_unop(UNOPS[expr.op], value)
    if isinstance(expr, ast.BinOp):
        left = _const_eval(expr.left)
        right = _const_eval(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "&&":
            return int(left != 0 and right != 0)
        if expr.op == "||":
            return int(left != 0 or right != 0)
        return fold_binop(BINOPS[expr.op], left, right)
    return None


def _check_constant_conditions(func, name, findings):
    for node in _walk(func.body):
        if isinstance(node, ast.If):
            cond = node.cond
            looping = False
        elif isinstance(node, (ast.While, ast.For)):
            cond = node.cond
            looping = True
        else:
            continue
        if cond is None:
            continue  # for (;;) — intentional
        value = _const_eval(cond)
        if value is None:
            continue
        if looping and value != 0:
            continue  # while (1) — intentional infinite loop idiom
        findings.append(
            Finding(
                "constant-condition",
                "warning",
                name,
                cond.line,
                "condition is always %s" % ("true" if value != 0 else "false"),
                func.name,
            )
        )


class _EventCollector:
    """Flatten a function body into (kind, name, line) events in source
    order, recording the event spans of loops for the liveness heuristic."""

    def __init__(self):
        self.events = []
        self.loop_spans = []

    def stmt(self, node):
        if node is None:
            return
        if isinstance(node, ast.Block):
            for stmt in node.stmts:
                self.stmt(stmt)
        elif isinstance(node, ast.VarDecl):
            self.expr(node.init)
            self.events.append(("decl", node.name, node.line))
        elif isinstance(node, ast.Assign):
            self.expr(node.value)
            self.events.append(("write", node.name, node.line))
        elif isinstance(node, ast.IndexAssign):
            self.expr(node.array)
            self.expr(node.index)
            self.expr(node.value)
        elif isinstance(node, ast.If):
            self.expr(node.cond)
            self.stmt(node.then_block)
            self.stmt(node.else_block)
        elif isinstance(node, ast.While):
            start = len(self.events)
            self.expr(node.cond)
            self.stmt(node.body)
            self.loop_spans.append((start, len(self.events)))
        elif isinstance(node, ast.For):
            self.stmt(node.init)
            start = len(self.events)
            self.expr(node.cond)
            self.stmt(node.body)
            self.stmt(node.step)
            self.loop_spans.append((start, len(self.events)))
        elif isinstance(node, ast.Return):
            self.expr(node.value)
        elif isinstance(node, ast.ExprStmt):
            self.expr(node.expr)
        # Break/Continue: no variable events.

    def expr(self, node):
        if node is None:
            return
        if isinstance(node, ast.Name):
            self.events.append(("read", node.name, node.line))
        elif isinstance(node, ast.BinOp):
            self.expr(node.left)
            self.expr(node.right)
        elif isinstance(node, ast.UnOp):
            self.expr(node.operand)
        elif isinstance(node, ast.Index):
            self.expr(node.array)
            self.expr(node.index)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                self.expr(arg)
        # IntLit/StrLit: no events.


def _check_variable_usage(func, name, findings):
    collector = _EventCollector()
    collector.stmt(func.body)
    events = collector.events
    decl_count = {}
    read_indices = {}
    for index, (kind, var, _line) in enumerate(events):
        if kind == "decl":
            decl_count[var] = decl_count.get(var, 0) + 1
        elif kind == "read":
            read_indices.setdefault(var, []).append(index)
    skip = {var for var, count in decl_count.items() if count > 1}  # shadowing
    for index, (kind, var, line) in enumerate(events):
        if var in skip:
            continue
        reads = read_indices.get(var, [])
        if kind == "decl" and not reads:
            findings.append(
                Finding(
                    "unused-variable",
                    "warning",
                    name,
                    line,
                    "variable '%s' is never read" % var,
                    func.name,
                )
            )
        elif kind == "write" and reads:
            live = any(r > index for r in reads)
            if not live:
                # A read anywhere inside an enclosing loop keeps the
                # store alive (it feeds the next iteration).
                for start, end in collector.loop_spans:
                    if start <= index < end and any(
                        start <= r < end for r in reads
                    ):
                        live = True
                        break
            if not live:
                findings.append(
                    Finding(
                        "dead-store",
                        "warning",
                        name,
                        line,
                        "value assigned to '%s' is never read" % var,
                        func.name,
                    )
                )


# --------------------------------------------------------------------------
# IR-level rules
# --------------------------------------------------------------------------

_LINE_FIELD = {BIN: 5, LOAD: 4, STORE: 4, CALL: 4, BUILTIN: 4}


def _instr_line(instr):
    field = _LINE_FIELD.get(instr[0])
    return instr[field] if field is not None else None


def _block_line(block):
    lines = [
        _instr_line(instr)
        for instr in block.instrs
        if _instr_line(instr) is not None
    ]
    return min(lines) if lines else None


def _branch_line(block):
    for instr in reversed(block.instrs):
        line = _instr_line(instr)
        if line is not None:
            return line
    return None


def _loop_has_exit(func, body, dead_edges):
    """Can control leave the loop?  SCCP-dead exit edges do not count,
    so ``while (1)`` with no break is reported even though the CFG still
    carries the never-taken false edge."""
    for block_id in body:
        block = func.blocks[block_id]
        if block.term[0] == RET:
            return True
        for succ in block.successors():
            if succ not in body and (block_id, succ) not in dead_edges:
                return True
    return False


def _ir_rules(program, name, findings, tree):
    func_lines = {}
    func_params = {}
    if tree is not None:
        func_lines = {f.name: f.line for f in tree.funcs}
        func_params = {f.name: f.params for f in tree.funcs}
    for func in program.funcs:
        for block_id, index, reg in MustDefined().undefined_uses(func):
            block = func.blocks[block_id]
            line = (
                _instr_line(block.instrs[index])
                if index < len(block.instrs)
                else None
            )
            findings.append(
                Finding(
                    "use-before-init",
                    "error",
                    name,
                    line if line is not None else _block_line(block) or 0,
                    "register r%d may be read before it is written" % reg,
                    func.name,
                )
            )
        const = conditional_constants(func)
        for block_id, value in const.constant_branches():
            line = _branch_line(func.blocks[block_id])
            if line is None:
                continue
            findings.append(
                Finding(
                    "constant-condition",
                    "warning",
                    name,
                    line,
                    "branch is always %s" % ("taken" if value != 0 else "not taken"),
                    func.name,
                )
            )
        sccp_proved = {block_id for block_id, _ in const.constant_branches()}
        intervals = interval_analysis(func)
        for block_id, value in intervals.proved_branches():
            if block_id in sccp_proved:
                continue  # already reported as constant-condition
            line = _branch_line(func.blocks[block_id])
            if line is None:
                continue
            findings.append(
                Finding(
                    "tautological-comparison",
                    "warning",
                    name,
                    line,
                    "comparison is always %s by value ranges"
                    % ("true" if value != 0 else "false"),
                    func.name,
                )
            )
        for block_id in sorted(const.unreachable_blocks()):
            line = _block_line(func.blocks[block_id])
            if line is None:
                continue
            findings.append(
                Finding(
                    "unreachable-code",
                    "warning",
                    name,
                    line,
                    "code can never execute (constant guards)",
                    func.name,
                )
            )
        dead = const.dead_edges()
        for (_src, dst), body in sorted(natural_loops(func).items()):
            if _loop_has_exit(func, body, dead):
                continue
            lines = [
                _block_line(func.blocks[block_id])
                for block_id in sorted(body)
                if _block_line(func.blocks[block_id]) is not None
            ]
            findings.append(
                Finding(
                    "loop-no-exit",
                    "error",
                    name,
                    min(lines) if lines else _block_line(func.blocks[dst]) or 0,
                    "loop has no break, return, or exiting condition",
                    func.name,
                )
            )
        if func.nparams:
            live_in = solve(func, Liveness()).entry[0]
            params = func_params.get(func.name)
            for index in range(func.nparams):
                if index in live_in:
                    continue
                pname = (
                    params[index]
                    if params and index < len(params)
                    else "#%d" % index
                )
                findings.append(
                    Finding(
                        "unused-param",
                        "info",
                        name,
                        func_lines.get(func.name, 0),
                        "the value passed for parameter '%s' is never used"
                        % pname,
                        func.name,
                    )
                )


# --------------------------------------------------------------------------
# Rendering
# --------------------------------------------------------------------------


def render_text(findings):
    """Human-readable report, one line per finding plus a summary."""
    lines = [finding.format() for finding in findings]
    counts = {}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    summary = "%d finding%s" % (len(findings), "" if len(findings) == 1 else "s")
    if findings:
        summary += " (%s)" % ", ".join(
            "%d %s" % (counts[sev], sev)
            for sev in ("error", "warning", "info")
            if sev in counts
        )
    lines.append(summary)
    return "\n".join(lines)
