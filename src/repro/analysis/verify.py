"""IR/CFG verifier: structural well-formedness plus trap-site preservation.

:func:`verify_program` is the machine-checkable contract between the
lowering, the optimizer, and everything downstream (VM, Ball-Larus
instrumentation, linter).  It extends the basic ``validate()`` structural
checks with instruction-level invariants:

- dense block ids (``blocks[i].id == i``) and function indices;
- every block terminated, targets in range, at least one RET;
- instruction tuples have the exact arity their opcode demands;
- every register operand is within ``0 <= r < nregs``;
- CALL targets an existing function with the right argument count;
- BUILTIN codes exist and arities match the builtin spec;
- STR indices point into the string pool;
- every register *use* is dominated by a definition on all paths
  (the :class:`~repro.analysis.dataflow.MustDefined` must-analysis).

:func:`trap_signature` / :func:`check_trap_preservation` additionally pin
down the optimizer's central soundness obligation from the paper's
threat model: potential crash *sites* (division, memory accesses, calls)
are bug identity, so no pass may add, remove, or move one.  Shift sites
may legally disappear (folding an in-range constant shift removes a
provably-non-trapping site) but never appear.

Raises :class:`VerificationError` (a ``ValueError``) with a message
naming the function, block, and instruction at fault.
"""

from repro.analysis.dataflow import MustDefined
from repro.cfg.instructions import (
    BIN,
    BR,
    BUILTIN,
    CALL,
    INSTR_ARITY,
    JMP,
    LOAD,
    OP_DIV,
    OP_MOD,
    OP_SHL,
    OP_SHR,
    RET,
    STORE,
    STR,
    format_instr,
    instr_def,
    instr_uses,
)
from repro.lang.builtins_spec import BUILTIN_NAMES, BUILTINS


class VerificationError(ValueError):
    """The IR violates a structural or semantic invariant."""


def _fail(func, block_id, what):
    raise VerificationError("%s: b%d: %s" % (func.name, block_id, what))


def verify_function(func, program=None):
    """Check one function CFG; raise VerificationError on the first fault.

    ``program`` enables the cross-function checks (CALL indices/arities,
    string-pool bounds); pass None for a standalone CFG.
    """
    nblocks = len(func.blocks)
    for position, block in enumerate(func.blocks):
        if block.id != position:
            _fail(func, block.id, "non-dense block id at position %d" % position)
        for instr in block.instrs:
            _check_instr(func, block.id, instr, program)
        _check_term(func, block.id, block.term, nblocks)
    if not any(b.term[0] == RET for b in func.blocks):
        raise VerificationError("%s: no return block" % func.name)
    _check_defined_before_use(func)


def _check_instr(func, block_id, instr, program):
    op = instr[0]
    arity = INSTR_ARITY.get(op)
    if arity is None:
        _fail(func, block_id, "unknown opcode %r" % (op,))
    if len(instr) != arity:
        _fail(
            func,
            block_id,
            "opcode %d arity %d != %d" % (op, len(instr), arity),
        )
    dst = instr_def(instr)
    if dst is not None and not 0 <= dst < func.nregs:
        _fail(func, block_id, "destination r%d out of range" % dst)
    for reg in instr_uses(instr):
        if not 0 <= reg < func.nregs:
            _fail(
                func,
                block_id,
                "operand r%d out of range in %s" % (reg, format_instr(instr)),
            )
    if op == CALL:
        if program is not None:
            if not 0 <= instr[2] < len(program.funcs):
                _fail(func, block_id, "call to missing function f%d" % instr[2])
            callee = program.funcs[instr[2]]
            if len(instr[3]) != callee.nparams:
                _fail(
                    func,
                    block_id,
                    "call to %s with %d args, expected %d"
                    % (callee.name, len(instr[3]), callee.nparams),
                )
    elif op == BUILTIN:
        name = BUILTIN_NAMES.get(instr[2])
        if name is None:
            _fail(func, block_id, "unknown builtin code %d" % instr[2])
        if len(instr[3]) != BUILTINS[name]:
            _fail(
                func,
                block_id,
                "builtin %s with %d args, expected %d"
                % (name, len(instr[3]), BUILTINS[name]),
            )
    elif op == STR and program is not None:
        if not 0 <= instr[2] < len(program.strings):
            _fail(func, block_id, "string index %d out of pool" % instr[2])


def _check_term(func, block_id, term, nblocks):
    if term is None:
        _fail(func, block_id, "missing terminator")
    op = term[0]
    if op == JMP:
        targets = (term[1],)
    elif op == BR:
        if not 0 <= term[1] < func.nregs:
            _fail(func, block_id, "branch condition r%d out of range" % term[1])
        targets = (term[2], term[3])
    elif op == RET:
        if term[1] != -1 and not 0 <= term[1] < func.nregs:
            _fail(func, block_id, "return value r%d out of range" % term[1])
        targets = ()
    else:
        _fail(func, block_id, "unknown terminator %r" % (op,))
    for target in targets:
        if not 0 <= target < nblocks:
            _fail(func, block_id, "edge to missing b%d" % target)


def _check_defined_before_use(func):
    problems = MustDefined().undefined_uses(func)
    if problems:
        block_id, index, reg = problems[0]
        block = func.blocks[block_id]
        where = (
            "terminator"
            if index == len(block.instrs)
            else format_instr(block.instrs[index])
        )
        _fail(
            func,
            block_id,
            "r%d may be used before definition in %s" % (reg, where),
        )


def verify_program(program):
    """Verify every function of ``program`` plus program-level structure."""
    for position, func in enumerate(program.funcs):
        if func.index != position:
            raise VerificationError(
                "%s: function %s has index %d at position %d"
                % (program.source_name, func.name, func.index, position)
            )
    try:
        program.validate()
    except ValueError as exc:
        raise VerificationError(str(exc)) from exc
    for func in program.funcs:
        verify_function(func, program)


# --------------------------------------------------------------------------
# Trap-site preservation
# --------------------------------------------------------------------------

_MEM_OPS = (LOAD, STORE)


def trap_signature(program):
    """Per-function sets of potential trap/call sites, keyed by source line.

    Returns ``{func_name: {kind: frozenset(lines)}}`` with kinds ``div``
    (division/modulo), ``shift`` (over-shift traps), ``mem`` (array
    accesses), ``call`` and ``builtin``.  Two programs with equal
    signatures crash at the same source lines on the same inputs.
    """
    signature = {}
    for func in program.funcs:
        div_lines = set()
        shift_lines = set()
        mem_lines = set()
        call_lines = set()
        builtin_lines = set()
        for block in func.blocks:
            for instr in block.instrs:
                op = instr[0]
                if op == BIN:
                    if instr[1] in (OP_DIV, OP_MOD):
                        div_lines.add(instr[5])
                    elif instr[1] in (OP_SHL, OP_SHR):
                        shift_lines.add(instr[5])
                elif op in _MEM_OPS:
                    mem_lines.add(instr[4])
                elif op == CALL:
                    call_lines.add(instr[4])
                elif op == BUILTIN:
                    builtin_lines.add(instr[4])
        signature[func.name] = {
            "div": frozenset(div_lines),
            "shift": frozenset(shift_lines),
            "mem": frozenset(mem_lines),
            "call": frozenset(call_lines),
            "builtin": frozenset(builtin_lines),
        }
    return signature


def check_trap_preservation(before, after, source_name="<program>"):
    """Compare two :func:`trap_signature` results; raise on any drift.

    ``div``/``mem``/``call``/``builtin`` sites must match exactly; shift
    sites may shrink (an in-range constant shift folds away) but never
    grow or move to new lines.
    """
    for name in before:
        if name not in after:
            raise VerificationError(
                "%s: function %s disappeared during optimization"
                % (source_name, name)
            )
    for name, sig_after in after.items():
        sig_before = before.get(name)
        if sig_before is None:
            raise VerificationError(
                "%s: function %s appeared during optimization"
                % (source_name, name)
            )
        for kind in ("div", "mem", "call", "builtin"):
            if sig_before[kind] != sig_after[kind]:
                gone = sorted(sig_before[kind] - sig_after[kind])
                new = sorted(sig_after[kind] - sig_before[kind])
                raise VerificationError(
                    "%s: %s: %s sites changed (removed lines %r, added %r)"
                    % (source_name, name, kind, gone, new)
                )
        extra = sig_after["shift"] - sig_before["shift"]
        if extra:
            raise VerificationError(
                "%s: %s: shift sites appeared at lines %r"
                % (source_name, name, sorted(extra))
            )
