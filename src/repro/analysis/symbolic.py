"""Concolic path-condition extraction: replay one input, collect constraints.

:class:`ConcolicExec` subclasses the VM's ``_Exec`` (the same structural
pattern as :class:`repro.taint.track.TaintExec`) and re-runs the
interpreter loop with a *symbolic shadow register file*: each register
optionally carries a :class:`SymExpr` describing its concrete value as a
function of individual input bytes.  Every conditional branch whose
condition register carries an expression contributes a
:class:`Constraint` — the expression plus the direction the concrete run
took — and the ordered list of constraints is the run's *path
condition*.

The expression language is deliberately small: integer constants, input
bytes (``byte[i]``, always in ``[0, 255]``), the MiniC binary/unary
operators, nothing else.  Whatever the shadow evaluation cannot express
(symbolically-indexed loads, values flowing through ``memcmp``, calls
past the node cap) degrades to ``None`` — concrete-only — which *drops*
constraints rather than fabricating wrong ones.  Nothing downstream
trusts an expression blindly anyway: the solver's witnesses are verified
by replaying the mutated input through the real interpreter, so an
imprecise expression can waste solver effort but never corrupt results.

Mixed concrete/symbolic evaluation reuses the shared folding semantics
(:mod:`repro.analysis.foldops`), so :func:`eval_expr` agrees with the VM
bit for bit on every non-trapping operation, and interval evaluation
(:func:`interval_expr`) reuses :mod:`repro.analysis.interval` so the
solver can prune whole byte-subdomains soundly.
"""

from repro.analysis.foldops import fold_binop, fold_unop
from repro.analysis.interval import FULL, Interval, bin_interval, un_interval
from repro.cfg.instructions import (
    BIN,
    BINOPS,
    BR,
    BUILTIN,
    CALL,
    COMPARISON_OPS,
    CONST,
    JMP,
    LOAD,
    MOV,
    OP_ADD,
    OP_AND,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_LE,
    OP_LNOT,
    OP_LT,
    OP_MOD,
    OP_NEG,
    OP_MUL,
    OP_NE,
    OP_OR,
    OP_SHL,
    OP_SHR,
    OP_SUB,
    OP_XOR,
    STORE,
    UN,
    UNOPS,
)
from repro.lang.builtins_spec import BUILTIN_CODES
from repro.runtime import traps
from repro.runtime.interpreter import (
    CMPLOG_CAP,
    DEFAULT_CALL_DEPTH,
    DEFAULT_INSTR_BUDGET,
    ExecutionResult,
    _c_div,
    _c_mod,
    _Exec,
)
from repro.runtime.traps import Timeout, Trap
from repro.runtime.values import ArrayRef, wrap_int

# Expression nodes beyond this size degrade to concrete (None): huge
# expressions solve poorly and slow every interval evaluation down.
MAX_EXPR_NODES = 96

# Constraints recorded per run beyond this cap are dropped (loop-heavy
# paths would otherwise build unbounded path conditions).
MAX_CONSTRAINTS = 2048

_BYTE = 0
_BIN = 1
_UN = 2

_BYTE_RANGE = Interval(0, 255)

_BINOP_NAMES = {code: name for name, code in BINOPS.items()}
_UNOP_NAMES = {code: name for name, code in UNOPS.items()}


class SymExpr:
    """One node of a symbolic expression over input bytes.

    ``kind`` is ``_BYTE`` (``op`` = byte offset), ``_BIN`` (``op`` =
    binop code, ``a``/``b`` operands) or ``_UN`` (``op`` = unop code,
    ``a`` operand).  Operands are either :class:`SymExpr` or plain ints
    (concrete).  ``size`` counts nodes for the growth cap.
    """

    __slots__ = ("kind", "op", "a", "b", "size")

    def __init__(self, kind, op, a=None, b=None, size=1):
        self.kind = kind
        self.op = op
        self.a = a
        self.b = b
        self.size = size

    def __repr__(self):
        return "SymExpr(%s)" % format_expr(self)


def byte_expr(offset):
    return SymExpr(_BYTE, offset)


def _node_size(operand):
    return operand.size if isinstance(operand, SymExpr) else 0


def make_bin(binop, a, b):
    """Combine two operands (SymExpr or int); None past the node cap."""
    size = 1 + _node_size(a) + _node_size(b)
    if size > MAX_EXPR_NODES:
        return None
    return SymExpr(_BIN, binop, a, b, size)


def make_un(unop, a):
    size = 1 + _node_size(a)
    if size > MAX_EXPR_NODES:
        return None
    return SymExpr(_UN, unop, a, size=size)


def expr_support(expr):
    """The set of input-byte offsets an expression reads."""
    support = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if not isinstance(node, SymExpr):
            continue
        if node.kind == _BYTE:
            support.add(node.op)
        elif node.kind == _BIN:
            stack.append(node.a)
            stack.append(node.b)
        else:
            stack.append(node.a)
    return support


def eval_expr(expr, byte_at):
    """Concretely evaluate ``expr``; ``byte_at(offset)`` supplies bytes.

    Returns the VM-exact integer value, or None when the evaluation hits
    an operation the VM would trap on (zero divisor, out-of-range shift)
    — a trapping path has no value for the guard to take.
    """
    if not isinstance(expr, SymExpr):
        return expr
    if expr.kind == _BYTE:
        return byte_at(expr.op) & 0xFF
    if expr.kind == _UN:
        a = eval_expr(expr.a, byte_at)
        if a is None:
            return None
        return fold_unop(expr.op, a)
    a = eval_expr(expr.a, byte_at)
    b = eval_expr(expr.b, byte_at)
    if a is None or b is None:
        return None
    binop = expr.op
    if binop == OP_DIV or binop == OP_MOD:
        if b == 0:
            return None
        return wrap_int(_c_div(a, b) if binop == OP_DIV else _c_mod(a, b))
    if binop == OP_SHL or binop == OP_SHR:
        if b < 0 or b > 63:
            return None
        return wrap_int(a << b) if binop == OP_SHL else (a >> b)
    return fold_binop(binop, a, b)


def interval_expr(expr, domains):
    """A sound interval for ``expr`` over per-byte domains.

    ``domains`` maps byte offsets to :class:`Interval`s within
    ``[0, 255]``; unmapped offsets default to the full byte range.  The
    result bounds every *non-trapping* evaluation of the expression with
    bytes drawn from the domains — the property the solver's subdomain
    pruning relies on.
    """
    if not isinstance(expr, SymExpr):
        return Interval(expr, expr) if isinstance(expr, int) else FULL
    if expr.kind == _BYTE:
        return domains.get(expr.op, _BYTE_RANGE)
    if expr.kind == _UN:
        return un_interval(expr.op, interval_expr(expr.a, domains))
    # The generic lattice is too coarse on the two shapes this shadow
    # interpreter itself builds: ``byte & 255`` (the AND rule drops the
    # lower bound to 0) and the read16/read32 accumulator (the OR rule
    # bit-smears the upper bound).  Both are *exact* over byte domains —
    # each byte owns a disjoint 8-bit window — and exactness here is what
    # turns the solver's domain splitting into per-byte binary search.
    if expr.op == OP_AND and expr.b == 255:
        inner = expr.a
        if isinstance(inner, SymExpr) and inner.kind == _BYTE:
            return domains.get(inner.op, _BYTE_RANGE)
    if expr.op == OP_OR:
        offsets = match_byte_fold(expr)
        if offsets is not None:
            lo = hi = 0
            for off in offsets:
                dom = domains.get(off, _BYTE_RANGE)
                lo = (lo << 8) + min(255, max(0, dom.lo))
                hi = (hi << 8) + min(255, max(0, dom.hi))
            return Interval(lo, hi)
    return bin_interval(
        expr.op,
        interval_expr(expr.a, domains),
        interval_expr(expr.b, domains),
    )


def match_byte_fold(expr):
    """Recognize a byte-fold read: offsets most-significant-first, or None.

    Matches the exact shapes the shadow interpreter builds — a bare input
    byte, ``byte & 255``, or the ``read16``/``read32`` accumulator
    ``(acc << 8) | (byte & 255)`` — so a comparison against a constant
    can be solved by direct byte assignment (input-to-state
    correspondence) instead of search.  Returns the list of byte offsets
    from the most significant position down, or None when the expression
    is not a pure fold.
    """
    if not isinstance(expr, SymExpr):
        return None
    if expr.kind == _BYTE:
        return [expr.op]
    if expr.kind != _BIN:
        return None
    if (
        expr.op == OP_AND
        and expr.b == 255
        and isinstance(expr.a, SymExpr)
        and expr.a.kind == _BYTE
    ):
        return [expr.a.op]
    if expr.op == OP_OR:
        low = match_byte_fold(expr.b)
        if low is None or len(low) != 1:
            return None
        shifted = expr.a
        if (
            isinstance(shifted, SymExpr)
            and shifted.kind == _BIN
            and shifted.op == OP_SHL
            and shifted.b == 8
        ):
            high = match_byte_fold(shifted.a)
            if high is not None:
                return high + low
    return None


def format_expr(expr):
    """Human-readable rendering for the CLI (``(byte[0] & 15) > 20``)."""
    if not isinstance(expr, SymExpr):
        return str(expr)
    if expr.kind == _BYTE:
        return "byte[%d]" % expr.op
    if expr.kind == _UN:
        return "%s%s" % (_UNOP_NAMES.get(expr.op, "?"), format_expr(expr.a))
    return "(%s %s %s)" % (
        format_expr(expr.a),
        _BINOP_NAMES.get(expr.op, "?"),
        format_expr(expr.b),
    )


class Constraint:
    """One branch decision of the replayed run.

    ``site`` is ``(function name, source block id)`` — the same site key
    :func:`repro.taint.targets.build_branch_index` uses, so scheduler
    targets and constraints line up.  ``taken_true`` is the direction
    the concrete run took; flipping the constraint means finding bytes
    under which ``expr``'s truthiness is ``not taken_true``.
    """

    __slots__ = ("index", "site", "taken_dst", "taken_true", "expr")

    def __init__(self, index, site, taken_dst, taken_true, expr):
        self.index = index
        self.site = site
        self.taken_dst = taken_dst
        self.taken_true = taken_true
        self.expr = expr

    def support(self):
        return expr_support(self.expr)

    def holds(self, byte_at):
        """Does the recorded direction hold under these bytes? None=trap."""
        value = eval_expr(self.expr, byte_at)
        if value is None:
            return None
        return (value != 0) == self.taken_true

    def describe(self):
        want = "" if self.taken_true else " == 0"
        return "%s:%d -> %d: %s%s" % (
            self.site[0],
            self.site[1],
            self.taken_dst,
            format_expr(self.expr),
            want,
        )


class PathCondition:
    """The ordered symbolic constraints of one concrete execution."""

    __slots__ = ("constraints", "input_len", "truncated")

    def __init__(self, constraints, input_len, truncated):
        self.constraints = constraints
        self.input_len = input_len
        self.truncated = truncated

    def __len__(self):
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def at_site(self, site):
        return [c for c in self.constraints if c.site == site]

    def prefix(self, index):
        """Constraints recorded strictly before trace position ``index``."""
        return [c for c in self.constraints if c.index < index]


def extract_path_condition(
    program,
    data,
    sym_bytes=None,
    instrumentation=None,
    instr_budget=DEFAULT_INSTR_BUDGET,
    call_depth_limit=DEFAULT_CALL_DEPTH,
    max_constraints=MAX_CONSTRAINTS,
):
    """Replay ``program.main(data)`` collecting symbolic constraints.

    ``sym_bytes`` bounds the symbolic variable set (an iterable of byte
    offsets, e.g. a taint focus mask); None makes every byte symbolic.
    Returns ``(ExecutionResult, PathCondition)`` — the ExecutionResult
    matches a plain interpretation of the same input.
    """
    vm = ConcolicExec(
        program,
        instrumentation,
        instr_budget,
        call_depth_limit,
        sym_bytes=sym_bytes,
        max_constraints=max_constraints,
    )
    return vm.run(data)


class ConcolicExec(_Exec):
    """Shadow interpreter: concrete semantics + symbolic byte expressions."""

    def __init__(
        self,
        program,
        instrumentation,
        instr_budget=DEFAULT_INSTR_BUDGET,
        call_depth_limit=DEFAULT_CALL_DEPTH,
        cmplog=False,
        sym_bytes=None,
        max_constraints=MAX_CONSTRAINTS,
    ):
        super().__init__(
            program, instrumentation, instr_budget, call_depth_limit, cmplog
        )
        self._sym_bytes = None if sym_bytes is None else set(sym_bytes)
        self._scells = {}  # array_id -> list of shadow cell expressions
        self._constraints = []
        self._max_constraints = max_constraints
        self._truncated = False
        self._sret = None  # expression of the last finished call's result

    def run(self, input_bytes):
        input_ref = self._heap.alloc(len(input_bytes))
        storage = self._heap.storage(input_ref)
        storage[: len(input_bytes)] = input_bytes
        allowed = self._sym_bytes
        self._scells[input_ref.array_id] = [
            byte_expr(i) if allowed is None or i in allowed else None
            for i in range(len(input_bytes))
        ]
        retval, trap, timeout = 0, None, False
        try:
            retval = self._call(self._program.main_index, [input_ref], [None])
        except Trap as caught:
            trap = caught
        except Timeout:
            timeout = True
        result = ExecutionResult(
            retval,
            trap,
            timeout,
            self._count,
            self._probe_acc[0],
            self._probe_acc[1],
            self._hits,
            self._cmp_log,
        )
        condition = PathCondition(
            self._constraints, len(input_bytes), self._truncated
        )
        return result, condition

    def _cells_for_write(self, array_id):
        cells = self._scells.get(array_id)
        if cells is None:
            cells = self._scells[array_id] = [None] * len(
                self._heap._arrays[array_id]
            )
        return cells

    def _record(self, fname, cur, taken_dst, taken_true, expr):
        if len(self._constraints) >= self._max_constraints:
            self._truncated = True
            return
        self._constraints.append(
            Constraint(
                len(self._constraints),
                (fname, cur),
                taken_dst,
                taken_true,
                expr,
            )
        )

    # -- the mirrored interpreter loop ---------------------------------------

    def _call(self, func_index, args, arg_exprs=None):
        program = self._program
        func = program.funcs[func_index]
        fname = func.name
        heap = self._heap
        regs = [0] * func.nregs
        regs[: len(args)] = args
        sregs = [None] * func.nregs
        if arg_exprs:
            sregs[: len(arg_exprs)] = arg_exprs
        if self._instr is not None:
            erows = self._instr.edge_rows[func_index]
            racts = self._instr.ret_actions[func_index]
            enacts = self._instr.entry_actions[func_index]
            mask = self._instr.map_mask
            if enacts:
                self._run_actions(enacts, 0, mask)
        else:
            erows = racts = None
            mask = 0
        pathreg = 0
        blocks = func.blocks
        cur = 0
        budget = self._budget
        while True:
            block = blocks[cur]
            instrs = block.instrs
            self._count += len(instrs) + 1
            if self._count > budget:
                raise Timeout(budget)
            for ins in instrs:
                op = ins[0]
                if op == BIN:
                    binop = ins[1]
                    sa = sregs[ins[3]]
                    sb = sregs[ins[4]]
                    try:
                        a = regs[ins[3]]
                        b = regs[ins[4]]
                        if binop == OP_EQ:
                            value = 1 if a == b else 0
                        elif binop == OP_NE:
                            value = 1 if a != b else 0
                        elif binop == OP_ADD:
                            value = wrap_int(a + b)
                        elif binop == OP_SUB:
                            value = wrap_int(a - b)
                        elif binop == OP_LT:
                            value = 1 if a < b else 0
                        elif binop == OP_LE:
                            value = 1 if a <= b else 0
                        elif binop == OP_GT:
                            value = 1 if a > b else 0
                        elif binop == OP_GE:
                            value = 1 if a >= b else 0
                        elif binop == OP_MUL:
                            value = wrap_int(a * b)
                        elif binop == OP_AND:
                            value = a & b
                        elif binop == OP_OR:
                            value = a | b
                        elif binop == OP_XOR:
                            value = a ^ b
                        elif binop == OP_DIV:
                            if b == 0:
                                self._trap(
                                    traps.DIV_BY_ZERO,
                                    fname,
                                    ins[5],
                                    "division by zero",
                                )
                            value = wrap_int(_c_div(a, b))
                        elif binop == OP_MOD:
                            if b == 0:
                                self._trap(
                                    traps.DIV_BY_ZERO,
                                    fname,
                                    ins[5],
                                    "modulo by zero",
                                )
                            value = wrap_int(_c_mod(a, b))
                        elif binop == OP_SHL:
                            if b < 0 or b > 63:
                                self._trap(
                                    traps.SHIFT_RANGE,
                                    fname,
                                    ins[5],
                                    "shift by %d" % b,
                                )
                            value = wrap_int(a << b)
                        else:  # OP_SHR
                            if b < 0 or b > 63:
                                self._trap(
                                    traps.SHIFT_RANGE,
                                    fname,
                                    ins[5],
                                    "shift by %d" % b,
                                )
                            value = a >> b
                    except TypeError:
                        self._trap(
                            traps.TYPE_CONFUSION,
                            fname,
                            ins[5],
                            "array used as integer",
                        )
                    if self._cmplog and binop in COMPARISON_OPS:
                        if len(self._cmp_log) < CMPLOG_CAP:
                            self._cmp_log.append((a, b))
                    regs[ins[2]] = value
                    if sa is None and sb is None:
                        sregs[ins[2]] = None
                    else:
                        sregs[ins[2]] = make_bin(
                            binop,
                            sa if sa is not None else a,
                            sb if sb is not None else b,
                        )
                elif op == CONST:
                    regs[ins[1]] = ins[2]
                    sregs[ins[1]] = None
                elif op == MOV:
                    regs[ins[1]] = regs[ins[2]]
                    sregs[ins[1]] = sregs[ins[2]]
                elif op == LOAD:
                    arr = regs[ins[2]]
                    idx = regs[ins[3]]
                    sidx = sregs[ins[3]]
                    if not isinstance(arr, ArrayRef):
                        self._trap(
                            traps.TYPE_CONFUSION,
                            fname,
                            ins[4],
                            "indexing a non-array",
                        )
                    storage = heap.storage(arr)
                    if isinstance(idx, ArrayRef) or idx < 0 or idx >= len(storage):
                        self._trap(
                            traps.OOB_READ,
                            fname,
                            ins[4],
                            "index %r of %d" % (idx, len(storage)),
                        )
                    regs[ins[1]] = storage[idx]
                    if sidx is not None:
                        # Symbolically-indexed load: which cell is read
                        # depends on input bytes — outside the language.
                        sregs[ins[1]] = None
                    else:
                        cells = self._scells.get(arr.array_id)
                        sregs[ins[1]] = cells[idx] if cells is not None else None
                elif op == STORE:
                    arr = regs[ins[1]]
                    idx = regs[ins[2]]
                    sidx = sregs[ins[2]]
                    ssrc = sregs[ins[3]]
                    if not isinstance(arr, ArrayRef):
                        self._trap(
                            traps.TYPE_CONFUSION,
                            fname,
                            ins[4],
                            "indexing a non-array",
                        )
                    if heap.is_readonly(arr):
                        self._trap(
                            traps.READONLY_WRITE,
                            fname,
                            ins[4],
                            "write to constant",
                        )
                    storage = heap.storage(arr)
                    if isinstance(idx, ArrayRef) or idx < 0 or idx >= len(storage):
                        self._trap(
                            traps.OOB_WRITE,
                            fname,
                            ins[4],
                            "index %r of %d" % (idx, len(storage)),
                        )
                    storage[idx] = regs[ins[3]]
                    if sidx is not None:
                        # A symbolically-indexed write could land in any
                        # cell under other inputs: every expression for
                        # this array is now stale.
                        self._scells[arr.array_id] = [None] * len(storage)
                    elif ssrc is not None or arr.array_id in self._scells:
                        self._cells_for_write(arr.array_id)[idx] = ssrc
                elif op == UN:
                    unop = ins[1]
                    a = regs[ins[3]]
                    sa = sregs[ins[3]]
                    try:
                        if unop == OP_NEG:
                            regs[ins[2]] = wrap_int(-a)
                        elif unop == OP_LNOT:
                            regs[ins[2]] = 1 if a == 0 else 0
                        else:
                            regs[ins[2]] = wrap_int(~a)
                    except TypeError:
                        self._trap(
                            traps.TYPE_CONFUSION, fname, 0, "array in arithmetic"
                        )
                    sregs[ins[2]] = None if sa is None else make_un(unop, sa)
                elif op == CALL:
                    if len(self._stack) + 1 >= self._depth_limit:
                        self._trap(
                            traps.STACK_OVERFLOW,
                            fname,
                            ins[4],
                            "call depth exceeded",
                        )
                    self._stack.append((fname, ins[4]))
                    regs[ins[1]] = self._call(
                        ins[2],
                        [regs[r] for r in ins[3]],
                        [sregs[r] for r in ins[3]],
                    )
                    self._stack.pop()
                    sregs[ins[1]] = self._sret
                elif op == BUILTIN:
                    regs[ins[1]], sregs[ins[1]] = self._sym_builtin(
                        ins[2],
                        [regs[r] for r in ins[3]],
                        [sregs[r] for r in ins[3]],
                        fname,
                        ins[4],
                    )
                else:  # STR
                    regs[ins[1]] = heap.string_ref(ins[2])
                    sregs[ins[1]] = None
            term = block.term
            top = term[0]
            if top == BR:
                cond_expr = sregs[term[1]]
                taken_true = bool(regs[term[1]])
                nxt = term[2] if regs[term[1]] else term[3]
                if cond_expr is not None:
                    self._record(fname, cur, nxt, taken_true, cond_expr)
            elif top == JMP:
                nxt = term[1]
            else:  # RET
                if racts is not None:
                    acts = racts.get(cur)
                    if acts:
                        self._run_actions(acts, pathreg, mask)
                value = term[1]
                if value == -1:
                    self._sret = None
                    return 0
                self._sret = sregs[value]
                return regs[value]
            if erows is not None:
                row = erows[cur]
                if row is not None:
                    acts = row.get(nxt)
                    if acts:
                        pathreg = self._run_actions(acts, pathreg, mask)
            cur = nxt

    # -- symbolic builtins ---------------------------------------------------

    def _sym_builtin(self, code, vals, exprs, fname, line):
        """Run a builtin with base-VM semantics, returning (value, expr)."""
        handler = _SYM_BUILTINS[code]
        return handler(self, vals, exprs, fname, line)

    def _sb_copy(self, vals, exprs, fname, line):
        value = self._bi_copy(vals, fname, line)
        dst, doff, src, soff, n = vals
        src_cells = self._scells.get(src.array_id)
        if src_cells is not None:
            window = list(src_cells[soff : soff + n])  # dst may alias src
        else:
            window = None
        if window is not None or dst.array_id in self._scells:
            cells = self._cells_for_write(dst.array_id)
            cells[doff : doff + n] = (
                window if window is not None else [None] * n
            )
        return value, None

    def _sb_fill(self, vals, exprs, fname, line):
        value = self._bi_fill(vals, fname, line)
        ref, off, n, _fill_value = vals
        if exprs[3] is not None or ref.array_id in self._scells:
            cells = self._cells_for_write(ref.array_id)
            cells[off : off + n] = [exprs[3]] * n
        return value, None

    def _sb_read(self, vals, exprs, fname, line, width, big_endian, reader):
        value = reader(self, vals, fname, line)
        ref, off = vals[0], vals[1]
        if exprs[1] is not None:
            return value, None  # symbolic offset: window is input-dependent
        cells = self._scells.get(ref.array_id)
        if cells is None:
            return value, None
        storage = self._heap.storage(ref)
        indices = range(off, off + width)
        if not big_endian:
            indices = reversed(indices)
        acc = None
        symbolic = False
        for index in indices:
            cell = cells[index]
            if cell is not None:
                symbolic = True
            byte = (
                cell
                if cell is not None
                else (storage[index] & 0xFF if not isinstance(storage[index], ArrayRef) else 0)
            )
            masked = make_bin(OP_AND, byte, 255) if cell is not None else byte
            if masked is None:
                return value, None  # node cap: degrade to concrete
            if acc is None:
                acc = masked
            else:
                shifted = make_bin(OP_SHL, acc, 8)
                if shifted is None:
                    return value, None
                acc = make_bin(OP_OR, shifted, masked)
                if acc is None:
                    return value, None
        return value, (acc if symbolic else None)

    def _sb_read16(self, vals, exprs, fname, line):
        return self._sb_read(vals, exprs, fname, line, 2, True, _Exec._bi_read16)

    def _sb_read32(self, vals, exprs, fname, line):
        return self._sb_read(vals, exprs, fname, line, 4, True, _Exec._bi_read32)

    def _sb_read16le(self, vals, exprs, fname, line):
        return self._sb_read(
            vals, exprs, fname, line, 2, False, _Exec._bi_read16le
        )

    def _sb_read32le(self, vals, exprs, fname, line):
        return self._sb_read(
            vals, exprs, fname, line, 4, False, _Exec._bi_read32le
        )


def _opaque(base):
    """A builtin wrapper that runs base semantics and drops expressions."""

    def run(self, vals, exprs, fname, line):
        return base(self, vals, fname, line), None

    return run


_SYM_BUILTINS = {
    BUILTIN_CODES["alloc"]: _opaque(_Exec._bi_alloc),
    BUILTIN_CODES["len"]: _opaque(_Exec._bi_len),
    BUILTIN_CODES["abs"]: _opaque(_Exec._bi_abs),
    BUILTIN_CODES["min"]: _opaque(_Exec._bi_min),
    BUILTIN_CODES["max"]: _opaque(_Exec._bi_max),
    BUILTIN_CODES["memcmp"]: _opaque(_Exec._bi_memcmp),
    BUILTIN_CODES["copy"]: ConcolicExec._sb_copy,
    BUILTIN_CODES["fill"]: ConcolicExec._sb_fill,
    BUILTIN_CODES["read16"]: ConcolicExec._sb_read16,
    BUILTIN_CODES["read32"]: ConcolicExec._sb_read32,
    BUILTIN_CODES["read16le"]: ConcolicExec._sb_read16le,
    BUILTIN_CODES["read32le"]: ConcolicExec._sb_read32le,
    BUILTIN_CODES["trap"]: _opaque(_Exec._bi_trap),
}
