"""Static analysis over the MiniC IR.

Layers, bottom up:

- :mod:`repro.analysis.dataflow` — generic worklist solver plus reaching
  definitions, liveness, and must-defined analyses;
- :mod:`repro.analysis.constprop` — conditional constant propagation with
  executable-edge tracking (dead CFG edges);
- :mod:`repro.analysis.verify` — IR well-formedness verifier and the
  trap-site preservation check that guards every optimizer pass;
- :mod:`repro.analysis.feasibility` — static pruning of the Ball-Larus
  path space (how many numbered acyclic paths can never execute);
- :mod:`repro.analysis.lint` — the MiniC linter (imported on demand: it
  pulls in the whole front end).
"""

from repro.analysis.constprop import ConstResult, conditional_constants
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    DataflowAnalysis,
    DataflowResult,
    Liveness,
    MustDefined,
    ReachingDefinitions,
    solve,
)
from repro.analysis.feasibility import (
    FunctionFeasibility,
    analyze_function,
    analyze_program,
    program_path_space,
)
from repro.analysis.verify import (
    VerificationError,
    check_trap_preservation,
    trap_signature,
    verify_function,
    verify_program,
)

__all__ = [
    "FORWARD",
    "BACKWARD",
    "DataflowAnalysis",
    "DataflowResult",
    "ReachingDefinitions",
    "Liveness",
    "MustDefined",
    "solve",
    "ConstResult",
    "conditional_constants",
    "VerificationError",
    "verify_function",
    "verify_program",
    "trap_signature",
    "check_trap_preservation",
    "FunctionFeasibility",
    "analyze_function",
    "analyze_program",
    "program_path_space",
]
