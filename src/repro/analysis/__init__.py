"""Static analysis over the MiniC IR.

Layers, bottom up:

- :mod:`repro.analysis.foldops` — the shared constant-folding semantics
  (VM-exact operator evaluation, shared with the optimizer);
- :mod:`repro.analysis.dataflow` — generic worklist solver plus reaching
  definitions, liveness, and must-defined analyses;
- :mod:`repro.analysis.constprop` — conditional constant propagation with
  executable-edge tracking (dead CFG edges);
- :mod:`repro.analysis.interval` — interval/value-range abstract
  interpretation with widening (proved branch outcomes, dead edges);
- :mod:`repro.analysis.verify` — IR well-formedness verifier and the
  trap-site preservation check that guards every optimizer pass;
- :mod:`repro.analysis.feasibility` — static pruning of the Ball-Larus
  path space (how many numbered acyclic paths can never execute);
- :mod:`repro.analysis.symbolic` — concolic path-condition extraction
  over input bytes (shadow interpreter building symbolic expressions);
- :mod:`repro.analysis.solver` — interval-split bounded search over
  flipped path constraints (no external SMT);
- :mod:`repro.analysis.lint` — the MiniC linter (imported on demand: it
  pulls in the whole front end).

Exports resolve lazily (PEP 562): importing :mod:`repro.analysis` pulls
in no submodule until an attribute is touched, which keeps leaf modules
like :mod:`foldops` importable from inside :mod:`repro.cfg` without a
cycle through the heavier analyses.
"""

_EXPORTS = {
    # dataflow
    "FORWARD": "repro.analysis.dataflow",
    "BACKWARD": "repro.analysis.dataflow",
    "DataflowAnalysis": "repro.analysis.dataflow",
    "DataflowResult": "repro.analysis.dataflow",
    "ReachingDefinitions": "repro.analysis.dataflow",
    "Liveness": "repro.analysis.dataflow",
    "MustDefined": "repro.analysis.dataflow",
    "solve": "repro.analysis.dataflow",
    # foldops
    "FOLDABLE_BIN": "repro.analysis.foldops",
    "FOLDABLE_UN": "repro.analysis.foldops",
    "fold_binop": "repro.analysis.foldops",
    "fold_unop": "repro.analysis.foldops",
    # constprop
    "ConstResult": "repro.analysis.constprop",
    "conditional_constants": "repro.analysis.constprop",
    # interval
    "Interval": "repro.analysis.interval",
    "IntervalResult": "repro.analysis.interval",
    "interval_analysis": "repro.analysis.interval",
    # verify
    "VerificationError": "repro.analysis.verify",
    "verify_function": "repro.analysis.verify",
    "verify_program": "repro.analysis.verify",
    "trap_signature": "repro.analysis.verify",
    "check_trap_preservation": "repro.analysis.verify",
    # feasibility
    "FunctionFeasibility": "repro.analysis.feasibility",
    "analyze_function": "repro.analysis.feasibility",
    "analyze_program": "repro.analysis.feasibility",
    "program_path_space": "repro.analysis.feasibility",
    # symbolic
    "Constraint": "repro.analysis.symbolic",
    "PathCondition": "repro.analysis.symbolic",
    "extract_path_condition": "repro.analysis.symbolic",
    # solver
    "SolveStats": "repro.analysis.solver",
    "solve_flip": "repro.analysis.solver",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
