"""Static path-feasibility pruning for the Ball-Larus path space.

The Ball-Larus numbering assigns ids to *every* acyclic CFG path, but a
fuzzer can only ever observe the feasible ones: a path that takes both
the ``kind == 2`` and the ``kind == 3`` sides of sequential equality
tests is numbered, wasted space.  This module bounds that waste
statically and reports, per subject, how many numbered paths can never
execute — context for coverage plateaus and for sizing path maps.

Three complementary techniques, built on
:mod:`repro.analysis.constprop` and :mod:`repro.analysis.interval`:

1. **Dead-edge pruning.**  SCCP and the interval analysis prove some
   CFG edges never taken; a dynamic-programming pass over the
   Ball-Larus DAG counts the paths avoiding all dead edges.  Cheap,
   works at any path count.
2. **Path-sensitive simulation.**  Each numbered path is decoded back to
   its block sequence (:meth:`FunctionPathPlan.regenerate_blocks`) and
   abstractly executed with constant propagation *refined by the taken
   branch direction*: taking the true edge of ``r == k`` pins ``r`` to
   ``k``, so a later ``r == j`` (``j != k``) folds to false and taking
   its true edge is a contradiction.  Only run when the function's path
   count is under a cap (enumeration is linear in the path count).
3. **Interval refinement.**  The same simulation carries a value-range
   environment: branch commits clamp operand ranges through all six
   comparison operators (not just the equality facts of layer 2), so
   mutually-exclusive range tests — ``if (n < 4) ... if (n >= 8)`` on
   one path — and range-vs-mask contradictions (``x & 15`` followed by
   the true edge of ``x > 20``) refute additional numbered paths.

Both are sound over-approximations: a path reported infeasible provably
cannot execute; feasible merely means "not refuted statically".
"""

from repro.analysis.constprop import BOTTOM, _transfer, conditional_constants
from repro.analysis.interval import (
    FALSE,
    FULL,
    TRUE,
    _NEGATE_OP,
    exclude_zero,
    interval_analysis,
    interval_transfer,
    refine_compare,
)
from repro.ballarus.dag import EXIT, REGULAR
from repro.ballarus.plan import FunctionPathPlan
from repro.cfg.instructions import (
    BIN,
    BR,
    COMPARISON_OPS,
    OP_EQ,
    OP_NE,
    instr_def,
)

# Above this many numbered paths per function, fall back to the dead-edge
# DP bound instead of enumerating.
DEFAULT_PATH_CAP = 20_000


class FunctionFeasibility:
    """Feasibility summary for one function's numbered path space."""

    __slots__ = (
        "func_name",
        "func_index",
        "num_paths",
        "feasible_paths",
        "infeasible_paths",
        "dead_edges",
        "method",
    )

    def __init__(
        self,
        func_name,
        func_index,
        num_paths,
        feasible_paths,
        dead_edges,
        method,
    ):
        self.func_name = func_name
        self.func_index = func_index
        self.num_paths = num_paths
        self.feasible_paths = feasible_paths
        self.infeasible_paths = num_paths - feasible_paths
        self.dead_edges = dead_edges
        self.method = method

    def to_dict(self):
        return {
            "function": self.func_name,
            "num_paths": self.num_paths,
            "feasible_paths": self.feasible_paths,
            "infeasible_paths": self.infeasible_paths,
            "dead_edges": sorted(self.dead_edges),
            "method": self.method,
        }


def analyze_function(cfg, plan=None, path_cap=DEFAULT_PATH_CAP):
    """Bound the feasible Ball-Larus path count of one function.

    When a ``plan`` is supplied its ``feasible_num_paths`` attribute is
    filled in as a side effect.
    """
    if plan is None:
        plan = FunctionPathPlan(cfg)
    const = conditional_constants(cfg)
    intervals = interval_analysis(cfg)
    dead = const.dead_edges() | intervals.dead_edges()
    if plan.num_paths <= path_cap:
        feasible = len(feasible_path_ids(cfg, plan, const, intervals))
        method = "enumerated"
    else:
        feasible = _dead_edge_path_count(plan.dag, dead)
        method = "dead-edge-bound"
    plan.feasible_num_paths = feasible
    return FunctionFeasibility(
        cfg.name, cfg.index, plan.num_paths, feasible, dead, method
    )


def analyze_program(program, plans=None, path_cap=DEFAULT_PATH_CAP):
    """Per-function feasibility for every function of ``program``.

    ``plans`` (as from :func:`~repro.ballarus.plan.build_program_plans`)
    are reused and annotated when given; otherwise fresh canonical plans
    are built.
    """
    results = []
    for func in program.funcs:
        plan = plans[func.index] if plans is not None else None
        results.append(analyze_function(func, plan, path_cap))
    return results


def program_path_space(program, path_cap=DEFAULT_PATH_CAP):
    """Whole-program path-space summary dict (for the CLI and reports)."""
    per_func = analyze_program(program, path_cap=path_cap)
    return {
        "num_paths": sum(f.num_paths for f in per_func),
        "feasible_paths": sum(f.feasible_paths for f in per_func),
        "infeasible_paths": sum(f.infeasible_paths for f in per_func),
        "dead_edges": sum(len(f.dead_edges) for f in per_func),
        "functions": [f.to_dict() for f in per_func],
    }


# --------------------------------------------------------------------------
# Dead-edge DP bound
# --------------------------------------------------------------------------


def _dead_edge_path_count(dag, dead):
    """ENTRY -> EXIT path count avoiding dead regular edges."""
    counts = {EXIT: 1}
    for node in reversed(dag.topological_order()):
        if node == EXIT:
            continue
        total = 0
        for edge in dag.out_edges[node]:
            if edge.kind == REGULAR and (edge.src, edge.dst) in dead:
                continue
            total += counts[edge.dst]
        counts[node] = total
    return counts[dag.nodes[0]]


# --------------------------------------------------------------------------
# Path-sensitive constant simulation
# --------------------------------------------------------------------------


def feasible_path_ids(cfg, plan, const=None, intervals=None):
    """The set of statically-feasible path ids of ``plan``.

    Enumerates the whole numbered space — callers enforce their own cap.
    Any path id a real execution emits is guaranteed to be in this set
    (the analysis only refutes, never over-prunes).
    """
    if const is None:
        const = conditional_constants(cfg)
    if intervals is None:
        intervals = interval_analysis(cfg)
    dead = const.dead_edges() | intervals.dead_edges()
    ids = set()
    for path_id in range(plan.num_paths):
        blocks = plan.regenerate_blocks(path_id)
        if _path_feasible(cfg, blocks, const, dead):
            ids.add(path_id)
    return ids


def _path_feasible(cfg, blocks, const, dead):
    """Can the decoded block sequence possibly execute?

    Abstractly interprets the path with the SCCP transfer function *and*
    an interval environment in lockstep, seeding from the (edge-aware)
    SCCP entry facts of the first block, and refining register values
    from each branch direction the path commits to: the concrete layer
    pins equalities (``r == k`` taken true pins ``r`` to ``k``), the
    interval layer clamps ranges (``r < k`` taken true clamps ``r``
    below ``k``, and an empty clamp refutes the path — e.g. taking the
    true edge of ``x > 20`` after ``x = input[0] & 15``).  Returns False
    only on a proven contradiction.
    """
    first = blocks[0]
    if first not in const.executable_blocks:
        return False
    env = {
        reg: value
        for reg, value in const.entry_env.get(first, {}).items()
        if value is not BOTTOM
    }
    ienv = {}
    facts = {}
    ifacts = {}
    for position, block_id in enumerate(blocks):
        block = cfg.blocks[block_id]
        _walk_block(block, env, facts, ienv, ifacts)
        if position + 1 >= len(blocks):
            break
        taken = blocks[position + 1]
        if (block_id, taken) in dead:
            return False
        term = block.term
        if term[0] != BR or term[2] == term[3]:
            continue
        taken_true = taken == term[2]
        icond = ienv.get(term[1])
        if icond is not None:
            if taken_true and icond.is_zero():
                return False
            if not taken_true and icond.excludes_zero():
                return False
        if not _irefine(term[1], taken_true, ienv, ifacts):
            return False
        cond = env.get(term[1])
        if cond is not None and cond is not BOTTOM:
            if taken_true == (cond == 0):
                return False
            continue
        _refine(term[1], taken_true, env, facts)
    return True


def _walk_block(block, env, facts, ienv, ifacts):
    """Run SCCP + interval transfer over a block, tracking branch facts.

    ``facts[dst] = (binop, reg, const)`` records that ``dst`` holds the
    (unknown) result of ``reg ==/!= const``; ``ifacts[dst] = (binop,
    ra, rb)`` records comparison provenance for the interval layer (all
    six comparison operators).  Both kinds of fact are invalidated when
    any involved register is overwritten.
    """
    for instr in block.instrs:
        candidate = None
        icandidate = None
        if instr[0] == BIN and instr[1] in (OP_EQ, OP_NE):
            va = env.get(instr[3])
            vb = env.get(instr[4])
            conc_a = va is not None and va is not BOTTOM
            conc_b = vb is not None and vb is not BOTTOM
            if conc_a and not conc_b and instr[2] != instr[4]:
                candidate = (instr[1], instr[4], va)
            elif conc_b and not conc_a and instr[2] != instr[3]:
                candidate = (instr[1], instr[3], vb)
        if (
            instr[0] == BIN
            and instr[1] in COMPARISON_OPS
            and instr[2] != instr[3]
            and instr[2] != instr[4]
        ):
            icandidate = (instr[1], instr[3], instr[4])
        _transfer(instr, env)
        interval_transfer(instr, ienv)
        dst = instr_def(instr)
        if dst is not None:
            facts.pop(dst, None)
            stale = [r for r, fact in facts.items() if fact[1] == dst]
            for r in stale:
                del facts[r]
            if candidate is not None:
                facts[dst] = candidate
            ifacts.pop(dst, None)
            istale = [r for r, f in ifacts.items() if dst in (f[1], f[2])]
            for r in istale:
                del ifacts[r]
            if icandidate is not None:
                ifacts[dst] = icandidate


def _irefine(cond_reg, taken_true, ienv, ifacts):
    """Clamp interval ranges for a committed branch direction.

    Returns False when the direction contradicts the tracked ranges
    (refines to an empty interval), True otherwise.
    """
    fact = ifacts.get(cond_reg)
    if fact is not None:
        binop, ra, rb = fact
        if not taken_true:
            binop = _NEGATE_OP[binop]
        na, nb = refine_compare(
            binop, ienv.get(ra, FULL), ienv.get(rb, FULL)
        )
        if na is None:
            return False
        ienv[ra] = na
        ienv[rb] = nb
        ienv[cond_reg] = TRUE if taken_true else FALSE
        return True
    cond = ienv.get(cond_reg)
    if taken_true:
        if cond is not None:
            narrowed = exclude_zero(cond)
            if narrowed is None:
                return False
            ienv[cond_reg] = narrowed
    else:
        ienv[cond_reg] = FALSE
    return True


def _refine(cond_reg, taken_true, env, facts):
    """Narrow ``env`` given that the branch on ``cond_reg`` went one way."""
    fact = facts.get(cond_reg)
    if fact is not None:
        binop, reg, const = fact
        if (binop == OP_EQ) == taken_true:
            # (reg == const) held, or (reg != const) failed: reg is const.
            env[reg] = const
        env[cond_reg] = 1 if taken_true else 0
    elif not taken_true:
        env[cond_reg] = 0
