"""AFL-style coverage map bookkeeping.

The fuzzer tracks, per execution, a sparse ``hits`` dict (map index -> raw
hit count) produced by the VM's probe actions.  Counts are classified into
AFL's power-of-two buckets, and a :class:`VirginMap` records which (index,
bucket) pairs have ever been seen — novelty in an execution is any pair not
yet in the virgin map.

The default map has ``2**18`` entries, matching the paper's choice ("to
match typical L2 cache sizes").
"""

MAP_SIZE_BITS = 18
MAP_SIZE = 1 << MAP_SIZE_BITS
MAP_MASK = MAP_SIZE - 1

# AFL count classes: raw count -> bucket bit.
_BUCKET_BOUNDS = (
    (1, 1),
    (2, 2),
    (3, 4),
    (7, 8),
    (15, 16),
    (31, 32),
    (127, 64),
)


def classify_count(count):
    """Map a raw hit count to its AFL bucket bit (0 for count == 0)."""
    if count <= 0:
        return 0
    for bound, bit in _BUCKET_BOUNDS:
        if count <= bound:
            return bit
    return 128


def classify_hits(hits):
    """Classify a raw ``hits`` dict into {index: bucket_bit}."""
    return {idx: classify_count(count) for idx, count in hits.items()}


class VirginMap:
    """Global record of every (map index, bucket) pair observed so far."""

    __slots__ = ("bits",)

    def __init__(self):
        self.bits = {}

    def probe(self, classified):
        """Check ``classified`` (index -> bucket bit) against the map.

        Returns ``(new_indices, new_buckets)``: whether any index was never
        seen at all, and whether any (index, bucket) pair is new.  AFL treats
        the former as "new edge" (stronger novelty) and the latter as "new
        hit-count bucket".  Does not modify the map.
        """
        bits = self.bits
        new_indices = False
        new_buckets = False
        for idx, bit in classified.items():
            seen = bits.get(idx)
            if seen is None:
                return True, True
            if not seen & bit:
                new_buckets = True
        return new_indices, new_buckets

    def merge(self, classified):
        """Record every (index, bucket) pair of ``classified``."""
        bits = self.bits
        for idx, bit in classified.items():
            bits[idx] = bits.get(idx, 0) | bit

    def coverage_count(self):
        """Number of distinct map indices ever hit."""
        return len(self.bits)

    def copy(self):
        clone = VirginMap()
        clone.bits = dict(self.bits)
        return clone
