"""Coverage maps and pluggable feedbacks."""

from repro.coverage.bitmap import (
    MAP_MASK,
    MAP_SIZE,
    MAP_SIZE_BITS,
    VirginMap,
    classify_count,
    classify_hits,
)
from repro.coverage.feedback import (
    BlockFeedback,
    EdgeFeedback,
    Feedback,
    Instrumentation,
    NGramFeedback,
    PathAFLFeedback,
    PathFeedback,
    PathPairFeedback,
    feedback_by_name,
)

__all__ = [
    "MAP_SIZE_BITS",
    "MAP_SIZE",
    "MAP_MASK",
    "VirginMap",
    "classify_count",
    "classify_hits",
    "Feedback",
    "Instrumentation",
    "EdgeFeedback",
    "PathFeedback",
    "BlockFeedback",
    "NGramFeedback",
    "PathAFLFeedback",
    "PathPairFeedback",
    "feedback_by_name",
]
