"""Coverage-preserving probe pruning for the compiled backend.

The instrumentation passes place one probe per CFG edge (plus entry and
return probes, depending on the feedback).  On every *complete* execution
those counts obey flow conservation: each block is entered exactly as often
as it is left, so the edge counts form a circulation over the CFG extended
with a virtual exit node (``RET`` blocks flow into it, and it flows back
into the entry once per call).  Counts on any spanning tree of that graph
are therefore fully determined by the counts on the remaining chord edges —
Knuth's classic optimal-counter-placement result, the same one Ball-Larus
path profiling builds on.

:func:`build_prune_plan` exploits this: it keeps probes only on a chord
set, drops the rest, and records for each dropped probe a signed linear
combination of kept cells that reconstructs its count.  The compiled
backend applies the reconstruction after each clean run, yielding a
coverage map *bit-identical* to the unpruned one on complete executions.
On trapped or timed-out executions conservation does not hold, so the raw
(pruned) map is kept — it is a subset of the reference map, and the fuzzing
engine only feeds complete runs to the virgin map's novelty merge, so
queueing decisions are unchanged (``tests/test_backend_equivalence.py``
checks these obligations).

The simplest special case is the dominator chain ``A -> B -> C`` with ``B``
single-entry/single-exit: the ``(A, B)`` probe dominates ``(B, C)`` and its
count alone reconstructs it.  The flow formulation generalizes that to
branch arms (one arm of a two-way branch is the block count minus the other
arm) and whole loop bodies.  The :class:`~repro.cfg.analysis.DominatorTree`
still earns its keep in drop *selection*: probes on retreating edges (whose
target dominates their source — natural-loop back edges) are dropped first,
since they sit on the hottest part of the graph and save the most work per
execution.

Soundness conditions, all statically checked:

- the instrumentation is pure-HIT (every action is ``ACT_HIT``): path-state
  actions (Ball-Larus increments, hashed-path updates) are order-sensitive
  and never pruned;
- a probe is droppable only if it is a site's sole action and its map cell
  is written by exactly one probe program-wide (a hash collision would make
  the reconstructed count unrecoverable);
- dropped probes form a forest of the flow graph together with the
  unprobed edges, so leaf peeling resolves every dropped count into kept
  cells only.

:func:`apply_saturation` layers dynamic de-instrumentation on top: once a
map cell has been observed in **every** AFL count bucket, no execution can
ever produce a novelty decision from it again, so its probe can be removed
outright (no reconstruction).  The engine re-specializes the compiled
program with such a plan when the map plateaus.
"""

import hashlib

from repro.cfg.analysis import DominatorTree
from repro.cfg.instructions import RET
from repro.runtime.interpreter import ACT_HIT

# A cell is saturated once its virgin-map bucket mask has all eight AFL
# count classes (1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+).
_ALL_BUCKETS = 0xFF

# Reconstruction expressions longer than this keep their probe instead:
# the per-execution cost of applying a huge expression outweighs one
# dictionary increment at the probe site.
_MAX_TERMS = 16

# Virtual exit node of the per-function flow graph.
_EXIT = -1


def _is_pure_hit(instrumentation):
    for tables in (instrumentation.edge_actions, instrumentation.ret_actions):
        for table in tables:
            for acts in table.values():
                for act in acts:
                    if act[0] != ACT_HIT:
                        return False
    for acts in instrumentation.entry_actions:
        for act in acts:
            if act[0] != ACT_HIT:
                return False
    return True


def _cell_usage(instrumentation):
    """Map cell -> number of probe sites writing it (collision detector)."""
    usage = {}
    for tables in (instrumentation.edge_actions, instrumentation.ret_actions):
        for table in tables:
            for acts in table.values():
                for act in acts:
                    usage[act[1]] = usage.get(act[1], 0) + 1
    for acts in instrumentation.entry_actions:
        for act in acts:
            usage[act[1]] = usage.get(act[1], 0) + 1
    return usage


class PrunePlan:
    """Filtered probe tables plus the reconstruction schedule.

    ``edge_actions`` / ``ret_actions`` / ``entry_actions`` mirror the
    :class:`~repro.coverage.feedback.Instrumentation` tables with the
    pruned probes removed; the compiled backend emits code from these
    instead.  ``reconstruct`` is a tuple of ``(target_cell, terms)``
    entries with ``terms`` a tuple of ``(source_cell, coefficient)``
    pairs; after every complete execution the backend sets
    ``hits[target] = sum(coef * hits[source])``.  Every source is a kept
    probe's cell, so entries are order-independent.  ``dropped`` counts
    removed probe sites; ``token`` keys the compiled-code cache.
    """

    __slots__ = (
        "edge_actions",
        "ret_actions",
        "entry_actions",
        "reconstruct",
        "dropped",
        "token",
    )

    def __init__(self, edge_actions, ret_actions, entry_actions, reconstruct, dropped):
        self.edge_actions = edge_actions
        self.ret_actions = ret_actions
        self.entry_actions = entry_actions
        self.reconstruct = tuple(reconstruct)
        self.dropped = dropped
        digest = hashlib.sha256()
        for f, table in enumerate(edge_actions):
            for edge in sorted(table):
                digest.update(b"e%d:%d:%d" % (f, edge[0], edge[1]))
        for f, table in enumerate(ret_actions):
            for block in sorted(table):
                digest.update(b"r%d:%d" % (f, block))
        for f, acts in enumerate(entry_actions):
            digest.update(b"n%d:%d" % (f, len(acts)))
        for target, terms in self.reconstruct:
            digest.update(b"t%d" % target)
            for source, coef in terms:
                digest.update(b"s%d:%d" % (source, coef))
        self.token = digest.hexdigest()[:16]


class _FlowEdge:
    """One edge of a function's extended flow graph."""

    __slots__ = ("u", "v", "cell", "kind", "site", "sym")

    def __init__(self, u, v, cell, kind, site):
        self.u = u
        self.v = v
        self.cell = cell  # unique map cell when droppable, else None
        self.kind = kind  # "edge" | "ret" | "entry"
        self.site = site
        self.sym = None  # cell -> coefficient once the count is known


def _function_edges(func, etab, rtab, entry_acts, unique_hit):
    """The extended flow graph: CFG edges, RET->exit, exit->entry."""
    edges = []
    for a, b in func.edges():
        edges.append(_FlowEdge(a, b, unique_hit(etab.get((a, b))), "edge", (a, b)))
    for block in func.blocks:
        if block.term is not None and block.term[0] == RET:
            edges.append(
                _FlowEdge(block.id, _EXIT, unique_hit(rtab.get(block.id)), "ret", block.id)
            )
    edges.append(_FlowEdge(_EXIT, 0, unique_hit(entry_acts), "entry", None))
    return edges


def _combine(into, sym, sign):
    for cell, coef in sym.items():
        value = into.get(cell, 0) + sign * coef
        if value:
            into[cell] = value
        else:
            del into[cell]


def _solve(edges, unknown):
    """Leaf-peel the unknown forest, deriving each count from kept cells.

    Known edges start with ``sym = {cell: 1}``.  A node with exactly one
    unresolved incident edge determines it by flow balance; resolving it
    may expose its other endpoint.  Unknown edges on cycles (possible when
    shared-cell probes are opaque) simply stay unresolved.
    """
    incident = {}
    pending = {}
    for edge in edges:
        if edge.u == edge.v:
            continue  # self-loops cancel out of every balance equation
        incident.setdefault(edge.u, []).append(edge)
        incident.setdefault(edge.v, []).append(edge)
    for edge in unknown:
        if edge.u == edge.v:
            continue
        pending[edge.u] = pending.get(edge.u, 0) + 1
        pending[edge.v] = pending.get(edge.v, 0) + 1
    queue = sorted(node for node, count in pending.items() if count == 1)
    while queue:
        node = queue.pop()
        if pending.get(node) != 1:
            continue
        target = None
        for edge in incident[node]:
            if edge.sym is None:
                target = edge
                break
        # in-flow minus out-flow at ``node`` is zero; solve for ``target``.
        sym = {}
        for edge in incident[node]:
            if edge is target:
                continue
            sign = 1 if edge.v == node else -1
            _combine(sym, edge.sym, sign)
        if target.u == node:
            # target leaves ``node``: count = in - other_out.
            pass
        else:
            # target enters ``node``: count = out - other_in = -(in - out).
            sym = {cell: -coef for cell, coef in sym.items()}
        target.sym = sym
        for endpoint in (target.u, target.v):
            left = pending.get(endpoint, 0) - 1
            pending[endpoint] = left
            if left == 1:
                queue.append(endpoint)


def build_prune_plan(program, instrumentation):
    """Flow-conservation probe elision for pure-HIT instrumentations.

    Returns a :class:`PrunePlan`, or ``None`` when the instrumentation is
    absent or uses path-state actions (nothing can be pruned soundly).
    """
    if instrumentation is None or not _is_pure_hit(instrumentation):
        return None
    usage = _cell_usage(instrumentation)
    edge_actions = [dict(table) for table in instrumentation.edge_actions]
    ret_actions = [dict(table) for table in instrumentation.ret_actions]
    entry_actions = list(instrumentation.entry_actions)
    reconstruct = []
    dropped = 0

    def unique_hit(acts):
        if acts is None or len(acts) != 1:
            return None
        cell = acts[0][1]
        return cell if usage.get(cell) == 1 else None

    for func in program.funcs:
        f = func.index
        etab = edge_actions[f]
        rtab = ret_actions[f]
        edges = _function_edges(func, etab, rtab, entry_actions[f], unique_hit)
        tree = DominatorTree(func)

        # Opaque edges (no droppable probe) have unknown counts and are
        # forced into the unknown set; probed edges are added greedily while
        # the unknown subgraph stays a forest (union-find cycle check).
        # Retreating edges — target dominates source, i.e. natural-loop
        # back edges — go first: they are the hottest probes in the graph.
        parent = {}

        def find(node):
            root = node
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(node, node) != node:
                parent[node], node = root, parent[node]
            return root

        unknown = []
        candidates = []
        for edge in edges:
            if edge.cell is None:
                unknown.append(edge)
                if edge.u != edge.v:
                    parent[find(edge.u)] = find(edge.v)
            else:
                candidates.append(edge)
        candidates.sort(
            key=lambda e: (
                0 if e.kind == "edge" and tree.dominates(e.v, e.u) else 1
            )
        )
        chosen = []
        for edge in candidates:
            if edge.u == edge.v:
                edge.sym = {edge.cell: 1}
                continue  # a self-loop is a one-edge cycle: never droppable
            ru, rv = find(edge.u), find(edge.v)
            if ru == rv:
                edge.sym = {edge.cell: 1}
                continue
            parent[ru] = rv
            unknown.append(edge)
            chosen.append(edge)

        # Solve, then un-drop anything the peel could not reach (possible
        # when opaque shared-cell probes form cycles) and re-solve with the
        # restored probes as known values.
        while True:
            _solve(edges, [edge for edge in unknown if edge.sym is None])
            stuck = [edge for edge in chosen if edge.sym is None]
            if not stuck:
                break
            for edge in stuck:
                edge.sym = {edge.cell: 1}
                chosen.remove(edge)

        for edge in chosen:
            if len(edge.sym) > _MAX_TERMS:
                continue  # applying the expression would cost more than the probe
            if edge.kind == "edge":
                del etab[edge.site]
            elif edge.kind == "ret":
                del rtab[edge.site]
            else:
                entry_actions[f] = ()
            dropped += 1
            if edge.sym:
                terms = tuple(sorted(edge.sym.items()))
                reconstruct.append((edge.cell, terms))
    return PrunePlan(edge_actions, ret_actions, entry_actions, reconstruct, dropped)


def saturated_cells(virgin):
    """Cells of ``virgin`` observed in every AFL bucket.

    A probe on such a cell can never contribute a novelty decision again:
    any positive count classifies into an already-seen bucket, and a zero
    count leaves the cell out of the classified map entirely.
    """
    return {
        idx for idx, bits in virgin.bits.items() if bits & _ALL_BUCKETS == _ALL_BUCKETS
    }


def apply_saturation(program, instrumentation, cells, base=None):
    """Drop every probe writing a cell in ``cells`` (no reconstruction).

    Layers on top of ``base`` (a plan from :func:`build_prune_plan`) when
    given.  Cells serving as reconstruction *sources* for a non-saturated
    target are protected — removing them would corrupt the reconstructed
    map.  Returns a new :class:`PrunePlan`, or ``base`` unchanged when
    nothing newly qualifies.
    """
    if instrumentation is None or not _is_pure_hit(instrumentation):
        return base
    if base is not None:
        edge_actions = [dict(table) for table in base.edge_actions]
        ret_actions = [dict(table) for table in base.ret_actions]
        entry_actions = list(base.entry_actions)
        reconstruct = [entry for entry in base.reconstruct if entry[0] not in cells]
        dropped = base.dropped + (len(base.reconstruct) - len(reconstruct))
    else:
        edge_actions = [dict(table) for table in instrumentation.edge_actions]
        ret_actions = [dict(table) for table in instrumentation.ret_actions]
        entry_actions = list(instrumentation.entry_actions)
        reconstruct = []
        dropped = 0
    protected = {source for _, terms in reconstruct for source, _ in terms}
    removable = cells - protected

    def filter_acts(acts):
        kept = tuple(act for act in acts if act[1] not in removable)
        return kept if len(kept) != len(acts) else None

    changed = dropped != (base.dropped if base is not None else 0)
    for tables in (edge_actions, ret_actions):
        for table in tables:
            for site in list(table):
                kept = filter_acts(table[site])
                if kept is None:
                    continue
                changed = True
                dropped += 1
                if kept:
                    table[site] = kept
                else:
                    del table[site]
    for f, acts in enumerate(entry_actions):
        kept = filter_acts(acts)
        if kept is not None:
            changed = True
            dropped += 1
            entry_actions[f] = kept
    if not changed and base is not None:
        return base
    return PrunePlan(edge_actions, ret_actions, entry_actions, reconstruct, dropped)


def _trap_key(trap):
    if trap is None:
        return None
    frames = tuple((fr.function, fr.line) for fr in trap.stack)
    return (trap.kind, trap.function, trap.line, trap.detail, frames)


def check_plan(program, instrumentation, plan, inputs, instr_budget=None):
    """Differentially verify a plan's obligations over concrete ``inputs``.

    For every input, runs the reference interpreter (unpruned) and the
    compiled program under ``plan`` and asserts:

    - identical return value, trap site/kind/detail/stack, and timeout flag;
    - on complete executions, a bit-identical reconstructed coverage map;
    - on partial executions, the pruned map is a subset with counts bounded
      by the interpreter's.

    Raises ``AssertionError`` on the first violation; returns the number of
    inputs checked.  Used by the backend-equivalence CI job and the
    property-based tests.
    """
    from repro.runtime.compiler import compile_program
    from repro.runtime.interpreter import DEFAULT_INSTR_BUDGET
    from repro.runtime.interpreter import execute as interp_execute

    budget = DEFAULT_INSTR_BUDGET if instr_budget is None else instr_budget
    compiled = compile_program(program, instrumentation, plan)
    checked = 0
    for data in inputs:
        ref = interp_execute(program, data, instrumentation, instr_budget=budget)
        got = compiled.execute(data, instr_budget=budget)
        assert _trap_key(ref.trap) == _trap_key(got.trap), (ref.trap, got.trap)
        assert ref.timeout == got.timeout, (ref.timeout, got.timeout)
        if ref.trap is None and not ref.timeout:
            assert ref.retval == got.retval, (ref.retval, got.retval)
            assert ref.hits == got.hits, "reconstructed map diverged"
        else:
            for idx, count in got.hits.items():
                assert count <= ref.hits.get(idx, 0), (
                    "partial map exceeds reference at cell %d" % idx
                )
        checked += 1
    return checked
