"""Coverage feedbacks: how an execution is summarized for novelty checks.

Each feedback compiles a :class:`~repro.cfg.program.ProgramCFG` into an
:class:`Instrumentation` — per-function action tables the VM executes on
control-flow transitions (see :mod:`repro.runtime.interpreter`).  The fuzzer
itself is feedback-agnostic; swapping the feedback is the paper's "change a
single component" experiment design.

Implemented feedbacks:

- :class:`EdgeFeedback` — collision-free per-edge probes with hit counts;
  the stand-in for AFL++'s ``pcguard`` configuration.
- :class:`PathFeedback` — the paper's contribution: Ball-Larus acyclic-path
  ids per function, map index ``(path_id ^ function_id) & mask``, map update
  at loop back edges and returns only.
- :class:`BlockFeedback` — basic-block coverage (n-gram with n = 0).
- :class:`NGramFeedback` — rolling window of the last *n* edges (the related
  work's n-gram feedback; n = 1 degenerates to edge coverage).
- :class:`PathAFLFeedback` — edge coverage plus a PathAFL-style rolling
  whole-program hash over a pruned subset of "large" functions.
"""

import hashlib

from repro.ballarus.plan import build_program_plans
from repro.coverage.bitmap import MAP_SIZE_BITS
from repro.runtime.interpreter import (
    ACT_ADD,
    ACT_END,
    ACT_END_RESET,
    ACT_HIT,
    ACT_HPATH,
    ACT_NGRAM,
)


def _stable_hash(text, bits=64):
    """Deterministic cross-run hash of ``text`` (Python's hash() is salted)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[: bits // 8], "little")


class Instrumentation:
    """Compiled probe tables for one program under one feedback.

    ``edge_actions[f][(src, dst)]``, ``ret_actions[f][block]`` and
    ``entry_actions[f]`` hold tuples of VM action tuples; ``map_mask`` sizes
    the coverage map; ``ngram_n`` parameterizes ACT_NGRAM handling.
    """

    __slots__ = (
        "feedback_name",
        "map_mask",
        "edge_actions",
        "ret_actions",
        "entry_actions",
        "edge_rows",
        "ngram_n",
        "pair_paths",
        "probe_sites",
    )

    def __init__(self, feedback_name, program, map_bits, ngram_n=4):
        self.feedback_name = feedback_name
        self.map_mask = (1 << map_bits) - 1
        nfuncs = len(program.funcs)
        self.edge_actions = [dict() for _ in range(nfuncs)]
        self.ret_actions = [dict() for _ in range(nfuncs)]
        self.entry_actions = [() for _ in range(nfuncs)]
        # Per-function, per-source-block action rows, built by finalize();
        # lets the VM look up edge actions without allocating (src, dst)
        # tuples on every transition.
        self.edge_rows = None
        self.ngram_n = ngram_n
        # When set, every path-end emission also hits a rolling 2-gram of
        # consecutive path ids (the paper's Sec. VII future-work feedback).
        self.pair_paths = False
        self.probe_sites = 0

    def finalize(self, program):
        """Build the fast per-source-block lookup rows (idempotent)."""
        self.edge_rows = []
        for func in program.funcs:
            rows = [None] * len(func.blocks)
            for (src, dst), acts in self.edge_actions[func.index].items():
                if rows[src] is None:
                    rows[src] = {}
                rows[src][dst] = acts
            self.edge_rows.append(rows)
        return self

    def add_edge_action(self, func_index, edge, action):
        table = self.edge_actions[func_index]
        table[edge] = table.get(edge, ()) + (action,)
        self.probe_sites += 1

    def add_ret_action(self, func_index, block, action):
        table = self.ret_actions[func_index]
        table[block] = table.get(block, ()) + (action,)
        self.probe_sites += 1

    def add_entry_action(self, func_index, action):
        self.entry_actions[func_index] = self.entry_actions[func_index] + (action,)
        self.probe_sites += 1


class Feedback:
    """Base class; subclasses define ``name`` and :meth:`instrument`."""

    name = "abstract"

    def instrument(self, program):
        raise NotImplementedError

    def __repr__(self):
        return "%s()" % type(self).__name__


class EdgeFeedback(Feedback):
    """Collision-free edge coverage with hit counts (the pcguard baseline).

    Every CFG edge gets a unique sequential map index (AFL++'s pcguard mode
    assigns compile-time-unique guards, avoiding the classic AFL hash
    collisions); function entries are probed as well so that sheer reach of
    a function registers even for single-block functions.
    """

    name = "edge"

    def __init__(self, map_bits=MAP_SIZE_BITS):
        self.map_bits = map_bits

    def instrument(self, program):
        instr = Instrumentation(self.name, program, self.map_bits)
        mask = instr.map_mask
        next_id = 0
        for func in program.funcs:
            instr.entry_actions[func.index] = ((ACT_HIT, next_id & mask),)
            instr.probe_sites += 1
            next_id += 1
            for edge in func.edges():
                instr.add_edge_action(func.index, edge, (ACT_HIT, next_id & mask))
                next_id += 1
        return instr.finalize(program)


class PathFeedback(Feedback):
    """The paper's intra-procedural acyclic-path feedback.

    Ball-Larus increments ride on spanning-tree chords; a coverage-map
    update fires when an acyclic path terminates (function return or loop
    back edge) at index ``(path_id ^ function_id) & mask`` — the formula of
    Section IV.  ``optimize=False`` selects the canonical (Figure 1)
    placement instead of the spanning-tree one.
    """

    name = "path"

    def __init__(self, map_bits=MAP_SIZE_BITS, optimize=True):
        self.map_bits = map_bits
        self.optimize = optimize

    def instrument(self, program):
        instr = Instrumentation(self.name, program, self.map_bits)
        plans = build_program_plans(program, self.optimize)
        for plan in plans:
            fxor = _stable_hash("func:" + plan.func_name) & instr.map_mask
            for edge, inc in plan.edge_incs.items():
                instr.add_edge_action(plan.func_index, edge, (ACT_ADD, inc))
            for (src, dst), (end_inc, reset) in plan.back_edge_events.items():
                instr.add_edge_action(
                    plan.func_index, (src, dst), (ACT_END_RESET, end_inc, reset, fxor)
                )
            for block, emit_inc in plan.ret_emits.items():
                instr.add_ret_action(plan.func_index, block, (ACT_END, emit_inc, fxor))
        return instr.finalize(program)


class BlockFeedback(Feedback):
    """Basic-block coverage (the weakest feedback; n-gram with n = 0)."""

    name = "block"

    def __init__(self, map_bits=MAP_SIZE_BITS):
        self.map_bits = map_bits

    def instrument(self, program):
        instr = Instrumentation(self.name, program, self.map_bits)
        mask = instr.map_mask
        next_id = 0
        block_ids = {}
        for func in program.funcs:
            for block in func.blocks:
                block_ids[(func.index, block.id)] = next_id & mask
                next_id += 1
        for func in program.funcs:
            instr.entry_actions[func.index] = (
                (ACT_HIT, block_ids[(func.index, 0)]),
            )
            instr.probe_sites += 1
            for edge in func.edges():
                instr.add_edge_action(
                    func.index, edge, (ACT_HIT, block_ids[(func.index, edge[1])])
                )
        return instr.finalize(program)


class NGramFeedback(Feedback):
    """Rolling-window edge history (the related-work n-gram feedback)."""

    name = "ngram"

    def __init__(self, n=4, map_bits=MAP_SIZE_BITS):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.map_bits = map_bits
        self.name = "ngram%d" % n

    def instrument(self, program):
        instr = Instrumentation(self.name, program, self.map_bits, ngram_n=self.n)
        for func in program.funcs:
            for edge in func.edges():
                ehash = _stable_hash("%s:%d:%d" % (func.name, edge[0], edge[1]))
                instr.add_edge_action(func.index, edge, (ACT_NGRAM, ehash))
        return instr.finalize(program)


class PathAFLFeedback(Feedback):
    """A PathAFL-style feedback: edge coverage + pruned whole-program hashes.

    PathAFL (Yan et al., ASIA CCS '20) keeps AFL's edge map and adds
    coarse-grained identifiers of *partial whole-program paths*: a rolling
    hash over the sequence of selected "interesting" functions, with
    aggressive pruning (only functions above a size threshold contribute).
    The hash state indexes the same map, so novel inter-procedural
    sequences register as novelty — but coarsely and with heavy aliasing,
    which is the behaviour the paper's Appendix C contrasts against.
    """

    name = "pathafl"

    def __init__(self, map_bits=MAP_SIZE_BITS, min_blocks=4):
        self.map_bits = map_bits
        self.min_blocks = min_blocks

    def instrument(self, program):
        instr = Instrumentation(self.name, program, self.map_bits)
        mask = instr.map_mask
        next_id = 0
        for func in program.funcs:
            instr.entry_actions[func.index] = ((ACT_HIT, next_id & mask),)
            instr.probe_sites += 1
            next_id += 1
            for edge in func.edges():
                instr.add_edge_action(func.index, edge, (ACT_HIT, next_id & mask))
                next_id += 1
        # Pruned h-path contributions: only "large" functions participate.
        for func in program.funcs:
            if len(func.blocks) >= self.min_blocks:
                fhash = _stable_hash("hpath:" + func.name)
                instr.add_entry_action(func.index, (ACT_HPATH, fhash))
        return instr.finalize(program)


class PathPairFeedback(PathFeedback):
    """2-grams of acyclic paths (the paper's Sec. VII future-work feedback).

    On top of the per-path map updates, every pair of *consecutive* path
    terminations (across loop iterations and function boundaries) hits a
    combined index — a partial form of context/flow sensitivity one level
    above single acyclic paths.  The paper anticipates amplified queue
    explosion; the ``path2gram`` config lets the ablation benches measure
    it.
    """

    name = "path2gram"

    def instrument(self, program):
        instr = super().instrument(program)
        instr.feedback_name = self.name
        instr.pair_paths = True
        return instr


def feedback_by_name(name):
    """Construct a feedback from its configuration name."""
    if name == "edge":
        return EdgeFeedback()
    if name == "path":
        return PathFeedback()
    if name == "path-canonical":
        return PathFeedback(optimize=False)
    if name == "block":
        return BlockFeedback()
    if name.startswith("ngram"):
        return NGramFeedback(int(name[len("ngram"):] or 4))
    if name == "pathafl":
        return PathAFLFeedback()
    if name == "path2gram":
        return PathPairFeedback()
    raise ValueError("unknown feedback %r" % name)
