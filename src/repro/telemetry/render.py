"""Render JSONL traces: TTY summary, markdown, and a static HTML report.

The renderer consumes the tolerant dict stream of
:func:`repro.telemetry.bus.read_trace` — one campaign's trace may span
several files (the parent's plus one per worker process); pass them all and
the events are merged on their wall timestamps.

The HTML report is a single self-contained file: no external assets, no
JavaScript required, inline SVG charts (coverage over virtual time, execs/s
per worker, and a restart/fault timeline) with light/dark styling driven by
CSS custom properties.  Every chart has an accompanying data table, series
are identified by legend + direct label (never color alone), and the
categorical palette below is the repo-wide validated default.
"""

from repro.telemetry.bus import format_event_line, read_trace

# Validated categorical palette (light, dark) in fixed assignment order —
# series beyond the eighth fold into "other".
_SERIES = (
    ("#2a78d6", "#3987e5"),
    ("#eb6834", "#d95926"),
    ("#1baf7a", "#199e70"),
    ("#eda100", "#c98500"),
    ("#e87ba4", "#d55181"),
    ("#008300", "#008300"),
    ("#4a3aa7", "#9085e9"),
    ("#e34948", "#e66767"),
)


def load_traces(paths):
    """Merge any number of trace files into one wall-ordered event list.

    Returns ``(events, skipped)`` where ``skipped`` totals malformed lines
    across all files.
    """
    events = []
    skipped = 0
    for path in paths:
        part, bad = read_trace(path)
        events.extend(part)
        skipped += bad
    events.sort(key=lambda e: e.get("wall", 0))
    return events, skipped


# -- extraction ----------------------------------------------------------------


class TraceSummary:
    """Everything the three renderers need, extracted once."""

    def __init__(self, events, skipped=0):
        self.events = events
        self.skipped = skipped
        self.campaign = next(
            (e for e in events if e.get("kind") == "campaign"), None
        )
        self.progress = [e for e in events if e.get("kind") == "worker_progress"]
        self.syncs = [e for e in events if e.get("kind") == "sync"]
        self.restarts = [e for e in events if e.get("kind") == "restart"]
        self.dropped = [e for e in events if e.get("kind") == "degraded"]
        self.cells = [e for e in events if e.get("kind") == "cell"]
        self.cell_retries = [e for e in events if e.get("kind") == "cell_retry"]
        self.metrics = [e for e in events if e.get("kind") == "metrics"]
        self.plateau_events = [e for e in events if e.get("kind") == "plateau"]
        self.spans = [e for e in events if e.get("kind") == "span"]
        self.service = [e for e in events if e.get("kind") == "service"]
        self.taint = [e for e in events if e.get("kind") == "taint"]
        self.concolic = [e for e in events if e.get("kind") == "concolic"]
        self.wall0 = min((e.get("wall", 0) for e in events), default=0)

    def title(self):
        c = self.campaign
        if c:
            return "%s/%s#%s" % (c.get("subject"), c.get("config"), c.get("run_seed"))
        labels = {e.get("label") for e in self.metrics if e.get("label")}
        return sorted(labels)[0] if labels else "campaign"

    def coverage_series(self):
        """{series label: [(tick, coverage), ...]} from progress or metrics."""
        series = {}
        for e in self.progress:
            series.setdefault("w%s" % e.get("worker", 0), []).append(
                (e.get("tick", 0), e.get("coverage", 0))
            )
        if not series:
            for e in self.metrics:
                coverage = (e.get("metrics") or {}).get("gauges", {}).get("coverage")
                if coverage is None:
                    continue
                label = e.get("label") or "campaign"
                series.setdefault(label, []).append((e.get("tick", 0), coverage))
        return {k: sorted(v) for k, v in series.items() if len(v) >= 2}

    def rate_series(self):
        """{series label: [(tick, execs per wall second), ...]}."""
        raw = {}
        for e in self.progress:
            raw.setdefault("w%s" % e.get("worker", 0), []).append(
                (e.get("tick", 0), e.get("wall", 0), e.get("execs", 0))
            )
        if not raw:
            for e in self.metrics:
                execs = (e.get("metrics") or {}).get("counters", {}).get("execs")
                if execs is None:
                    continue
                label = e.get("label") or "campaign"
                raw.setdefault(label, []).append(
                    (e.get("tick", 0), e.get("wall", 0), execs)
                )
        series = {}
        for label, samples in raw.items():
            samples.sort()
            points = []
            for (t0, w0, x0), (t1, w1, x1) in zip(samples, samples[1:]):
                if w1 <= w0:
                    continue
                delta = x1 - x0 if x1 >= x0 else x1  # resume boundary
                points.append((t1, delta / (w1 - w0)))
            if points:
                series[label] = points
        return series

    def totals(self):
        """Headline numbers for stat tiles and the TTY summary."""
        execs = crashes = coverage = queue = 0
        for label, samples in sorted(self._latest_progress().items()):
            e = samples
            execs += e.get("execs", 0)
            crashes += e.get("crashes", 0)
            coverage = max(coverage, e.get("coverage", 0))
            queue += e.get("queue", 0)
        if not self.progress:
            for e in self.metrics:
                m = e.get("metrics") or {}
                execs = max(execs, m.get("counters", {}).get("execs", 0))
                coverage = max(coverage, m.get("gauges", {}).get("coverage", 0))
                crashes = max(crashes, m.get("gauges", {}).get("crash_count", 0))
                queue = max(queue, m.get("gauges", {}).get("queue_size", 0))
        return {
            "execs": execs,
            "crashes": crashes,
            "coverage": coverage,
            "queue": queue,
            "restarts": len(self.restarts),
            "dropped": len(self.dropped),
            "plateaus": len(
                [e for e in self.plateau_events if e.get("phase") == "begin"]
            ),
            "syncs": len(self.syncs),
            "cells": len(self.cells),
        }

    def _latest_progress(self):
        latest = {}
        for e in self.progress:
            latest["w%s" % e.get("worker", 0)] = e
        return latest

    def plateaus(self):
        """[(start_tick, end_tick or None, value)] paired from begin/end."""
        out = []
        open_by_start = {}
        for e in self.plateau_events:
            key = (e.get("label"), e.get("metric"), e.get("start_tick"))
            if e.get("phase") == "begin":
                open_by_start[key] = [e.get("start_tick"), None, e.get("value")]
                out.append(open_by_start[key])
            elif key in open_by_start:
                open_by_start[key][1] = e.get("tick")
        return [tuple(p) for p in out]

    def span_table(self):
        """Last metrics snapshot's span histograms: [(name, n, mean, p95)]."""
        rows = {}
        for e in self.metrics:
            for name, h in (e.get("metrics") or {}).get("histograms", {}).items():
                rows[name] = (h.get("count", 0), h.get("mean", 0), h.get("p95", 0))
        return [(name,) + rows[name] for name in sorted(rows)]

    def taint_stats(self):
        """Taint-guided stage summary, or None when the subsystem was off.

        Combines the per-target :class:`TaintEvent` stream (sites, rarity,
        mask sizes) with the ``taint.*`` counters of the last metrics
        snapshot (masked executions and branch-flip hits).
        """
        masked_execs = masked_hits = targets = 0
        for e in self.metrics:
            counters = (e.get("metrics") or {}).get("counters", {})
            masked_execs = max(masked_execs, counters.get("taint.masked_execs", 0))
            masked_hits = max(masked_hits, counters.get("taint.masked_hits", 0))
            targets = max(targets, counters.get("taint.targets", 0))
        if not self.taint and not masked_execs and not targets:
            return None
        focus_sizes = [e.get("focus", 0) for e in self.taint]
        return {
            "targets": max(targets, len(self.taint)),
            "masked_execs": masked_execs,
            "masked_hits": masked_hits,
            "hit_rate": masked_hits / masked_execs if masked_execs else 0.0,
            "mean_focus": (
                sum(focus_sizes) / len(focus_sizes) if focus_sizes else 0.0
            ),
        }

    def taint_targets(self, limit=12):
        """Most recent target selections as table rows (rarest first)."""
        rows = [
            (
                e.get("rarity", 0),
                e.get("index", 0),
                e.get("site", "?"),
                e.get("focus", 0),
                e.get("frozen", 0),
                e.get("tick", 0),
            )
            for e in self.taint
        ]
        rows.sort()
        return rows[:limit]

    def concolic_stats(self):
        """Concolic-stage summary, or None when the subsystem was off.

        Combines the per-attempt :class:`ConcolicEvent` stream with the
        ``concolic.*`` counters of the last metrics snapshot.
        """
        attempts = solved = flips = 0
        for e in self.metrics:
            counters = (e.get("metrics") or {}).get("counters", {})
            attempts = max(attempts, counters.get("concolic.attempts", 0))
            solved = max(solved, counters.get("concolic.solved", 0))
            flips = max(flips, counters.get("concolic.flips", 0))
        if not self.concolic and not attempts:
            return None
        attempts = max(attempts, len(self.concolic))
        solved = max(solved, len([e for e in self.concolic if e.get("solved")]))
        flips = max(flips, len([e for e in self.concolic if e.get("flipped")]))
        supports = [e.get("support", 0) for e in self.concolic]
        return {
            "attempts": attempts,
            "solved": solved,
            "flips": flips,
            "solve_rate": solved / attempts if attempts else 0.0,
            "mean_support": (
                sum(supports) / len(supports) if supports else 0.0
            ),
        }

    def concolic_attempts(self, limit=12):
        """Most recent solve attempts as table rows (rarest branch first)."""
        rows = [
            (
                e.get("rarity", 0),
                e.get("index", 0),
                e.get("site", "?"),
                e.get("support", 0),
                e.get("nodes", 0),
                "flipped" if e.get("flipped")
                else ("solved" if e.get("solved") else "unsolved"),
                e.get("tick", 0),
            )
            for e in self.concolic
        ]
        rows.sort()
        return rows[:limit]

    def fault_timeline(self):
        """[(seconds since trace start, label)] for restarts/drops/retries."""
        out = []
        for e in self.restarts:
            out.append(
                (e.get("wall", 0) - self.wall0,
                 "restart w%s #%s" % (e.get("worker"), e.get("attempt")))
            )
        for e in self.dropped:
            label = "dropped w%s" % e.get("worker")
            if e.get("cause") and e.get("cause") != "unknown":
                label += " (%s)" % e.get("cause")
            out.append((e.get("wall", 0) - self.wall0, label))
        for e in self.service:
            if e.get("action") in ("retry", "degrade", "breaker", "recover",
                                   "fenced", "intake", "refuse", "compact"):
                out.append(
                    (e.get("wall", 0) - self.wall0,
                     "service %s %s" % (e.get("action"), e.get("job") or ""))
                )
        for e in self.cell_retries:
            out.append(
                (e.get("wall", 0) - self.wall0,
                 "cell retry %s #%s" % (e.get("key"), e.get("attempt")))
            )
        return sorted(out)


# -- TTY -----------------------------------------------------------------------


def summarize(events, skipped=0):
    """Human-readable multi-line summary of a trace (the TTY report)."""
    s = TraceSummary(events, skipped)
    totals = s.totals()
    lines = ["campaign %s" % s.title()]
    lines.append(
        "  execs %d, coverage %d, queue %d, crashes %d"
        % (totals["execs"], totals["coverage"], totals["queue"], totals["crashes"])
    )
    if totals["syncs"]:
        offered = sum(e.get("offered", 0) for e in s.syncs)
        accepted = sum(e.get("accepted", 0) for e in s.syncs)
        lines.append(
            "  syncs: %d rounds, %d offered, %d accepted"
            % (totals["syncs"], offered, accepted)
        )
    if totals["restarts"] or totals["dropped"]:
        lines.append(
            "  supervision: %d restart(s), %d worker(s) dropped"
            % (totals["restarts"], totals["dropped"])
        )
    for start, end, value in s.plateaus():
        span = "open" if end is None else "%d ticks" % (end - start)
        lines.append(
            "  plateau: coverage %d flat from tick %d (%s)" % (value, start, span)
        )
    taint = s.taint_stats()
    if taint:
        lines.append(
            "  taint: %d target(s), %d masked exec(s), hit rate %.1f%%, "
            "mean focus %.1fB"
            % (
                taint["targets"],
                taint["masked_execs"],
                taint["hit_rate"] * 100.0,
                taint["mean_focus"],
            )
        )
    concolic = s.concolic_stats()
    if concolic:
        lines.append(
            "  concolic: %d solve attempt(s), %d solved, %d branch flip(s), "
            "mean support %.1fB"
            % (
                concolic["attempts"],
                concolic["solved"],
                concolic["flips"],
                concolic["mean_support"],
            )
        )
    for name, count, mean, p95 in s.span_table():
        lines.append(
            "  %-16s n=%-7d mean=%.3gms p95=%.3gms"
            % (name, count, mean * 1e3, p95 * 1e3)
        )
    if totals["cells"]:
        ok = len([e for e in s.cells if e.get("status") == "ok"])
        lines.append("  matrix: %d/%d cells ok" % (ok, totals["cells"]))
    if skipped:
        lines.append("  (%d malformed trace line(s) skipped)" % skipped)
    return lines


def tail_lines(events):
    """One formatted line per event (the ``--follow`` view)."""
    return [format_event_line(e) for e in events]


# -- markdown ------------------------------------------------------------------


def render_markdown(events, skipped=0):
    s = TraceSummary(events, skipped)
    totals = s.totals()
    out = ["# Campaign report — %s" % s.title(), ""]
    out.append("| metric | value |")
    out.append("|---|---|")
    for key in ("execs", "coverage", "queue", "crashes", "restarts", "plateaus"):
        out.append("| %s | %d |" % (key, totals[key]))
    out.append("")
    plateaus = s.plateaus()
    if plateaus:
        out.append("## Coverage plateaus")
        out.append("")
        out.append("| start tick | end tick | coverage |")
        out.append("|---|---|---|")
        for start, end, value in plateaus:
            out.append("| %d | %s | %d |" % (start, end if end is not None else "open", value))
        out.append("")
    taint = s.taint_stats()
    if taint:
        out.append("## Taint-guided targeting")
        out.append("")
        out.append(
            "%d target(s) selected, %d masked execution(s), "
            "branch-flip hit rate %.1f%%, mean focus mask %.1f bytes."
            % (
                taint["targets"],
                taint["masked_execs"],
                taint["hit_rate"] * 100.0,
                taint["mean_focus"],
            )
        )
        out.append("")
        rows = s.taint_targets()
        if rows:
            out.append("| rarity | map index | site | focus (B) | frozen (B) | tick |")
            out.append("|---|---|---|---|---|---|")
            for rarity, index, site, focus, frozen, tick in rows:
                out.append(
                    "| %d | %d | %s | %d | %d | %d |"
                    % (rarity, index, site, focus, frozen, tick)
                )
            out.append("")
    concolic = s.concolic_stats()
    if concolic:
        out.append("## Concolic escalation")
        out.append("")
        out.append(
            "%d solve attempt(s), %d solved (%.1f%%), %d branch flip(s), "
            "mean support %.1f bytes."
            % (
                concolic["attempts"],
                concolic["solved"],
                concolic["solve_rate"] * 100.0,
                concolic["flips"],
                concolic["mean_support"],
            )
        )
        out.append("")
        rows = s.concolic_attempts()
        if rows:
            out.append(
                "| rarity | map index | site | support (B) | nodes | outcome | tick |"
            )
            out.append("|---|---|---|---|---|---|---|")
            for rarity, index, site, support, nodes, outcome, tick in rows:
                out.append(
                    "| %d | %d | %s | %d | %d | %s | %d |"
                    % (rarity, index, site, support, nodes, outcome, tick)
                )
            out.append("")
    spans = s.span_table()
    if spans:
        out.append("## Stage timings")
        out.append("")
        out.append("| span | count | mean (ms) | p95 (ms) |")
        out.append("|---|---|---|---|")
        for name, count, mean, p95 in spans:
            out.append("| %s | %d | %.3g | %.3g |" % (name, count, mean * 1e3, p95 * 1e3))
        out.append("")
    faults = s.fault_timeline()
    if faults:
        out.append("## Restart / fault timeline")
        out.append("")
        out.append("| t (s) | event |")
        out.append("|---|---|")
        for secs, label in faults:
            out.append("| %.1f | %s |" % (secs, label))
        out.append("")
    if skipped:
        out.append("_%d malformed trace line(s) skipped._" % skipped)
        out.append("")
    return "\n".join(out)


# -- SVG helpers ---------------------------------------------------------------


def _scale(points, x0, x1, y0, y1, width, height, pad):
    xs = (width - 2 * pad) / (x1 - x0 or 1)
    ys = (height - 2 * pad) / (y1 - y0 or 1)
    return [
        (pad + (x - x0) * xs, height - pad - (y - y0) * ys) for x, y in points
    ]


def _line_chart(series, title, x_label, y_label, width=640, height=280):
    """Inline-SVG multi-series line chart with legend and direct labels."""
    pad = 42
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        return "<p class='muted'>no data for %s</p>" % _esc(title)
    x0 = min(p[0] for p in all_points)
    x1 = max(p[0] for p in all_points)
    y0 = 0
    y1 = max(p[1] for p in all_points) or 1
    parts = [
        "<figure><figcaption>%s</figcaption>" % _esc(title),
        "<svg viewBox='0 0 %d %d' role='img' aria-label='%s'>"
        % (width, height, _esc(title)),
    ]
    # Recessive grid: four horizontal rules + y tick labels.
    for i in range(5):
        y = pad + i * (height - 2 * pad) / 4.0
        value = y1 - i * (y1 - y0) / 4.0
        parts.append(
            "<line x1='%d' y1='%.1f' x2='%d' y2='%.1f' class='grid'/>"
            % (pad, y, width - pad, y)
        )
        parts.append(
            "<text x='%d' y='%.1f' class='tick' text-anchor='end'>%s</text>"
            % (pad - 6, y + 4, _fmt_num(value))
        )
    for frac in (0.0, 0.5, 1.0):
        x = pad + frac * (width - 2 * pad)
        parts.append(
            "<text x='%.1f' y='%d' class='tick' text-anchor='middle'>%s</text>"
            % (x, height - pad + 16, _fmt_num(x0 + frac * (x1 - x0)))
        )
    parts.append(
        "<text x='%d' y='%d' class='axis' text-anchor='middle'>%s</text>"
        % (width // 2, height - 6, _esc(x_label))
    )
    names = sorted(series)
    shown = names[:8]
    for idx, name in enumerate(shown):
        pts = _scale(sorted(series[name]), x0, x1, y0, y1, width, height, pad)
        path = " ".join("%.1f,%.1f" % p for p in pts)
        parts.append(
            "<polyline points='%s' class='series s%d' fill='none'/>" % (path, idx)
        )
        lx, ly = pts[-1]
        if len(shown) > 1 and idx < 4:
            parts.append(
                "<text x='%.1f' y='%.1f' class='label s%d-ink'>%s</text>"
                % (min(lx + 4, width - pad + 4), ly + 4, idx, _esc(name))
            )
    parts.append("</svg>")
    if len(shown) > 1:
        legend = "".join(
            "<span class='key'><span class='swatch s%d-bg'></span>%s</span>"
            % (idx, _esc(name))
            for idx, name in enumerate(shown)
        )
        more = "" if len(names) <= 8 else " <span class='muted'>(+%d more)</span>" % (
            len(names) - 8
        )
        parts.append("<div class='legend'>%s%s</div>" % (legend, more))
    parts.append("</figure>")
    return "".join(parts)


def _fmt_num(value):
    if value >= 1_000_000:
        return "%.1fM" % (value / 1_000_000)
    if value >= 10_000:
        return "%.0fk" % (value / 1000)
    if value == int(value):
        return "%d" % value
    return "%.1f" % value


def _esc(text):
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("'", "&#39;")
    )


_HTML_STYLE = """
:root { color-scheme: light dark; }
.viz {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e; --grid: #e4e3df;
  --s0: #2a78d6; --s1: #eb6834; --s2: #1baf7a; --s3: #eda100;
  --s4: #e87ba4; --s5: #008300; --s6: #4a3aa7; --s7: #e34948;
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif; max-width: 760px;
  margin: 0 auto; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7; --grid: #33332f;
    --s0: #3987e5; --s1: #d95926; --s2: #199e70; --s3: #c98500;
    --s4: #d55181; --s5: #008300; --s6: #9085e9; --s7: #e66767;
  }
}
.viz h1 { font-size: 20px; } .viz h2 { font-size: 16px; margin-top: 28px; }
.viz .muted { color: var(--ink-2); }
.viz .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.viz .tile { border: 1px solid var(--grid); border-radius: 8px;
  padding: 10px 14px; min-width: 104px; }
.viz .tile b { display: block; font-size: 22px; }
.viz .tile span { color: var(--ink-2); font-size: 12px; }
.viz figure { margin: 16px 0; }
.viz figcaption { color: var(--ink-2); margin-bottom: 4px; }
.viz svg { width: 100%; height: auto; }
.viz .grid { stroke: var(--grid); stroke-width: 1; }
.viz .tick, .viz .axis, .viz .label { fill: var(--ink-2); font-size: 11px; }
.viz .label { font-weight: 600; }
.viz .series { stroke-width: 2; stroke-linejoin: round; }
.viz .s0 { stroke: var(--s0); } .viz .s1 { stroke: var(--s1); }
.viz .s2 { stroke: var(--s2); } .viz .s3 { stroke: var(--s3); }
.viz .s4 { stroke: var(--s4); } .viz .s5 { stroke: var(--s5); }
.viz .s6 { stroke: var(--s6); } .viz .s7 { stroke: var(--s7); }
.viz .s0-ink { fill: var(--s0); } .viz .s1-ink { fill: var(--s1); }
.viz .s2-ink { fill: var(--s2); } .viz .s3-ink { fill: var(--s3); }
.viz .s0-bg { background: var(--s0); } .viz .s1-bg { background: var(--s1); }
.viz .s2-bg { background: var(--s2); } .viz .s3-bg { background: var(--s3); }
.viz .s4-bg { background: var(--s4); } .viz .s5-bg { background: var(--s5); }
.viz .s6-bg { background: var(--s6); } .viz .s7-bg { background: var(--s7); }
.viz .legend { display: flex; flex-wrap: wrap; gap: 10px; font-size: 12px; }
.viz .key { display: inline-flex; align-items: center; gap: 4px; }
.viz .swatch { width: 10px; height: 10px; border-radius: 2px;
  display: inline-block; }
.viz table { border-collapse: collapse; width: 100%; margin: 8px 0; }
.viz th, .viz td { border-bottom: 1px solid var(--grid); text-align: left;
  padding: 4px 8px; font-variant-numeric: tabular-nums; }
.viz th { color: var(--ink-2); font-weight: 600; }
"""


def render_html(events, skipped=0):
    """Self-contained static HTML campaign report."""
    s = TraceSummary(events, skipped)
    totals = s.totals()
    body = ["<h1>Campaign report — %s</h1>" % _esc(s.title())]
    tiles = (
        ("executions", totals["execs"]),
        ("edge coverage", totals["coverage"]),
        ("queue", totals["queue"]),
        ("crashes", totals["crashes"]),
        ("restarts", totals["restarts"]),
        ("plateaus", totals["plateaus"]),
    )
    body.append(
        "<div class='tiles'>%s</div>"
        % "".join(
            "<div class='tile'><b>%s</b><span>%s</span></div>"
            % (_fmt_num(value), _esc(name))
            for name, value in tiles
        )
    )
    coverage = s.coverage_series()
    body.append("<h2>Coverage over virtual time</h2>")
    body.append(
        _line_chart(coverage, "edge coverage by virtual tick", "virtual ticks",
                    "coverage")
    )
    body.append(_series_table(coverage, "tick", "coverage"))
    rates = s.rate_series()
    body.append("<h2>Throughput per worker</h2>")
    body.append(
        _line_chart(rates, "executions per wall second", "virtual ticks",
                    "execs/s")
    )
    body.append(_series_table(rates, "tick", "execs/s"))
    plateaus = s.plateaus()
    if plateaus:
        body.append("<h2>Coverage plateaus</h2><table>")
        body.append(
            "<tr><th>start tick</th><th>end tick</th><th>coverage</th></tr>"
        )
        for start, end, value in plateaus:
            body.append(
                "<tr><td>%s</td><td>%s</td><td>%s</td></tr>"
                % (start, "open" if end is None else end, value)
            )
        body.append("</table>")
    taint = s.taint_stats()
    if taint:
        body.append("<h2>Taint-guided targeting</h2>")
        body.append(
            "<p>%d target(s) selected, %d masked execution(s), branch-flip "
            "hit rate %.1f%%, mean focus mask %.1f bytes.</p>"
            % (
                taint["targets"],
                taint["masked_execs"],
                taint["hit_rate"] * 100.0,
                taint["mean_focus"],
            )
        )
        rows = s.taint_targets()
        if rows:
            body.append(
                "<table><tr><th>rarity</th><th>map index</th><th>site</th>"
                "<th>focus (B)</th><th>frozen (B)</th><th>tick</th></tr>"
            )
            for rarity, index, site, focus, frozen, tick in rows:
                body.append(
                    "<tr><td>%d</td><td>%d</td><td>%s</td><td>%d</td>"
                    "<td>%d</td><td>%d</td></tr>"
                    % (rarity, index, _esc(site), focus, frozen, tick)
                )
            body.append("</table>")
    concolic = s.concolic_stats()
    if concolic:
        body.append("<h2>Concolic escalation</h2>")
        body.append(
            "<p>%d solve attempt(s), %d solved (%.1f%%), %d branch "
            "flip(s), mean support %.1f bytes.</p>"
            % (
                concolic["attempts"],
                concolic["solved"],
                concolic["solve_rate"] * 100.0,
                concolic["flips"],
                concolic["mean_support"],
            )
        )
        rows = s.concolic_attempts()
        if rows:
            body.append(
                "<table><tr><th>rarity</th><th>map index</th><th>site</th>"
                "<th>support (B)</th><th>nodes</th><th>outcome</th>"
                "<th>tick</th></tr>"
            )
            for rarity, index, site, support, nodes, outcome, tick in rows:
                body.append(
                    "<tr><td>%d</td><td>%d</td><td>%s</td><td>%d</td>"
                    "<td>%d</td><td>%s</td><td>%d</td></tr>"
                    % (rarity, index, _esc(site), support, nodes, outcome, tick)
                )
            body.append("</table>")
    spans = s.span_table()
    if spans:
        body.append("<h2>Stage timings</h2><table>")
        body.append(
            "<tr><th>span</th><th>count</th><th>mean (ms)</th><th>p95 (ms)</th></tr>"
        )
        for name, count, mean, p95 in spans:
            body.append(
                "<tr><td>%s</td><td>%d</td><td>%.3g</td><td>%.3g</td></tr>"
                % (_esc(name), count, mean * 1e3, p95 * 1e3)
            )
        body.append("</table>")
    faults = s.fault_timeline()
    body.append("<h2>Restart / fault timeline</h2>")
    if faults:
        body.append("<table><tr><th>t (s)</th><th>event</th></tr>")
        for secs, label in faults:
            body.append("<tr><td>%.1f</td><td>%s</td></tr>" % (secs, _esc(label)))
        body.append("</table>")
    else:
        body.append("<p class='muted'>no restarts or faults recorded</p>")
    if skipped:
        body.append(
            "<p class='muted'>%d malformed trace line(s) skipped</p>" % skipped
        )
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>"
        "<title>%s</title><style>%s</style></head>"
        "<body class='viz'>%s</body></html>"
        % (_esc("repro campaign report"), _HTML_STYLE, "".join(body))
    )


def _series_table(series, x_name, y_name, limit=12):
    """Accessible data table backing a chart (subsampled, final row kept)."""
    if not series:
        return ""
    rows = ["<details><summary class='muted'>data table</summary><table>"]
    rows.append(
        "<tr><th>series</th><th>%s</th><th>%s</th></tr>"
        % (_esc(x_name), _esc(y_name))
    )
    for name in sorted(series):
        points = sorted(series[name])
        step = max(1, len(points) // limit)
        sampled = points[::step]
        if points[-1] not in sampled:
            sampled.append(points[-1])
        for x, y in sampled:
            rows.append(
                "<tr><td>%s</td><td>%s</td><td>%s</td></tr>"
                % (_esc(name), _fmt_num(x), _fmt_num(y))
            )
    rows.append("</table></details>")
    return "".join(rows)


def render_report(paths, html_path=None, markdown_path=None):
    """Load traces and render every requested artifact.

    Returns the TTY summary lines; writes HTML/markdown files when paths
    are given.
    """
    events, skipped = load_traces(paths)
    if html_path:
        with open(html_path, "w", encoding="utf-8") as handle:
            handle.write(render_html(events, skipped))
    if markdown_path:
        with open(markdown_path, "w", encoding="utf-8") as handle:
            handle.write(render_markdown(events, skipped))
    return summarize(events, skipped)
