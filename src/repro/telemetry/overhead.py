"""The tracing-overhead gate: measure, compare, enforce.

Coverage-preserving coverage-guided tracing (Nagy et al.) makes the case
that instrumentation is only trustworthy when its overhead is *budgeted and
measured*; this module is that budget made executable.  It runs the same
benchmark smoke campaign twice — telemetry disabled, then with full tracing
(JSONL sink, span histograms, metric snapshots, plateau detection) — and
checks two contracts:

1. **Determinism**: the two `CampaignResult`s are field-for-field equal
   (``__eq__`` covers every science field);
2. **Overhead**: the traced run's best-of-N wall time is within ``gate``
   percent of the untraced best-of-N (best-of-N discards scheduler noise,
   which on shared CI runners dwarfs the effect being measured).

CI runs ``repro telemetry overhead --gate 5`` on every push.
"""

import os
import tempfile
from time import perf_counter

from repro.fuzzer.clock import hours_to_ticks
from repro.subjects import get_subject

#: Defaults match the CI smoke profile: big enough (a few thousand
#: executions, ~half a second) that per-execution instrumentation cost —
#: the thing the gate protects — dominates fixed costs like opening the
#: trace file, which would otherwise swamp a percentage gate.
DEFAULT_SUBJECT = "flvmeta"
DEFAULT_CONFIG = "pcguard"
DEFAULT_HOURS = 2.0
DEFAULT_SCALE = 4.0
DEFAULT_REPEATS = 3
DEFAULT_GATE_PCT = 5.0


class OverheadReport:
    """Outcome of one measurement: timings, overhead, verdicts."""

    __slots__ = (
        "plain_secs",
        "traced_secs",
        "overhead_pct",
        "gate_pct",
        "deterministic",
        "execs",
        "trace_bytes",
    )

    def __init__(
        self, plain_secs, traced_secs, gate_pct, deterministic, execs, trace_bytes
    ):
        self.plain_secs = plain_secs
        self.traced_secs = traced_secs
        self.overhead_pct = (
            (traced_secs - plain_secs) / plain_secs * 100.0 if plain_secs else 0.0
        )
        self.gate_pct = gate_pct
        self.deterministic = deterministic
        self.execs = execs
        self.trace_bytes = trace_bytes

    @property
    def passed(self):
        return self.deterministic and self.overhead_pct < self.gate_pct

    def lines(self):
        return [
            "untraced: %.3fs (best of N)" % self.plain_secs,
            "traced:   %.3fs (best of N)" % self.traced_secs,
            "overhead: %+.2f%% (gate: <%.1f%%)" % (self.overhead_pct, self.gate_pct),
            "determinism: %s (%d execs, %d trace bytes)"
            % (
                "equal" if self.deterministic else "RESULTS DIVERGED",
                self.execs,
                self.trace_bytes,
            ),
            "verdict: %s" % ("PASS" if self.passed else "FAIL"),
        ]


def _run_once(subject, config_name, run_seed, budget, telemetry):
    from repro.experiments.config import run_config

    start = perf_counter()
    result = run_config(subject, config_name, run_seed, budget, telemetry=telemetry)
    return perf_counter() - start, result


def measure_overhead(
    subject_name=DEFAULT_SUBJECT,
    config_name=DEFAULT_CONFIG,
    run_seed=0,
    hours=DEFAULT_HOURS,
    scale=DEFAULT_SCALE,
    repeats=DEFAULT_REPEATS,
    gate_pct=DEFAULT_GATE_PCT,
    trace_dir=None,
):
    """Run the gate campaign both ways; returns an :class:`OverheadReport`.

    The traced runs write a real JSONL trace (full sink pipeline, not a
    null sink) so the measured cost is the cost users pay.  ``trace_dir``
    keeps the trace for artifact upload; a temp dir is used otherwise.
    """
    from repro.telemetry import EngineTelemetry
    from repro.telemetry.bus import JsonlSink, TelemetryBus

    subject = get_subject(subject_name)
    budget = hours_to_ticks(hours, scale)
    repeats = max(1, int(repeats))

    plain_best = None
    plain_result = None
    for _ in range(repeats):
        secs, result = _run_once(subject, config_name, run_seed, budget, None)
        plain_best = secs if plain_best is None else min(plain_best, secs)
        plain_result = result

    own_tmp = None
    if trace_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-overhead-")
        trace_dir = own_tmp.name
    os.makedirs(trace_dir, exist_ok=True)
    trace_path = os.path.join(trace_dir, "overhead.jsonl")
    traced_best = None
    traced_result = None
    trace_bytes = 0
    try:
        for attempt in range(repeats):
            if os.path.exists(trace_path):
                os.remove(trace_path)
            bus = TelemetryBus()
            sink = bus.attach(JsonlSink(trace_path))
            telemetry = EngineTelemetry(bus=bus, label="overhead").begin(budget)
            secs, result = _run_once(
                subject, config_name, run_seed, budget, telemetry
            )
            telemetry.finish(budget)
            sink.close()
            traced_best = secs if traced_best is None else min(traced_best, secs)
            traced_result = result
            trace_bytes = os.path.getsize(trace_path)
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
    return OverheadReport(
        plain_best,
        traced_best,
        gate_pct,
        deterministic=(plain_result == traced_result),
        execs=plain_result.execs,
        trace_bytes=trace_bytes,
    )
