"""`repro.telemetry` — the unified observability subsystem.

Layers (each its own module, composable separately):

- :mod:`.bus`      typed events, ring retention, pluggable sinks (JSONL with
                   atomic rotation, stderr/TTY, logger mirror, null);
- :mod:`.metrics`  counters / gauges / histograms with snapshot + diff;
- :mod:`.trace`    context-manager spans and the engine's hot-path facade;
- :mod:`.plateau`  coverage plateau detection (live stream and post-hoc);
- :mod:`.render`   JSONL trace -> TTY summary / markdown / static HTML report;
- :mod:`.overhead` the measured <5 % tracing-overhead gate CI enforces.

**Determinism contract.**  Telemetry observes; it never participates.  No
virtual-clock charges, no RNG draws, no fields inside ``CampaignResult.__eq__``,
nothing in engine checkpoints.  A campaign traced with every sink attached is
field-for-field equal to the same campaign with telemetry disabled — CI
asserts this together with the overhead gate.

**Activation.**  Tracing is off by default (hot paths see ``telemetry is
None``).  The CLI's ``fuzz --trace out.jsonl`` turns it on for one process
tree by exporting ``REPRO_TRACE``; worker processes (instance workers,
matrix cells) each write a sibling file (``out.w0.jsonl``, ...) because two
processes appending one stream would tear lines.  ``repro telemetry report
out.jsonl ...`` merges any number of such files back into one report.
"""

import os

from repro.telemetry.bus import (
    CampaignEvent,
    CellEvent,
    CellRetryEvent,
    JsonlSink,
    LogSink,
    MetricsSnapshotEvent,
    NullSink,
    PlateauEvent,
    SpanEvent,
    StoreEvent,
    SyncRoundEvent,
    TelemetryBus,
    TelemetryEvent,
    TTYSink,
    WorkerDroppedEvent,
    WorkerProgressEvent,
    WorkerRestartEvent,
    get_bus,
    read_trace,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from repro.telemetry.plateau import Plateau, PlateauDetector, detect_plateaus
from repro.telemetry.trace import EngineTelemetry, Span, SpanTracer

#: Environment knob: base path of the JSONL trace (empty/unset: tracing off).
TRACE_ENV = "REPRO_TRACE"


def trace_path():
    """The configured trace base path, or None when tracing is off."""
    return os.environ.get(TRACE_ENV) or None


def _suffixed(base, suffix):
    if not suffix:
        return base
    root, ext = os.path.splitext(base)
    return "%s.%s%s" % (root, suffix, ext or ".jsonl")


def start_trace(path=None, suffix="", bus=None, tty=False):
    """Attach a JSONL sink (and optionally a TTY sink) for this process.

    Returns the sink, or None when tracing is not configured.  ``suffix``
    namespaces per-worker files (``out.w0.jsonl``).  Call this once per
    process; the sink lands on the global bus by default so stats events,
    spans, and metric snapshots all reach the same file.
    """
    base = path or trace_path()
    if not base:
        return None
    bus = bus if bus is not None else get_bus()
    sink = bus.attach(JsonlSink(_suffixed(base, suffix)))
    if tty:
        bus.attach(TTYSink())
    return sink


def engine_telemetry(label="", suffix="", budget_ticks=None, bus=None):
    """An :class:`EngineTelemetry` when tracing is configured, else None.

    The one call engine builders need: it opens this process's trace sink
    (idempotence is the caller's concern — workers call it exactly once)
    and returns the facade to hand to :class:`~repro.fuzzer.engine.FuzzEngine`.
    """
    if trace_path() is None and bus is None:
        return None
    if bus is None:
        bus = get_bus()
        # Idempotent per process: the trace sink may already be attached
        # (worker entry points call child_trace() before building engines).
        if not any(isinstance(sink, JsonlSink) for sink in bus.sinks):
            start_trace(suffix=suffix, bus=bus)
    telemetry = EngineTelemetry(bus=bus, label=label)
    if budget_ticks:
        telemetry.begin(budget_ticks)
    return telemetry


def child_trace(suffix):
    """Re-home tracing inside a forked/spawned worker process.

    A forked child inherits the parent's open JSONL sink; its writes are
    PID-guarded no-ops (see :class:`~repro.telemetry.bus.JsonlSink`), so the
    child must drop inherited file sinks and open its own suffixed file.
    Returns the new sink or None when tracing is off.
    """
    bus = get_bus()
    for sink in list(bus.sinks):
        if isinstance(sink, JsonlSink):
            bus.detach(sink)
    return start_trace(suffix=suffix, bus=bus)
