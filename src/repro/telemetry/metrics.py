"""Metrics registry: counters, gauges, histograms, snapshots and diffs.

Every metric carries two timelines when snapshotted: the *virtual tick* (the
campaign's deterministic clock, supplied by the caller) and the wall clock.
Snapshots are plain dicts — picklable, JSON-serializable, and diffable — so
a campaign that checkpoints, dies, and resumes (whose in-memory counters
restart from zero) still yields a consistent series: renderers difference
consecutive snapshots and treat a negative counter delta as a resume
boundary (see :func:`diff_snapshots`).

Histogram bucket semantics are Prometheus-style ``le`` (less-or-equal): a
value equal to a bound lands in that bound's bucket, values above the last
bound land in the overflow bucket.  The default bounds are base-2 steps
from 1 µs to ~8 s — sized for span durations.
"""

from bisect import bisect_left

#: Default histogram bounds: 2**i microseconds for i in 0..23 (1 µs .. ~8.4 s).
DURATION_BUCKET_BOUNDS = tuple((1 << i) * 1e-6 for i in range(24))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount
        return self.value

    def __repr__(self):
        return "Counter(%s=%d)" % (self.name, self.value)


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value
        return value

    def __repr__(self):
        return "Gauge(%s=%r)" % (self.name, self.value)


class Histogram:
    """Fixed-bound histogram with ``le`` bucket semantics.

    ``counts[i]`` counts observations ``v <= bounds[i]`` (and greater than
    ``bounds[i-1]``); ``counts[-1]`` is the overflow bucket for values above
    the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name, bounds=DURATION_BUCKET_BOUNDS):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value):
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q):
        """Approximate quantile: the upper bound of the bucket holding it.

        Returns 0.0 on an empty histogram; overflow-bucket hits report the
        last bound (the histogram cannot resolve beyond its range).
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def merge(self, other):
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, bucket_count in enumerate(other.counts):
            self.counts[i] += bucket_count
        self.count += other.count
        self.sum += other.sum
        return self

    def to_dict(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean(),
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }

    def __repr__(self):
        return "Histogram(%s: n=%d, mean=%.3g)" % (self.name, self.count, self.mean())


class MetricsRegistry:
    """Named get-or-create store of counters, gauges, and histograms."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def counter(self, name):
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name, bounds=DURATION_BUCKET_BOUNDS):
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, bounds)
        return metric

    def snapshot(self):
        """Plain-dict snapshot of every metric (JSON/pickle friendly)."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }


def diff_snapshots(older, newer):
    """Counter deltas between two snapshots, resume-boundary aware.

    Returns ``{name: delta}`` over the union of counter names.  A counter
    that shrank (the process restarted from a checkpoint and its in-memory
    counters reset) is treated as having restarted from zero, so the delta
    is the newer absolute value — the convention that keeps post-resume
    rate series consistent.
    """
    old_counters = older.get("counters", {}) if older else {}
    new_counters = newer.get("counters", {}) if newer else {}
    deltas = {}
    for name in set(old_counters) | set(new_counters):
        old = old_counters.get(name, 0)
        new = new_counters.get(name, 0)
        deltas[name] = new - old if new >= old else new
    return deltas
