"""Span tracing: context-manager spans and the engine's telemetry facade.

Two granularities, matching the overhead budget (DESIGN §7):

- **Coarse spans** (sync rounds, checkpoint writes, report cells) use
  :meth:`SpanTracer.span` — a context manager that records the duration
  into a per-name histogram *and* publishes a ``SpanEvent`` per occurrence.
- **Hot spans** (mutate / execute / classify / queue, thousands per
  campaign) never publish per-occurrence events: the engine calls
  :meth:`EngineTelemetry.observe` with a pre-measured duration, which is a
  single histogram insert.  Aggregates surface periodically as
  ``MetricsSnapshotEvent`` at the engine's existing timeline cadence, so
  the trace file grows with campaign *rounds*, not executions.

Everything here is wall-clock-only observation: no virtual-clock charges,
no RNG draws, no engine state — a traced campaign must stay field-for-field
equal to an untraced one.
"""

from bisect import bisect_left
from time import perf_counter

from repro.telemetry.bus import (
    ConcolicEvent,
    MetricsSnapshotEvent,
    SpanEvent,
    TaintEvent,
    get_bus,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.plateau import PlateauDetector


class Span:
    """One timed region; use via :meth:`SpanTracer.span`."""

    __slots__ = ("tracer", "name", "tick", "attrs", "start")

    def __init__(self, tracer, name, tick, attrs):
        self.tracer = tracer
        self.name = name
        self.tick = tick
        self.attrs = attrs
        self.start = 0.0

    def __enter__(self):
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.tracer.record(
            self.name, perf_counter() - self.start, self.tick, self.attrs
        )
        return False


class SpanTracer:
    """Duration histograms per span name, with optional per-span events."""

    def __init__(self, registry=None, bus=None, emit_events=True):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.bus = bus
        self.emit_events = emit_events

    def span(self, name, tick=None, **attrs):
        """Context manager timing one coarse region."""
        return Span(self, name, tick, attrs or None)

    def observe(self, name, seconds):
        """Hot-path record: one histogram insert, no event."""
        self.registry.histogram("span." + name).observe(seconds)

    def record(self, name, seconds, tick=None, attrs=None):
        """Record a closed span (histogram + event, for coarse spans)."""
        self.observe(name, seconds)
        if self.emit_events and self.bus is not None:
            self.bus.publish(SpanEvent(name, seconds, tick, attrs))


class EngineTelemetry:
    """Per-engine observability session: metrics + hot spans + plateaus.

    The engine guards every call site with ``if self.telemetry is not None``
    so a disabled engine pays one attribute load per site; an enabled one
    pays a couple of ``perf_counter`` reads and histogram inserts per
    execution — measured and gated below 5 % wall clock (see
    :mod:`repro.telemetry.overhead`).

    Not part of engine snapshots/checkpoints: a resumed engine restarts its
    telemetry from zero, and snapshot *diffs* keep the series consistent
    (:func:`repro.telemetry.metrics.diff_snapshots`).
    """

    def __init__(self, bus=None, label="", plateau_window=None):
        self.bus = bus if bus is not None else get_bus()
        self.label = label
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(self.registry, self.bus)
        self.plateau_window = plateau_window
        self._plateau = None
        self._finished = False
        # Bound methods cached for the engine's hot path.
        self.observe = self.tracer.observe
        self.span = self.tracer.span
        c = self.registry.counter
        self._execs = c("execs")
        self._hangs = c("hangs")
        self._crashes = c("crashes")
        self._queued = c("queued")
        self._skipped = c("skipped")
        self._instrs = c("instrs")
        # Hot-path recorders update metric slots directly (no method-call
        # layers): each exec is tens of microseconds in this interpreter, so
        # per-exec bookkeeping must stay ~1 µs for the <5 % overhead gate.
        self._h_exec = self.registry.histogram("span.execute")
        self._stage_hists = {}

    def begin(self, budget_ticks):
        """Campaign armed: derive the plateau window from the tick budget."""
        if self.plateau_window is None and budget_ticks:
            from repro.telemetry.plateau import default_window

            self.plateau_window = default_window(budget_ticks)
        return self

    # -- hot-path recorders (pre-measured durations) --------------------------

    def record_exec(self, seconds, result):
        """One interpreter execution: duration + instruction attribution."""
        h = self._h_exec
        h.counts[bisect_left(h.bounds, seconds)] += 1
        h.count += 1
        h.sum += seconds
        self._execs.value += 1
        self._instrs.value += result.instr_count
        if result.timeout:
            self._hangs.value += 1
        elif result.trap is not None:
            self._crashes.value += 1

    def record_stage(self, name, seconds):
        """One mutate/classify/queue/cull stage occurrence."""
        h = self._stage_hists.get(name)
        if h is None:
            h = self._stage_hists[name] = self.registry.histogram("span." + name)
        h.counts[bisect_left(h.bounds, seconds)] += 1
        h.count += 1
        h.sum += seconds

    def record_queued(self):
        self._queued.value += 1

    def record_skipped(self):
        self._skipped.value += 1

    # -- taint-guided stage (repro.taint) -------------------------------------

    def record_taint(self, target, focus, frozen):
        """One rare-branch target selected: event + mask-size histogram.

        Target selection happens a few times per queue cycle, so publishing
        a per-occurrence :class:`TaintEvent` is well within the overhead
        budget (unlike per-execution events).
        """
        self.registry.counter("taint.targets").value += 1
        self.registry.histogram("taint.mask_bytes").observe(len(focus))
        tick = self.registry.gauge("tick").value
        self.bus.publish(
            TaintEvent(
                self.label,
                tick,
                target.index,
                target.rarity,
                "%s:%d" % target.site,
                len(focus),
                len(frozen),
            )
        )

    def record_masked(self, hit):
        """One masked-stage execution; ``hit`` = the target branch flipped."""
        self.registry.counter("taint.masked_execs").value += 1
        if hit:
            self.registry.counter("taint.masked_hits").value += 1

    def record_concolic(self, target, stats, solved, flipped):
        """One concolic solve attempt: event + counters + search histograms.

        Escalation happens only while coverage is stalled and a few times
        per cycle, so per-attempt :class:`ConcolicEvent` publishing is
        well within the overhead budget.
        """
        self.registry.counter("concolic.attempts").value += 1
        if solved:
            self.registry.counter("concolic.solved").value += 1
        if flipped:
            self.registry.counter("concolic.flips").value += 1
        self.registry.histogram("concolic.support_bytes").observe(
            stats.support_bytes
        )
        self.registry.histogram("concolic.nodes").observe(stats.nodes)
        tick = self.registry.gauge("tick").value
        self.bus.publish(
            ConcolicEvent(
                self.label,
                tick,
                target.index,
                target.rarity,
                "%s:%d" % target.site,
                stats.support_bytes,
                stats.nodes,
                solved,
                flipped,
            )
        )

    # -- periodic sampling (timeline cadence) ---------------------------------

    def sample(self, tick, coverage, queue_size, crashes, execs):
        """Engine timeline snapshot: update gauges, emit, feed the detector."""
        gauge = self.registry.gauge
        gauge("tick").set(tick)
        gauge("coverage").set(coverage)
        gauge("queue_size").set(queue_size)
        gauge("crash_count").set(crashes)
        self.bus.publish(
            MetricsSnapshotEvent(self.label, tick, self.registry.snapshot())
        )
        if self._plateau is None:
            # Fallback window when begin() never ran: one first-sample span.
            window = self.plateau_window or max(1, tick)
            self._plateau = PlateauDetector(
                window, bus=self.bus, label=self.label
            )
        self._plateau.observe(tick, coverage)

    def finish(self, tick):
        """Campaign over: close the plateau stream and flush sinks.

        Idempotent: the engine calls it from :meth:`FuzzEngine.finish` and
        outer drivers may call it again after assembling the result.
        """
        if not self._finished:
            self._finished = True
            if self._plateau is not None:
                self._plateau.finish(tick)
        self.bus.flush()

    def plateaus(self):
        """Plateaus the live detector has seen so far."""
        return list(self._plateau.plateaus) if self._plateau is not None else []
