"""Coverage plateau detection.

FuzzPilot-style observation: *when* a feedback mechanism stops producing new
coverage is itself an actionable signal — it separates "still exploring"
from "saturated", and it is exactly what the paper's coverage-over-time
evaluation reads off its plots.  This module detects plateaus two ways:

- :class:`PlateauDetector` consumes a live ``(tick, coverage)`` stream (the
  engine's timeline cadence) and emits :class:`~repro.telemetry.bus.PlateauEvent`
  begin/end transitions onto a bus;
- :func:`detect_plateaus` runs the same rule post-hoc over a completed
  timeline series — this is what populates ``CampaignResult.plateaus``,
  deterministically and with zero run-time cost, even for untraced runs.

The rule: a plateau *begins* once the metric has gone ``window`` virtual
ticks without increasing, and *ends* (retroactively, at the tick of the
gain) when it increases again.  The reported ``start_tick`` is the tick of
the last gain, so a plateau's span measures the full stall.  Plateaus are
measured on virtual ticks — wall time is irrelevant and nondeterministic.
"""


class Plateau:
    """One detected stall: ``[start_tick, end_tick]`` at metric ``value``.

    ``end_tick`` is ``None`` while the plateau is still open (the campaign
    ended inside it).
    """

    __slots__ = ("metric", "start_tick", "end_tick", "value")

    def __init__(self, metric, start_tick, end_tick, value):
        self.metric = metric
        self.start_tick = start_tick
        self.end_tick = end_tick
        self.value = value

    @property
    def open(self):
        return self.end_tick is None

    def duration(self, final_tick=None):
        """Plateau length in ticks (open plateaus measure to ``final_tick``)."""
        end = self.end_tick
        if end is None:
            end = final_tick if final_tick is not None else self.start_tick
        return max(0, end - self.start_tick)

    def _state(self):
        return (self.metric, self.start_tick, self.end_tick, self.value)

    def __eq__(self, other):
        return isinstance(other, Plateau) and self._state() == other._state()

    def __hash__(self):
        return hash(self._state())

    def to_dict(self):
        return {
            "metric": self.metric,
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "value": self.value,
        }

    def __repr__(self):
        span = "open" if self.open else "@%d" % self.end_tick
        return "Plateau(%s=%d from %d %s)" % (
            self.metric, self.value, self.start_tick, span)


class PlateauDetector:
    """Streaming plateau detection over one monotone metric.

    ``window`` is the stall threshold in virtual ticks.  ``bus``/``label``
    are optional: when given, begin/end transitions are published as
    :class:`~repro.telemetry.bus.PlateauEvent`.
    """

    def __init__(self, window, metric="coverage", bus=None, label=""):
        if window <= 0:
            raise ValueError("plateau window must be positive")
        self.window = int(window)
        self.metric = metric
        self.bus = bus
        self.label = label
        self.plateaus = []
        self._last_value = None
        self._gain_tick = 0  # tick of the last observed increase
        self._open = None

    @property
    def open_plateau(self):
        """The currently open plateau, or None — the live stall signal."""
        return self._open

    def state(self):
        """Picklable detector state (for engine checkpoints)."""
        return {
            "window": self.window,
            "last_value": self._last_value,
            "gain_tick": self._gain_tick,
            "plateaus": [p._state() for p in self.plateaus],
            "open": (
                self.plateaus.index(self._open)
                if self._open is not None
                else None
            ),
        }

    def set_state(self, state):
        """Adopt a :meth:`state` dict; returns self."""
        self.window = state["window"]
        self._last_value = state["last_value"]
        self._gain_tick = state["gain_tick"]
        self.plateaus = [Plateau(*fields) for fields in state["plateaus"]]
        index = state["open"]
        self._open = self.plateaus[index] if index is not None else None
        return self

    def observe(self, tick, value):
        """Feed one sample; returns a newly *opened* Plateau or None."""
        if self._last_value is None:
            self._last_value = value
            self._gain_tick = tick
            return None
        if value > self._last_value:
            self._last_value = value
            if self._open is not None:
                self._close(tick)
            self._gain_tick = tick
            return None
        if self._open is None and tick - self._gain_tick >= self.window:
            self._open = Plateau(self.metric, self._gain_tick, None, self._last_value)
            self.plateaus.append(self._open)
            self._publish("begin", self._open, tick)
            return self._open
        return None

    def finish(self, tick):
        """End of stream: an open plateau stays open; returns all plateaus."""
        # A stall that never reached the window before the campaign ended is
        # deliberately not promoted: it is indistinguishable from "still
        # exploring" at this sampling horizon.
        if self._open is not None:
            self._publish("end", self._open, tick)
        return list(self.plateaus)

    def _close(self, tick):
        self._open.end_tick = tick
        self._publish("end", self._open, tick)
        self._open = None

    def _publish(self, phase, plateau, tick):
        if self.bus is None:
            return
        from repro.telemetry.bus import PlateauEvent

        self.bus.publish(
            PlateauEvent(
                self.label, phase, self.metric, plateau.start_tick, tick,
                plateau.value,
            )
        )


def default_window(span_ticks):
    """Stall threshold for a campaign of ``span_ticks``: one eighth.

    One eighth of the budget matches the campaign's native round scale (the
    paper's 6 h rounds in 48 h campaigns, the sync/checkpoint cadence).
    """
    return max(1, int(span_ticks) // 8)


def detect_plateaus(series, window=None, metric="coverage"):
    """Post-hoc plateau detection over ``[(tick, value), ...]`` samples.

    ``window`` defaults to :func:`default_window` of the series' tick span.
    Non-monotone inputs (merged multi-worker timelines) are rectified with a
    running max — progress anywhere counts as progress.  Returns a list of
    :class:`Plateau` (possibly with the last one open).
    """
    samples = sorted(series)
    if len(samples) < 2:
        return []
    span = samples[-1][0] - samples[0][0]
    if span <= 0:
        return []
    detector = PlateauDetector(window or default_window(span), metric=metric)
    envelope = None
    for tick, value in samples:
        envelope = value if envelope is None else max(envelope, value)
        detector.observe(tick, envelope)
    return detector.finish(samples[-1][0])
