"""The telemetry event bus: typed events, ring retention, pluggable sinks.

One process-local :class:`TelemetryBus` carries every observability event a
campaign produces — worker progress samples, corpus-sync rounds, supervised
restarts, matrix-cell completions, metric snapshots, spans, and plateau
transitions.  Producers construct a *typed* event (below) and ``publish`` it;
the bus keeps the most recent events in a bounded ring (tests and the live
TTY view read it back) and forwards each event to every attached sink:

``NullSink``
    discards everything — the hot-path default, so producers never branch on
    "is telemetry on?".
``LogSink``
    mirrors events onto the stdlib loggers with the exact line formats the
    legacy :mod:`repro.fuzzer.stats` logging used, so ``--verbose`` output
    is unchanged.
``JsonlSink``
    appends one JSON object per event to a trace file, with buffered writes
    and atomic size-based rotation (``path`` -> ``path.1`` via ``os.replace``).
``TTYSink``
    human one-liners to a stream (stderr by default) for live watching.

The bus is determinism-neutral by construction: publishing reads the wall
clock but never touches the virtual clock, the campaign RNG, or any engine
state, so a traced campaign is field-for-field equal to an untraced one.

Reloading a trace is tolerant: :func:`read_trace` skips lines that are torn
or malformed (a crashed writer must not take the report down with it) and
returns how many it skipped.
"""

import json
import logging
import os
import time
from collections import deque

logger = logging.getLogger("repro.fuzzer.parallel")

#: Default number of events the in-memory ring retains.
DEFAULT_RING_CAPACITY = 4096

#: Default JSONL rotation threshold (bytes).  64 MiB of events is far more
#: than any laptop-scale campaign produces; rotation exists so unattended
#: long campaigns cannot fill a disk.
DEFAULT_ROTATE_BYTES = 64 * 1024 * 1024


# -- typed events --------------------------------------------------------------


class TelemetryEvent:
    """Base event: a ``kind`` tag plus wall-clock seconds since the epoch."""

    kind = "event"
    __slots__ = ("wall",)

    def __init__(self, wall=None):
        self.wall = time.time() if wall is None else wall

    def payload(self):
        """Subclass fields as a plain dict (no ``kind``/``wall``)."""
        return {}

    def to_dict(self):
        data = {"kind": self.kind, "wall": self.wall}
        data.update(self.payload())
        return data

    def __repr__(self):
        return "%s(%r)" % (type(self).__name__, self.payload())


class CampaignEvent(TelemetryEvent):
    """Campaign lifecycle: ``action`` is ``"begin"`` or ``"end"``."""

    kind = "campaign"
    __slots__ = ("action", "subject", "config", "run_seed", "workers", "budget")

    def __init__(
        self, action, subject, config, run_seed, workers=1, budget=0, wall=None
    ):
        super().__init__(wall)
        self.action = action
        self.subject = subject
        self.config = config
        self.run_seed = run_seed
        self.workers = workers
        self.budget = budget

    def payload(self):
        return {
            "action": self.action,
            "subject": self.subject,
            "config": self.config,
            "run_seed": self.run_seed,
            "workers": self.workers,
            "budget": self.budget,
        }


class WorkerProgressEvent(TelemetryEvent):
    """One per-worker progress sample taken at a sync barrier."""

    kind = "worker_progress"
    __slots__ = (
        "label",
        "worker",
        "tick",
        "execs",
        "queue",
        "crashes",
        "hangs",
        "coverage",
        "elapsed",
    )

    def __init__(
        self,
        label,
        worker,
        tick,
        execs,
        queue,
        crashes,
        hangs,
        coverage=0,
        elapsed=0.0,
        wall=None,
    ):
        super().__init__(wall)
        self.label = label
        self.worker = worker
        self.tick = tick
        self.execs = execs
        self.queue = queue
        self.crashes = crashes
        self.hangs = hangs
        self.coverage = coverage
        self.elapsed = elapsed

    def payload(self):
        return {
            "label": self.label,
            "worker": self.worker,
            "tick": self.tick,
            "execs": self.execs,
            "queue": self.queue,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "coverage": self.coverage,
            "elapsed": self.elapsed,
        }


class SyncRoundEvent(TelemetryEvent):
    """One corpus-sync round: offers, acceptances, per-worker imports."""

    kind = "sync"
    __slots__ = ("label", "tick", "offered", "accepted", "imported", "elapsed")

    def __init__(self, label, tick, offered, accepted, imported=(), elapsed=0.0,
                 wall=None):
        super().__init__(wall)
        self.label = label
        self.tick = tick
        self.offered = offered
        self.accepted = accepted
        self.imported = tuple(imported)
        self.elapsed = elapsed

    def payload(self):
        return {
            "label": self.label,
            "tick": self.tick,
            "offered": self.offered,
            "accepted": self.accepted,
            "imported": list(self.imported),
            "elapsed": self.elapsed,
        }


class WorkerRestartEvent(TelemetryEvent):
    """One supervised worker restart (death/stall -> backoff -> respawn)."""

    kind = "restart"
    __slots__ = ("label", "worker", "attempt", "reason", "delay", "elapsed")

    def __init__(self, label, worker, attempt, reason, delay, elapsed=0.0,
                 wall=None):
        super().__init__(wall)
        self.label = label
        self.worker = worker
        self.attempt = attempt
        self.reason = reason
        self.delay = delay
        self.elapsed = elapsed

    def payload(self):
        return {
            "label": self.label,
            "worker": self.worker,
            "attempt": self.attempt,
            "reason": self.reason,
            "delay": self.delay,
            "elapsed": self.elapsed,
        }


class WorkerDroppedEvent(TelemetryEvent):
    """A worker/job was dropped and the campaign degraded.

    ``reason`` stays the human-readable exception string; ``cause`` is the
    machine-readable degradation category (``"restart-budget"``,
    ``"deadline"``, ``"checkpoint-corrupt"``, ...) and ``detail`` carries
    the category of the underlying failure (e.g. the typed
    ``CheckpointError`` family name) so dashboards can group drops by *why*
    instead of parsing strings.
    """

    kind = "degraded"
    __slots__ = ("label", "worker", "reason", "cause", "detail")

    def __init__(self, label, worker, reason, cause="unknown", detail=None,
                 wall=None):
        super().__init__(wall)
        self.label = label
        self.worker = worker
        self.reason = reason
        self.cause = cause
        self.detail = detail

    def payload(self):
        return {
            "label": self.label,
            "worker": self.worker,
            "reason": self.reason,
            "cause": self.cause,
            "detail": self.detail,
        }


class CellEvent(TelemetryEvent):
    """One matrix cell finished (ok / error / crashed / timeout)."""

    kind = "cell"
    __slots__ = ("key", "status", "secs", "execs", "restarts", "done", "total")

    def __init__(self, key, status, secs, execs=0, restarts=0, done=0, total=0,
                 wall=None):
        super().__init__(wall)
        self.key = key
        self.status = status
        self.secs = secs
        self.execs = execs
        self.restarts = restarts
        self.done = done
        self.total = total

    def payload(self):
        return {
            "key": str(self.key),
            "status": self.status,
            "secs": self.secs,
            "execs": self.execs,
            "restarts": self.restarts,
            "done": self.done,
            "total": self.total,
        }


class CellRetryEvent(TelemetryEvent):
    """A matrix cell failed transiently and will be restarted after a delay."""

    kind = "cell_retry"
    __slots__ = ("key", "attempt", "failure", "delay")

    def __init__(self, key, attempt, failure, delay, wall=None):
        super().__init__(wall)
        self.key = key
        self.attempt = attempt
        self.failure = failure
        self.delay = delay

    def payload(self):
        return {
            "key": str(self.key),
            "attempt": self.attempt,
            "failure": self.failure,
            "delay": self.delay,
        }


class SpanEvent(TelemetryEvent):
    """One closed span (coarse stages only; hot spans aggregate instead)."""

    kind = "span"
    __slots__ = ("name", "secs", "tick", "attrs")

    def __init__(self, name, secs, tick=None, attrs=None, wall=None):
        super().__init__(wall)
        self.name = name
        self.secs = secs
        self.tick = tick
        self.attrs = dict(attrs) if attrs else {}

    def payload(self):
        return {"name": self.name, "secs": self.secs, "tick": self.tick,
                "attrs": self.attrs}


class MetricsSnapshotEvent(TelemetryEvent):
    """Periodic dump of the metrics registry (see :mod:`.metrics`)."""

    kind = "metrics"
    __slots__ = ("label", "tick", "metrics")

    def __init__(self, label, tick, metrics, wall=None):
        super().__init__(wall)
        self.label = label
        self.tick = tick
        self.metrics = metrics

    def payload(self):
        return {"label": self.label, "tick": self.tick, "metrics": self.metrics}


class PlateauEvent(TelemetryEvent):
    """Coverage stopped (``phase="begin"``) or resumed (``phase="end"``)."""

    kind = "plateau"
    __slots__ = ("label", "phase", "metric", "start_tick", "tick", "value")

    def __init__(self, label, phase, metric, start_tick, tick, value, wall=None):
        super().__init__(wall)
        self.label = label
        self.phase = phase
        self.metric = metric
        self.start_tick = start_tick
        self.tick = tick
        self.value = value

    def payload(self):
        return {
            "label": self.label,
            "phase": self.phase,
            "metric": self.metric,
            "start_tick": self.start_tick,
            "tick": self.tick,
            "value": self.value,
        }


class StoreEvent(TelemetryEvent):
    """One durable-workspace operation (see :mod:`repro.fuzzer.store`).

    ``action`` is ``"scan"`` (tolerant recovery scan: ``entries`` survivors,
    ``quarantined`` files moved aside) — the counter the acceptance criteria
    watch: damage must surface here, never as a campaign failure.
    """

    kind = "store"
    __slots__ = ("action", "worker", "artifact", "entries", "quarantined")

    def __init__(self, action, worker, kind=None, entries=0, quarantined=0,
                 wall=None):
        super().__init__(wall)
        self.action = action
        self.worker = worker
        self.artifact = kind  # artifact kind: "queue" | "crashes" | "hangs"
        self.entries = entries
        self.quarantined = quarantined

    def payload(self):
        return {
            "action": self.action,
            "worker": self.worker,
            "artifact": self.artifact,
            "entries": self.entries,
            "quarantined": self.quarantined,
        }


class TaintEvent(TelemetryEvent):
    """One rare-branch target selected by the taint-guided masked stage.

    ``index``/``rarity`` locate the branch in coverage-map terms (how many
    queue entries cover it); ``site`` is its ``function:block`` source
    position; ``focus``/``frozen`` are the byte-mask sizes the masked
    mutators will concentrate on / hold fixed.  Published once per target
    selection (a handful per queue cycle), never per masked execution —
    per-exec taint counters ride the periodic metrics snapshots instead.
    """

    kind = "taint"
    __slots__ = ("label", "tick", "index", "rarity", "site", "focus", "frozen")

    def __init__(self, label, tick, index, rarity, site, focus, frozen,
                 wall=None):
        super().__init__(wall)
        self.label = label
        self.tick = tick
        self.index = index
        self.rarity = rarity
        self.site = site
        self.focus = focus
        self.frozen = frozen

    def payload(self):
        return {
            "label": self.label,
            "tick": self.tick,
            "index": self.index,
            "rarity": self.rarity,
            "site": self.site,
            "focus": self.focus,
            "frozen": self.frozen,
        }


class ConcolicEvent(TelemetryEvent):
    """One solve attempt of the plateau-triggered concolic stage.

    ``index``/``rarity``/``site`` locate the escalated branch exactly as
    :class:`TaintEvent` does; ``support`` is how many input bytes the
    flipped guard's expression reads; ``nodes`` the solver search nodes
    spent; ``solved`` whether a witness assignment was found; ``flipped``
    whether replaying it actually took the branch's other arm.  Published
    once per solve attempt (a handful per stalled queue cycle).
    """

    kind = "concolic"
    __slots__ = (
        "label", "tick", "index", "rarity", "site", "support", "nodes",
        "solved", "flipped",
    )

    def __init__(self, label, tick, index, rarity, site, support, nodes,
                 solved, flipped, wall=None):
        super().__init__(wall)
        self.label = label
        self.tick = tick
        self.index = index
        self.rarity = rarity
        self.site = site
        self.support = support
        self.nodes = nodes
        self.solved = solved
        self.flipped = flipped

    def payload(self):
        return {
            "label": self.label,
            "tick": self.tick,
            "index": self.index,
            "rarity": self.rarity,
            "site": self.site,
            "support": self.support,
            "nodes": self.nodes,
            "solved": self.solved,
            "flipped": self.flipped,
        }


class ServiceEvent(TelemetryEvent):
    """One campaign-service operation (see :mod:`repro.service`).

    ``action`` names the lifecycle step (``"recover"``, ``"submit"``,
    ``"start"``, ``"retry"``, ``"done"``, ``"degrade"``, ``"cancel"``,
    ``"breaker"``) or a multi-host event (``"fenced"`` — this service
    was displaced or quarantined a predecessor's late write;
    ``"intake"``/``"refuse"`` — a live request file was settled;
    ``"compact"`` — the journal folded into a snapshot); ``job``/
    ``tenant`` locate it; ``detail`` is a short human string and ``data``
    a small JSON-safe dict of action-specific numbers (journal seq,
    fencing epoch, dedupe counts, backlog, ...).
    """

    kind = "service"
    __slots__ = ("action", "job", "tenant", "detail", "data")

    def __init__(self, action, job=None, tenant=None, detail=None, data=None,
                 wall=None):
        super().__init__(wall)
        self.action = action
        self.job = job
        self.tenant = tenant
        self.detail = detail
        self.data = dict(data) if data else {}

    def payload(self):
        return {
            "action": self.action,
            "job": self.job,
            "tenant": self.tenant,
            "detail": self.detail,
            "data": self.data,
        }


EVENT_TYPES = {
    cls.kind: cls
    for cls in (
        CampaignEvent,
        WorkerProgressEvent,
        SyncRoundEvent,
        WorkerRestartEvent,
        WorkerDroppedEvent,
        CellEvent,
        CellRetryEvent,
        SpanEvent,
        MetricsSnapshotEvent,
        PlateauEvent,
        StoreEvent,
        TaintEvent,
        ConcolicEvent,
        ServiceEvent,
    )
}


# -- sinks ---------------------------------------------------------------------


class NullSink:
    """Discards every event: the zero-cost default for hot paths."""

    def emit(self, event):
        pass

    def close(self):
        pass


class LogSink:
    """Mirrors events to stdlib loggers, preserving the legacy line formats.

    This is what re-bases :mod:`repro.fuzzer.stats` on the bus without
    changing a single ``--verbose`` output line: the stats recorders publish
    typed events, and this sink renders them exactly as their old direct
    ``logger.info``/``warning`` calls did.
    """

    def emit(self, event):
        kind = event.kind
        if kind == "worker_progress":
            vhour = event.execs / (event.tick / _ticks_per_hour()) if event.tick > 0 else 0.0
            per_sec = event.execs / event.elapsed if event.elapsed > 0 else 0.0
            logger.info(
                "%s worker %d @tick %d: %d execs (%.0f/vh, %.0f/s), queue %d, "
                "%d crashes",
                event.label, event.worker, event.tick, event.execs,
                vhour, per_sec, event.queue, event.crashes,
            )
        elif kind == "sync":
            logger.info(
                "%s sync @tick %d: %d offered, %d accepted into shared corpus",
                event.label, event.tick, event.offered, event.accepted,
            )
        elif kind == "restart":
            logger.warning(
                "%s worker %d restart #%d after %.2gs backoff: %s",
                event.label, event.worker, event.attempt, event.delay, event.reason,
            )
        elif kind == "degraded":
            logger.warning(
                "%s worker %d dropped (campaign degraded): %s",
                event.label, event.worker, event.reason,
            )
        elif kind == "cell":
            logger.info(
                "cell %s: %s in %.1fs (%d/%s done)",
                event.key, event.status, event.secs, event.done,
                event.total or "?",
            )
        elif kind == "cell_retry":
            logger.warning(
                "cell %s: %s; retry #%d after %.2gs backoff",
                event.key, event.failure, event.attempt, event.delay,
            )
        elif kind == "store":
            if event.quarantined:
                logger.warning(
                    "%s store scan %s: %d entries, %d quarantined",
                    event.worker, event.artifact, event.entries, event.quarantined,
                )
        elif kind == "service":
            logging.getLogger("repro.service").info(
                "service %s: job=%s tenant=%s %s",
                event.action, event.job, event.tenant, event.detail or "",
            )
        elif kind == "plateau":
            if event.phase == "begin":
                logger.info(
                    "%s %s plateau since tick %d (value %d)",
                    event.label, event.metric, event.start_tick, event.value,
                )
            else:
                logger.info(
                    "%s %s plateau ended at tick %d after %d ticks",
                    event.label, event.metric, event.tick,
                    event.tick - event.start_tick,
                )

    def close(self):
        pass


def _ticks_per_hour():
    from repro.fuzzer.clock import TICKS_PER_HOUR

    return TICKS_PER_HOUR


class JsonlSink:
    """Buffered JSONL writer with atomic size-based rotation.

    Rotation keeps exactly one archive: when the live file would exceed
    ``rotate_bytes`` it is atomically renamed to ``<path>.1`` (clobbering a
    previous archive) and a fresh file is started.  Writes are buffered and
    flushed every ``flush_every`` events (and on ``close``).

    The sink remembers the PID that created it: after a ``fork`` the child
    inherits the open file object, and two processes appending to one stream
    tear lines.  A forked child's emits are therefore dropped silently —
    worker entry points install their own per-worker sink (see
    :func:`repro.telemetry.child_trace`).
    """

    def __init__(self, path, rotate_bytes=DEFAULT_ROTATE_BYTES, flush_every=64):
        self.path = path
        self.rotate_bytes = int(rotate_bytes)
        self.flush_every = max(1, int(flush_every))
        self._pid = os.getpid()
        self._pending = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    def emit(self, event):
        if self._handle is None or os.getpid() != self._pid:
            return
        line = json.dumps(event.to_dict(), separators=(",", ":"), sort_keys=True)
        self._handle.write(line + "\n")
        self._pending += 1
        if self._pending >= self.flush_every:
            self.flush()
            if self._handle.tell() >= self.rotate_bytes:
                self._rotate()

    def flush(self):
        if self._handle is not None:
            self._handle.flush()
            self._pending = 0

    def _rotate(self):
        """Atomically archive the live file and start a fresh one."""
        self._handle.close()
        os.replace(self.path, self.path + ".1")
        self._handle = open(self.path, "a", encoding="utf-8")

    def close(self):
        if self._handle is not None and os.getpid() == self._pid:
            self.flush()
            self._handle.close()
        self._handle = None


class TTYSink:
    """Human one-liners to a stream (stderr by default) for live watching."""

    def __init__(self, stream=None):
        import sys

        self.stream = stream if stream is not None else sys.stderr

    def emit(self, event):
        try:
            self.stream.write(format_event_line(event.to_dict()) + "\n")
        except (OSError, ValueError):
            pass

    def close(self):
        pass


def format_event_line(data):
    """One-line human rendering of an event dict (TTY sink and tail view)."""
    kind = data.get("kind", "?")
    if kind == "worker_progress":
        return "[w%s @%s] execs=%s queue=%s crashes=%s coverage=%s" % (
            data.get("worker"), data.get("tick"), data.get("execs"),
            data.get("queue"), data.get("crashes"), data.get("coverage"),
        )
    if kind == "sync":
        return "[sync @%s] offered=%s accepted=%s" % (
            data.get("tick"), data.get("offered"), data.get("accepted"))
    if kind == "restart":
        return "[restart w%s #%s] %s" % (
            data.get("worker"), data.get("attempt"), data.get("reason"))
    if kind == "degraded":
        return "[degraded w%s] %s: %s" % (
            data.get("worker"), data.get("cause", "unknown"), data.get("reason"))
    if kind == "service":
        return "[service %s] job=%s tenant=%s %s" % (
            data.get("action"), data.get("job"), data.get("tenant"),
            data.get("detail") or "")
    if kind == "cell":
        return "[cell %s] %s in %.1fs" % (
            data.get("key"), data.get("status"), data.get("secs") or 0.0)
    if kind == "cell_retry":
        return "[cell %s] retry #%s: %s" % (
            data.get("key"), data.get("attempt"), data.get("failure"))
    if kind == "span":
        return "[span %s] %.4fs" % (data.get("name"), data.get("secs") or 0.0)
    if kind == "metrics":
        counters = (data.get("metrics") or {}).get("counters", {})
        return "[metrics @%s] %s" % (
            data.get("tick"),
            " ".join("%s=%s" % kv for kv in sorted(counters.items())))
    if kind == "plateau":
        if data.get("phase") == "begin":
            return "[plateau] %s flat since tick %s" % (
                data.get("metric"), data.get("start_tick"))
        return "[plateau] %s resumed at tick %s" % (
            data.get("metric"), data.get("tick"))
    if kind == "taint":
        return "[taint @%s] idx=%s rarity=%s site=%s focus=%sB frozen=%sB" % (
            data.get("tick"), data.get("index"), data.get("rarity"),
            data.get("site"), data.get("focus"), data.get("frozen"))
    if kind == "concolic":
        return "[concolic @%s] idx=%s site=%s support=%sB nodes=%s %s" % (
            data.get("tick"), data.get("index"), data.get("site"),
            data.get("support"), data.get("nodes"),
            "flipped" if data.get("flipped")
            else ("solved" if data.get("solved") else "unsolved"))
    if kind == "campaign":
        return "[campaign %s] %s/%s#%s workers=%s" % (
            data.get("action"), data.get("subject"), data.get("config"),
            data.get("run_seed"), data.get("workers"))
    if kind == "store":
        return "[store %s %s/%s] entries=%s quarantined=%s" % (
            data.get("action"), data.get("worker"), data.get("artifact"),
            data.get("entries"), data.get("quarantined"))
    return "[%s] %r" % (kind, data)


# -- the bus -------------------------------------------------------------------


class TelemetryBus:
    """Process-local fan-out of telemetry events to a ring and to sinks."""

    def __init__(self, capacity=DEFAULT_RING_CAPACITY):
        self._ring = deque(maxlen=capacity)
        self.sinks = []

    def attach(self, sink):
        """Attach a sink; returns it (for later :meth:`detach`/close)."""
        self.sinks.append(sink)
        return sink

    def detach(self, sink):
        if sink in self.sinks:
            self.sinks.remove(sink)

    def publish(self, event):
        """Record ``event`` in the ring and forward it to every sink."""
        self._ring.append(event)
        for sink in self.sinks:
            sink.emit(event)
        return event

    def recent(self, kind=None):
        """Ring contents, optionally filtered by event kind (oldest first)."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def clear(self):
        self._ring.clear()

    def flush(self):
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self):
        """Close every sink and detach them all (the ring is kept)."""
        for sink in self.sinks:
            sink.close()
        self.sinks = []


# The process-global bus: stats recorders publish here by default, and a
# LogSink preserves the legacy logger mirroring unconditionally (visibility
# is still governed by logging levels, exactly as before).
_GLOBAL_BUS = None


def get_bus():
    """The process-global bus (lazily created with the LogSink attached)."""
    global _GLOBAL_BUS
    if _GLOBAL_BUS is None:
        _GLOBAL_BUS = TelemetryBus()
        _GLOBAL_BUS.attach(LogSink())
    return _GLOBAL_BUS


# -- trace reload --------------------------------------------------------------


def read_trace(path, include_rotated=True):
    """Load a JSONL trace tolerantly.

    Returns ``(events, skipped)``: ``events`` is a list of plain dicts in
    file order (the rotated archive ``<path>.1``, when present, is read
    first so the sequence stays chronological); ``skipped`` counts torn or
    malformed lines that were ignored.
    """
    paths = []
    if include_rotated and os.path.exists(path + ".1"):
        paths.append(path + ".1")
    paths.append(path)
    events = []
    skipped = 0
    for name in paths:
        try:
            handle = open(name, encoding="utf-8")
        except OSError:
            continue
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if not isinstance(data, dict) or "kind" not in data:
                    skipped += 1
                    continue
                events.append(data)
    return events, skipped
