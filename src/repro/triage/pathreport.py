"""Path-level crash explanation.

One practical payoff of Ball-Larus profiles the paper highlights (Sec. VI)
is triage support: path-aware fuzzers surface *alternative ways* to trigger
the same bug, and decoded path profiles show developers exactly which
intra-procedural routes an input exercised.  This module reconstructs, for
any input, the acyclic paths each function traversed — decoded back to
block sequences via :meth:`FunctionPathPlan.regenerate_blocks` — and diffs
the profiles of two inputs (e.g. a crash's stepping stone against the
nearest benign seed).

Note the Ball-Larus semantics: a path id is emitted when the path
*completes* (back edge or return), so a trap aborts the innermost frames'
in-flight paths — diff a crashing input's non-crashing stepping stone to
see the route that set the bug-triggering state.
"""

from repro.ballarus.plan import build_program_plans
from repro.coverage.feedback import PathFeedback, _stable_hash
from repro.runtime.interpreter import execute


class PathProfile:
    """Decoded per-function path profile of one execution."""

    def __init__(self, entries, crashed, trap):
        # entries: list of (function_name, path_id, hit_count, blocks)
        self.entries = entries
        self.crashed = crashed
        self.trap = trap

    def keys(self):
        """(function, path_id) pairs traversed."""
        return {(function, path_id) for function, path_id, _c, _b in self.entries}

    def format(self, max_entries=40):
        lines = []
        for function, path_id, count, blocks in self.entries[:max_entries]:
            lines.append(
                "  %s path %d x%d: blocks %s"
                % (function, path_id, count, blocks)
            )
        if len(self.entries) > max_entries:
            lines.append("  ... %d more" % (len(self.entries) - max_entries))
        return "\n".join(lines)


def profile_input(program, data, instr_budget=200_000):
    """Execute ``data`` and decode every traversed acyclic path.

    Path-map indices are inverted through each function's ``fxor`` constant;
    an index is attributed to a function when the candidate id is in range
    (the same aliasing the fuzzer lives with — collisions are possible but
    rare at 2^18 map entries).
    """
    instrumentation = PathFeedback().instrument(program)
    plans = build_program_plans(program)
    result = execute(program, data, instrumentation, instr_budget=instr_budget)
    entries = []
    claimed = set()
    for plan in plans:
        fxor = _stable_hash("func:" + plan.func_name) & instrumentation.map_mask
        for idx, count in result.hits.items():
            if idx in claimed:
                continue
            path_id = idx ^ fxor
            if 0 <= path_id < plan.num_paths:
                blocks = plan.regenerate_blocks(path_id)
                entries.append((plan.func_name, path_id, count, blocks))
                claimed.add(idx)
    entries.sort()
    return PathProfile(entries, result.crashed, result.trap)


def diff_profiles(program, benign, crashing, instr_budget=200_000):
    """Paths exercised by ``crashing`` but not by ``benign``.

    Returns (crash_profile, novel) where ``novel`` lists the
    (function, path_id, blocks) triples unique to the crashing input — the
    "which route got us here" report a developer would triage with.
    """
    base = profile_input(program, benign, instr_budget)
    crash = profile_input(program, crashing, instr_budget)
    base_keys = base.keys()
    novel = [
        (function, path_id, blocks)
        for function, path_id, _count, blocks in crash.entries
        if (function, path_id) not in base_keys
    ]
    return crash, novel


def explain_crash(program, benign, crashing, instr_budget=200_000):
    """Human-readable triage report for a crashing input."""
    crash, novel = diff_profiles(program, benign, crashing, instr_budget)
    lines = []
    if crash.trap is not None:
        lines.append(crash.trap.report())
    else:
        lines.append("(input does not crash)")
    lines.append("novel acyclic paths vs the benign input:")
    if not novel:
        lines.append("  (none — the difference is data-only)")
    for function, path_id, blocks in novel:
        lines.append("  %s path %d: blocks %s" % (function, path_id, blocks))
    return "\n".join(lines)
