"""Crash triage: stack-hash clustering, ground-truth bugs, set reports."""

from repro.triage.bugs import Bug, bugs_from_crashes, crashes_by_bug
from repro.triage.report import (
    format_venn,
    intersect,
    pairwise_cells,
    subtract,
    union_all,
    venn_regions,
)
from repro.triage.pathreport import diff_profiles, explain_crash, profile_input
from repro.triage.stacktrace import format_stack, stack_hash

__all__ = [
    "Bug",
    "bugs_from_crashes",
    "crashes_by_bug",
    "stack_hash",
    "format_stack",
    "intersect",
    "subtract",
    "pairwise_cells",
    "venn_regions",
    "format_venn",
    "union_all",
    "profile_input",
    "diff_profiles",
    "explain_crash",
]
