"""Ground-truth bug identity.

Every crash carries its faulting ``(function, line, kind)`` triple.  For the
synthetic subjects this is exactly the planted defect's root cause, so
mapping crashes to *unique bugs* — which the paper did by manual analysis —
is an oracle lookup here.  Subject modules publish a *bug census* (the
planted defects with crashing witness inputs), letting tests verify that
every census entry is a real, distinctly-identified defect.
"""


class Bug:
    """One planted defect."""

    __slots__ = ("bug_id", "description", "witness", "difficulty")

    def __init__(self, bug_id, description, witness, difficulty="medium"):
        self.bug_id = bug_id
        self.description = description
        self.witness = bytes(witness)
        self.difficulty = difficulty

    def __repr__(self):
        return "Bug(%s:%d %s, %s)" % (
            self.bug_id[0],
            self.bug_id[1],
            self.bug_id[2],
            self.difficulty,
        )


def bugs_from_crashes(crash_records):
    """The set of ground-truth bug ids hit by ``crash_records``."""
    return {record.bug_id() for record in crash_records}


def crashes_by_bug(crash_records):
    """Group crash records (distinct stack hashes) by their bug id."""
    grouped = {}
    for record in crash_records:
        grouped.setdefault(record.bug_id(), []).append(record)
    return grouped
