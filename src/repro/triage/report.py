"""Set algebra over triaged results.

The paper's Tables II, VI, VII, VIII and X report, per benchmark, each
fuzzer's unique bugs/crashes plus pairwise *intersections* (common bugs) and
*subtractions* (bugs one fuzzer finds and the other misses).  This module
provides those aggregations over {config_name: set} maps, and the Venn-style
region counts behind Figure 3.
"""


def intersect(results, a, b):
    """|results[a] & results[b]|."""
    return len(results[a] & results[b])


def subtract(results, a, b):
    """|results[a] - results[b]|."""
    return len(results[a] - results[b])


def pairwise_cells(results, pairs):
    """For each (a, b) pair produce (a∩b, a\\b, b\\a) sizes in order."""
    cells = []
    for a, b in pairs:
        cells.append(
            (
                intersect(results, a, b),
                subtract(results, a, b),
                subtract(results, b, a),
            )
        )
    return cells


def venn_regions(results, names):
    """Exclusive-region sizes of the Venn diagram over ``names``.

    Returns {frozenset(subset): count} mapping each non-empty subset of
    ``names`` to the number of elements belonging to exactly that subset.
    """
    names = list(names)
    universe = set()
    for name in names:
        universe |= results[name]
    regions = {}
    for element in universe:
        membership = frozenset(n for n in names if element in results[n])
        regions[membership] = regions.get(membership, 0) + 1
    return regions


def format_venn(regions, names):
    """Render Venn regions as sorted, readable lines."""
    lines = []
    ordered = sorted(regions.items(), key=lambda kv: (-len(kv[0]), sorted(kv[0])))
    for membership, count in ordered:
        label = " & ".join(sorted(membership))
        lines.append("  only {%s}: %d" % (label, count))
    return "\n".join(lines)


def union_all(results, names=None):
    """Union of every named result set."""
    names = list(results) if names is None else names
    out = set()
    for name in names:
        out |= results[name]
    return out
