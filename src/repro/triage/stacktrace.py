"""Stack-trace hashing for crash clustering.

Following the paper (and common practice, Klees et al. CCS'18), crashes are
clustered by a hash of the *top 5 frames* of the crash stack trace — the
"unique crashes" metric.  The same module provides the coarser whole-stack
hash and frame formatting used in reports.
"""

import hashlib

TOP_FRAMES = 5


def stack_hash(stack, depth=TOP_FRAMES):
    """Hash the innermost ``depth`` frames of ``stack`` (list of Frame)."""
    hasher = hashlib.sha256()
    for frame in stack[:depth]:
        hasher.update(frame.function.encode("utf-8"))
        hasher.update(b":")
        hasher.update(str(frame.line).encode("ascii"))
        hasher.update(b"|")
    return hasher.hexdigest()[:16]


def format_stack(stack, depth=None):
    """Human-readable one-line rendering: ``a:3 <- b:17 <- main:4``."""
    frames = stack if depth is None else stack[:depth]
    return " <- ".join("%s:%d" % (f.function, f.line) for f in frames)
