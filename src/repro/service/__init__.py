"""Fuzzing-as-a-service: a crash-safe asyncio campaign orchestrator.

The package promotes the single-campaign robustness machinery (PR 2
checkpoints + supervisor, PR 4 durable store) to a long-running service
that schedules many concurrent campaigns across a supervised worker pool:

:mod:`.journal`
    crash-safe job journal — one atomic record per state transition,
    tolerant recovery scan with quarantine.
:mod:`.jobs`
    job specs, states, tenant policies, typed service errors, and the
    deterministic journal fold that rebuilds the job table on restart.
:mod:`.worker`
    the job worker process: one campaign driven slice-by-slice with
    checkpoints, heartbeats, and a durable store.
:mod:`.dedupe`
    cross-campaign crash dedupe keyed on triage stack signatures.
:mod:`.orchestrator`
    the asyncio :class:`~repro.service.orchestrator.CampaignService`:
    submit/status/cancel/fetch_crashes, heartbeat deadlines, wall budgets,
    retry budgets with exponential backoff, and overload load shedding.
"""

from repro.service.dedupe import CrashDedupe
from repro.service.jobs import (
    AdmissionError,
    DegradeReason,
    HeartbeatTimeoutError,
    JobSpec,
    JobTimeoutError,
    OverloadError,
    ServiceError,
    TenantPolicy,
    TransitionError,
    WallBudgetError,
)
from repro.service.journal import JobJournal
from repro.service.orchestrator import (
    CampaignService,
    list_job_crashes,
    load_job_table,
    submit_offline,
)

__all__ = [
    "AdmissionError",
    "CampaignService",
    "CrashDedupe",
    "DegradeReason",
    "HeartbeatTimeoutError",
    "JobJournal",
    "JobSpec",
    "JobTimeoutError",
    "OverloadError",
    "ServiceError",
    "TenantPolicy",
    "TransitionError",
    "WallBudgetError",
    "list_job_crashes",
    "load_job_table",
    "submit_offline",
]
