"""Fuzzing-as-a-service: a crash-safe asyncio campaign orchestrator.

The package promotes the single-campaign robustness machinery (PR 2
checkpoints + supervisor, PR 4 durable store) to a long-running service
that schedules many concurrent campaigns across a supervised worker pool:

:mod:`.journal`
    crash-safe job journal — one atomic, fence-stamped record per state
    transition, tolerant recovery scan with quarantine, and compaction
    into self-verifying snapshots (snapshot + tail replay on recovery).
:mod:`.lease`
    lease-based root ownership with fencing epochs: periodic renewal,
    expiry-based steals for standby actors on other hosts, and typed
    :class:`~repro.service.lease.LeaseLostError` fencing detection.
:mod:`.intake`
    live request files (``req:<nonce>,hash:…``) any process may drop for
    a running daemon: submissions, cancels, and drains are re-admitted
    and settled exactly once by nonce.
:mod:`.jobs`
    job specs, states, tenant policies, typed service errors, and the
    deterministic journal fold that rebuilds the job table on restart.
:mod:`.worker`
    the job worker process: one campaign driven slice-by-slice with
    checkpoints, heartbeats, and a durable store.
:mod:`.dedupe`
    cross-campaign crash dedupe keyed on triage stack signatures.
:mod:`.orchestrator`
    the asyncio :class:`~repro.service.orchestrator.CampaignService`:
    submit/status/cancel/fetch_crashes, heartbeat deadlines, wall budgets,
    retry budgets with exponential backoff, overload load shedding, and
    daemon mode (``serve_forever``) with journal-tail intake.
"""

from repro.service.dedupe import CrashDedupe
from repro.service.jobs import (
    AdmissionError,
    DegradeReason,
    HeartbeatTimeoutError,
    JobSpec,
    JobTimeoutError,
    OverloadError,
    ServiceError,
    TenantPolicy,
    TransitionError,
    WallBudgetError,
)
from repro.service.journal import JobJournal
from repro.service.lease import LeaseLostError, ServiceLease, read_fence
from repro.service.orchestrator import (
    CampaignService,
    cancel_offline,
    compact_offline,
    list_job_crashes,
    load_job_table,
    load_service_state,
    submit_offline,
)

__all__ = [
    "AdmissionError",
    "CampaignService",
    "CrashDedupe",
    "DegradeReason",
    "HeartbeatTimeoutError",
    "JobJournal",
    "JobSpec",
    "JobTimeoutError",
    "LeaseLostError",
    "OverloadError",
    "ServiceError",
    "ServiceLease",
    "TenantPolicy",
    "TransitionError",
    "WallBudgetError",
    "cancel_offline",
    "compact_offline",
    "list_job_crashes",
    "load_job_table",
    "load_service_state",
    "read_fence",
    "submit_offline",
]
